"""Bench A7: the Gaudi2 what-if — does the paper's imbalance persist?"""

from conftest import assert_checks

from repro.core import run_generation_comparison


def test_ext_gaudi2_whatif(benchmark, record_info):
    result = benchmark(run_generation_comparison)
    assert_checks(result.checks())
    record_info(
        benchmark,
        layer_speedup=round(result.layer_speedup, 2),
        e2e_speedup=round(result.e2e_speedup, 2),
        g2_softmax_tpc_share=round(result.layer_g2.softmax_tpc_share, 3),
        max_batch_g1=result.max_batch_g1,
        max_batch_g2=result.max_batch_g2,
    )
    print()
    print(result.render())
