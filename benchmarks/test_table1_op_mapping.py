"""Bench T1: regenerate Table 1 (operation -> engine mapping)."""

from conftest import assert_checks

from repro.core import run_op_mapping


def test_table1_op_mapping(benchmark, record_info):
    result = benchmark(run_op_mapping)
    assert_checks(result.checks())
    record_info(
        benchmark,
        rows=len(result.rows),
        all_match_paper=result.all_match(),
    )
    print()
    print(result.render())
