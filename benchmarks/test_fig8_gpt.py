"""Bench F8: regenerate Figure 8 (GPT end-to-end training trace)."""

from conftest import assert_checks

from repro.core import run_e2e
from repro.hw.costmodel import EngineKind


def test_fig8_gpt_end_to_end(benchmark, record_info):
    result = benchmark(run_e2e, "gpt")
    assert_checks(result.checks())
    tl = result.timeline
    record_info(
        benchmark,
        step_ms=round(result.profile.total_time_ms, 1),
        mme_idle_fraction=round(result.profile.mme_idle_fraction, 3),
        tpc_utilization=round(tl.utilization(EngineKind.TPC), 3),
        peak_hbm_gib=round(result.profile.peak_hbm_bytes / (1 << 30), 2),
        oom_at_batch_128=result.oom_at_large_batch,
    )
    print()
    print(result.render(width=100))
