"""Bench: the long-sequence study (the paper's challenge #3, §3.3)."""

from conftest import assert_checks

from repro.core import run_seq_sweep


def test_long_sequence_sweep(benchmark, record_info):
    result = benchmark(run_seq_sweep, (256, 512, 1024, 2048, 4096))
    assert_checks(result.checks())
    record_info(
        benchmark,
        **{f"speedup_at_{n}": round(s, 2)
           for n, s in zip(result.seq_lens, result.speedups())},
        softmax_doubling_ratio=round(
            result.doubling_ratios(result.softmax_ms())[-1], 2
        ),
    )
    print()
    print(result.render())
