"""Bench A18: cross-backend regression gate (Gaudi vs WSE).

Two layers of defence around the backend abstraction:

* **per-backend floors** — the Fig-4 layer's achieved matmul
  throughput and wall-clock, plus the GPT/BERT training-step token
  rates, held against ``backend_thresholds.json`` for *both* backends;
  a placement or pricing regression on either side of the
  :class:`~repro.hw.backend.Backend` seam tanks these immediately;
* **Gaudi-unchanged guard** — the refactor must not move the Gaudi
  trajectory: A18's study check asserts the explicit
  ``backend="gaudi"`` compile byte-identical to the default-options
  path, and the gaudi layer total must stay inside a relative band of
  the pre-refactor seed measurement.

Every run rewrites ``BENCH_backends.json`` at the repo root, so the
cross-backend trajectory is versioned alongside the backend and
cost-model changes that move it.
"""

import json
from pathlib import Path

from conftest import assert_checks

from repro.core import run_backend_ablation
from repro.core.backend_study import (
    STUDY_BACKENDS,
    matmul_engine_tflops,
    tokens_per_second,
)
from repro.hw.backend import get_backend

THRESHOLDS = json.loads(
    (Path(__file__).parent / "backend_thresholds.json").read_text()
)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_backends.json"


def _measure() -> dict:
    study = run_backend_ablation()
    layer = {}
    training = {}
    for name in STUDY_BACKENDS:
        backend = get_backend(name)
        prof = study.profile(name)
        layer[name] = {
            "total_ms": round(prof.total_time_ms, 2),
            "matmul_tflops": round(
                matmul_engine_tflops(prof, backend), 1
            ),
        }
        training[name] = {
            model: {
                "total_ms": round(
                    study.profile(name, model).total_time_ms, 2
                ),
                "tokens_per_s": round(
                    tokens_per_second(study.profile(name, model))
                ),
            }
            for model in ("gpt", "bert")
        }
    return {
        "study": study,
        "layer": layer,
        "training": training,
        "matmul_throughput_ratio": round(
            study.matmul_throughput_ratio, 1
        ),
        "thresholds": {
            k: v for k, v in THRESHOLDS.items() if not k.startswith("_")
        },
    }


def test_backend_regression(benchmark, record_info):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    study = result.pop("study")
    assert_checks(study.checks())

    layer_bounds = THRESHOLDS["layer"]
    for name in STUDY_BACKENDS:
        measured = result["layer"][name]
        floor = layer_bounds["min_matmul_tflops"][name]
        assert measured["matmul_tflops"] >= floor, (
            f"{name} layer matmul throughput "
            f"{measured['matmul_tflops']:.1f} TFLOP/s fell below the "
            f"{floor} floor"
        )
        ceiling = layer_bounds["max_total_ms"][name]
        assert measured["total_ms"] <= ceiling, (
            f"{name} layer time {measured['total_ms']:.2f} ms exceeded "
            f"the {ceiling} ms ceiling"
        )
        for model, floors in THRESHOLDS["training"][
            "min_tokens_per_s"
        ][name].items():
            rate = result["training"][name][model]["tokens_per_s"]
            assert rate >= floors, (
                f"{name} {model} training throughput {rate:,.0f} "
                f"tokens/s fell below the {floors:,.0f} floor"
            )

    guard = THRESHOLDS["gaudi_guard"]
    seed_ms = guard["layer_total_ms"]
    band = guard["rel_band"]
    gaudi_ms = result["layer"]["gaudi"]["total_ms"]
    assert abs(gaudi_ms - seed_ms) <= band * seed_ms, (
        f"gaudi layer total {gaudi_ms:.2f} ms drifted out of the "
        f"+-{band:.0%} band around the pre-refactor seed "
        f"{seed_ms:.2f} ms — the backend refactor moved the Gaudi "
        "trajectory"
    )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    record_info(
        benchmark,
        gaudi_layer_ms=result["layer"]["gaudi"]["total_ms"],
        wse_layer_ms=result["layer"]["wse"]["total_ms"],
        gaudi_matmul_tflops=result["layer"]["gaudi"]["matmul_tflops"],
        wse_matmul_tflops=result["layer"]["wse"]["matmul_tflops"],
        matmul_throughput_ratio=result["matmul_throughput_ratio"],
        wse_gpt_tokens_per_s=result["training"]["wse"]["gpt"][
            "tokens_per_s"
        ],
    )
    print()
    print(study.render())
