"""Bench A6: software-pipelined exact softmax attention."""

from conftest import assert_checks

from repro.core import run_pipelined_attention_study
from repro.synapse import ascii_timeline


def test_ext_pipelined_attention(benchmark, record_info):
    result = benchmark(run_pipelined_attention_study)
    assert_checks(result.checks())
    record_info(
        benchmark,
        baseline_ms=round(result.baseline.total_time_ms, 2),
        pipelined_ms=round(result.pipelined.total_time_ms, 2),
        speedup=round(result.speedup, 3),
        mme_idle_before=round(result.baseline.mme_idle_fraction, 3),
        mme_idle_after=round(result.pipelined.mme_idle_fraction, 3),
    )
    print()
    print(result.render())
    print()
    print(ascii_timeline(result.pipelined.timeline, width=100))
