"""Bench: simulator-throughput regression gate (scalar vs vector).

The vectorized fluid engine exists to make sweeps affordable; this
gate keeps it honest. It executes the GPT-2 training step on the
8-card HLS-1 (the heaviest standard trace: DDP collectives + shared
fabric + per-card HBM arbiters) under both engines, asserts the
traces are byte-identical, then times both in one process as
sequential best-of-N blocks — contiguous runs keep each engine's
working set hot, where alternating engines lets the scalar pass
evict the vector loop's caches and shaves ~10% off its measured
throughput — and holds the result against
``sim_throughput_thresholds.json``:

* ``min_speedup_vs_scalar`` — the vector engine's reason to exist;
* ``baseline_vector_events_per_sec`` x (1 - ``max_regression_fraction``)
  — the absolute floor that catches a slow leak in both engines.

Every run rewrites ``BENCH_sim.json`` at the repo root with the
measured numbers, so the perf trajectory is versioned alongside the
code that produced it.
"""

import dataclasses
import json
import time
from pathlib import Path

from conftest import assert_checks  # noqa: F401  (shared harness import)

from repro.core.e2e_llm import record_training_step
from repro.hw.config import HLS1Config
from repro.hw.device import HLS1Device
from repro.synapse import GraphCompiler, default_compiler_options
from repro.synapse.runtime import HLS1Runtime

THRESHOLDS = json.loads(
    (Path(__file__).parent / "sim_throughput_thresholds.json").read_text()
)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_sim.json"


def _measure() -> dict:
    hls1 = HLS1Config()
    options = dataclasses.replace(
        default_compiler_options(), inject_collectives=True
    )
    schedule = GraphCompiler(hls1.card, options).compile(
        record_training_step("gpt").graph
    )
    system_cfg = dataclasses.replace(hls1, num_cards=8)

    def run(engine):
        return HLS1Runtime(HLS1Device(system_cfg)).execute(
            schedule, engine=engine
        )

    # correctness first (also warms both engines' prep caches): the
    # speedup only counts if the engines agree bit for bit
    scalar, vector = run("scalar"), run("vector")
    assert scalar.timeline.events == vector.timeline.events
    assert scalar.total_time_us == vector.total_time_us
    assert scalar.exposed_comm_us == vector.exposed_comm_us
    assert scalar.fabric_busy_us == vector.fabric_busy_us
    assert scalar.contention_stall_us == vector.contention_stall_us

    best = {"scalar": float("inf"), "vector": float("inf")}
    for engine in best:  # contiguous per-engine blocks (see module doc)
        for _ in range(THRESHOLDS["rounds"]):
            t0 = time.perf_counter()
            run(engine)
            best[engine] = min(best[engine], time.perf_counter() - t0)

    events = len(vector.timeline.events)
    return {
        "workload": "gpt training step, 8-card HLS-1, DDP collectives",
        "events_per_execution": events,
        "scalar": {
            "best_s": round(best["scalar"], 6),
            "events_per_sec": round(events / best["scalar"]),
        },
        "vector": {
            "best_s": round(best["vector"], 6),
            "events_per_sec": round(events / best["vector"]),
        },
        "speedup": round(best["scalar"] / best["vector"], 2),
        "traces_byte_identical": True,
        "thresholds": {
            k: v for k, v in THRESHOLDS.items() if not k.startswith("_")
        },
    }


def test_sim_throughput_regression(benchmark, record_info):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    assert result["speedup"] >= THRESHOLDS["min_speedup_vs_scalar"], (
        f"vector engine speedup {result['speedup']}x fell below the "
        f"{THRESHOLDS['min_speedup_vs_scalar']}x gate"
    )
    floor = THRESHOLDS["baseline_vector_events_per_sec"] * (
        1.0 - THRESHOLDS["max_regression_fraction"]
    )
    measured = result["vector"]["events_per_sec"]
    assert measured >= floor, (
        f"vector engine throughput {measured:,} events/s regressed "
        f">{THRESHOLDS['max_regression_fraction']:.0%} below the "
        f"{THRESHOLDS['baseline_vector_events_per_sec']:,} baseline"
    )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    record_info(
        benchmark,
        speedup_vs_scalar=result["speedup"],
        vector_events_per_sec=measured,
        scalar_events_per_sec=result["scalar"]["events_per_sec"],
        events_per_execution=result["events_per_execution"],
    )
    print()
    print(
        f"sim throughput: scalar {result['scalar']['best_s'] * 1e3:.1f} ms"
        f" -> vector {result['vector']['best_s'] * 1e3:.1f} ms"
        f" ({result['speedup']}x, {measured:,} simulated events/s)"
    )
