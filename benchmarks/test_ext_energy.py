"""Bench A8: energy per attention variant (nominal constants)."""

from conftest import assert_checks

from repro.core import run_energy_study


def test_ext_energy(benchmark, record_info):
    result = benchmark(run_energy_study)
    assert_checks(result.checks())
    record_info(
        benchmark,
        **{f"{v}_joules": round(result.joules(v), 3)
           for v in result.variants},
        linear_saving=round(
            result.joules("softmax") / result.joules("linear"), 2
        ),
    )
    print()
    print(result.render())
