"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index), asserts its shape checks, records
the headline numbers in ``extra_info`` (so they land in pytest-benchmark
output), and prints the paper-style rendering.
"""

import pytest

from repro.core.reference import ShapeCheck


def assert_checks(checks: list[ShapeCheck]) -> None:
    """Fail the benchmark if any paper shape check misses."""
    failed = [str(c) for c in checks if not c.passed]
    assert not failed, "shape checks failed:\n" + "\n".join(failed)


@pytest.fixture()
def record_info():
    """Returns a helper that stores values on the benchmark object."""

    def _record(benchmark, **values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record
