"""Bench T2: regenerate Table 2 (MME vs TPC batched matmul)."""

from conftest import assert_checks

from repro.core import run_mme_vs_tpc


def test_table2_mme_vs_tpc(benchmark, record_info):
    result = benchmark(run_mme_vs_tpc)
    assert_checks(result.checks())
    final = result.rows[-1]
    record_info(
        benchmark,
        f_mme_at_2048_tflops=round(final.f_mme_tflops, 2),
        f_tpc_at_2048_tflops=round(final.f_tpc_tflops, 2),
        speedup_at_2048=round(final.speedup, 2),
        speedup_at_128=round(result.rows[0].speedup, 2),
    )
    print()
    print(result.render())
