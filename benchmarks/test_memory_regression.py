"""Bench A14: memory-planning regression gate.

Sweeps the Fig-8/9 GPT-2 and BERT training steps across batch 8 -> 32
under the 32 GiB budget with ``memory_policy="auto"`` and holds the
planned schedules against the checked-in bounds in
``memory_thresholds.json``. A planner regression that loses the
batch-32 feasibility, re-exposes the spill DMA, or stops mixing
recompute with spill fails this gate in CI.
"""

import json
from pathlib import Path

from conftest import assert_checks

from repro.core import run_memory_ablation
from repro.util.units import GIB

THRESHOLDS = json.loads(
    (Path(__file__).parent / "memory_thresholds.json").read_text()
)


def test_memory_regression(benchmark, record_info):
    study = benchmark.pedantic(run_memory_ablation, rounds=1, iterations=1)
    assert_checks(study.checks())

    bounds = THRESHOLDS["gpt_batch32_auto"]
    wall = study.row("gpt", 32)
    assert wall.oracle_peak_bytes / GIB >= bounds["min_oracle_peak_gib"]
    assert wall.planned_peak_bytes is not None
    assert wall.planned_peak_bytes / GIB <= bounds["max_planned_peak_gib"]
    assert wall.slowdown <= bounds["max_slowdown"]
    assert wall.spill_ops >= bounds["min_spill_ops"]
    assert wall.recompute_ops >= bounds["min_recompute_ops"]

    sweep_bounds = THRESHOLDS["sweep"]
    assert all(
        r.peak_bytes / GIB <= sweep_bounds["max_peak_gib"]
        for r in study.rows
    )
    assert study.row("gpt", 8).fits_unplanned
    assert study.row("bert", 8).fits_unplanned

    record_info(
        benchmark,
        gpt32_oracle_peak_gib=round(wall.oracle_peak_bytes / GIB, 2),
        gpt32_planned_peak_gib=round(wall.planned_peak_bytes / GIB, 2),
        gpt32_slowdown=round(wall.slowdown, 3),
        gpt32_spill_ops=wall.spill_ops,
        gpt32_recompute_ops=wall.recompute_ops,
    )
    print()
    print(study.render())
