"""Bench A9: KV-cached decode — the inference-side engine inversion."""

from conftest import assert_checks

from repro.core import run_decode_study


def test_ext_decode(benchmark, record_info):
    result = benchmark(run_decode_study, (128, 512, 1024, 1536))
    assert_checks(result.checks())
    record_info(
        benchmark,
        decode_mme_tflops=round(result.mme_achieved_tflops(0), 3),
        training_mme_tflops=round(result.training_mme_tflops, 2),
        tokens_per_s_at_1024=round(result.tokens_per_second(2), 0),
        **{f"step_ms_at_{t}": round(ms, 3)
           for t, ms in zip(result.contexts, result.step_ms())},
    )
    print()
    print(result.render())
