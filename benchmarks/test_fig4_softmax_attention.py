"""Bench F4: regenerate Figure 4 (softmax-attention layer trace)."""

from conftest import assert_checks

from repro.core import profile_layer, run_attention_study
from repro.core.insights import describe_insights
from repro.hw.costmodel import EngineKind
from repro.synapse import ascii_timeline


def test_fig4_softmax_attention(benchmark, record_info):
    profile = benchmark(profile_layer, "softmax")
    study = run_attention_study()
    assert_checks([c for c in study.checks() if c.name.startswith("fig4")])
    record_info(
        benchmark,
        total_ms=round(profile.total_time_ms, 2),
        softmax_tpc_share=round(profile.softmax_tpc_share, 3),
        mme_idle_fraction=round(profile.mme_idle_fraction, 3),
        mme_gaps=len(profile.timeline.gaps(EngineKind.MME, min_dur_us=50.0)),
    )
    print()
    print(f"Figure 4 (softmax attention): total {profile.total_time_ms:.2f} ms")
    print(ascii_timeline(profile.timeline, width=100))
    print(describe_insights(profile.timeline))
