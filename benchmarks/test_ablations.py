"""Benches A1-A3: compiler/hardware ablations from DESIGN.md."""

from conftest import assert_checks

from repro.core import (
    run_fusion_ablation,
    run_hbm_contention_ablation,
    run_reorder_ablation,
    run_tpc_core_sweep,
)


def test_ablation_reorder(benchmark, record_info):
    """A1: what if the GraphCompiler detected op independence (§3.3)?"""
    result = benchmark(run_reorder_ablation, "performer")
    assert_checks(result.checks())
    record_info(
        benchmark,
        in_order_ms=round(result.in_order.total_time_ms, 2),
        reordered_ms=round(result.reordered.total_time_ms, 2),
        improvement=round(result.improvement, 3),
    )
    print()
    print(result.render())


def test_ablation_fusion(benchmark, record_info):
    """A2: elementwise fusion on/off."""
    result = benchmark(run_fusion_ablation, "softmax")
    assert_checks(result.checks())
    record_info(
        benchmark,
        fused_ms=round(result.fused.total_time_ms, 2),
        unfused_ms=round(result.unfused.total_time_ms, 2),
        speedup=round(result.speedup, 3),
    )
    print()
    print(result.render())


def test_ablation_hbm_contention(benchmark, record_info):
    """A11: shared-HBM bandwidth arbitration on/off."""
    result = benchmark(run_hbm_contention_ablation)
    assert_checks(result.checks())
    worst = max(result.rows, key=lambda r: r.slowdown)
    record_info(
        benchmark,
        worst_workload=worst.name,
        worst_slowdown=round(worst.slowdown, 4),
        gpt_stall_us=round(
            result.row("GPT train step (fig8)")
            .contended.contention_stall_us, 1,
        ),
    )
    print()
    print(result.render())


def test_ablation_tpc_cores(benchmark, record_info):
    """A3: softmax-layer time vs TPC cluster width."""
    result = benchmark(run_tpc_core_sweep, (2, 4, 8, 16))
    assert_checks(result.checks())
    record_info(
        benchmark,
        **{f"cores_{c}_ms": round(t, 2)
           for c, t in zip(result.core_counts, result.total_ms)},
    )
    print()
    print(result.render())
