"""Bench F6: regenerate Figure 6 (Performer/FAVOR trace, ~2x, MME gap)."""

from conftest import assert_checks

from repro.core import profile_layer, run_attention_study
from repro.hw.costmodel import EngineKind
from repro.synapse import ascii_timeline, gap_report


def test_fig6_performer(benchmark, record_info):
    profile = benchmark(profile_layer, "performer")
    study = run_attention_study()
    assert_checks([c for c in study.checks() if c.name.startswith("fig6")])
    record_info(
        benchmark,
        total_ms=round(profile.total_time_ms, 2),
        paper_total_ms=80.0,
        speedup_over_softmax=round(study.performer_speedup, 2),
        paper_speedup=2.0,
        mme_idle_fraction=round(profile.mme_idle_fraction, 3),
    )
    print()
    print(
        f"Figure 6 (Performer): total {profile.total_time_ms:.2f} ms "
        f"(paper ~80 ms), speedup {study.performer_speedup:.1f}x (paper ~2x)"
    )
    print(ascii_timeline(profile.timeline, width=100))
    print(gap_report(profile.timeline, EngineKind.MME, min_dur_us=100.0))
