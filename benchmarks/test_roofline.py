"""Bench: roofline analysis of the Figure 4 layer schedule.

Not a paper artifact per se, but the quantitative backbone of its
narrative: attention matmuls ride the MME roof, softmax's elementwise
passes hang off the bandwidth slope, and its reductions sit far below
even that.
"""

from repro import ht
from repro.core import roofline_of_schedule
from repro.hw.costmodel import EngineKind
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import GraphCompiler, memory_timeline


def build_fig4_schedule():
    cfg = paper_layer_config("softmax")
    layer = TransformerLayer(cfg, materialize=False)
    with ht.record("fig4", mode="symbolic") as rec:
        layer(ht.input_tensor((128, 2048, cfg.d_model)))
    return GraphCompiler().compile(rec.graph)


def test_roofline_fig4(benchmark, record_info):
    schedule = build_fig4_schedule()
    report = benchmark(roofline_of_schedule, schedule)

    mme_points = report.by_engine(EngineKind.MME)
    assert mme_points, "no MME ops in the Fig 4 schedule"
    balance = report._balance_intensity()
    assert all(p.intensity > balance for p in mme_points), \
        "attention matmuls must be compute-bound"
    tpc_points = report.by_engine(EngineKind.TPC)
    assert any(p.intensity < balance for p in tpc_points), \
        "softmax passes must include memory-bound work"

    record_info(
        benchmark,
        mme_ops=len(mme_points),
        tpc_ops=len(tpc_points),
        balance_intensity_flop_per_byte=round(balance, 2),
    )
    print()
    print(report.render(top=12))
    print()
    print(memory_timeline(schedule).sparkline(
        width=100, capacity_bytes=report.config.hbm.capacity_bytes
    ))
