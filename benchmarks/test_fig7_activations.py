"""Bench F7: regenerate Figure 7 (activation functions in NLP)."""

from conftest import assert_checks

from repro.core import run_activation_study
from repro.util.tabulate import render_table


def test_fig7_activations(benchmark, record_info):
    result = benchmark(run_activation_study)
    assert_checks(result.checks())
    record_info(
        benchmark,
        **{f"{act}_ms": round(ms, 2) for act, ms, _ in result.rows()},
    )
    print()
    print(render_table(
        ["activation", "measured (ms)", "paper (ms)"],
        result.rows(),
        title="Figure 7: Transformer total run time per activation",
    ))
    print()
    print(result.render(width=100))
