"""Benches A4/A5: the multi-card scaling and chunked-attention extensions."""

from conftest import assert_checks

from repro.core import run_chunked_attention_study, run_scaling_study


def test_ext_hls1_scaling(benchmark, record_info):
    """A4: weak-scaling GPT training across 1..8 Gaudis of an HLS-1."""
    result = benchmark(run_scaling_study, "gpt")
    assert_checks(result.checks())
    record_info(
        benchmark,
        efficiency_8_cards=round(result.rows[-1].efficiency, 3),
        allreduce_8_cards_ms=round(result.rows[-1].allreduce_ms, 2),
        gradient_mib=round(result.gradient_bytes / (1 << 20), 1),
    )
    print()
    print(result.render())


def test_ext_chunked_attention(benchmark, record_info):
    """A5: the §5 future-work direction — Gaudi-tailored local attention."""
    result = benchmark(run_chunked_attention_study, (512, 1024, 2048, 4096))
    assert_checks(result.checks())
    record_info(
        benchmark,
        **{f"speedup_at_{n}": round(s, 2)
           for n, s in zip(result.seq_lens, result.speedups())},
    )
    print()
    print(result.render())
