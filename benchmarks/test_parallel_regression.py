"""Bench A16: multi-box parallelism regression gate.

Replays the reference A16 study — GPT-2 and BERT training steps priced
over the (tp, pp, dp) layout grid at 8/32/64 cards in 8-card boxes —
and holds the planner and the two-tier fabric against
``parallel_thresholds.json``:

* best-layout scaling-efficiency floors at 8/32/64 cards (the 32- and
  64-card populations span the inter-box Ethernet tier);
* the auto-layout pick stays within 5% of the exhaustive grid optimum
  at every card count;
* best-layout throughput grows monotonically with cards.

Every run rewrites ``BENCH_parallel.json`` at the repo root, so the
scaling-efficiency trajectory is versioned alongside the fabric and
planner changes that move it.
"""

import json
import time
from pathlib import Path

from conftest import assert_checks  # noqa: F401  (shared harness import)

from repro.core.auto_layout import run_parallel_study

THRESHOLDS = json.loads(
    (Path(__file__).parent / "parallel_thresholds.json").read_text()
)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_parallel.json"


def _measure() -> dict:
    ref = THRESHOLDS["reference"]
    t0 = time.perf_counter()
    study = run_parallel_study(
        card_counts=tuple(ref["card_counts"]),
        batch=ref["batch"],
        seq_len=ref["seq_len"],
        cards_per_box=ref["cards_per_box"],
    )
    wall_s = round(time.perf_counter() - t0, 3)

    models = sorted({r.model_name for r in study.rows})
    out = {
        "workload": f"{'/'.join(models)} training steps, batch "
                    f"{ref['batch']}, seq {ref['seq_len']}, layout grid "
                    f"at {ref['card_counts']} cards in "
                    f"{ref['cards_per_box']}-card boxes",
        "sim_wall_s": wall_s,
        "models": {},
        "thresholds": {
            k: v for k, v in THRESHOLDS.items() if not k.startswith("_")
        },
    }
    for model in models:
        per_count = {}
        for cards in ref["card_counts"]:
            rows = [
                r for r in study.rows
                if r.model_name == model and r.num_cards == cards
                and r.feasible
            ]
            best = max(rows, key=lambda r: r.samples_per_s)
            picked = next(r for r in rows if r.picked)
            per_count[str(cards)] = {
                "picked_layout": picked.layout,
                "picked_samples_per_s": round(picked.samples_per_s, 1),
                "best_samples_per_s": round(best.samples_per_s, 1),
                "pick_ratio": round(
                    picked.samples_per_s / best.samples_per_s, 4
                ),
                "efficiency": round(picked.efficiency, 4),
            }
        out["models"][model] = per_count
    return out


def test_parallel_regression(benchmark, record_info):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    ref = THRESHOLDS["reference"]
    eff = THRESHOLDS["efficiency"]
    planner = THRESHOLDS["planner"]

    for model, per_count in result["models"].items():
        for cards in ref["card_counts"]:
            m = per_count[str(cards)]
            floor = eff[f"min_at_{cards}_cards"]
            assert m["efficiency"] >= floor, (
                f"{model} best-layout efficiency {m['efficiency']:.1%} "
                f"at {cards} cards fell below the {floor:.0%} floor"
            )
            assert m["pick_ratio"] >= planner["min_pick_ratio"], (
                f"{model} auto-layout pick reaches only "
                f"{m['pick_ratio']:.1%} of the grid optimum at "
                f"{cards} cards (gate: {planner['min_pick_ratio']:.0%})"
            )
        thr = [
            per_count[str(c)]["picked_samples_per_s"]
            for c in ref["card_counts"]
        ]
        assert thr == sorted(thr), (
            f"{model} best-layout throughput is not monotone in "
            f"cards: {thr}"
        )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    gpt = result["models"].get("gpt", {})
    top = gpt.get(str(ref["card_counts"][-1]), {})
    record_info(
        benchmark,
        sim_wall_s=result["sim_wall_s"],
        gpt_top_layout=top.get("picked_layout"),
        gpt_top_efficiency=top.get("efficiency"),
        gpt_top_samples_per_s=top.get("picked_samples_per_s"),
    )
    print()
    for model, per_count in sorted(result["models"].items()):
        curve = ", ".join(
            f"{c}:{per_count[str(c)]['efficiency']:.1%}"
            for c in ref["card_counts"]
        )
        top = per_count[str(ref["card_counts"][-1])]
        print(f"parallel [{model}]: efficiency {curve}; "
              f"{top['picked_layout']} picked at "
              f"{ref['card_counts'][-1]} cards "
              f"({top['picked_samples_per_s']:,.0f} samples/s)")
