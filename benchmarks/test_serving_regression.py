"""Bench A15: serving-simulator regression gate.

Replays the reference serving scenario — 10,000 Poisson arrivals at
the knee rate under both batching policies — and holds the simulated
metrics against ``serving_thresholds.json``:

* continuous batching's absolute floor (min tokens/s, max p99 TTFT);
* the policy gap (continuous must beat static on p99 TTFT by a wide
  margin at parity-or-better throughput);
* the geometry-memo replay fraction (per-step compile cost ~ zero).

Every run rewrites ``BENCH_serving.json`` at the repo root, so the
serving-metric trajectory is versioned alongside the scheduler and
cost-model changes that move it.
"""

import json
import time
from pathlib import Path

from conftest import assert_checks  # noqa: F401  (shared harness import)

from repro.core.serving import ServingPoint, ServingSimulator, \
    generate_requests
from repro.synapse.serving import ServingRuntime

THRESHOLDS = json.loads(
    (Path(__file__).parent / "serving_thresholds.json").read_text()
)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_serving.json"


def _measure() -> dict:
    ref = THRESHOLDS["reference"]
    runtime = ServingRuntime()
    sim = ServingSimulator(runtime, max_batch=ref["max_batch"])
    trace = generate_requests(
        ref["num_requests"], ref["rate_per_s"], seed=ref["seed"]
    )
    out = {}
    for policy in ("continuous", "static"):
        t0 = time.perf_counter()
        out[policy] = sim.run(trace, policy).metrics()
        out[policy]["sim_wall_s"] = round(time.perf_counter() - t0, 3)
    return {
        "workload": f"{ref['num_requests']} Poisson arrivals at "
                    f"{ref['rate_per_s']} req/s, GPT decode, batch "
                    f"{ref['max_batch']}",
        **out,
        "replay_fraction": round(runtime.replay_fraction, 6),
        "measured_geometries": runtime.measured,
        "thresholds": {
            k: v for k, v in THRESHOLDS.items() if not k.startswith("_")
        },
    }


def test_serving_regression(benchmark, record_info):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cont, static = result["continuous"], result["static"]
    ref = THRESHOLDS["reference"]
    gap = THRESHOLDS["policy_gap"]

    assert cont["tokens_per_s"] >= ref["min_tokens_per_s"], (
        f"continuous throughput {cont['tokens_per_s']:,.0f} tokens/s "
        f"fell below the {ref['min_tokens_per_s']:,.0f} floor"
    )
    assert cont["ttft_p99_ms"] <= ref["max_ttft_p99_ms"], (
        f"continuous p99 TTFT {cont['ttft_p99_ms']:.1f} ms exceeded "
        f"the {ref['max_ttft_p99_ms']:.0f} ms ceiling"
    )
    ratio = static["ttft_p99_ms"] / cont["ttft_p99_ms"]
    assert ratio >= gap["min_p99_ttft_ratio"], (
        f"continuous beats static on p99 TTFT by only {ratio:.1f}x "
        f"(gate: {gap['min_p99_ttft_ratio']}x)"
    )
    assert (
        cont["tokens_per_s"]
        >= static["tokens_per_s"] * gap["min_throughput_ratio"]
    ), "continuous batching lost throughput parity with static"
    assert (
        result["replay_fraction"]
        >= THRESHOLDS["replay"]["min_replay_fraction"]
    ), "step-cost lookups stopped replaying the geometry memo"
    # conservation on the full-size trace
    for m in (cont, static):
        assert (
            m["completed"] + m["truncated"] + m["rejected"]
            == ref["num_requests"]
        )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    record_info(
        benchmark,
        continuous_tokens_per_s=cont["tokens_per_s"],
        continuous_ttft_p99_ms=cont["ttft_p99_ms"],
        static_ttft_p99_ms=static["ttft_p99_ms"],
        p99_ttft_ratio=round(ratio, 1),
        replay_fraction=result["replay_fraction"],
    )
    print()
    print(
        f"serving: continuous {cont['tokens_per_s']:,.0f} tokens/s, "
        f"p99 TTFT {cont['ttft_p99_ms']:.1f} ms vs static "
        f"{static['ttft_p99_ms']:.1f} ms ({ratio:.0f}x), "
        f"{result['measured_geometries']} geometries compiled for "
        f"{cont['decode_steps'] + static['decode_steps']:,} decode steps"
    )
