"""Bench A17: attention-kernel-pack regression gate.

Two layers of defence around the GFormer-style kernel pack:

* **kernel tier** — functional :class:`TPCSimulator` launches of
  ``fused_softmax``, ``windowed_attention`` and ``flash_attention`` at a
  small shape, holding each kernel's sustained TFLOP/s against the
  floors in ``kernel_thresholds.json`` (an instruction-stream or
  index-space regression tanks these immediately);
* **layer tier** — the full A17 ablation at the paper's shapes,
  asserting its shape checks plus absolute bounds on the flash layer
  time and the exposed-softmax times under the fused and flash
  lowerings.

Every run rewrites ``BENCH_kernels.json`` at the repo root, so the
kernel-pack trajectory is versioned alongside the lowering-pass and
cost-model changes that move it.
"""

import json
from pathlib import Path

import numpy as np

from conftest import assert_checks

from repro.core import run_kernel_pack_ablation
from repro.core.kernel_study import (
    exposed_softmax_tpc_us,
    score_matrix_hbm_bytes,
)
from repro.hw.config import TPCClusterConfig
from repro.hw.dtypes import DType
from repro.tpc.kernels import REGISTRY
from repro.tpc.simulator import TPCSimulator

THRESHOLDS = json.loads(
    (Path(__file__).parent / "kernel_thresholds.json").read_text()
)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_kernels.json"


def _measure_kernels() -> dict:
    """Launch each pack kernel functionally and report sustained rates."""
    shapes = THRESHOLDS["kernels"]["shapes"]
    batch, seq = shapes["batch"], shapes["seq_len"]
    dim, window = shapes["head_dim"], shapes["window"]
    rng = np.random.default_rng(0)
    sim = TPCSimulator(TPCClusterConfig(), DType.BF16)

    x = rng.standard_normal((batch, seq, seq)).astype(np.float32)
    q = rng.standard_normal((batch, seq, dim)).astype(np.float32)
    k = rng.standard_normal((batch, seq, dim)).astype(np.float32)
    v = rng.standard_normal((batch, seq, dim)).astype(np.float32)
    launches = {
        "fused_softmax": sim.launch(
            REGISTRY.create("fused_softmax"), {"x": x}
        ),
        "windowed_attention": sim.launch(
            REGISTRY.create("windowed_attention", window=window),
            {"q": q, "k": k, "v": v},
        ),
        "flash_attention": sim.launch(
            REGISTRY.create("flash_attention"), {"q": q, "k": k, "v": v}
        ),
    }
    return {
        name: {
            "tflops": round(r.achieved_tflops, 4),
            "time_us": round(r.time_us, 2),
            "balance": round(r.balance, 3),
        }
        for name, r in launches.items()
    }


def _measure() -> dict:
    kernels = _measure_kernels()
    study = run_kernel_pack_ablation()
    naive = study.profile("naive")
    fused = study.profile("fused")
    flash = study.profile("flash")
    return {
        "study": study,
        "kernels": kernels,
        "softmax_layer": {
            "naive_total_ms": round(naive.total_time_ms, 2),
            "naive_exposed_ms": round(
                exposed_softmax_tpc_us(naive) / 1e3, 2
            ),
            "fused_exposed_ms": round(
                exposed_softmax_tpc_us(fused) / 1e3, 2
            ),
            "flash_total_ms": round(flash.total_time_ms, 2),
            "flash_exposed_ms": round(
                exposed_softmax_tpc_us(flash) / 1e3, 2
            ),
            "flash_naive_ratio": round(study.flash_layer_ratio, 3),
            "flash_score_hbm_bytes": score_matrix_hbm_bytes(flash),
            "score_traffic_ratio": round(study.score_traffic_ratio, 1),
        },
        "thresholds": {
            k: v for k, v in THRESHOLDS.items() if not k.startswith("_")
        },
    }


def test_kernel_regression(benchmark, record_info):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    study = result.pop("study")
    assert_checks(study.checks())

    floors = THRESHOLDS["kernels"]["min_tflops"]
    for name, floor in floors.items():
        measured = result["kernels"][name]["tflops"]
        assert measured >= floor, (
            f"{name} sustained {measured:.3f} TFLOP/s, below the "
            f"{floor} floor"
        )

    layer = result["softmax_layer"]
    bounds = THRESHOLDS["softmax_layer"]
    assert layer["flash_total_ms"] <= bounds["max_flash_total_ms"], (
        f"flash layer time {layer['flash_total_ms']:.1f} ms exceeded "
        f"the {bounds['max_flash_total_ms']:.0f} ms ceiling"
    )
    assert layer["flash_naive_ratio"] <= bounds["max_flash_naive_ratio"], (
        f"flash/naive ratio {layer['flash_naive_ratio']:.2f} exceeded "
        f"{bounds['max_flash_naive_ratio']:.2f} — the kernel-side win "
        "shrank below the paper-claim bar"
    )
    assert layer["fused_exposed_ms"] <= bounds["max_fused_exposed_ms"], (
        "fused lowering stopped hiding the softmax exponential: "
        f"{layer['fused_exposed_ms']:.1f} ms exposed"
    )
    assert layer["flash_exposed_ms"] <= bounds["max_flash_exposed_ms"], (
        "flash lowering re-exposed softmax TPC time: "
        f"{layer['flash_exposed_ms']:.1f} ms"
    )
    assert layer["flash_score_hbm_bytes"] == 0, (
        "flash schedule moved score-matrix bytes through HBM"
    )

    BENCH_PATH.write_text(json.dumps(result, indent=2) + "\n")
    record_info(
        benchmark,
        flash_attention_tflops=result["kernels"]["flash_attention"][
            "tflops"
        ],
        windowed_attention_tflops=result["kernels"]["windowed_attention"][
            "tflops"
        ],
        fused_softmax_tflops=result["kernels"]["fused_softmax"]["tflops"],
        flash_total_ms=layer["flash_total_ms"],
        flash_naive_ratio=layer["flash_naive_ratio"],
        fused_exposed_ms=layer["fused_exposed_ms"],
    )
    print()
    print(study.render())
