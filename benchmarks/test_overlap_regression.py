"""Bench A13: overlap-scheduler regression gate.

Profiles the Fig. 4 softmax layer with the full overlap machinery
(lookahead scheduler + TPC slicing) and the Fig. 6 Performer layer
under plain lookahead, then holds both against the checked-in bounds
in ``overlap_thresholds.json``. A scheduler or slicing regression that
reopens the MME bubble fails this gate in CI.
"""

import json
from pathlib import Path

from conftest import assert_checks

from repro.core import run_overlap_scheduler_ablation
from repro.core.overlap_study import exposed_tpc_us
from repro.hw.costmodel import EngineKind

THRESHOLDS = json.loads(
    (Path(__file__).parent / "overlap_thresholds.json").read_text()
)


def test_overlap_regression(benchmark, record_info):
    study = benchmark.pedantic(
        run_overlap_scheduler_ablation, rounds=1, iterations=1
    )
    assert_checks(study.checks())

    bounds = THRESHOLDS["softmax_lookahead_slicing"]
    sliced = study.profiles["softmax"]["lookahead+slicing"]
    idle_ms = study.mme_idle_us("softmax", "lookahead+slicing") / 1000.0
    idle_frac = sliced.idle_fraction(EngineKind.MME, until="last_compute")
    assert sliced.total_time_ms <= bounds["max_total_ms"]
    assert idle_ms <= bounds["max_mme_idle_ms"]
    assert idle_frac <= bounds["max_mme_idle_fraction"]
    assert study.idle_reduction >= bounds["min_idle_reduction_vs_reorder"]

    perf_bounds = THRESHOLDS["performer_lookahead"]
    exposed_ms = exposed_tpc_us(
        study.profiles["performer"]["lookahead"], "exp"
    ) / 1000.0
    assert exposed_ms <= perf_bounds["max_exposed_exp_ms"]

    record_info(
        benchmark,
        softmax_total_ms=round(sliced.total_time_ms, 2),
        softmax_mme_idle_ms=round(idle_ms, 2),
        softmax_mme_idle_fraction=round(idle_frac, 3),
        idle_reduction_vs_reorder=round(study.idle_reduction, 3),
        performer_exposed_exp_ms=round(exposed_ms, 3),
    )
    print()
    print(study.render())
