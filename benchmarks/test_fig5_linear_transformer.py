"""Bench F5: regenerate Figure 5 (Linear Transformer trace, ~6x)."""

from conftest import assert_checks

from repro.core import profile_layer, run_attention_study
from repro.synapse import ascii_timeline


def test_fig5_linear_transformer(benchmark, record_info):
    profile = benchmark(profile_layer, "linear")
    study = run_attention_study()
    assert_checks([c for c in study.checks() if c.name.startswith("fig5")])
    record_info(
        benchmark,
        total_ms=round(profile.total_time_ms, 2),
        paper_total_ms=30.0,
        speedup_over_softmax=round(study.linear_speedup, 2),
        paper_speedup=6.0,
        mme_idle_fraction=round(profile.mme_idle_fraction, 3),
    )
    print()
    print(
        f"Figure 5 (Linear Transformer): total {profile.total_time_ms:.2f} ms "
        f"(paper ~30 ms), speedup {study.linear_speedup:.1f}x (paper ~6x)"
    )
    print(ascii_timeline(profile.timeline, width=100))
