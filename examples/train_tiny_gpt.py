#!/usr/bin/env python3
"""Actually train a tiny GPT on the synthetic BookCorpus — concretely.

Everything in this repository executes for real at small scale: this
example builds the synthetic corpus, trains a word tokenizer, packs
causal-LM batches, and runs SGD steps on a two-layer GPT in concrete
mode (numpy values). The loss falls, and the final recorded step is
profiled on the simulated Gaudi so you can see where a *real* training
iteration spends its engines.

Run:  python examples/train_tiny_gpt.py
"""

import numpy as np

from repro import ht
from repro.data import (
    CorpusConfig,
    SyntheticBookCorpus,
    WordTokenizer,
    make_clm_batch,
    pack_blocks,
)
from repro.ht import functional as F
from repro.models import GPT2LMHeadModel, tiny_gpt_config
from repro.synapse import SynapseProfiler, ascii_timeline

STEPS = 20
BATCH, SEQ = 8, 32


def main() -> None:
    corpus = SyntheticBookCorpus(CorpusConfig(
        vocab_words=300, num_books=2, sentences_per_book=100,
    ))
    tokenizer = WordTokenizer.train(corpus, max_vocab=256)
    stream = tokenizer.encode(" ".join(corpus.token_stream()))
    print(f"corpus: {len(stream)} tokens, vocab {tokenizer.vocab_size}")

    config = tiny_gpt_config(vocab_size=tokenizer.vocab_size)
    model = GPT2LMHeadModel(config, rng=np.random.default_rng(0))
    opt = ht.SGD(model.parameters(), lr=0.3, momentum=0.9)
    print(f"model: {model.num_parameters():,} parameters")

    rng = np.random.default_rng(1)
    last_graph = None
    for step in range(STEPS):
        offset = int(rng.integers(0, max(1, len(stream) - BATCH * SEQ)))
        blocks = pack_blocks(stream[offset:], SEQ, BATCH)
        batch = make_clm_batch(blocks, tokenizer.vocab_size)
        with ht.record(f"step{step}") as rec:
            loss = model.loss(
                ht.tensor(batch.input_ids), ht.tensor(batch.target_onehot)
            )
            loss.backward()
            opt.step()
            opt.zero_grad()
        last_graph = rec.graph
        if step % 5 == 0 or step == STEPS - 1:
            print(f"step {step:3d}  loss {loss.item():.4f}")

    print()
    print("profiling the final recorded training step on the simulator:")
    profile = SynapseProfiler().profile(last_graph)
    print(profile.summary())
    print(ascii_timeline(profile.timeline, width=100))


if __name__ == "__main__":
    main()
