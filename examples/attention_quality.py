#!/usr/bin/env python3
"""Speed is not free: train each attention variant and compare quality.

The paper notes that efficiency techniques "often introduce trade-offs
in terms of model accuracy" (§1). This example trains the same tiny
Transformer with softmax, linear, Performer and chunked attention on a
synthetic sequence-recall task, then puts the quality numbers next to
the simulated Gaudi speed numbers — the full trade-off table a
practitioner actually needs.

Run:  python examples/attention_quality.py
"""

import numpy as np

from repro import ht
from repro.ht import functional as F
from repro.models import (
    AttentionConfig,
    LayerConfig,
    TransformerLayer,
    paper_layer_config,
)
from repro.synapse import SynapseProfiler
from repro.util.tabulate import render_table

VARIANTS = ("softmax", "linear", "performer", "chunked")
STEPS = 60
BATCH, SEQ, DIM = 16, 8, 8


def make_task(rng):
    """Regression task with long-range structure: predict a mix of the
    sequence mean and each position's value."""
    x = rng.normal(size=(BATCH, SEQ, DIM)).astype(np.float32)
    y = 0.5 * x + 0.5 * x.mean(axis=1, keepdims=True)
    return x, y


def train_variant(kind: str) -> float:
    rng = np.random.default_rng(0)
    cfg = LayerConfig(
        attention=AttentionConfig(
            num_heads=2, head_dim=DIM // 2, kind=kind, chunk_size=4,
            performer_features=16,
        ),
        ffn_mult=2,
    )
    layer = TransformerLayer(cfg, rng=np.random.default_rng(1))
    head = ht.Linear(DIM, DIM, rng=np.random.default_rng(2), name="head")
    params = layer.parameters() + head.parameters()
    opt = ht.SGD(params, lr=0.05, momentum=0.9)
    final = None
    for step in range(STEPS):
        x_np, y_np = make_task(rng)
        with ht.record():
            pred = head(layer(ht.tensor(x_np)))
            loss = F.mean(F.square(F.sub(pred, ht.tensor(y_np))))
            loss.backward()
            opt.step()
            opt.zero_grad()
            final = loss.item()
    return final


def profiled_ms(kind: str) -> float:
    cfg = paper_layer_config(kind, chunk_size=256)
    layer = TransformerLayer(cfg, materialize=False)
    with ht.record(mode="symbolic") as rec:
        layer(ht.input_tensor((128, 2048, cfg.d_model)))
    return SynapseProfiler().profile(rec.graph).total_time_ms


def main() -> None:
    rows = []
    base_time = None
    for kind in VARIANTS:
        loss = train_variant(kind)
        ms = profiled_ms(kind)
        base_time = base_time or ms
        rows.append((kind, f"{loss:.4f}", f"{ms:.1f}",
                     f"{base_time / ms:.1f}x"))
    print(render_table(
        ["attention", "final loss (quality)", "paper-scale ms (speed)",
         "speedup"],
        rows,
        title=f"Quality vs speed after {STEPS} steps on the recall task",
    ))
    print()
    print("Reading: the linearized variants trade a little task loss for")
    print("large simulated-Gaudi speedups; chunked attention loses the")
    print("global context the task needs — exactly the accuracy/efficiency")
    print("trade-off the paper's introduction warns about.")


if __name__ == "__main__":
    main()
