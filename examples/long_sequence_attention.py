#!/usr/bin/env python3
"""Long-sequence attention comparison — the paper's motivating workload.

Sweeps sequence length for all four attention variants (softmax,
linear, Performer/FAVOR, and the chunked extension) at the §3.3 layer
shapes and prints who wins where: softmax's quadratic TPC softmax
blows up with N, the linearized variants stay MME-bound, and chunked
attention bounds the softmax cost by its window.

Run:  python examples/long_sequence_attention.py
"""

from repro import ht
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import SynapseProfiler
from repro.util.tabulate import render_table

SEQ_LENS = (256, 512, 1024, 2048, 4096)
KINDS = ("softmax", "linear", "performer", "chunked")
BATCH = 32  # smaller than the paper's 128 so softmax@4096 fits in HBM


def profile_ms(kind: str, seq_len: int) -> tuple[float, float]:
    """(total ms, MME idle fraction) for one variant and length."""
    cfg = paper_layer_config(kind, chunk_size=256)
    layer = TransformerLayer(cfg, materialize=False)
    with ht.record(f"{kind}-{seq_len}", mode="symbolic") as rec:
        layer(ht.input_tensor((BATCH, seq_len, cfg.d_model)))
    res = SynapseProfiler().profile(rec.graph)
    return res.total_time_ms, res.mme_idle_fraction


def main() -> None:
    rows = []
    for n in SEQ_LENS:
        times = {kind: profile_ms(kind, n) for kind in KINDS}
        best = min(times, key=lambda k: times[k][0])
        rows.append((
            n,
            *(f"{times[k][0]:.1f}" for k in KINDS),
            best,
            f"{times['softmax'][0] / times['linear'][0]:.1f}x",
        ))
    print(render_table(
        ["seq len", "softmax ms", "linear ms", "performer ms", "chunked ms",
         "winner", "linear speedup"],
        rows,
        title=f"Attention variants vs sequence length (batch {BATCH}, "
              "6 heads x 64)",
    ))
    print()
    print("Observations (cf. §3.3):")
    print(" - softmax attention degrades quadratically: its softmax is")
    print("   TPC-bound and the TPC is ~7x slower than the MME (Table 2);")
    print(" - linearized attention keeps nearly all work on the MME and")
    print("   wins by a growing factor at long sequence lengths;")
    print(" - chunked (local) attention — the paper's future-work item —")
    print("   caps the softmax cost at the window size.")


if __name__ == "__main__":
    main()
