#!/usr/bin/env python3
"""Roofline + HBM-occupancy analysis of the Figure 4 layer.

Shows the quantitative backbone of the paper's narrative: which ops
ride the MME's flat roof, which hang off the bandwidth slope, where
the reductions sit (far below either), how the attention matrix pushes
the HBM occupancy curve, and how many joules the layer costs.

Run:  python examples/roofline_and_memory.py
"""

from repro import ht
from repro.core import roofline_of_schedule
from repro.hw import EngineKind, schedule_energy
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import (
    GraphCompiler,
    Runtime,
    critical_path,
    memory_timeline,
)
from repro.hw.device import GaudiDevice


def main() -> None:
    config = paper_layer_config("softmax")
    layer = TransformerLayer(config, materialize=False)
    with ht.record("fig4-layer", mode="symbolic") as rec:
        layer(ht.input_tensor((128, 2048, config.d_model), name="x"))

    schedule = GraphCompiler().compile(rec.graph)
    device = GaudiDevice()
    result = Runtime(device).execute(schedule)

    print("== roofline ==")
    report = roofline_of_schedule(schedule)
    print(report.render(top=14))
    balance = report._balance_intensity()
    cb = len(report.compute_bound())
    mb = len(report.memory_bound())
    print(f"\nmachine balance point: {balance:.1f} FLOP/B; "
          f"{cb} compute-bound ops, {mb} memory-bound ops")

    print("\n== HBM occupancy over the run ==")
    completion = [0.0] * len(schedule.ops)
    for idx, ev in zip(result.issue_order, result.timeline.events):
        completion[idx] = ev.end_us
    mem = memory_timeline(schedule, completion)
    print(mem.sparkline(width=100,
                        capacity_bytes=device.config.hbm.capacity_bytes))
    print(f"peak/capacity: "
          f"{mem.utilization_of(device.config.hbm.capacity_bytes):.1%}")

    print("\n== critical path ==")
    cp = critical_path(schedule, device.cost_model)
    print(cp.render(top=8))
    print(f"data path explains {cp.share_of(result.total_time_us):.0%} "
          "of the executed makespan")

    print("\n== energy (nominal constants) ==")
    energy = schedule_energy(schedule, result.total_time_us)
    print(
        f"total {energy.total_joules:.2f} J "
        f"(mme {energy.mme_joules:.2f}, tpc {energy.tpc_joules:.2f}, "
        f"hbm {energy.hbm_joules:.2f}, static {energy.static_joules:.2f}) "
        f"— the idle machine dominates while the MME waits "
        f"({result.timeline.idle_fraction(EngineKind.MME):.0%} idle)"
    )


if __name__ == "__main__":
    main()
