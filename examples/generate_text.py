#!/usr/bin/env python3
"""Train a tiny GPT on the synthetic corpus, then generate text.

Goes one step beyond the paper's training-only scope: after a short
concrete-mode training run, the model continues prompts from its
corpus (greedy and sampled), and per-token perplexity shows the
training actually taught it the corpus statistics.

Run:  python examples/generate_text.py
"""

import time

import numpy as np

from repro import ht
from repro.data import (
    CorpusConfig,
    SyntheticBookCorpus,
    WordTokenizer,
    make_clm_batch,
    pack_blocks,
)
from repro.models import GPT2LMHeadModel, generate, perplexity, tiny_gpt_config

STEPS = 40
BATCH, SEQ = 8, 24


def main() -> None:
    corpus = SyntheticBookCorpus(CorpusConfig(
        vocab_words=120, num_books=2, sentences_per_book=150,
    ))
    tokenizer = WordTokenizer.train(corpus, max_vocab=128)
    stream = tokenizer.encode(" ".join(corpus.token_stream()))

    model = GPT2LMHeadModel(
        tiny_gpt_config(vocab_size=tokenizer.vocab_size),
        rng=np.random.default_rng(0),
    )
    opt = ht.SGD(model.parameters(), lr=0.5, momentum=0.9)

    eval_ids = pack_blocks(stream, SEQ, 4)
    print(f"perplexity before training: {perplexity(model, eval_ids):8.2f}")

    rng = np.random.default_rng(1)
    for step in range(STEPS):
        offset = int(rng.integers(0, max(1, len(stream) - BATCH * SEQ)))
        batch = make_clm_batch(
            pack_blocks(stream[offset:], SEQ, BATCH), tokenizer.vocab_size
        )
        with ht.record():
            loss = model.loss(
                ht.tensor(batch.input_ids), ht.tensor(batch.target_onehot)
            )
            loss.backward()
            opt.step()
            opt.zero_grad()
    print(f"perplexity after  training: {perplexity(model, eval_ids):8.2f}")
    print()

    prompt_text = " ".join(corpus.books()[0][0].split()[:4])
    prompt = tokenizer.encode(prompt_text)
    greedy = generate(model, prompt, max_new_tokens=12)
    sampled = generate(model, prompt, max_new_tokens=12, temperature=0.8,
                       rng=np.random.default_rng(2))
    print(f"prompt : {prompt_text}")
    print(f"greedy : {tokenizer.decode(greedy)}")
    print(f"sampled: {tokenizer.decode(sampled)}")
    print()

    # KV-cached decode vs the naive full re-forward: same tokens, but
    # the cached path pays O(context) per token instead of O(context^2)
    tokens = 40
    t0 = time.perf_counter()
    slow = generate(model, prompt, max_new_tokens=tokens, use_cache=False)
    full_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = generate(model, prompt, max_new_tokens=tokens)
    cached_s = time.perf_counter() - t0
    assert slow == fast, "cached decode must reproduce the full forward"
    print(
        f"decode {tokens} tokens: full re-forward "
        f"{full_s / tokens * 1e3:.2f} ms/token -> KV-cached "
        f"{cached_s / tokens * 1e3:.2f} ms/token "
        f"({full_s / cached_s:.1f}x, identical tokens)"
    )


if __name__ == "__main__":
    main()
