#!/usr/bin/env python3
"""End-to-end LLM training-step profiling (Figures 8/9) + memory limits.

Profiles one full training iteration (forward, loss, backward, SGD) of
the paper's GPT-2 and BERT analogs at the §3.4 shapes — sequence 2048,
batch 8, 2 layers, 8 heads of 64 — then demonstrates the constraint
that forced batch 8: the same graph at batch 128 exceeds the 32 GB HBM
plan and is rejected by the compiler.

Run:  python examples/llm_training_profile.py
"""

from repro.core import max_batch_that_fits, run_e2e
from repro.hw.costmodel import EngineKind


def main() -> None:
    for model in ("gpt", "bert"):
        result = run_e2e(model)
        print(result.render(width=100))
        tl = result.timeline
        print(
            f"engine busy: MME {tl.busy_time_us(EngineKind.MME) / 1e3:.1f} ms, "
            f"TPC {tl.busy_time_us(EngineKind.TPC) / 1e3:.1f} ms, "
            f"DMA {tl.busy_time_us(EngineKind.DMA) / 1e3:.1f} ms"
        )
        print()

    print("== the paper's memory constraint (§3.4) ==")
    best = max_batch_that_fits("gpt")
    print(
        f"largest power-of-two batch fitting 32 GB HBM at seq 2048: {best} "
        "(the paper ran batch 8 'due to limited GAUDI memory'; batch 128 "
        "is rejected at compile time)"
    )


if __name__ == "__main__":
    main()
