#!/usr/bin/env python3
"""Multi-card HLS-1 scaling — the repository's A4 extension.

The paper profiles a single Gaudi of an HLS-1; §2.1 notes the on-chip
RoCE fabric exists precisely for multi-card training. This example
weak-scales the profiled GPT training step across 1..8 cards with
ring all-reduce gradient exchange and reports step time, exposed
communication, and scaling efficiency.

Run:  python examples/multi_card_scaling.py
"""

from repro.core import run_scaling_study


def main() -> None:
    for model in ("gpt", "bert"):
        for overlap in (0.0, 0.5):
            result = run_scaling_study(
                model, overlap_fraction=overlap,
            )
            print(result.render())
            print(f"(gradient payload {result.gradient_bytes / (1 << 20):.1f} "
                  f"MiB, comm/compute overlap {overlap:.0%})")
            print()


if __name__ == "__main__":
    main()
