#!/usr/bin/env python3
"""Quickstart: profile a Transformer layer on the simulated Gaudi.

Builds the paper's §3.3 layer (sequence 2048, batch 128, 6 heads of
dim 64) with softmax attention, records it symbolically, compiles it
with the SynapseAI-analog GraphCompiler, and prints the profiler trace
— reproducing Figure 4's headline: softmax runs on the TPC, takes >80%
of its busy time, and leaves the MME idle.

Run:  python examples/quickstart.py
"""

from repro import ht
from repro.hw.costmodel import EngineKind
from repro.models import TransformerLayer, paper_layer_config
from repro.synapse import SynapseProfiler, ascii_timeline, gap_report


def main() -> None:
    config = paper_layer_config("softmax")
    layer = TransformerLayer(config, materialize=False)

    # Record the layer symbolically: shapes only, no 12-GiB attention
    # matrices on the host.
    with ht.record("quickstart-layer", mode="symbolic") as rec:
        x = ht.input_tensor((128, 2048, config.d_model), name="x")
        layer(x)

    profile = SynapseProfiler().profile(rec.graph)

    print(profile.summary())
    print()
    print(ascii_timeline(profile.timeline, width=100))
    print()
    print(gap_report(profile.timeline, EngineKind.MME, min_dur_us=100.0))
    print()
    print(
        f"softmax share of TPC busy time: {profile.softmax_tpc_share:.1%} "
        "(paper Fig 4: > 80%)"
    )
    print(
        f"MME idle fraction:              {profile.mme_idle_fraction:.1%} "
        "(the paper's 'blank areas')"
    )


if __name__ == "__main__":
    main()
