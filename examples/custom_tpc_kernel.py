#!/usr/bin/env python3
"""Write and launch a custom TPC kernel — the §2.2 programming model.

Recreates the paper's Table 2 workflow: the batched-matmul kernel from
the custom-kernel library is launched on the TPC-cluster simulator and
compared against the MME cost model, and then a *new* user kernel (a
fused scale-plus-ReLU) is written from scratch against the kernel SDK:
index space, VLIW instruction stream, functional numpy body.

Run:  python examples/custom_tpc_kernel.py
"""

import math

import numpy as np

from repro.hw.costmodel import (
    EAGER_DISPATCH_OVERHEAD_US,
    MatmulDims,
    MMEModel,
)
from repro.hw.config import HBMConfig, MMEConfig
from repro.tpc import (
    IndexSpace,
    InstructionStream,
    TPCSimulator,
    TensorSpec,
    TpcKernel,
    REGISTRY,
    spu,
    vload_global,
    vpu,
    vstore_global,
)
from repro.util.tabulate import render_table


def table2_style_comparison() -> None:
    """Launch the library bmm kernel across sizes, like Table 2."""
    sim = TPCSimulator()
    mme = MMEModel(MMEConfig(), HBMConfig())
    kernel = REGISTRY.create("bmm")
    rows = []
    for size in (128, 256, 512, 1024, 2048):
        launch = sim.launch(
            kernel, shapes={"a": (64, size, size), "b": (64, size, size)}
        )
        dims = MatmulDims(64, size, size, size)
        t_mme_us = mme.matmul_time_us(dims) + EAGER_DISPATCH_OVERHEAD_US
        rows.append((
            size,
            f"{launch.achieved_tflops:.2f}",
            f"{dims.flops / t_mme_us * 1e6 / 1e12:.2f}",
            f"{launch.time_us / t_mme_us:.1f}x",
            f"{launch.balance:.3f}",
        ))
    print(render_table(
        ["size", "TPC TFLOPS", "MME TFLOPS", "MME speedup", "core balance"],
        rows,
        title="Custom bmm kernel on the TPC simulator vs the MME (Table 2)",
    ))


class ScaleReluKernel(TpcKernel):
    """y = relu(alpha * x): a user-written fused elementwise kernel."""

    name = "scale_relu"
    inputs = (TensorSpec("x", 1, 5),)
    outputs = (TensorSpec("y", 1, 5),)
    uniform_members = True
    CHUNK_VECTORS = 64

    def __init__(self, alpha: float = 2.0, lanes_hint: int = 128):
        self.alpha = alpha
        self._chunk = self.CHUNK_VECTORS * lanes_hint

    def output_shapes(self, shapes):
        return {"y": shapes["x"]}

    def index_space(self, shapes):
        numel = math.prod(shapes["x"])
        return IndexSpace((max(1, math.ceil(numel / self._chunk)),))

    def flops(self, shapes):
        return 2.0 * math.prod(shapes["x"])  # mul + max per element

    def execute_member(self, member, inputs, outputs):
        x = inputs["x"].reshape(-1)
        y = outputs["y"].reshape(-1)
        lo = member[0] * self._chunk
        hi = min(lo + self._chunk, x.size)
        y[lo:hi] = np.maximum(self.alpha * x[lo:hi], 0.0)

    def member_stream(self, member, shapes, lanes):
        vectors = math.ceil(min(self._chunk, math.prod(shapes["x"])) / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=16)
        # one global load per vector (the 4-cycle tensor access port),
        # then a fused mul+max bundle that also stores the result
        stream.emit(vload_global(), repeat=vectors)
        stream.emit(vpu("mul_max", stall_cycles=3.0), vstore_global(),
                    repeat=vectors)
        return stream


def user_kernel_demo() -> None:
    """Functional + timing launch of the hand-written kernel."""
    sim = TPCSimulator()
    kernel = ScaleReluKernel(alpha=3.0)
    x = np.random.default_rng(0).normal(size=(1 << 16,)).astype(np.float32)
    launch = sim.launch(kernel, {"x": x})
    expected = np.maximum(3.0 * x, 0.0)
    assert np.allclose(launch.outputs["y"], expected), "kernel is wrong!"
    print(
        f"scale_relu on {x.size} elements: {launch.time_us:.1f} us, "
        f"{launch.achieved_tflops:.3f} TFLOPS, "
        f"{launch.index_space_size} index-space members, "
        f"core balance {launch.balance:.3f}"
    )
    big = sim.launch(kernel, shapes={"x": (1 << 26,)})
    print(
        f"scale_relu on {1 << 26} elements (timing-only): "
        f"{big.time_us / 1e3:.2f} ms, {big.achieved_tflops:.3f} TFLOPS"
    )


def main() -> None:
    table2_style_comparison()
    print()
    user_kernel_demo()


if __name__ == "__main__":
    main()
