"""``ht`` — the "Habana torch" frontend.

A PyTorch-flavoured eager tensor API that records every op into a
:class:`~repro.synapse.graph.Graph` for the GraphCompiler, with
reverse-mode autograd, a module system, and optimizers. Concrete mode
(numpy values) for correctness; symbolic mode (shapes only) for
paper-scale profiling.
"""

from . import functional
from .autograd import VJP, backward
from .module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
)
from .optim import AdamLike, SGD
from .recorder import (
    Recorder,
    checkpoint,
    current,
    has_active,
    record,
    scope,
)
from .tensor import (
    Parameter,
    Tensor,
    ensure_tensor,
    input_tensor,
    randn,
    tensor,
)
from . import init

__all__ = [
    "functional",
    "VJP",
    "backward",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Sequential",
    "AdamLike",
    "SGD",
    "Recorder",
    "checkpoint",
    "current",
    "has_active",
    "record",
    "scope",
    "Parameter",
    "Tensor",
    "ensure_tensor",
    "input_tensor",
    "randn",
    "tensor",
    "init",
]
