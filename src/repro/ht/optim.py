"""Optimizers: parameter updates as recorded device ops.

``step()`` emits the update arithmetic (``p - lr * g``) into the active
recording — elementwise TPC work, per Table 1 — so a profiled training
iteration includes the optimizer the way the paper's end-to-end traces
do. In concrete mode it also applies the update to the parameters'
numpy data, making small-scale training loops actually converge.
"""

from __future__ import annotations

from ..util.errors import AutogradError, ConfigError
from . import functional as F
from . import recorder as _rec
from .tensor import Parameter


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ConfigError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        if not params:
            raise ConfigError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, object] = {}

    def zero_grad(self) -> None:
        """Clear .grad on all parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> int:
        """Emit + apply one update; returns the number of updated params.

        The recorded device work is ``p - lr * g`` per parameter (plus a
        scale for momentum); the momentum *state* lives host-side, as in
        a real optimizer, and only affects concrete data updates.
        """
        rec = _rec.current()
        updated = 0
        with rec.scope("optimizer"):
            for p in self.params:
                if p.grad is None:
                    continue
                if tuple(p.grad.shape) != tuple(p.shape):
                    raise AutogradError(
                        f"gradient shape {p.grad.shape} != parameter "
                        f"shape {p.shape} for {p.name!r}"
                    )
                rec.mark_gradient(p.grad, p.name)
                new_value = F.sub(
                    p.as_tensor(), F.mul_scalar(p.grad, self.lr)
                )
                if rec.concrete:
                    if self.momentum > 0.0:
                        prev = self._velocity.get(id(p))
                        vel = p.grad.data.copy()
                        if prev is not None:
                            vel += self.momentum * prev
                        self._velocity[id(p)] = vel
                        p.data = p.data - self.lr * vel
                    else:
                        p.data = new_value.data
                updated += 1
        return updated


class AdamLike:
    """A fixed-shape Adam-style update (moment tensors as device work).

    Emits the full first/second-moment arithmetic so the optimizer's
    elementwise footprint on the TPC is realistic for LLM training;
    moment state is kept host-side per parameter in concrete mode.
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0:
            raise ConfigError(f"lr must be > 0, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer needs at least one parameter")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0

    def zero_grad(self) -> None:
        """Clear .grad on all parameters."""
        for p in self.params:
            p.grad = None

    def step(self) -> int:
        """Emit one Adam-style update per parameter with a gradient."""
        rec = _rec.current()
        self.t += 1
        updated = 0
        with rec.scope("optimizer"):
            for p in self.params:
                if p.grad is None:
                    continue
                g = p.grad
                rec.mark_gradient(g, p.name)
                # m and v recomputed from g each step in-graph; host-side
                # state is intentionally not modeled — the *device work*
                # per step is what the trace needs to show.
                m = F.mul_scalar(g, 1.0 - self.beta1)
                v = F.mul_scalar(F.square(g), 1.0 - self.beta2)
                denom = F.add_scalar(F.sqrt(v), self.eps)
                update = F.div(m, denom)
                new_value = F.sub(
                    p.as_tensor(), F.mul_scalar(update, self.lr)
                )
                if rec.concrete:
                    p.data = new_value.data
                updated += 1
        return updated
