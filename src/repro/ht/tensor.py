"""Tensors and parameters of the ``ht`` frontend.

A :class:`Tensor` pairs a symbolic graph value (always present) with an
optional numpy payload (concrete mode only). Operators delegate to
:mod:`repro.ht.functional`, so ``q @ k.transpose(-2, -1)`` records the
same graph SynapseAI would see from the equivalent PyTorch line.

A :class:`Parameter` is graph-independent: it holds shape/dtype (+ data
in concrete use) and is registered into whichever graph is recording
when it is first used — so one model instance can be profiled under
many recordings.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..hw.dtypes import DType, numpy_dtype
from ..synapse.graph import TensorValue
from ..util.errors import GraphError, ShapeError
from . import recorder as _rec

Shape = tuple[int, ...]


class Parameter:
    """A trainable weight, registered into graphs on first use."""

    def __init__(
        self,
        data: np.ndarray | None = None,
        *,
        shape: Shape | None = None,
        dtype: DType = DType.BF16,
        name: str = "",
        requires_grad: bool = True,
    ):
        if data is None and shape is None:
            raise ShapeError("Parameter needs data or an explicit shape")
        if data is not None:
            data = np.asarray(data, dtype=numpy_dtype(dtype))
            if shape is not None and tuple(shape) != data.shape:
                raise ShapeError(
                    f"Parameter shape {shape} != data shape {data.shape}"
                )
            shape = data.shape
        self.data = data
        self.shape = tuple(shape)
        self.dtype = dtype
        self.name = name
        self.requires_grad = requires_grad
        #: set by backward(): the gradient Tensor in the current graph
        self.grad: "Tensor | None" = None

    @property
    def numel(self) -> int:
        """Number of elements."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    def as_tensor(self) -> "Tensor":
        """This parameter, bound to the current recording."""
        rec = _rec.current()
        value = rec.value_for_param(self)
        if rec.concrete and self.data is None:
            raise GraphError(
                f"parameter {self.name!r} has no data but the recording "
                "is concrete; materialize it or record symbolically"
            )
        return Tensor(
            value,
            self.data if rec.concrete else None,
            requires_grad=self.requires_grad,
            param=self,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Parameter({self.name!r}, shape={self.shape})"


class Tensor:
    """A recorded tensor: symbolic value + optional numpy data."""

    def __init__(
        self,
        value: TensorValue,
        data: np.ndarray | None = None,
        *,
        requires_grad: bool = False,
        param: Parameter | None = None,
    ):
        self.value = value
        self.data = data
        self.requires_grad = requires_grad
        self.param = param
        self.grad: "Tensor | None" = None

    # -- metadata ------------------------------------------------------------

    @property
    def shape(self) -> Shape:
        """Symbolic shape."""
        return self.value.shape

    @property
    def ndim(self) -> int:
        """Rank."""
        return len(self.value.shape)

    @property
    def dtype(self) -> DType:
        """Device dtype."""
        return self.value.dtype

    @property
    def vid(self) -> int:
        """Graph value id (unique per recording)."""
        return self.value.vid

    @property
    def numel(self) -> int:
        """Number of elements."""
        return self.value.numel

    def numpy(self) -> np.ndarray:
        """The concrete payload; errors on symbolic tensors."""
        if self.data is None:
            raise GraphError(
                f"tensor {self.value.name or self.vid} is symbolic — "
                "record in concrete mode to get values"
            )
        return self.data

    def item(self) -> float:
        """Python scalar of a 1-element concrete tensor."""
        arr = self.numpy()
        if arr.size != 1:
            raise ShapeError(f"item() on tensor with {arr.size} elements")
        return float(arr.reshape(())[()])

    # -- operators (delegate to functional) -----------------------------------

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from . import functional as F

        return F.matmul(self, other)

    def __add__(self, other: "Tensor | float | int") -> "Tensor":
        from . import functional as F

        if isinstance(other, (int, float)):
            return F.add_scalar(self, float(other))
        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float | int") -> "Tensor":
        from . import functional as F

        if isinstance(other, (int, float)):
            return F.add_scalar(self, -float(other))
        return F.sub(self, other)

    def __rsub__(self, other: "float | int") -> "Tensor":
        from . import functional as F

        return F.add_scalar(F.neg(self), float(other))

    def __mul__(self, other: "Tensor | float | int") -> "Tensor":
        from . import functional as F

        if isinstance(other, (int, float)):
            return F.mul_scalar(self, float(other))
        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int") -> "Tensor":
        from . import functional as F

        if isinstance(other, (int, float)):
            return F.mul_scalar(self, 1.0 / float(other))
        return F.div(self, other)

    def __neg__(self) -> "Tensor":
        from . import functional as F

        return F.neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import functional as F

        return F.pow_scalar(self, float(exponent))

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape (a view; free on device)."""
        from . import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, tuple(shape))

    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        """Swap two dims (torch-style ``tensor.transpose(-2, -1)``)."""
        from . import functional as F

        axes = list(range(self.ndim))
        axes[dim0], axes[dim1] = axes[dim1], axes[dim0]
        return F.transpose(self, tuple(axes))

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum reduction."""
        from . import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean reduction."""
        from . import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Max reduction."""
        from . import functional as F

        return F.max(self, axis=axis, keepdims=keepdims)

    # -- autograd ---------------------------------------------------------------

    def backward(self) -> None:
        """Reverse-mode differentiation from this scalar."""
        from .autograd import backward

        backward(self)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "concrete" if self.data is not None else "symbolic"
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, {kind})"


# -- creation helpers -----------------------------------------------------------


def tensor(
    data: "np.ndarray | list | float",
    *,
    dtype: DType = DType.BF16,
    requires_grad: bool = False,
    name: str = "",
    kind: str = "input",
) -> Tensor:
    """Create a concrete tensor from array-like data."""
    rec = _rec.current()
    arr = np.asarray(data, dtype=numpy_dtype(dtype))
    value = rec.graph.add_value(arr.shape, dtype, name=name, kind=kind)
    return Tensor(
        value, arr if rec.concrete else None, requires_grad=requires_grad
    )


def input_tensor(
    shape: Shape,
    *,
    dtype: DType = DType.BF16,
    data: np.ndarray | None = None,
    requires_grad: bool = False,
    name: str = "",
) -> Tensor:
    """Create a graph input; symbolic recordings may omit ``data``."""
    rec = _rec.current()
    if rec.concrete and data is None:
        raise GraphError(
            f"input {name!r} needs data in a concrete recording"
        )
    if data is not None:
        data = np.asarray(data, dtype=numpy_dtype(dtype))
        if tuple(data.shape) != tuple(shape):
            raise ShapeError(f"input data shape {data.shape} != {tuple(shape)}")
    value = rec.graph.add_value(tuple(shape), dtype, name=name, kind="input")
    return Tensor(
        value, data if rec.concrete else None, requires_grad=requires_grad
    )


def randn(
    *shape: int,
    rng: np.random.Generator | None = None,
    dtype: DType = DType.BF16,
    requires_grad: bool = False,
    scale: float = 1.0,
    name: str = "",
) -> Tensor:
    """A concrete standard-normal input tensor (testing convenience)."""
    from ..util.rng import make_rng

    rng = rng or make_rng()
    data = rng.normal(scale=scale, size=shape)
    return tensor(data, dtype=dtype, requires_grad=requires_grad, name=name)


def ensure_tensor(x: "Tensor | Parameter | Any") -> Tensor:
    """Coerce operands: Parameters bind to the current recording."""
    if isinstance(x, Tensor):
        return x
    if isinstance(x, Parameter):
        return x.as_tensor()
    raise GraphError(
        f"expected Tensor or Parameter, got {type(x).__name__}; wrap "
        "raw arrays with ht.tensor(...)"
    )
