"""Reverse-mode autograd over the recorded tape.

Backward passes are *recorded like any other computation*: every VJP
emits ordinary graph ops, so a profiled training step contains the
gradient matmuls (MME) and the gradient reductions / elementwise ops
(TPC) exactly as the paper's end-to-end traces do (Figs 8/9). Backward
nodes carry ``src = "<op>_bwd"`` so trace attribution can separate, say,
``softmax`` from ``softmax_bwd``.
"""

from __future__ import annotations

import contextlib
from typing import Callable

from ..util.errors import AutogradError
from . import functional as F
from . import recorder as _rec
from .recorder import TapeEntry
from .tensor import Tensor

VjpFn = Callable[[TapeEntry, Tensor], list["Tensor | None"]]

VJP: dict[str, VjpFn] = {}


def vjp(name: str) -> Callable[[VjpFn], VjpFn]:
    """Register the VJP for op ``name``."""

    def deco(fn: VjpFn) -> VjpFn:
        if name in VJP:
            raise AutogradError(f"VJP for {name!r} already registered")
        VJP[name] = fn
        return fn

    return deco


# -- broadcasting helpers -----------------------------------------------------


def _reduce_to_shape(grad: Tensor, target: tuple[int, ...]) -> Tensor:
    """Sum ``grad`` back down to ``target`` (undo numpy broadcasting)."""
    if grad.shape == target:
        return grad
    # sum away extra leading dims
    extra = len(grad.shape) - len(target)
    for _ in range(extra):
        grad = F.sum(grad, axis=0)
    # sum dims that were broadcast from 1
    for axis, (g, t) in enumerate(zip(grad.shape, target)):
        if t == 1 and g != 1:
            grad = F.sum(grad, axis=axis, keepdims=True)
    if grad.shape != target:
        raise AutogradError(
            f"cannot reduce gradient {grad.shape} to {target}"
        )
    return grad


def _unreduce(grad: Tensor, in_shape: tuple[int, ...], attrs: dict) -> Tensor:
    """Expand a reduction's gradient back to the input shape."""
    axis = attrs.get("axis")
    keepdims = bool(attrs.get("keepdims", False))
    if not keepdims:
        if axis is None:
            kept = tuple(1 for _ in in_shape)
        else:
            axes = {(axis if axis >= 0 else axis + len(in_shape))}
            kept = tuple(
                1 if i in axes else d for i, d in enumerate(in_shape)
            )
        grad = F.reshape(grad, kept)
    return F.broadcast_to(grad, in_shape)


def _reduced_count(in_shape: tuple[int, ...], attrs: dict) -> int:
    axis = attrs.get("axis")
    if axis is None:
        n = 1
        for d in in_shape:
            n *= d
        return n
    return in_shape[axis if axis >= 0 else axis + len(in_shape)]


# -- arithmetic ----------------------------------------------------------------


@vjp("matmul")
def _matmul_vjp(entry: TapeEntry, grad: Tensor) -> list[Tensor | None]:
    a, b = entry.inputs
    ta = bool(entry.attrs.get("transpose_a", False))
    tb = bool(entry.attrs.get("transpose_b", False))
    # dA' = G @ B'(T); dB' = A'(T) @ G, then undo the operand transposes.
    da = F.matmul(grad, b, transpose_b=not tb)
    if ta:
        da = da.transpose(-2, -1)
    db = F.matmul(a, grad, transpose_a=not ta)
    if tb:
        db = db.transpose(-2, -1)
    return [_reduce_to_shape(da, a.shape), _reduce_to_shape(db, b.shape)]


@vjp("add")
def _add_vjp(entry, grad):
    a, b = entry.inputs
    return [_reduce_to_shape(grad, a.shape), _reduce_to_shape(grad, b.shape)]


@vjp("sub")
def _sub_vjp(entry, grad):
    a, b = entry.inputs
    return [
        _reduce_to_shape(grad, a.shape),
        _reduce_to_shape(F.neg(grad), b.shape),
    ]


@vjp("mul")
def _mul_vjp(entry, grad):
    a, b = entry.inputs
    return [
        _reduce_to_shape(F.mul(grad, b), a.shape),
        _reduce_to_shape(F.mul(grad, a), b.shape),
    ]


@vjp("div")
def _div_vjp(entry, grad):
    a, b = entry.inputs
    da = F.div(grad, b)
    db = F.neg(F.mul(grad, F.div(entry.output, b)))
    return [_reduce_to_shape(da, a.shape), _reduce_to_shape(db, b.shape)]


@vjp("maximum")
def _maximum_vjp(entry, grad):
    a, b = entry.inputs
    mask = F.step_ge0(F.sub(a, b))
    da = F.mul(grad, mask)
    db = F.mul(grad, F.add_scalar(F.neg(mask), 1.0))
    return [_reduce_to_shape(da, a.shape), _reduce_to_shape(db, b.shape)]


@vjp("where")
def _where_vjp(entry, grad):
    mask, a, b = entry.inputs
    keep = F.step_ge0(F.add_scalar(F.abs(mask), -0.5))  # nonzero -> 1
    da = _reduce_to_shape(F.mul(grad, keep), a.shape)
    db = _reduce_to_shape(
        F.mul(grad, F.add_scalar(F.neg(keep), 1.0)), b.shape
    )
    return [None, da, db]


@vjp("sadd")
def _sadd_vjp(entry, grad):
    return [grad]


@vjp("smul")
def _smul_vjp(entry, grad):
    return [F.mul_scalar(grad, float(entry.attrs["alpha"]))]


@vjp("spow")
def _spow_vjp(entry, grad):
    (x,) = entry.inputs
    alpha = float(entry.attrs["alpha"])
    return [F.mul(grad, F.mul_scalar(F.pow_scalar(x, alpha - 1.0), alpha))]


@vjp("neg")
def _neg_vjp(entry, grad):
    return [F.neg(grad)]


@vjp("abs")
def _abs_vjp(entry, grad):
    (x,) = entry.inputs
    sign = F.add_scalar(F.mul_scalar(F.step_ge0(x), 2.0), -1.0)
    return [F.mul(grad, sign)]


@vjp("square")
def _square_vjp(entry, grad):
    (x,) = entry.inputs
    return [F.mul(grad, F.mul_scalar(x, 2.0))]


@vjp("cast")
def _cast_vjp(entry, grad):
    return [grad]


@vjp("dropout")
def _dropout_vjp(entry, grad):
    # dropout is linear in x: the backward re-applies the same masked
    # scaling (same seed -> same mask).
    return [F.apply_op("dropout", [grad], dict(entry.attrs))]


# -- special functions ------------------------------------------------------------


@vjp("exp")
def _exp_vjp(entry, grad):
    return [F.mul(grad, entry.output)]


@vjp("log")
def _log_vjp(entry, grad):
    (x,) = entry.inputs
    return [F.div(grad, x)]


@vjp("sqrt")
def _sqrt_vjp(entry, grad):
    return [F.div(F.mul_scalar(grad, 0.5), entry.output)]


@vjp("rsqrt")
def _rsqrt_vjp(entry, grad):
    (x,) = entry.inputs
    # d/dx x^-1/2 = -1/2 x^-3/2 = -1/2 * out / x
    return [F.mul(grad, F.mul_scalar(F.div(entry.output, x), -0.5))]


@vjp("sigmoid")
def _sigmoid_vjp(entry, grad):
    out = entry.output
    return [F.mul(grad, F.mul(out, F.add_scalar(F.neg(out), 1.0)))]


@vjp("tanh")
def _tanh_vjp(entry, grad):
    out = entry.output
    return [F.mul(grad, F.add_scalar(F.neg(F.square(out)), 1.0))]


# -- activations ---------------------------------------------------------------------


@vjp("relu")
def _relu_vjp(entry, grad):
    (x,) = entry.inputs
    return [F.mul(grad, F.step_ge0(x))]


@vjp("leaky_relu")
def _leaky_relu_vjp(entry, grad):
    (x,) = entry.inputs
    slope = float(entry.attrs.get("slope", 0.01))
    step = F.step_ge0(x)
    factor = F.add_scalar(F.mul_scalar(step, 1.0 - slope), slope)
    return [F.mul(grad, factor)]


@vjp("elu")
def _elu_vjp(entry, grad):
    (x,) = entry.inputs
    step = F.step_ge0(x)
    neg_branch = F.add_scalar(entry.output, 1.0)  # exp(x) for x < 0
    factor = F.add(
        step, F.mul(F.add_scalar(F.neg(step), 1.0), neg_branch)
    )
    return [F.mul(grad, factor)]


@vjp("gelu")
def _gelu_vjp(entry, grad):
    import math

    (x,) = entry.inputs
    c = math.sqrt(2.0 / math.pi)
    x2 = F.square(x)
    u = F.mul_scalar(F.add(x, F.mul_scalar(F.mul(x, x2), 0.044715)), c)
    t = F.tanh(u)
    du = F.mul_scalar(
        F.add_scalar(F.mul_scalar(x2, 3.0 * 0.044715), 1.0), c
    )
    sech2 = F.add_scalar(F.neg(F.square(t)), 1.0)
    d = F.add(
        F.mul_scalar(F.add_scalar(t, 1.0), 0.5),
        F.mul_scalar(F.mul(F.mul(x, sech2), du), 0.5),
    )
    return [F.mul(grad, d)]


@vjp("glu")
def _glu_vjp(entry, grad):
    (x,) = entry.inputs
    half = x.shape[-1] // 2
    a = F.slice_last(x, 0, half)
    b = F.slice_last(x, half, x.shape[-1])
    sig = F.sigmoid(b)
    da = F.mul(grad, sig)
    db = F.mul(
        grad, F.mul(a, F.mul(sig, F.add_scalar(F.neg(sig), 1.0)))
    )
    return [F.concat_last(da, db)]


# -- reductions ------------------------------------------------------------------------


@vjp("sum")
def _sum_vjp(entry, grad):
    (x,) = entry.inputs
    return [_unreduce(grad, x.shape, entry.attrs)]


@vjp("mean")
def _mean_vjp(entry, grad):
    (x,) = entry.inputs
    count = _reduced_count(x.shape, entry.attrs)
    return [F.mul_scalar(_unreduce(grad, x.shape, entry.attrs), 1.0 / count)]


@vjp("max")
def _max_vjp(entry, grad):
    (x,) = entry.inputs
    expanded = _unreduce(entry.output, x.shape, entry.attrs)
    mask = F.eq(x, expanded)
    return [F.mul(_unreduce(grad, x.shape, entry.attrs), mask)]


# -- composites --------------------------------------------------------------------------


@vjp("softmax")
def _softmax_vjp(entry, grad):
    out = entry.output
    axis = entry.attrs.get("axis", -1)
    inner = F.sum(F.mul(grad, out), axis=axis, keepdims=True)
    return [F.mul(F.sub(grad, inner), out)]


@vjp("log_softmax")
def _log_softmax_vjp(entry, grad):
    out = entry.output
    axis = entry.attrs.get("axis", -1)
    gsum = F.sum(grad, axis=axis, keepdims=True)
    return [F.sub(grad, F.mul(F.exp(out), gsum))]


# -- data movement ------------------------------------------------------------------------


@vjp("reshape")
def _reshape_vjp(entry, grad):
    (x,) = entry.inputs
    return [F.reshape(grad, x.shape)]


@vjp("transpose")
def _transpose_vjp(entry, grad):
    (x,) = entry.inputs
    axes = entry.attrs.get("axes") or tuple(reversed(range(x.ndim)))
    axes = tuple(a % len(axes) for a in axes)
    inverse = [0] * len(axes)
    for i, a in enumerate(axes):
        inverse[a] = i
    return [F.transpose(grad, tuple(inverse))]


@vjp("broadcast_to")
def _broadcast_vjp(entry, grad):
    (x,) = entry.inputs
    return [_reduce_to_shape(grad, x.shape)]


@vjp("slice_last")
def _slice_last_vjp(entry, grad):
    (x,) = entry.inputs
    lo, hi = int(entry.attrs["lo"]), int(entry.attrs["hi"])
    width = x.shape[-1]
    pieces = grad
    if lo > 0:
        left = F.zeros_like(F.slice_last(x, 0, lo))
        pieces = F.concat_last(left, pieces)
    if hi < width:
        right = F.zeros_like(F.slice_last(x, hi, width))
        pieces = F.concat_last(pieces, right)
    return [pieces]


@vjp("concat_last")
def _concat_last_vjp(entry, grad):
    a, b = entry.inputs
    wa = a.shape[-1]
    return [
        F.slice_last(grad, 0, wa),
        F.slice_last(grad, wa, wa + b.shape[-1]),
    ]


@vjp("slice_rows")
def _slice_rows_vjp(entry, grad):
    (x,) = entry.inputs
    lo, hi = int(entry.attrs["lo"]), int(entry.attrs["hi"])
    rows = x.shape[-2]
    pieces = grad
    if lo > 0:
        pieces = F.concat_rows(F.zeros_like(F.slice_rows(x, 0, lo)), pieces)
    if hi < rows:
        pieces = F.concat_rows(pieces, F.zeros_like(F.slice_rows(x, hi, rows)))
    return [pieces]


@vjp("concat_rows")
def _concat_rows_vjp(entry, grad):
    a, b = entry.inputs
    ra = a.shape[-2]
    return [
        F.slice_rows(grad, 0, ra),
        F.slice_rows(grad, ra, ra + b.shape[-2]),
    ]


@vjp("gather_rows")
def _gather_rows_vjp(entry, grad):
    table, idx = entry.inputs
    dtable = F.apply_op(
        "scatter_add_rows", [grad, idx], {"shape": table.shape},
        differentiable=False,
    )
    return [dtable, None]


# -- the driver -----------------------------------------------------------------------------


@contextlib.contextmanager
def _src_override(rec: "_rec.Recorder", src: str):
    prev = rec.src_override
    rec.src_override = src
    try:
        yield
    finally:
        rec.src_override = prev


def backward(loss: Tensor) -> None:
    """Reverse-mode differentiation from scalar ``loss``.

    Writes ``.grad`` on every reached tensor (and the ``.grad`` of the
    underlying :class:`~repro.ht.tensor.Parameter` when applicable).
    Gradient ops are emitted into the active recording under the
    ``bwd`` scope.
    """
    rec = _rec.current()
    if loss.shape != ():
        raise AutogradError(
            f"backward() needs a scalar loss, got shape {loss.shape}"
        )
    if not loss.requires_grad:
        raise AutogradError("loss does not require grad — nothing to do")
    grads: dict[int, Tensor] = {}
    with rec.scope("bwd"):
        grads[loss.vid] = F.ones_like(loss)
        for entry in reversed(rec.tape):
            grad_out = grads.get(entry.output.vid)
            if grad_out is None:
                continue
            try:
                fn = VJP[entry.op]
            except KeyError:
                raise AutogradError(
                    f"op {entry.op!r} has no registered VJP"
                ) from None
            with _src_override(rec, f"{entry.op}_bwd"):
                input_grads = fn(entry, grad_out)
                if len(input_grads) != len(entry.inputs):
                    raise AutogradError(
                        f"VJP of {entry.op!r} returned {len(input_grads)} "
                        f"grads for {len(entry.inputs)} inputs"
                    )
                for tensor, grad_in in zip(entry.inputs, input_grads):
                    if grad_in is None or not tensor.requires_grad:
                        continue
                    if tensor.vid in grads:
                        grads[tensor.vid] = F.add(grads[tensor.vid], grad_in)
                    else:
                        grads[tensor.vid] = grad_in
                    tensor.grad = grads[tensor.vid]
                    if tensor.param is not None:
                        tensor.param.grad = grads[tensor.vid]
