"""Recording contexts: the frontend's connection to SynapseAI.

``ht`` executes eagerly (like PyTorch) while *recording* every op into
a :class:`~repro.synapse.graph.Graph` — the program the GraphCompiler
sees. Two modes:

* ``concrete`` — ops also compute numpy values; use for correctness
  work at small sizes.
* ``symbolic`` — shapes only; use at paper scale (seq 2048 x batch 128
  would need >10 GiB per attention matrix otherwise).

Usage::

    with ht.record("layer", mode="symbolic") as rec:
        y = model(x)
        y.sum().backward()
    profile = SynapseProfiler().profile(rec.graph)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..hw.dtypes import DType
from ..synapse.graph import Graph, TensorValue
from ..util.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tensor import Parameter, Tensor

_MODES = ("concrete", "symbolic")


@dataclass
class TapeEntry:
    """One recorded differentiable op, for reverse-mode autograd."""

    op: str
    inputs: list["Tensor"]
    output: "Tensor"
    attrs: dict[str, Any] = field(default_factory=dict)


class Recorder:
    """An active recording: graph + tape + scope stack."""

    def __init__(self, name: str = "graph", mode: str = "concrete"):
        if mode not in _MODES:
            raise GraphError(f"mode must be one of {_MODES}, got {mode!r}")
        self.graph = Graph(name)
        self.mode = mode
        self.tape: list[TapeEntry] = []
        self._scopes: list[str] = []
        self._param_values: dict[int, TensorValue] = {}
        #: src override applied to emitted nodes (used by autograd to
        #: attribute backward ops, e.g. "softmax_bwd")
        self.src_override: str | None = None

    @property
    def concrete(self) -> bool:
        """Whether ops compute numpy values."""
        return self.mode == "concrete"

    def scope_name(self) -> str:
        """Current dotted scope string."""
        return ".".join(self._scopes)

    @contextlib.contextmanager
    def scope(self, name: str):
        """Push a scope segment for emitted nodes."""
        self._scopes.append(name)
        try:
            yield self
        finally:
            self._scopes.pop()

    def value_for_param(self, param: "Parameter") -> TensorValue:
        """The graph value backing ``param`` (registered on first use)."""
        key = id(param)
        if key not in self._param_values:
            self._param_values[key] = self.graph.add_value(
                param.shape, param.dtype, name=param.name, kind="param"
            )
        return self._param_values[key]

    def mark_gradient(self, grad: "Tensor", param_name: str = "") -> None:
        """Tag a tensor as a parameter gradient for DDP all-reduce.

        The optimizer marks every ``p.grad`` it reads; the compiler's
        ``collective_injection`` pass buckets the marked values into
        all-reduce ops for multi-card runs. Harmless on 1 card.
        """
        self.graph.mark_gradient(grad.vid, param_name)

    def mark_checkpoint(
        self,
        label: str,
        input_vids: "tuple[int, ...] | list[int]",
        output_vids: "tuple[int, ...] | list[int]",
        droppable_vids: "tuple[int, ...] | list[int]",
    ) -> None:
        """Tag a recorded region as a checkpoint segment.

        The memory planner may drop the segment's internal activations
        and re-emit the forward subgraph before their backward
        consumers (see :func:`repro.ht.checkpoint` for the module-level
        wrapper that computes the vid sets automatically).
        """
        self.graph.mark_checkpoint(
            label, input_vids, output_vids, droppable_vids
        )

    def graph_signature(self) -> str:
        """Canonical signature of the recorded graph so far.

        Re-recording the same program yields the same signature — the
        key the compiler's recipe cache uses to skip recompilation of
        repeated training steps (see :mod:`repro.synapse.recipe`).
        """
        from ..synapse.recipe import graph_signature

        return graph_signature(self.graph)


_STACK: list[Recorder] = []


def current() -> Recorder:
    """The innermost active recorder; raises if none."""
    if not _STACK:
        raise GraphError(
            "no active recording — wrap tensor code in `with ht.record(...):`"
        )
    return _STACK[-1]


def has_active() -> bool:
    """Whether any recorder is active."""
    return bool(_STACK)


@contextlib.contextmanager
def record(name: str = "graph", mode: str = "concrete"):
    """Open a recording context and yield its :class:`Recorder`."""
    rec = Recorder(name, mode)
    _STACK.append(rec)
    try:
        yield rec
    finally:
        popped = _STACK.pop()
        assert popped is rec, "recorder stack corrupted"


@contextlib.contextmanager
def scope(name: str):
    """Push a scope segment on the current recorder."""
    with current().scope(name):
        yield


def checkpoint(fn, *args, label: str = "", **kwargs):
    """Run ``fn(*args, **kwargs)`` as a checkpoint segment.

    The activation-checkpointing marker, PyTorch
    ``utils.checkpoint``-style: every activation value ``fn`` records
    (except its outputs) is tagged droppable, licensing the memory
    planner to free it after its last forward use and recompute it
    from the segment inputs right before the backward pass needs it.

    Purely an annotation — eager values, autograd, and the recorded
    graph are unchanged; with no active recorder this is a plain call.
    """
    from .tensor import Tensor

    if not has_active():
        return fn(*args, **kwargs)
    rec = current()
    graph = rec.graph
    input_vids = [a.vid for a in args if isinstance(a, Tensor)]
    first_vid = graph._next_vid
    out = fn(*args, **kwargs)
    outputs = out if isinstance(out, tuple) else (out,)
    output_vids = [t.vid for t in outputs if isinstance(t, Tensor)]
    droppable = [
        vid for vid in range(first_vid, graph._next_vid)
        if vid in graph.values and graph.values[vid].kind == "activation"
    ]
    name = label or getattr(fn, "_name", "") or getattr(
        fn, "__name__", type(fn).__name__
    )
    rec.mark_checkpoint(name, input_vids, output_vids, droppable)
    return out


def default_dtype() -> DType:
    """The frontend's default device dtype."""
    return DType.BF16
