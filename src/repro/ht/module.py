"""Module system: the ``nn.Module`` analog of the ``ht`` frontend.

Modules own :class:`~repro.ht.tensor.Parameter` objects and compose
into trees; calling a module under an active recording emits its ops
into the current graph inside a named scope, which is what makes the
profiler traces readable ("encoder0.attn.softmax ...").
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..hw.dtypes import DType
from ..util.errors import ConfigError, ShapeError
from . import functional as F
from . import init as I
from . import recorder as _rec
from .tensor import Parameter, Tensor


class Module:
    """Base class: parameter/submodule discovery + scoped call."""

    def __init__(self) -> None:
        self._name = type(self).__name__.lower()

    def forward(self, *args, **kwargs) -> Tensor:
        """Subclasses implement the computation here."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        if _rec.has_active():
            with _rec.scope(self._name):
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)

    def set_name(self, name: str) -> "Module":
        """Set the trace scope name; returns self for chaining."""
        self._name = name
        return self

    # -- traversal ---------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted_name, parameter) over the module tree."""
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def parameters(self) -> list[Parameter]:
        """All parameters of the module tree."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total trainable element count."""
        return sum(p.numel for p in self.parameters())

    def parameter_bytes(self) -> int:
        """Device bytes of all parameters."""
        from ..hw.dtypes import itemsize

        return sum(p.numel * itemsize(p.dtype) for p in self.parameters())


class Linear(Module):
    """y = x @ W (+ b); the op SynapseAI maps to the MME."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        dtype: DType = DType.BF16,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "linear",
    ):
        super().__init__()
        self._name = name
        self.in_features = in_features
        self.out_features = out_features
        self.weight = I.xavier_uniform(
            (in_features, out_features), dtype=dtype, rng=rng,
            name=f"{name}.weight", materialize=materialize,
        )
        self.bias = (
            I.zeros((out_features,), dtype=dtype, name=f"{name}.bias",
                    materialize=materialize)
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"{self._name}: expected last dim {self.in_features}, "
                f"got {x.shape}"
            )
        out = F.matmul(x, self.weight)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class Embedding(Module):
    """Token-id -> vector lookup (a TPC gather, not an MME op)."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        dtype: DType = DType.BF16,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "embed",
    ):
        super().__init__()
        self._name = name
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = I.normal(
            (num_embeddings, embedding_dim), dtype=dtype, rng=rng,
            name=f"{name}.weight", materialize=materialize,
        )

    def forward(self, indices: Tensor) -> Tensor:
        return F.gather_rows(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization, composed from TPC primitives.

    Deliberately built from mean/sub/square/rsqrt/mul — the same
    decomposition SynapseAI produces — so its reductions show up on the
    TPC timeline like every other non-matmul op.
    """

    def __init__(
        self,
        dim: int,
        *,
        eps: float = 1e-5,
        dtype: DType = DType.BF16,
        materialize: bool = True,
        name: str = "ln",
    ):
        super().__init__()
        self._name = name
        self.dim = dim
        self.eps = eps
        self.gamma = I.ones((dim,), dtype=dtype, name=f"{name}.gamma",
                            materialize=materialize)
        self.beta = I.zeros((dim,), dtype=dtype, name=f"{name}.beta",
                            materialize=materialize)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ShapeError(
                f"{self._name}: expected last dim {self.dim}, got {x.shape}"
            )
        mu = F.mean(x, axis=-1, keepdims=True)
        centered = F.sub(x, mu)
        var = F.mean(F.square(centered), axis=-1, keepdims=True)
        inv = F.rsqrt(F.add_scalar(var, self.eps))
        normed = F.mul(centered, inv)
        return F.add(F.mul(normed, self.gamma), self.beta)


class Dropout(Module):
    """Dropout: identity when not training (the profiling default).

    When ``training`` is set, each call emits a real masked-rescale op
    on the TPC (the TPC ISA includes "random number production", §2.2)
    with a deterministic per-call seed, so concrete training runs are
    reproducible and backward re-derives the same mask.
    """

    def __init__(self, p: float = 0.1, *, training: bool = False,
                 seed: int = 0, name: str = "dropout"):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout p must be in [0, 1), got {p}")
        self._name = name
        self.p = p
        self.training = training
        self._seed = seed
        self._calls = 0

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        self._calls += 1
        return F.dropout(
            x, self.p, seed=self._seed * 1_000_003 + self._calls,
        )


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module, name: str = "seq"):
        super().__init__()
        self._name = name
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
