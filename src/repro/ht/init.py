"""Parameter initializers.

Concrete initializers produce numpy data; ``materialize=False`` builds
shape-only parameters for symbolic (paper-scale) recordings where the
weight values are irrelevant to timing.
"""

from __future__ import annotations

import math

import numpy as np

from ..hw.dtypes import DType, numpy_dtype
from ..util.rng import make_rng
from .tensor import Parameter, Shape


def zeros(
    shape: Shape,
    *,
    dtype: DType = DType.BF16,
    name: str = "",
    materialize: bool = True,
) -> Parameter:
    """An all-zeros parameter (biases, LayerNorm beta)."""
    data = np.zeros(shape, dtype=numpy_dtype(dtype)) if materialize else None
    return Parameter(data, shape=shape, dtype=dtype, name=name)


def ones(
    shape: Shape,
    *,
    dtype: DType = DType.BF16,
    name: str = "",
    materialize: bool = True,
) -> Parameter:
    """An all-ones parameter (LayerNorm gamma)."""
    data = np.ones(shape, dtype=numpy_dtype(dtype)) if materialize else None
    return Parameter(data, shape=shape, dtype=dtype, name=name)


def normal(
    shape: Shape,
    *,
    std: float = 0.02,
    dtype: DType = DType.BF16,
    rng: np.random.Generator | None = None,
    name: str = "",
    materialize: bool = True,
) -> Parameter:
    """A normal(0, std) parameter (embedding tables, GPT-style init)."""
    data = None
    if materialize:
        rng = rng or make_rng()
        data = rng.normal(0.0, std, size=shape).astype(numpy_dtype(dtype))
    return Parameter(data, shape=shape, dtype=dtype, name=name)


def xavier_uniform(
    shape: Shape,
    *,
    dtype: DType = DType.BF16,
    rng: np.random.Generator | None = None,
    name: str = "",
    materialize: bool = True,
) -> Parameter:
    """Glorot-uniform init for weight matrices (fan_in, fan_out) = shape[-2:]."""
    data = None
    if materialize:
        rng = rng or make_rng()
        fan_in = shape[-2] if len(shape) >= 2 else shape[-1]
        fan_out = shape[-1]
        bound = math.sqrt(6.0 / (fan_in + fan_out))
        data = rng.uniform(-bound, bound, size=shape).astype(numpy_dtype(dtype))
    return Parameter(data, shape=shape, dtype=dtype, name=name)
