"""Functional ops of the ``ht`` frontend.

Every function here emits exactly one graph node (plus eager numpy
compute in concrete mode) and registers a tape entry when gradients are
required. The op vocabulary intentionally matches the paper's Table 1
probes and §4's insight #2: *basic Torch-level operations*, no
``einsum``-style abstractions, so the GraphCompiler sees the mapping-
friendly graph the paper recommends.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..synapse.ops import op as op_def
from ..util.errors import ShapeError
from . import recorder as _rec
from .recorder import TapeEntry
from .tensor import Parameter, Tensor, ensure_tensor

TensorLike = "Tensor | Parameter"


def apply_op(
    op_name: str,
    inputs: list[TensorLike],
    attrs: dict[str, Any] | None = None,
    *,
    differentiable: bool = True,
    name: str = "",
) -> Tensor:
    """Emit one node; the workhorse behind every public function."""
    rec = _rec.current()
    attrs = dict(attrs or {})
    tensors = [ensure_tensor(t) for t in inputs]
    opdef = op_def(op_name)
    out_shape = opdef.infer_shape([t.shape for t in tensors], attrs)
    out_value = rec.graph.add_value(out_shape, tensors[0].dtype, name=name)
    rec.graph.add_node(
        op_name,
        [t.vid for t in tensors],
        out_value,
        attrs=attrs,
        src=rec.src_override or "",
        scope=rec.scope_name(),
    )
    data = None
    if rec.concrete:
        data = opdef.compute([t.data for t in tensors], attrs)
        if tuple(np.shape(data)) != out_shape:
            raise ShapeError(
                f"{op_name}: compute produced shape {np.shape(data)}, "
                f"inferred {out_shape}"
            )
    requires_grad = differentiable and any(t.requires_grad for t in tensors)
    out = Tensor(out_value, data, requires_grad=requires_grad)
    if requires_grad:
        rec.tape.append(TapeEntry(op_name, tensors, out, attrs))
    return out


# -- arithmetic ---------------------------------------------------------------


def matmul(a: TensorLike, b: TensorLike, *, transpose_a: bool = False,
           transpose_b: bool = False) -> Tensor:
    """Matrix product — the only op that reaches the MME (Table 1)."""
    return apply_op("matmul", [a, b], {
        "transpose_a": transpose_a, "transpose_b": transpose_b,
    })


def bmm(a: TensorLike, b: TensorLike) -> Tensor:
    """Batched matmul (torch.bmm); same node kind as :func:`matmul`."""
    return matmul(a, b)


def add(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise sum (broadcasting)."""
    return apply_op("add", [a, b])


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise difference (broadcasting)."""
    return apply_op("sub", [a, b])


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise product (broadcasting)."""
    return apply_op("mul", [a, b])


def div(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise quotient (broadcasting)."""
    return apply_op("div", [a, b])


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise maximum."""
    return apply_op("maximum", [a, b])


def where(mask: TensorLike, a: TensorLike, b: TensorLike) -> Tensor:
    """a where mask is nonzero, else b; the mask carries no gradient."""
    return apply_op("where", [mask, a, b])


def add_scalar(x: TensorLike, alpha: float) -> Tensor:
    """scalar + tensor — still a TPC op (Table 1)."""
    return apply_op("sadd", [x], {"alpha": alpha})


def mul_scalar(x: TensorLike, alpha: float) -> Tensor:
    """scalar * tensor — still a TPC op (Table 1)."""
    return apply_op("smul", [x], {"alpha": alpha})


def pow_scalar(x: TensorLike, alpha: float) -> Tensor:
    """tensor ** scalar."""
    return apply_op("spow", [x], {"alpha": alpha})


def neg(x: TensorLike) -> Tensor:
    """Negation."""
    return apply_op("neg", [x])


def square(x: TensorLike) -> Tensor:
    """torch.square."""
    return apply_op("square", [x])


def abs(x: TensorLike) -> Tensor:  # noqa: A001 - mirrors torch.abs
    """Absolute value."""
    return apply_op("abs", [x])


# -- special functions ---------------------------------------------------------


def exp(x: TensorLike) -> Tensor:
    """Exponential (12-cycle TPC special function)."""
    return apply_op("exp", [x])


def log(x: TensorLike) -> Tensor:
    """Natural logarithm."""
    return apply_op("log", [x])


def sqrt(x: TensorLike) -> Tensor:
    """Square root."""
    return apply_op("sqrt", [x])


def rsqrt(x: TensorLike) -> Tensor:
    """Reciprocal square root."""
    return apply_op("rsqrt", [x])


def sigmoid(x: TensorLike) -> Tensor:
    """Logistic sigmoid."""
    return apply_op("sigmoid", [x])


def tanh(x: TensorLike) -> Tensor:
    """Hyperbolic tangent."""
    return apply_op("tanh", [x])


# -- activations -----------------------------------------------------------------


def relu(x: TensorLike) -> Tensor:
    """ReLU."""
    return apply_op("relu", [x])


def leaky_relu(x: TensorLike, slope: float = 0.01) -> Tensor:
    """LeakyReLU."""
    return apply_op("leaky_relu", [x], {"slope": slope})


def gelu(x: TensorLike) -> Tensor:
    """GELU (tanh approximation)."""
    return apply_op("gelu", [x])


def elu(x: TensorLike) -> Tensor:
    """ELU — the Linear Transformer feature-map activation."""
    return apply_op("elu", [x])


def glu(x: TensorLike) -> Tensor:
    """Gated linear unit; triggers a SynapseAI recompilation (§3.3)."""
    return apply_op("glu", [x])


def dropout(x: TensorLike, p: float, *, seed: int, training: bool = True) -> Tensor:
    """Training dropout: mask + rescale on the TPC; identity when not
    training or ``p == 0``. The same ``seed`` reproduces the mask."""
    if not training or p == 0.0:
        return ensure_tensor(x)
    if not 0.0 < p < 1.0:
        raise ShapeError(f"dropout p must be in [0, 1), got {p}")
    return apply_op("dropout", [x], {"p": float(p), "seed": int(seed)})


ACTIVATIONS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "gelu": gelu,
    "elu": elu,
    "glu": glu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "exp": exp,
}


# -- reductions --------------------------------------------------------------------


def _check_axis(axis: "int | None") -> "int | None":
    # multi-axis reductions are not differentiable through this
    # frontend; keep the surface honest rather than failing deep in
    # the autograd
    if axis is not None and not isinstance(axis, int):
        raise ShapeError(
            f"reduction axis must be an int or None, got {axis!r}; "
            "chain single-axis reductions for multi-axis sums"
        )
    return axis


def sum(x: TensorLike, axis: int | None = None,  # noqa: A001
        keepdims: bool = False) -> Tensor:
    """Sum reduction (SIMD-hostile on the TPC, §3.3)."""
    return apply_op("sum", [x], {"axis": _check_axis(axis),
                                 "keepdims": keepdims})


def mean(x: TensorLike, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Mean reduction."""
    return apply_op("mean", [x], {"axis": _check_axis(axis),
                                  "keepdims": keepdims})


def max(x: TensorLike, axis: int | None = None,  # noqa: A001
        keepdims: bool = False) -> Tensor:
    """Max reduction."""
    return apply_op("max", [x], {"axis": _check_axis(axis),
                                 "keepdims": keepdims})


# -- composites (lowered by the GraphCompiler) ----------------------------------------


def softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Softmax — lowered to max/sub/exp/sum/div, all on the TPC."""
    return apply_op("softmax", [x], {"axis": axis})


def log_softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Log-softmax (classification losses)."""
    return apply_op("log_softmax", [x], {"axis": axis})


# -- shape / data movement ---------------------------------------------------------


def reshape(x: TensorLike, shape: tuple[int, ...]) -> Tensor:
    """Reshape (device-free view)."""
    shape = tuple(int(d) for d in shape)
    if any(d == -1 for d in shape):
        known = 1
        for d in shape:
            if d != -1:
                known *= d
        missing = ensure_tensor(x).numel // known
        shape = tuple(missing if d == -1 else d for d in shape)
    return apply_op("reshape", [x], {"shape": shape})


def transpose(x: TensorLike, axes: tuple[int, ...] | None = None) -> Tensor:
    """Physical permutation (pays memory traffic)."""
    t = ensure_tensor(x)
    if axes is None:
        axes = tuple(reversed(range(t.ndim)))
    return apply_op("transpose", [t], {"axes": tuple(axes)})


def broadcast_to(x: TensorLike, shape: tuple[int, ...]) -> Tensor:
    """Broadcast (view)."""
    return apply_op("broadcast_to", [x], {"shape": tuple(shape)})


def slice_last(x: TensorLike, lo: int, hi: int) -> Tensor:
    """Contiguous slice along the last dim."""
    return apply_op("slice_last", [x], {"lo": lo, "hi": hi})


def concat_last(a: TensorLike, b: TensorLike) -> Tensor:
    """Concatenate along the last dim."""
    return apply_op("concat_last", [a, b])


def slice_rows(x: TensorLike, lo: int, hi: int) -> Tensor:
    """Row-block slice along dim -2 (free view for contiguous tensors)."""
    return apply_op("slice_rows", [x], {"lo": lo, "hi": hi})


def concat_rows(a: TensorLike, b: TensorLike) -> Tensor:
    """Concatenate along dim -2."""
    return apply_op("concat_rows", [a, b])


def gather_rows(table: TensorLike, indices: TensorLike) -> Tensor:
    """Embedding-style row gather; ``indices`` carries no gradient."""
    return apply_op("gather_rows", [table, indices])


def onehot(indices: TensorLike, depth: int) -> Tensor:
    """One-hot expansion of integer indices."""
    return apply_op("onehot", [indices], {"depth": depth},
                    differentiable=False)


def ones_like(x: TensorLike) -> Tensor:
    """torch.ones_like (an actual TPC fill op, as in the FAVOR listing)."""
    return apply_op("ones_like", [x], differentiable=False)


def zeros_like(x: TensorLike) -> Tensor:
    """torch.zeros_like."""
    return apply_op("zeros_like", [x], differentiable=False)


def step_ge0(x: TensorLike) -> Tensor:
    """1 where x >= 0 else 0 (ReLU-family gradients)."""
    return apply_op("step_ge0", [x], differentiable=False)


def eq(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise equality mask (max-reduction gradients)."""
    return apply_op("eq", [a, b], differentiable=False)


# -- losses ---------------------------------------------------------------------


def cross_entropy_with_logits(logits: TensorLike, onehot_targets: TensorLike) -> Tensor:
    """Mean cross-entropy between logits and one-hot targets.

    Composed from primitives (log_softmax, mul, sum, mean) exactly like
    a PyTorch program would lower — the loss ops land on the TPC.
    """
    logp = log_softmax(logits, axis=-1)
    picked = mul(logp, onehot_targets)
    per_example = neg(sum(picked, axis=-1))
    return mean(per_example)
