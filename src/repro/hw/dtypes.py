"""Device data types supported by the simulated Gaudi.

The TPC's SIMD unit is 2048 bits wide and supports float32, bfloat16,
INT32, INT16 and INT8 (§2.2 of the paper); the number of SIMD lanes for
a given dtype is ``2048 / (8 * itemsize)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class DType(enum.Enum):
    """Enumerates device dtypes with their canonical names."""

    FP32 = "fp32"
    BF16 = "bf16"
    FP16 = "fp16"
    INT32 = "int32"
    INT16 = "int16"
    INT8 = "int8"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class DTypeInfo:
    """Static properties of a device dtype."""

    dtype: DType
    itemsize: int  # bytes
    is_float: bool
    numpy_dtype: np.dtype


_INFO: dict[DType, DTypeInfo] = {
    # bf16 has no native numpy dtype; float32 is used as the functional
    # carrier — the *performance* model only consumes itemsize.
    DType.FP32: DTypeInfo(DType.FP32, 4, True, np.dtype(np.float32)),
    DType.BF16: DTypeInfo(DType.BF16, 2, True, np.dtype(np.float32)),
    DType.FP16: DTypeInfo(DType.FP16, 2, True, np.dtype(np.float16)),
    DType.INT32: DTypeInfo(DType.INT32, 4, False, np.dtype(np.int32)),
    DType.INT16: DTypeInfo(DType.INT16, 2, False, np.dtype(np.int16)),
    DType.INT8: DTypeInfo(DType.INT8, 1, False, np.dtype(np.int8)),
}

#: SIMD vector width of a TPC in bits (§2.2).
TPC_VECTOR_BITS = 2048


def dtype_info(dtype: DType) -> DTypeInfo:
    """Return static info for ``dtype``."""
    return _INFO[dtype]


def itemsize(dtype: DType) -> int:
    """Bytes per element of ``dtype``."""
    return _INFO[dtype].itemsize


def simd_lanes(dtype: DType, vector_bits: int = TPC_VECTOR_BITS) -> int:
    """SIMD lanes available for ``dtype`` in a ``vector_bits``-wide VPU."""
    return vector_bits // (8 * _INFO[dtype].itemsize)


def numpy_dtype(dtype: DType) -> np.dtype:
    """Numpy dtype used as the functional carrier for ``dtype``."""
    return _INFO[dtype].numpy_dtype


def parse_dtype(value: "DType | str") -> DType:
    """Accept a :class:`DType` or its string name (``"bf16"`` etc.)."""
    if isinstance(value, DType):
        return value
    try:
        return DType(value)
    except ValueError:
        raise ValueError(f"unknown dtype {value!r}; expected one of "
                         f"{[d.value for d in DType]}") from None
