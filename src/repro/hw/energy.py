"""Energy model: joules per executed schedule (extension).

The paper measures time, not power; its introduction nonetheless
motivates the work with "energy efficiency ... and deployment cost".
This extension attaches a standard architectural energy model to the
simulator:

``E = sum_ops (flops x pJ/FLOP(engine)) + bytes x pJ/B(HBM)
     + idle_power x makespan``

Constants are *nominal* (order-of-magnitude for a 7nm-class training
ASIC and HBM2) and clearly labeled as such; the value of the model is
*relative* conclusions — which attention variant costs fewer joules
per token — not absolute watts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ConfigError
from .costmodel import EngineKind


@dataclass(frozen=True)
class EnergyConfig:
    """Nominal energy constants."""

    #: MAC-array arithmetic (systolic, amortized control)
    mme_pj_per_flop: float = 0.8
    #: SIMD arithmetic (VLIW fetch/decode per bundle amortized worse)
    tpc_pj_per_flop: float = 2.0
    #: HBM access energy
    hbm_pj_per_byte: float = 7.0
    #: DMA/shared-memory staging
    dma_pj_per_byte: float = 1.5
    #: static + fan/board power burned over the makespan, in watts
    idle_watts: float = 100.0

    def __post_init__(self) -> None:
        for name in ("mme_pj_per_flop", "tpc_pj_per_flop",
                     "hbm_pj_per_byte", "dma_pj_per_byte", "idle_watts"):
            if getattr(self, name) < 0:
                raise ConfigError(f"EnergyConfig.{name} must be >= 0")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules attributed per component."""

    mme_joules: float
    tpc_joules: float
    hbm_joules: float
    dma_joules: float
    static_joules: float

    @property
    def total_joules(self) -> float:
        """Sum of all components."""
        return (self.mme_joules + self.tpc_joules + self.hbm_joules
                + self.dma_joules + self.static_joules)

    def dominant(self) -> str:
        """Name of the largest dynamic component."""
        parts = {
            "mme": self.mme_joules,
            "tpc": self.tpc_joules,
            "hbm": self.hbm_joules,
            "dma": self.dma_joules,
        }
        return max(parts, key=parts.get)


def schedule_energy(
    schedule,
    makespan_us: float,
    config: EnergyConfig | None = None,
) -> EnergyBreakdown:
    """Energy of one executed schedule.

    ``schedule`` is a :class:`~repro.synapse.schedule.Schedule`;
    ``makespan_us`` the executed duration (for the static term).
    """
    if makespan_us < 0:
        raise ConfigError(f"makespan must be >= 0, got {makespan_us}")
    cfg = config or EnergyConfig()
    mme = tpc = hbm = dma = 0.0
    for op in schedule.ops:
        flops = op.flops
        bytes_moved = sum(i.bytes_total for i in op.items)
        if op.engine is EngineKind.MME:
            mme += flops * cfg.mme_pj_per_flop
            hbm += bytes_moved * cfg.hbm_pj_per_byte
        elif op.engine is EngineKind.TPC:
            tpc += flops * cfg.tpc_pj_per_flop
            hbm += bytes_moved * cfg.hbm_pj_per_byte
        elif op.engine is EngineKind.DMA:
            dma += bytes_moved * cfg.dma_pj_per_byte
    static = cfg.idle_watts * (makespan_us / 1e6)
    pj = 1e-12
    return EnergyBreakdown(
        mme_joules=mme * pj,
        tpc_joules=tpc * pj,
        hbm_joules=hbm * pj,
        dma_joules=dma * pj,
        static_joules=static,
    )


def joules_per_token(breakdown: EnergyBreakdown, tokens: int) -> float:
    """Energy efficiency metric for LM training/inference."""
    if tokens <= 0:
        raise ConfigError(f"tokens must be positive, got {tokens}")
    return breakdown.total_joules / tokens
