"""Analytic cost models: how long does a unit of work take on each engine.

The simulator times every scheduled op with one of these models. A
:class:`WorkItem` is the engine-neutral description of one op's work
(FLOPs, memory traffic, matmul dims, special-function kind); the
per-engine models convert it to a duration in microseconds.

Model summary
-------------
MME (``MMEModel``)
    ``time = flops / (peak * spatial * fill) + launch``.
    ``spatial`` is output-tile coverage of the MAC array and ``fill``
    the K-pipeline fill factor. Large matmuls saturate ~14.6 TFLOPS as
    in Table 2. The steep falloff the paper measures at size 128
    (~2.3 TFLOPS) is *not* a rate effect: it is the per-call host
    dispatch cost of launching ``torch.bmm`` eagerly through
    PyTorch/SynapseAI, modeled by :data:`EAGER_DISPATCH_OVERHEAD_US`
    and charged by the Table 2 experiment, not by in-graph execution
    (a compiled graph launches once for many ops).

TPC (``TPCModel``)
    Elementwise ops: max(SIMD compute, HBM traffic). Reductions: low
    SIMD efficiency (§3.3: reductions are ill-suited to SIMD). Special
    functions: fixed VPU cycles per element. Matmuls forced onto the TPC
    (Table 2's custom kernel) go through :func:`tpc_matmul_cycles`, a
    tiled-kernel cycle count calibrated against the paper's TPC column.

DMA (``DMAModel``)
    latency + bytes / bandwidth.
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass, field

from ..util.errors import ConfigError
from ..util.units import s_to_us
from .config import DMAConfig, GaudiConfig, HBMConfig, MMEConfig, TPCClusterConfig
from .dtypes import DType


class EngineKind(enum.Enum):
    """The compute/transfer engines visible in an accelerator trace.

    MME/TPC are the Gaudi split the paper profiles; PE is the
    processing-element grid of a wafer-scale dataflow backend
    (:mod:`repro.hw.backends.wse`). DMA/HOST/NIC are shared roles every
    backend maps onto its own channels.
    """

    MME = "MME"
    TPC = "TPC"
    DMA = "DMA"
    HOST = "HOST"
    #: the on-chip RoCE NIC driving the HLS-1 fabric (§2.1); occupied
    #: for the duration of a collective, timed by the fabric model
    NIC = "NIC"
    #: wafer-scale processing-element grid (Cerebras-style dataflow);
    #: runs every compute class, fed by streamed weights
    PE = "PE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class OpClass(enum.Enum):
    """Coarse class of an op; determines which cost formula applies."""

    MATMUL = "matmul"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    SPECIAL = "special"
    DATA_MOVE = "data_move"
    HOST = "host"
    #: multi-card communication (all_reduce / all_gather / broadcast);
    #: free on a single card, timed by the fabric model across cards
    COLLECTIVE = "collective"


@dataclass(frozen=True)
class MatmulDims:
    """Dimensions of a (batched) matrix multiplication C[B,M,N] = A@Bm."""

    batch: int
    m: int
    n: int
    k: int

    @property
    def flops(self) -> float:
        """Multiply-accumulate FLOPs (2 per MAC)."""
        return 2.0 * self.batch * self.m * self.n * self.k


@dataclass(frozen=True)
class WorkItem:
    """Engine-neutral description of one op's work.

    ``flops`` is the arithmetic work; ``bytes_read``/``bytes_written``
    the HBM traffic assuming no fusion (the compiler adjusts them when
    it fuses elementwise chains); ``elements`` the number of output
    elements (used by special-function and reduction costing);
    ``matmul`` carries GEMM dimensions when ``op_class`` is MATMUL;
    ``special_fn`` names the transcendental for SPECIAL ops.
    """

    name: str
    op_class: OpClass
    flops: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    elements: int = 0
    dtype: DType = DType.BF16
    matmul: MatmulDims | None = None
    special_fn: str | None = None
    fixed_time_us: float = 0.0  # extra cost, e.g. GLU recompilation (§3.3)
    #: DATA_MOVE only: an inter-engine staging transfer that pipelines
    #: behind the consumer, exposing only a fraction of its bytes.
    pipelined: bool = False

    @property
    def bytes_total(self) -> int:
        """Total HBM traffic in bytes."""
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class CostParts:
    """One op's duration, decomposed for the contended runtime.

    ``time_us`` folds compute and memory into ``max(compute, mem) +
    serial``; this is the unfolded form. ``compute_us`` is the engine's
    arithmetic floor (overlaps memory traffic), ``hbm_bytes`` the HBM
    traffic the op must drain, ``rate_cap`` the fastest the op alone
    can drain it (bytes/s — finite only for DMA, whose channel is
    narrower than HBM), and ``launch_us``/``fixed_us`` serial overheads
    paid after the overlapped phase. Recomposing with the full
    effective bandwidth reproduces ``time_us`` exactly:

        max(compute_us, s_to_us(hbm_bytes / min(rate_cap, bw)))
            + launch_us + fixed_us
    """

    compute_us: float = 0.0
    hbm_bytes: float = 0.0
    rate_cap: float = math.inf
    launch_us: float = 0.0
    fixed_us: float = 0.0

    @property
    def serial_us(self) -> float:
        """Serial tail paid outside the compute/memory overlap."""
        return self.launch_us + self.fixed_us

    def uncontended_mem_us(self, bandwidth_bytes_per_s: float) -> float:
        """Drain time at the full (unshared) bandwidth, in us."""
        if self.hbm_bytes <= 0:
            return 0.0
        rate = min(self.rate_cap, bandwidth_bytes_per_s)
        return s_to_us(self.hbm_bytes / rate)

    def uncontended_time_us(self, bandwidth_bytes_per_s: float) -> float:
        """Recomposed duration assuming no bandwidth sharing."""
        return (
            max(self.compute_us, self.uncontended_mem_us(bandwidth_bytes_per_s))
            + self.launch_us
            + self.fixed_us
        )


#: Per-call host dispatch cost (us) of launching a single op eagerly
#: through PyTorch + SynapseAI, as the paper's Table 2 microbenchmark
#: does with ``torch.bmm``. Calibrated so a 128-sized batch-64 bmm
#: achieves ~2.35 TFLOPS (Table 2) despite the MME's ~14.7 peak.
#: In-graph execution does not pay this per op.
EAGER_DISPATCH_OVERHEAD_US = 94.0


class MMEModel:
    """Timing model of the Matrix Multiplication Engine."""

    def __init__(self, config: MMEConfig, hbm: HBMConfig):
        self.config = config
        self.hbm = hbm

    @staticmethod
    def dtype_rate_factor(dtype: DType) -> float:
        """MAC-array throughput multiplier per dtype.

        The calibration dtype is bf16 (factor 1.0); fp32 halves the
        array's MAC rate, int8 doubles it — matching how Gaudi's MME
        datapath scales with element width.
        """
        from .dtypes import itemsize as _itemsize

        return min(2.0, 2.0 / _itemsize(dtype))

    def achieved_tflops(self, dims: MatmulDims, dtype: DType = DType.BF16) -> float:
        """Sustained TFLOP/s for a matmul of the given dimensions."""
        cfg = self.config
        spatial = (min(dims.m, cfg.rows) / cfg.rows) * (
            min(dims.n, cfg.cols) / cfg.cols
        )
        fill = dims.k / (dims.k + cfg.fill_cycles)
        return cfg.peak_tflops * spatial * fill * self.dtype_rate_factor(dtype)

    def matmul_time_us(self, dims: MatmulDims, dtype: DType = DType.BF16) -> float:
        """Duration of a (batched) matmul, including launch overhead."""
        rate = self.achieved_tflops(dims, dtype) * 1e12  # FLOP/s
        compute_us = s_to_us(dims.flops / rate)
        return compute_us + self.config.launch_overhead_us

    def cost_parts(self, item: WorkItem) -> CostParts:
        """Decomposed cost; only MATMUL items run on the MME.

        Launch overhead sits inside ``matmul_time_us`` (it pipelines
        into the array fill), so it lands in ``compute_us`` here.
        """
        if item.op_class is not OpClass.MATMUL or item.matmul is None:
            raise ConfigError(
                f"MME can only execute matmul work, got {item.op_class} "
                f"for op {item.name!r}"
            )
        return CostParts(
            compute_us=self.matmul_time_us(item.matmul, item.dtype),
            hbm_bytes=float(item.bytes_total),
            fixed_us=item.fixed_time_us,
        )

    def time_us(self, item: WorkItem) -> float:
        """Duration of ``item``; only MATMUL items run on the MME."""
        parts = self.cost_parts(item)
        mem_us = s_to_us(parts.hbm_bytes / self.hbm.effective_bandwidth)
        return max(parts.compute_us, mem_us) + parts.launch_us + parts.fixed_us


# Calibrated constants of the tiled TPC matmul kernel cycle model (see
# repro.tpc.kernels.bmm for the kernel itself). Global vector accesses
# are double-buffered (half the architectural 4 cycles is exposed),
# inputs are re-fetched ~1.75x due to finite local memory, and each
# index-space member (4 output rows) pays a ~40-cycle prologue. The
# VLIW loop sustains 97.2 % of SIMD peak.
TPC_MATMUL_LOAD_CYCLES_PER_VECTOR = 2.0
TPC_MATMUL_STORE_CYCLES_PER_VECTOR = 2.0
TPC_MATMUL_INPUT_REFETCH = 1.75
TPC_MATMUL_PROLOGUE_CYCLES = 40.0
TPC_MATMUL_ROWS_PER_MEMBER = 4
TPC_MATMUL_LOOP_EFF = 0.972


def tpc_matmul_cycles(
    config: TPCClusterConfig, dtype: DType, dims: MatmulDims
) -> float:
    """Cycle count of the tiled batched-matmul TPC kernel.

    This is the analytic form of the kernel in
    :mod:`repro.tpc.kernels.bmm` (which the paper takes from Habana's
    ``Habana_Custom_Kernel`` repository); per-core cycles multiplied out
    over the cluster. Calibrated against the paper's Table 2 TPC column
    (1.86 -> 2.19 TFLOPS from size 128 to 2048).
    """
    lanes = config.lanes(dtype)
    cores = config.num_cores
    fma = dims.batch * dims.m * dims.k * math.ceil(dims.n / lanes)
    fma_cycles = fma / TPC_MATMUL_LOOP_EFF
    in_elements = dims.batch * (dims.m * dims.k + dims.k * dims.n)
    load_cycles = (
        in_elements / lanes
    ) * TPC_MATMUL_LOAD_CYCLES_PER_VECTOR * TPC_MATMUL_INPUT_REFETCH
    out_elements = dims.batch * dims.m * dims.n
    store_cycles = (out_elements / lanes) * TPC_MATMUL_STORE_CYCLES_PER_VECTOR
    members = dims.batch * math.ceil(dims.m / TPC_MATMUL_ROWS_PER_MEMBER)
    prologue_cycles = members * TPC_MATMUL_PROLOGUE_CYCLES
    total = fma_cycles + load_cycles + store_cycles + prologue_cycles
    return total / cores


# -- Attention kernel-pack analytic twins (GFormer-style lowerings) ----------
#
# The kernel pack in :mod:`repro.tpc.kernels` (fused_softmax,
# windowed_attention, flash_attention) replaces the naive attention cone
# with fused kernels. These helpers are their cost-model twins: they
# shape the :class:`MatmulDims` that the ``attention_lowering`` compiler
# pass puts on its work items, so the aggregate simulator prices exactly
# the MME-offload and HBM-traffic structure the mini-ISA kernels
# implement (thin-K basis GEMM, banded sweeps, tile-pair visit counts).

#: Width of the fixed exponential basis the fused softmax multiplies
#: against on the MME (GFormer §3: exp-as-matmul offload). A thin K
#: keeps the MAC array's fill factor low (``k / (k + fill_cycles)``),
#: which is the honest price of trading TPC special-function cycles for
#: MME MACs — the offload still wins because the op is memory-bound.
EXP_OFFLOAD_BASIS = 8


def exp_offload_dims(
    shape: tuple[int, ...], basis: int = EXP_OFFLOAD_BASIS
) -> MatmulDims:
    """GEMM dims of evaluating ``exp`` over ``shape`` on the MME.

    Every output row of the tensor becomes one GEMM row multiplied
    against a fixed ``last x basis`` interpolation basis, i.e. a single
    tall-skinny matmul of ``(rows, basis) @ (basis, last)``.
    """
    last = int(shape[-1]) if shape else 1
    numel = int(math.prod(shape)) if shape else 1
    rows = max(1, numel // max(1, last))
    return MatmulDims(1, rows, max(1, last), max(1, int(basis)))


@functools.lru_cache(maxsize=None)
def attention_window_span(seq: int, window: int, causal: bool) -> float:
    """Mean number of keys each query attends to under a sliding window.

    Causal windows cover the ``window`` most recent positions (self
    included); bidirectional windows are centered on the query with the
    extra slot on the future side, matching the kernel's mask.
    """
    seq = int(seq)
    w = max(1, min(int(window), seq))
    if causal:
        if seq <= w:
            total = seq * (seq + 1) // 2
        else:
            total = w * (w + 1) // 2 + (seq - w) * w
        return total / seq
    lo_off = (w - 1) // 2
    hi_off = w // 2
    total = 0
    for i in range(seq):
        total += min(seq, i + hi_off + 1) - max(0, i - lo_off)
    return total / seq


def windowed_attention_dims(
    batch: int, seq: int, head_dim: int, window: int, causal: bool
) -> MatmulDims:
    """TPC-kernel GEMM twin of the banded QK^T -> softmax -> V sweep.

    The windowed kernel touches ``span`` keys per query (the mean band
    width), paying two GEMV sweeps per in-window key — scores and the
    value gather — hence ``k = 2 * head_dim``. Pricing this through
    :func:`tpc_matmul_cycles` reproduces the kernel's FMA bundle count;
    the softmax-on-the-strip epilogue rides in the model's loop/prologue
    overhead terms.
    """
    span = max(1, round(attention_window_span(seq, window, causal)))
    return MatmulDims(max(1, int(batch)), max(1, int(seq)), span,
                      2 * max(1, int(head_dim)))


@functools.lru_cache(maxsize=None)
def flash_attention_tile_pairs(
    seq: int, q_block: int, k_block: int, causal: bool
) -> int:
    """Number of (Q-tile, K-tile) pairs the flash kernel actually visits.

    Causal masking lets whole tiles above the diagonal be skipped before
    any work is issued — the tile-level analogue of the windowed
    kernel's block skipping.
    """
    seq = int(seq)
    qb = max(1, min(int(q_block), seq))
    kb = max(1, min(int(k_block), seq))
    pairs = 0
    for lo in range(0, seq, qb):
        hi = min(seq, lo + qb)  # one past the tile's last query row
        limit = hi if causal else seq
        pairs += math.ceil(limit / kb)
    return pairs


def flash_attention_dims(
    batch: int, seq: int, head_dim: int, q_block: int, k_block: int,
    causal: bool,
) -> MatmulDims:
    """MME twin of the tiled online-softmax attention kernel.

    Each visited tile pair costs two small GEMMs (Q K^T and P V), so the
    batch dimension counts ``2 * pairs`` tiles of ``q_block x k_block``
    contracting over ``head_dim``. For a non-causal sweep this tiles the
    full attention FLOPs exactly; causal sweeps shrink with the skipped
    tiles. The small ``m`` under-fills the MAC array — the honest
    fill-factor price of tiling — while HBM traffic drops to the O(seq)
    Q/K/V/O streams because the score matrix never leaves local memory.
    """
    pairs = flash_attention_tile_pairs(seq, q_block, k_block, causal)
    qb = max(1, min(int(q_block), int(seq)))
    kb = max(1, min(int(k_block), int(seq)))
    return MatmulDims(2 * max(1, int(batch)) * pairs, qb, kb,
                      max(1, int(head_dim)))


class TPCModel:
    """Timing model of the 8-core TPC cluster."""

    def __init__(self, config: TPCClusterConfig, hbm: HBMConfig):
        self.config = config
        self.hbm = hbm

    def _mem_time_us(self, item: WorkItem) -> float:
        return s_to_us(item.bytes_total / self.hbm.effective_bandwidth)

    def matmul_time_us(self, dims: MatmulDims, dtype: DType) -> float:
        """Duration of a matmul forced onto the TPC (custom kernel)."""
        cycles = tpc_matmul_cycles(self.config, dtype, dims)
        compute_us = cycles / (self.config.freq_ghz * 1e3)
        return compute_us + self.config.launch_overhead_us

    def cost_parts(self, item: WorkItem) -> CostParts:
        """Decomposed cost of ``item`` on the TPC cluster.

        Matmuls fold launch into ``compute_us`` (same as the MME path);
        every other class pays it as a serial tail. DATA_MOVE items are
        pure traffic (``compute_us`` 0).
        """
        cfg = self.config
        launch = cfg.launch_overhead_us
        bytes_total = float(item.bytes_total)
        if item.op_class is OpClass.MATMUL:
            if item.matmul is None:
                raise ConfigError(f"matmul op {item.name!r} missing dims")
            return CostParts(
                compute_us=self.matmul_time_us(item.matmul, item.dtype),
                hbm_bytes=bytes_total,
                fixed_us=item.fixed_time_us,
            )
        if item.op_class is OpClass.ELEMENTWISE:
            rate = cfg.peak_tflops(item.dtype) * 1e12 * cfg.elementwise_eff
            compute_us = s_to_us(item.flops / rate) if item.flops else 0.0
        elif item.op_class is OpClass.REDUCTION:
            rate = cfg.peak_tflops(item.dtype) * 1e12 * cfg.reduction_eff
            compute_us = s_to_us(item.flops / rate) if item.flops else 0.0
        elif item.op_class is OpClass.SPECIAL:
            fn = item.special_fn or "generic"
            cycles_per_el = cfg.special_cost(fn)
            lanes = cfg.lanes(item.dtype)
            cycles = item.elements * cycles_per_el / (lanes * cfg.num_cores)
            compute_us = cycles / (cfg.freq_ghz * 1e3)
        elif item.op_class is OpClass.DATA_MOVE:
            compute_us = 0.0
        else:
            raise ConfigError(
                f"TPC cannot execute op class {item.op_class} for {item.name!r}"
            )
        return CostParts(
            compute_us=compute_us,
            hbm_bytes=bytes_total,
            launch_us=launch,
            fixed_us=item.fixed_time_us,
        )

    def time_us(self, item: WorkItem) -> float:
        """Duration of ``item`` on the TPC cluster."""
        parts = self.cost_parts(item)
        mem_us = self._mem_time_us(item)
        return max(parts.compute_us, mem_us) + parts.launch_us + parts.fixed_us


class DMAModel:
    """Timing model of the DMA engine (MME<->TPC via shared memory)."""

    def __init__(self, config: DMAConfig):
        self.config = config

    def transfer_time_us(self, num_bytes: int, *, pipelined: bool = False) -> float:
        """Duration to move ``num_bytes`` between engines.

        ``pipelined`` transfers stage tiles through shared memory while
        the consumer already computes on earlier tiles; only
        ``pipelined_exposure`` of the traffic shows up as exposed time
        (this is why the DMA lane in the paper's traces is busy without
        serializing every producer/consumer pair).
        """
        if num_bytes < 0:
            raise ConfigError(f"transfer bytes must be >= 0, got {num_bytes}")
        effective = num_bytes * (
            self.config.pipelined_exposure if pipelined else 1.0
        )
        return self.config.latency_us + s_to_us(
            effective / self.config.bandwidth_bytes_per_s
        )

    def cost_parts(self, item: WorkItem) -> CostParts:
        """Decomposed cost of a DATA_MOVE work item.

        Pure traffic behind a fixed channel latency; the exposed bytes
        (after pipelining) drain at most at the DMA link rate, which is
        the only finite ``rate_cap`` in the model.
        """
        if item.op_class is not OpClass.DATA_MOVE:
            raise ConfigError(
                f"DMA can only execute data moves, got {item.op_class} "
                f"for op {item.name!r}"
            )
        exposed = item.bytes_total * (
            self.config.pipelined_exposure if item.pipelined else 1.0
        )
        return CostParts(
            hbm_bytes=exposed,
            rate_cap=self.config.bandwidth_bytes_per_s,
            launch_us=self.config.latency_us,
            fixed_us=item.fixed_time_us,
        )

    def time_us(self, item: WorkItem) -> float:
        """Duration of a DATA_MOVE work item."""
        if item.op_class is not OpClass.DATA_MOVE:
            raise ConfigError(
                f"DMA can only execute data moves, got {item.op_class} "
                f"for op {item.name!r}"
            )
        return (
            self.transfer_time_us(item.bytes_total, pipelined=item.pipelined)
            + item.fixed_time_us
        )


@dataclass
class CostModel:
    """Facade bundling the per-engine models for one Gaudi config."""

    config: GaudiConfig
    mme: MMEModel = field(init=False)
    tpc: TPCModel = field(init=False)
    dma: DMAModel = field(init=False)

    def __post_init__(self) -> None:
        self.mme = MMEModel(self.config.mme, self.config.hbm)
        self.tpc = TPCModel(self.config.tpc, self.config.hbm)
        self.dma = DMAModel(self.config.dma)

    # -- backend-neutral facade (shared with WSECostModel) -------------------
    # The runtime prices schedules through these three members instead
    # of reaching into Gaudi config fields, so any backend's cost model
    # exposing the same trio plugs into the same event loop.

    @property
    def mem_bandwidth(self) -> float:
        """Shared memory-channel rate the BandwidthArbiter divides
        (bytes/s) — HBM on Gaudi."""
        return self.config.hbm.effective_bandwidth

    @property
    def fused_launch_us(self) -> float:
        """Per-launch overhead of a fused elementwise chain."""
        return self.config.tpc.launch_overhead_us

    @property
    def fusion_engine(self) -> EngineKind:
        """Engine fused elementwise chains execute on."""
        return EngineKind.TPC

    def fused_parts(
        self, compute_us: float, traffic_bytes: int, fixed_us: float
    ) -> CostParts:
        """Decomposed cost of a fused chain with the given compute sum
        and chain-external traffic. On Gaudi the traffic drains through
        HBM (the arbiter's shared pool) behind one TPC launch."""
        return CostParts(
            compute_us=compute_us,
            hbm_bytes=float(traffic_bytes),
            launch_us=self.fused_launch_us,
            fixed_us=fixed_us,
        )

    def time_us(self, engine: EngineKind, item: WorkItem) -> float:
        """Duration of ``item`` on ``engine``."""
        if engine is EngineKind.MME:
            return self.mme.time_us(item)
        if engine is EngineKind.TPC:
            return self.tpc.time_us(item)
        if engine is EngineKind.DMA:
            return self.dma.time_us(item)
        if engine is EngineKind.HOST:
            return item.fixed_time_us
        if engine is EngineKind.NIC:
            # Single-card view: a collective with no peers is a no-op.
            # Across cards the runtime times it from the fabric plan
            # (per-ring-step events), not from this closed form.
            return item.fixed_time_us
        raise ConfigError(f"unknown engine {engine!r}")

    def cost_parts(self, engine: EngineKind, item: WorkItem) -> CostParts:
        """Decomposed cost of ``item`` on ``engine``."""
        if engine is EngineKind.MME:
            return self.mme.cost_parts(item)
        if engine is EngineKind.TPC:
            return self.tpc.cost_parts(item)
        if engine is EngineKind.DMA:
            return self.dma.cost_parts(item)
        if engine in (EngineKind.HOST, EngineKind.NIC):
            return CostParts(fixed_us=item.fixed_time_us)
        raise ConfigError(f"unknown engine {engine!r}")
