"""Discrete-event simulation primitives.

Two pieces are enough for the whole simulator:

* :class:`EventQueue` — a time-ordered queue with FIFO tie-breaking,
  used by the runtime to drive op-completion events;
* :class:`EngineTimeline` — a single-server resource that can only run
  one op at a time (an MME, the TPC cluster as scheduled by SynapseAI,
  a DMA channel); it allocates non-overlapping busy intervals and
  answers utilization/gap queries afterwards. The "blank areas in the
  MME operating area" that the paper keeps pointing at (Figs 4, 6, 8, 9)
  are exactly the gaps of an :class:`EngineTimeline`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..util.errors import ExecutionError


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    """Min-heap of (time, payload) events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time`` (microseconds)."""
        if time < 0:
            raise ExecutionError(f"cannot schedule event at negative time {time}")
        heapq.heappush(self._heap, _Entry(time, next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise ExecutionError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        return entry.time, entry.payload

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or ``None`` when empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class Interval:
    """A closed-open busy interval [start, end) tagged with a label."""

    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        """Length of the interval in microseconds."""
        return self.end - self.start


class EngineTimeline:
    """Single-server busy-interval ledger for one engine.

    Ops are appended in non-decreasing start order (the runtime issues
    per-engine work in order); the class enforces that intervals never
    overlap, which is the core hardware invariant — one MME, one DMA
    channel, and one TPC-cluster schedule slot at a time.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._intervals: list[Interval] = []
        self._free_at = 0.0

    @property
    def free_at(self) -> float:
        """Earliest time the engine can start new work."""
        return self._free_at

    @property
    def intervals(self) -> list[Interval]:
        """Busy intervals recorded so far (chronological)."""
        return list(self._intervals)

    def reserve(self, earliest: float, duration: float, label: str = "") -> Interval:
        """Allocate the next busy interval starting no earlier than ``earliest``.

        Returns the allocated interval; the start is ``max(earliest,
        free_at)`` so the engine never runs two ops at once.
        """
        if duration < 0:
            raise ExecutionError(
                f"{self.name}: negative duration {duration} for {label!r}"
            )
        start = max(earliest, self._free_at)
        interval = Interval(start, start + duration, label)
        self._intervals.append(interval)
        self._free_at = interval.end
        return interval

    def mirror(self, interval: Interval) -> None:
        """Append an interval reserved on a symmetric twin timeline.

        The replicated-card fast path: when N identical timelines
        replay one deterministic reservation stream, the intervals are
        equal by construction, so the twins share the frozen
        :class:`Interval` instead of re-deriving it. The caller
        guarantees ``interval.start >= free_at`` (the runtime's
        ``t0 = max(card.now)`` invariant).
        """
        self._intervals.append(interval)
        self._free_at = interval.end

    def reserve_started(
        self, start: float, duration: float, label: str = ""
    ) -> Interval:
        """:meth:`reserve` for a caller that guarantees ``start >=
        free_at`` and ``duration >= 0``.

        The epoch-driven loop starts ops at the global clock, which
        never trails the engine's ``free_at`` (the ``t0 =
        max(card.now)`` invariant), so the clamp and the validation are
        dead — this skips them plus the frozen-dataclass construction
        tax, producing the identical interval.
        """
        interval = Interval.__new__(Interval)
        interval.__dict__.update(
            start=start, end=start + duration, label=label
        )
        self._intervals.append(interval)
        self._free_at = interval.end
        return interval

    @property
    def interval_count(self) -> int:
        """Number of intervals recorded so far (a cheap mark for
        :meth:`intervals_since`)."""
        return len(self._intervals)

    def intervals_since(self, count: int) -> list[Interval]:
        """The intervals appended after the first ``count`` — what a
        run added past a mark taken with :attr:`interval_count`."""
        return self._intervals[count:]

    def mirror_many(self, intervals: list[Interval]) -> None:
        """Bulk :meth:`mirror`: replay a twin's whole chronological
        reservation stream in one append (same end state as mirroring
        each interval as it was reserved)."""
        if intervals:
            self._intervals.extend(intervals)
            self._free_at = intervals[-1].end

    def busy_time(self, until: float | None = None) -> float:
        """Total busy microseconds (optionally clipped to ``until``)."""
        total = 0.0
        for iv in self._intervals:
            end = iv.end if until is None else min(iv.end, until)
            if end > iv.start:
                total += end - iv.start
        return total

    def gaps(self, horizon: float | None = None) -> list[Interval]:
        """Idle intervals between time 0 and ``horizon`` (default: free_at)."""
        horizon = self._free_at if horizon is None else horizon
        out: list[Interval] = []
        cursor = 0.0
        for iv in self._intervals:
            if iv.start > cursor:
                out.append(Interval(cursor, min(iv.start, horizon), "idle"))
            cursor = max(cursor, iv.end)
            if cursor >= horizon:
                break
        if cursor < horizon:
            out.append(Interval(cursor, horizon, "idle"))
        return [g for g in out if g.duration > 0]

    def utilization(self, horizon: float | None = None) -> float:
        """busy / horizon in [0, 1]; 0.0 for an empty horizon."""
        horizon = self._free_at if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(until=horizon) / horizon)

    def reset(self) -> None:
        """Clear all recorded intervals."""
        self._intervals.clear()
        self._free_at = 0.0
