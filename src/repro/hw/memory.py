"""Device-memory accounting.

The paper had to shrink the end-to-end batch size to 8 at sequence
length 2048 "due to limited GAUDI memory" (§3.4, 32 GB HBM per card).
This module provides the allocator/planner that reproduces that
constraint: a byte-accurate live-set tracker used both online (during
graph recording) and offline (liveness analysis over a compiled graph).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import DeviceMemoryError
from ..util.units import fmt_bytes


@dataclass(frozen=True)
class Allocation:
    """One live device buffer."""

    handle: int
    nbytes: int
    label: str = ""


class MemoryTracker:
    """Tracks live HBM bytes and enforces capacity.

    The tracker is addressless: it models *footprint*, not placement —
    fragmentation is ignored, which matches how SynapseAI's workspace
    allocator behaves for the large contiguous activations these
    workloads produce.
    """

    def __init__(self, capacity_bytes: int, *, enforce: bool = True) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.enforce = enforce
        self._live: dict[int, Allocation] = {}
        self._next_handle = 0
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated_bytes = 0
        self.num_allocations = 0

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Allocate ``nbytes``; raises :class:`DeviceMemoryError` on overflow."""
        if nbytes < 0:
            raise ValueError(f"allocation size must be >= 0, got {nbytes}")
        nbytes = int(nbytes)
        if self.enforce and self.live_bytes + nbytes > self.capacity_bytes:
            raise DeviceMemoryError(
                self.live_bytes + nbytes,
                self.capacity_bytes,
                detail=f"while allocating {fmt_bytes(nbytes)} for {label!r}",
            )
        alloc = Allocation(self._next_handle, nbytes, label)
        self._next_handle += 1
        self._live[alloc.handle] = alloc
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.total_allocated_bytes += nbytes
        self.num_allocations += 1
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release a live allocation (idempotence is an error)."""
        if alloc.handle not in self._live:
            raise ValueError(f"double free / unknown allocation {alloc.handle}")
        del self._live[alloc.handle]
        self.live_bytes -= alloc.nbytes

    def live_allocations(self) -> list[Allocation]:
        """Currently live allocations (insertion order)."""
        return list(self._live.values())

    def headroom_bytes(self) -> int:
        """Bytes still available under capacity."""
        return self.capacity_bytes - self.live_bytes

    def would_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would fit right now."""
        return self.live_bytes + int(nbytes) <= self.capacity_bytes

    def reset(self) -> None:
        """Clear all live allocations and statistics."""
        self._live.clear()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated_bytes = 0
        self.num_allocations = 0

    def summary(self) -> dict[str, int]:
        """Stats snapshot for reports."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "total_allocated_bytes": self.total_allocated_bytes,
            "num_allocations": self.num_allocations,
        }


def plan_peak_bytes(sizes: list[int], frees: list[list[int]]) -> int:
    """Offline liveness peak: allocate ``sizes[i]`` at step i, then free
    the indices listed in ``frees[i]``.

    Used by the graph memory planner to compute a schedule's peak
    footprint without touching a tracker. Raises ``ValueError`` on
    malformed input (mismatched lengths, double frees, bad indices).
    """
    if len(sizes) != len(frees):
        raise ValueError("sizes and frees must have equal length")
    live = 0
    peak = 0
    freed: set[int] = set()
    for i, nbytes in enumerate(sizes):
        if nbytes < 0:
            raise ValueError(f"negative size at step {i}")
        live += nbytes
        peak = max(peak, live)
        for j in frees[i]:
            if j < 0 or j > i:
                raise ValueError(f"free of not-yet-allocated buffer {j} at step {i}")
            if j in freed:
                raise ValueError(f"double free of buffer {j} at step {i}")
            freed.add(j)
            live -= sizes[j]
    return peak
