"""Device objects: a simulated Gaudi card and an HLS-1 system.

A :class:`GaudiDevice` bundles the per-engine timelines, the cost
model, and the HBM tracker. The synapse runtime executes compiled
schedules *onto* a device; the device owns all mutable simulation state
so one device can run many graphs back to back (its clock keeps
advancing) or be reset between experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import GaudiConfig, HLS1Config
from .costmodel import CostModel, EngineKind
from .des import EngineTimeline
from .memory import MemoryTracker


class GaudiDevice:
    """One simulated Gaudi processor."""

    def __init__(self, config: GaudiConfig | None = None, *, enforce_memory: bool = True):
        self.config = config or GaudiConfig()
        self.cost_model = CostModel(self.config)
        self.timelines: dict[EngineKind, EngineTimeline] = {
            EngineKind.MME: EngineTimeline("MME"),
            EngineKind.TPC: EngineTimeline("TPC"),
            EngineKind.DMA: EngineTimeline("DMA"),
            EngineKind.HOST: EngineTimeline("HOST"),
            EngineKind.NIC: EngineTimeline("NIC"),
        }
        self.hbm = MemoryTracker(
            self.config.hbm.capacity_bytes, enforce=enforce_memory
        )

    @property
    def now(self) -> float:
        """Device clock: the latest completion time across engines."""
        return max(tl.free_at for tl in self.timelines.values())

    def timeline(self, engine: EngineKind) -> EngineTimeline:
        """The busy-interval ledger of ``engine``."""
        return self.timelines[engine]

    def reset(self) -> None:
        """Clear all engine timelines and memory statistics."""
        for tl in self.timelines.values():
            tl.reset()
        self.hbm.reset()

    def utilization(self, engine: EngineKind, horizon: float | None = None) -> float:
        """Fraction of time ``engine`` was busy up to ``horizon``."""
        horizon = self.now if horizon is None else horizon
        return self.timelines[engine].utilization(horizon)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        cfg = self.config
        return (
            f"{cfg.name}: MME {cfg.mme.peak_tflops:.1f} TFLOPS peak, "
            f"TPC {cfg.tpc.num_cores}x{cfg.tpc.vector_bits}b "
            f"({cfg.tpc.peak_tflops(cfg.default_dtype):.2f} TFLOPS "
            f"{cfg.default_dtype}), HBM "
            f"{cfg.hbm.capacity_bytes / (1 << 30):.0f} GiB @ "
            f"{cfg.hbm.bandwidth_bytes_per_s / 1e9:.0f} GB/s"
        )


@dataclass
class HLS1System:
    """An HLS-1 box: eight Gaudi cards behind two PCIe Gen4 switches.

    The paper runs on a single card of an HLS-1 (§3.1); the system
    object exists for the multi-card scaling extension and for host
    dataloading cost accounting.
    """

    config: HLS1Config

    def __post_init__(self) -> None:
        self.cards = [
            GaudiDevice(self.config.card) for _ in range(self.config.num_cards)
        ]

    def __len__(self) -> int:
        return len(self.cards)

    def card(self, index: int) -> GaudiDevice:
        """The ``index``-th Gaudi in the box."""
        return self.cards[index]

    def reset(self) -> None:
        """Reset every card."""
        for card in self.cards:
            card.reset()


class HLS1Device:
    """N Gaudi cards plus the shared fabric tiers, as one device.

    Unlike :class:`HLS1System` (a bag of independent cards used for
    cost accounting), an ``HLS1Device`` is what the multi-card runtime
    executes onto: every card replays the same data-parallel schedule
    on its own clock, and collective ops synchronize the clocks through
    the fabric. With ``boxes=1`` the fabric is the flat pool of
    ``num_cards`` ring links; multi-box configs add the inter-box
    Ethernet tier (``inter_fabric_bandwidth``) and the card population
    becomes ``boxes x cards_per_box`` — card index ``i`` is
    ``(box i // cards_per_box, lane i % cards_per_box)``.
    """

    def __init__(
        self,
        config: HLS1Config | None = None,
        *,
        enforce_memory: bool = True,
    ):
        self.config = config or HLS1Config()
        self.cards = [
            GaudiDevice(self.config.card, enforce_memory=enforce_memory)
            for _ in range(self.config.total_cards)
        ]

    @property
    def num_cards(self) -> int:
        """Total cards in the cluster (every box)."""
        return len(self.cards)

    @property
    def boxes(self) -> int:
        """HLS-1 boxes in the cluster."""
        return self.config.boxes

    @property
    def cards_per_box(self) -> int:
        """Cards inside each box (the all-to-all RoCE domain)."""
        return self.config.num_cards

    @property
    def interconnect(self):
        """The fabric configuration."""
        return self.config.interconnect

    @property
    def fabric_bandwidth(self) -> float:
        """Aggregate intra-box fabric capacity, bytes/s (all ring links)."""
        from .interconnect import fabric_bandwidth

        return fabric_bandwidth(self.config.interconnect, self.num_cards)

    @property
    def inter_fabric_bandwidth(self) -> float:
        """Aggregate inter-box Ethernet capacity, bytes/s (one NIC/box)."""
        return self.boxes * self.config.interconnect.eth_bandwidth_bytes_per_s

    @property
    def now(self) -> float:
        """System clock: the latest completion time across all cards."""
        return max(card.now for card in self.cards)

    def __len__(self) -> int:
        return len(self.cards)

    def card(self, index: int) -> GaudiDevice:
        """The ``index``-th Gaudi in the box."""
        return self.cards[index]

    def reset(self) -> None:
        """Reset every card."""
        for card in self.cards:
            card.reset()

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        ic = self.config.interconnect
        base = (
            f"HLS-1: {self.num_cards}x [{self.cards[0].describe()}], "
            f"RoCE {ic.roce_bandwidth_bytes_per_s / 1e9:.1f} GB/s/link @ "
            f"{ic.roce_latency_us:.1f} us"
        )
        if self.boxes > 1:
            base += (
                f", {self.boxes} boxes over Ethernet "
                f"{ic.eth_bandwidth_bytes_per_s / 1e9:.1f} GB/s/NIC @ "
                f"{ic.eth_latency_us:.1f} us"
            )
        return base


def default_device() -> GaudiDevice:
    """A fresh device with the paper-calibrated default configuration."""
    return GaudiDevice(GaudiConfig())
