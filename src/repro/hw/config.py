"""Hardware configuration for the simulated Gaudi processor and HLS-1 box.

The default values are *calibrated to the paper's measurements*, not to
Habana datasheets: the paper's Table 2 saturates batched matmul at
~14.6 TFLOPS on the MME and ~2.2 TFLOPS on the TPC cluster, so the
default clocks/widths are chosen to reproduce those achieved rates.
Where the paper gives architectural facts (8 TPCs, 2048-bit SIMD, 1 KB
scalar + 80 KB vector local memory, 32 GB HBM, RoCE v2 NICs, PCIe Gen4)
the defaults follow the paper (§2.1–§2.2, §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..util.errors import ConfigError
from ..util.units import GIB, MIB, KIB
from ..util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)
from .dtypes import DType, TPC_VECTOR_BITS, simd_lanes

#: VPU cycles per element for the exponential special function. This is
#: the single source of truth shared by the aggregate cost model
#: (``TPCClusterConfig.special_cycles``) and the mini-ISA softmax
#: kernels (``repro.tpc.kernels.softmax`` derives its per-bundle stall
#: from it), so the Fig-4 recalibration can never drift between layers.
EXP_SPECIAL_CYCLES = 15


@dataclass(frozen=True)
class MMEConfig:
    """Matrix Multiplication Engine model parameters.

    The MME is modeled as a ``rows x cols`` MAC array clocked at
    ``freq_ghz``; a matmul achieves

    ``peak * spatial * fill``

    where ``spatial`` is the fraction of the array covered by the output
    tile and ``fill = K / (K + fill_cycles)`` models pipeline fill along
    the contraction dim. Small *eagerly dispatched* ops additionally pay
    :data:`repro.hw.costmodel.EAGER_DISPATCH_OVERHEAD_US` per call —
    that host-side cost, not the array, is what limits Table 2's
    128-sized matmul to ~2.3 of ~14.7 peak TFLOPS.
    """

    rows: int = 128
    cols: int = 128
    freq_ghz: float = 0.45
    fill_cycles: int = 16
    launch_overhead_us: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int("MMEConfig.rows", self.rows)
        check_positive_int("MMEConfig.cols", self.cols)
        check_positive("MMEConfig.freq_ghz", self.freq_ghz)
        check_non_negative("MMEConfig.fill_cycles", self.fill_cycles)
        check_non_negative("MMEConfig.launch_overhead_us", self.launch_overhead_us)

    @property
    def peak_tflops(self) -> float:
        """Peak MAC throughput in TFLOP/s (2 FLOPs per MAC)."""
        return self.rows * self.cols * 2 * self.freq_ghz * 1e9 / 1e12


@dataclass(frozen=True)
class TPCClusterConfig:
    """Tensor Processing Core cluster model parameters.

    Eight VLIW/SIMD cores with 2048-bit vector units (§2.2). Throughput
    classes:

    * elementwise ops run near the SIMD peak (``elementwise_eff``) but
      are usually HBM-bandwidth bound;
    * reductions serialize across lanes and achieve ``reduction_eff`` of
      peak — the paper's explanation for why softmax hurts (§3.3);
    * special functions (exp, log, sqrt, erf, tanh, sigmoid) cost a fixed
      number of VPU cycles per element (``special_cycles``).
    """

    num_cores: int = 8
    freq_ghz: float = 1.1
    vector_bits: int = TPC_VECTOR_BITS
    elementwise_eff: float = 0.90
    reduction_eff: float = 0.10
    # exp is calibrated against Fig 4's ">80% of TPC time is softmax"
    # under the shared-HBM timing model (the compute floor of the
    # fused sub+exp chain sets softmax's TPC busy time).
    special_cycles: dict[str, int] = field(
        default_factory=lambda: {
            "exp": EXP_SPECIAL_CYCLES,
            "log": 14,
            "sqrt": 8,
            "rsqrt": 8,
            "erf": 16,
            "tanh": 14,
            "sigmoid": 14,
            "pow": 18,
            "div": 6,
        }
    )
    default_special_cycles: int = 14
    launch_overhead_us: float = 1.5
    # Local memories, per core (§2.2).
    scalar_local_bytes: int = 1 * KIB
    vector_local_bytes: int = 80 * KIB
    # Cycles to load/store one full vector from/to global memory (§2.2:
    # "every four cycles can accommodate the loading or writing of a
    # 2048-bit vector").
    global_access_cycles: int = 4

    def __post_init__(self) -> None:
        check_positive_int("TPCClusterConfig.num_cores", self.num_cores)
        check_positive("TPCClusterConfig.freq_ghz", self.freq_ghz)
        check_positive_int("TPCClusterConfig.vector_bits", self.vector_bits)
        check_fraction("TPCClusterConfig.elementwise_eff", self.elementwise_eff)
        check_fraction("TPCClusterConfig.reduction_eff", self.reduction_eff)
        check_non_negative("TPCClusterConfig.launch_overhead_us", self.launch_overhead_us)

    def lanes(self, dtype: DType) -> int:
        """SIMD lanes per core for ``dtype``."""
        return simd_lanes(dtype, self.vector_bits)

    def peak_tflops(self, dtype: DType) -> float:
        """Peak FMA throughput of the whole cluster for ``dtype``."""
        return (
            self.num_cores * self.lanes(dtype) * 2 * self.freq_ghz * 1e9 / 1e12
        )

    def special_cost(self, fn: str) -> int:
        """VPU cycles per element for special function ``fn``."""
        return self.special_cycles.get(fn, self.default_special_cycles)


@dataclass(frozen=True)
class HBMConfig:
    """On-package HBM: 32 GB per Gaudi (§3.1)."""

    capacity_bytes: int = 32 * GIB
    bandwidth_bytes_per_s: float = 1.0e12
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        check_positive("HBMConfig.capacity_bytes", self.capacity_bytes)
        check_positive("HBMConfig.bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_fraction("HBMConfig.efficiency", self.efficiency)

    @property
    def effective_bandwidth(self) -> float:
        """Sustained bandwidth in bytes/s."""
        return self.bandwidth_bytes_per_s * self.efficiency


@dataclass(frozen=True)
class SharedMemoryConfig:
    """On-die shared SRAM used for MME<->TPC exchange via DMA (§2.1)."""

    capacity_bytes: int = 24 * MIB
    bandwidth_bytes_per_s: float = 3.0e12

    def __post_init__(self) -> None:
        check_positive("SharedMemoryConfig.capacity_bytes", self.capacity_bytes)
        check_positive(
            "SharedMemoryConfig.bandwidth_bytes_per_s", self.bandwidth_bytes_per_s
        )


@dataclass(frozen=True)
class DMAConfig:
    """DMA engine streaming data between engines / HBM / shared memory.

    ``pipelined_exposure`` is the fraction of a staged inter-engine
    transfer that is *not* hidden under the consumer's compute — tile
    double-buffering through shared memory overlaps the rest.
    """

    bandwidth_bytes_per_s: float = 0.45e12
    latency_us: float = 1.0
    pipelined_exposure: float = 0.15

    def __post_init__(self) -> None:
        check_positive("DMAConfig.bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_non_negative("DMAConfig.latency_us", self.latency_us)
        check_fraction("DMAConfig.pipelined_exposure", self.pipelined_exposure)


@dataclass(frozen=True)
class GaudiConfig:
    """Full single-Gaudi configuration."""

    name: str = "gaudi-hl205"
    mme: MMEConfig = field(default_factory=MMEConfig)
    tpc: TPCClusterConfig = field(default_factory=TPCClusterConfig)
    hbm: HBMConfig = field(default_factory=HBMConfig)
    shared: SharedMemoryConfig = field(default_factory=SharedMemoryConfig)
    dma: DMAConfig = field(default_factory=DMAConfig)
    default_dtype: DType = DType.BF16

    def with_tpc_cores(self, num_cores: int) -> "GaudiConfig":
        """Derive a config with a different TPC core count (ablation A3)."""
        return replace(self, tpc=replace(self.tpc, num_cores=num_cores))


def gaudi2_config() -> GaudiConfig:
    """A Gaudi2-like configuration for cross-generation what-ifs.

    The paper studies first-generation Gaudi; Gaudi2's public deltas are
    24 TPCs (vs 8), a roughly 3-4x larger MME, 96 GB HBM2E at ~2.45 TB/s
    and a beefier DMA. Since our Gaudi1 rates are calibrated to the
    paper's measurements rather than datasheets, Gaudi2 here scales the
    calibrated numbers by the public generation-over-generation ratios —
    fine for *relative* conclusions (does the MME/TPC imbalance
    persist?), not absolute Gaudi2 performance claims.
    """
    return GaudiConfig(
        name="gaudi2-hl225",
        mme=MMEConfig(rows=192, cols=192, freq_ghz=0.60),
        tpc=TPCClusterConfig(num_cores=24, freq_ghz=1.35),
        hbm=HBMConfig(capacity_bytes=96 * GIB,
                      bandwidth_bytes_per_s=2.45e12),
        shared=SharedMemoryConfig(capacity_bytes=48 * MIB),
        dma=DMAConfig(bandwidth_bytes_per_s=1.0e12),
    )


@dataclass(frozen=True)
class InterconnectConfig:
    """Two-tier interconnect of an HLS-1 cluster (§2.1, §3.1).

    Each Gaudi exposes on-chip RoCE v2 ports; inside an HLS-1 the eight
    cards are all-to-all connected, and the host reaches them via two
    PCIe Gen 4.0 switches. Past one box, HLS-1s federate over standard
    Ethernet NICs — a far thinner, higher-latency tier than the
    intra-box links (the ``eth_*`` fields), which is what makes the
    multi-box collective hierarchy worth modeling at all.
    """

    roce_bandwidth_bytes_per_s: float = 87.5e9  # 7x100GbE toward peers
    roce_latency_us: float = 2.0
    pcie_bandwidth_bytes_per_s: float = 25.0e9  # Gen4 x16
    pcie_latency_us: float = 5.0
    eth_bandwidth_bytes_per_s: float = 12.5e9  # 100GbE per box, inter-box
    eth_latency_us: float = 10.0

    def __post_init__(self) -> None:
        check_positive(
            "InterconnectConfig.roce_bandwidth_bytes_per_s",
            self.roce_bandwidth_bytes_per_s,
        )
        check_positive(
            "InterconnectConfig.pcie_bandwidth_bytes_per_s",
            self.pcie_bandwidth_bytes_per_s,
        )
        check_positive(
            "InterconnectConfig.eth_bandwidth_bytes_per_s",
            self.eth_bandwidth_bytes_per_s,
        )
        check_non_negative("InterconnectConfig.roce_latency_us", self.roce_latency_us)
        check_non_negative("InterconnectConfig.pcie_latency_us", self.pcie_latency_us)
        check_non_negative("InterconnectConfig.eth_latency_us", self.eth_latency_us)


@dataclass(frozen=True)
class HLS1Config:
    """Habana Labs System 1 cluster: ``boxes`` x ``num_cards`` Gaudis.

    ``num_cards`` keeps its PR-3 meaning of cards *per box* (so every
    existing single-box call site is untouched); ``boxes`` scales the
    population out over the inter-box Ethernet tier. ``boxes=1`` is the
    flat all-to-all HLS-1 and must stay byte-identical to it.
    """

    card: GaudiConfig = field(default_factory=GaudiConfig)
    num_cards: int = 8
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    boxes: int = 1

    def __post_init__(self) -> None:
        check_positive_int("HLS1Config.num_cards", self.num_cards)
        check_positive_int("HLS1Config.boxes", self.boxes)
        # Ring collectives split the payload into num_cards chunks, so
        # the box only supports power-of-two populations (1, 2, 4, 8),
        # and hierarchical rings need power-of-two box counts too.
        # Same predicate as interconnect.log2_cards, inlined because
        # interconnect imports this module.
        if self.num_cards & (self.num_cards - 1):
            raise ConfigError(
                "HLS1Config.num_cards must be a power of two, "
                f"got {self.num_cards}"
            )
        if self.boxes & (self.boxes - 1):
            raise ConfigError(
                f"HLS1Config.boxes must be a power of two, got {self.boxes}"
            )

    @property
    def total_cards(self) -> int:
        """Cluster-wide card population (boxes x cards-per-box)."""
        return self.num_cards * self.boxes
