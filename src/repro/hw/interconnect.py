"""Multi-card interconnect model for the HLS-1 scaling extension.

Gaudi integrates RoCE v2 NICs on chip; inside an HLS-1 the eight cards
form an all-to-all fabric, which data-parallel training uses for
gradient all-reduce (§2.1: "GAUDI ... delivers exceptional scalability
in both expanding and multiplying setups"). The paper itself profiles a
single card; this module powers the scaling extension experiments
(DESIGN.md exps A4, A12).

Two views of the same algorithms live here:

* closed-form costs (:class:`RingAllReduce`, :class:`AllGather`) — the
  analytic reference used for cross-checks and documentation;
* per-ring-step :class:`CollectivePlan` objects
  (:func:`collective_plan`) — the event-driven decomposition the
  multi-card runtime replays, step by step, through a fabric-level
  :class:`~repro.hw.bandwidth.BandwidthArbiter` so that concurrent
  collectives contend for wire time instead of each seeing an idle
  fabric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..util.errors import ConfigError
from ..util.units import s_to_us
from .config import InterconnectConfig


@dataclass(frozen=True)
class CollectiveCost:
    """Duration breakdown of one collective operation."""

    algorithm: str
    num_cards: int
    payload_bytes: int
    time_us: float
    steps: int


class RingAllReduce:
    """Bandwidth-optimal ring all-reduce cost model.

    time = 2 (p-1)/p * bytes / link_bw  +  2 (p-1) * latency

    which is the standard Rabenseifner/ring bound; with the HLS-1's
    all-to-all wiring each card has a dedicated link to its ring
    neighbour so the links don't contend.
    """

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-reduce cost for ``payload_bytes`` across ``num_cards``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allreduce", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = 2 * (p - 1)
        lat_term = steps * self.config.roce_latency_us
        if payload_bytes < p:
            # Sub-chunk payload: the ring cannot even split the buffer
            # into p chunks, so each step moves (at most) a byte and the
            # collective is purely latency-bound. Charging the bw term
            # here would bill near-zero-byte wire steps.
            return CollectiveCost("ring-allreduce", p, payload_bytes, lat_term, steps)
        bw_term = 2.0 * (p - 1) / p * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        return CollectiveCost(
            "ring-allreduce", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


class AllGather:
    """Ring all-gather: (p-1)/p * total bytes per link + latencies."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-gather cost where each card contributes ``payload_bytes``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allgather", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = p - 1
        lat_term = steps * self.config.roce_latency_us
        if payload_bytes < p:
            # Latency-bound floor, mirroring RingAllReduce: sub-chunk
            # contributions make every ring step a near-empty message.
            return CollectiveCost("ring-allgather", p, payload_bytes, lat_term, steps)
        bw_term = (p - 1) * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        return CollectiveCost(
            "ring-allgather", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


@dataclass(frozen=True)
class RingStep:
    """One synchronous step of a ring collective, as a fabric event.

    ``wire_bytes`` is the *aggregate* traffic the step puts on the
    fabric (all p ring links send concurrently, so one all-reduce step
    moving payload/p per link totals the full payload). A zero-wire
    step models a latency-bound hop: the step still takes
    ``latency_us`` but drains nothing through the fabric arbiter.
    """

    wire_bytes: float
    latency_us: float


@dataclass(frozen=True)
class CollectivePlan:
    """Event-driven decomposition of one collective.

    The runtime replays ``steps`` in order: wait ``latency_us``, then
    drain ``wire_bytes`` through the fabric arbiter at up to
    ``rate_cap`` bytes/s. A lone collective on an idle fabric
    reproduces ``analytic_time_us`` exactly; concurrent collectives
    share the fabric pool and come out slower — that is the contention
    the closed forms cannot see.
    """

    algorithm: str
    num_cards: int
    payload_bytes: int
    steps: tuple[RingStep, ...]
    rate_cap: float
    analytic_time_us: float

    @property
    def wire_bytes(self) -> float:
        """Total fabric traffic across all steps."""
        return sum(step.wire_bytes for step in self.steps)


def fabric_bandwidth(config: InterconnectConfig, num_cards: int) -> float:
    """Aggregate fabric capacity of ``num_cards`` ring links, bytes/s.

    In the all-to-all HLS-1 wiring each card owns a dedicated link to
    its ring neighbour, so the fabric pool is ``num_cards`` links wide.
    """
    if num_cards < 1:
        raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
    return num_cards * config.roce_bandwidth_bytes_per_s


def collective_plan(
    op_name: str,
    num_cards: int,
    payload_bytes: int,
    config: InterconnectConfig,
) -> CollectivePlan:
    """Build the per-ring-step fabric plan for one collective node.

    ``op_name`` is the graph-level op (``all_reduce``, ``all_gather``
    or ``broadcast``); ``payload_bytes`` is the per-card buffer size.
    With one card every plan is empty (zero steps, zero time) so a
    1-card HLS-1 replay stays byte-identical to the single-card path.
    """
    if payload_bytes < 0:
        raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
    p = num_cards
    log2_cards(p)  # validate the population
    link_bw = config.roce_bandwidth_bytes_per_s
    latency = config.roce_latency_us

    if op_name == "all_reduce":
        analytic = RingAllReduce(config).cost(p, payload_bytes)
        if p == 1:
            return CollectivePlan("ring-allreduce", 1, payload_bytes, (), link_bw, 0.0)
        # 2(p-1) steps; each moves payload/p per link on p concurrent
        # links = payload aggregate. Sub-chunk payloads degenerate to
        # latency-only hops (see RingAllReduce.cost).
        wire = float(payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(2 * (p - 1)))
        return CollectivePlan(
            "ring-allreduce", p, payload_bytes, steps, p * link_bw, analytic.time_us
        )

    if op_name == "all_gather":
        analytic = AllGather(config).cost(p, payload_bytes)
        if p == 1:
            return CollectivePlan("ring-allgather", 1, payload_bytes, (), link_bw, 0.0)
        wire = float(p * payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(p - 1))
        return CollectivePlan(
            "ring-allgather", p, payload_bytes, steps, p * link_bw, analytic.time_us
        )

    if op_name == "broadcast":
        # Chain broadcast: the root forwards the buffer around the
        # ring, one link active per step, p-1 hops.
        if p == 1:
            return CollectivePlan("chain-broadcast", 1, payload_bytes, (), link_bw, 0.0)
        wire = float(payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(p - 1))
        analytic_us = (p - 1) * latency + (p - 1) * s_to_us(wire / link_bw)
        return CollectivePlan(
            "chain-broadcast", p, payload_bytes, steps, link_bw, analytic_us
        )

    raise ConfigError(f"unknown collective op {op_name!r}")


class HostLink:
    """PCIe Gen4 path between the external host CPU and a card (§3.1)."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Host<->device copy duration."""
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        return self.config.pcie_latency_us + s_to_us(
            payload_bytes / self.config.pcie_bandwidth_bytes_per_s
        )


def data_parallel_step_time_us(
    compute_time_us: float,
    gradient_bytes: int,
    num_cards: int,
    config: InterconnectConfig,
    *,
    overlap_fraction: float = 0.0,
) -> float:
    """One data-parallel training step: per-card compute + allreduce.

    **Analytic reference only.** The event-driven multi-card runtime
    (``synapse.runtime.HLS1Runtime``) is what A4/A12 report; this
    closed form is kept as the cross-check both studies print next to
    the simulated number. ``overlap_fraction`` is how much of the
    all-reduce hides under backward compute; 0 models the naive
    sequential step.

    The two views agree when overlap is off (one bucket, issued after
    the last backward op) up to per-bucket launch overhead. Once
    per-bucket readiness is modeled they diverge, because the analytic
    form assumes a single monolithic all-reduce over ``gradient_bytes``
    at a hand-tuned ``overlap_fraction``, while the simulated runtime
    (a) starts each bucket the moment its producing backward ops
    retire, so the hidden fraction is an *outcome*, not an input;
    (b) pays 2(p-1) link latencies per bucket, which the monolithic
    form amortizes once; and (c) shares fabric bandwidth between
    buckets that are in flight simultaneously.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ConfigError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    comm = RingAllReduce(config).cost(num_cards, gradient_bytes).time_us
    exposed = comm * (1.0 - overlap_fraction)
    hidden = comm * overlap_fraction
    # Hidden communication can only hide under actual compute time.
    return compute_time_us + exposed + max(0.0, hidden - compute_time_us)


def scaling_efficiency(step_time_1: float, step_time_p: float, p: int) -> float:
    """Weak-scaling efficiency of p cards vs 1 card at fixed per-card batch."""
    if p < 1 or step_time_1 <= 0 or step_time_p <= 0:
        raise ConfigError("invalid scaling-efficiency inputs")
    return step_time_1 / step_time_p


def log2_cards(num_cards: int) -> int:
    """Validate a power-of-two card count and return its log2."""
    if num_cards < 1 or (num_cards & (num_cards - 1)) != 0:
        raise ConfigError(f"card count must be a power of two, got {num_cards}")
    return int(math.log2(num_cards))
