"""Multi-card interconnect model for the HLS-1 scaling extension.

Gaudi integrates RoCE v2 NICs on chip; inside an HLS-1 the eight cards
form an all-to-all fabric, which data-parallel training uses for
gradient all-reduce (§2.1: "GAUDI ... delivers exceptional scalability
in both expanding and multiplying setups"). The paper itself profiles a
single card; this module powers the scaling extension experiments
(DESIGN.md exps A4, A12).

Two views of the same algorithms live here:

* closed-form costs (:class:`RingAllReduce`, :class:`AllGather`) — the
  analytic reference used for cross-checks and documentation;
* per-ring-step :class:`CollectivePlan` objects
  (:func:`collective_plan`) — the event-driven decomposition the
  multi-card runtime replays, step by step, through a fabric-level
  :class:`~repro.hw.bandwidth.BandwidthArbiter` so that concurrent
  collectives contend for wire time instead of each seeing an idle
  fabric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..util.errors import ConfigError
from ..util.units import s_to_us
from .config import InterconnectConfig


@dataclass(frozen=True)
class CollectiveCost:
    """Duration breakdown of one collective operation."""

    algorithm: str
    num_cards: int
    payload_bytes: int
    time_us: float
    steps: int


class RingAllReduce:
    """Bandwidth-optimal ring all-reduce cost model.

    time = 2 (p-1)/p * bytes / link_bw  +  2 (p-1) * latency

    which is the standard Rabenseifner/ring bound; with the HLS-1's
    all-to-all wiring each card has a dedicated link to its ring
    neighbour so the links don't contend.
    """

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-reduce cost for ``payload_bytes`` across ``num_cards``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allreduce", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = 2 * (p - 1)
        lat_term = steps * self.config.roce_latency_us
        if payload_bytes < p:
            # Sub-chunk payload: the ring cannot even split the buffer
            # into p chunks, so each step moves (at most) a byte and the
            # collective is purely latency-bound. Charging the bw term
            # here would bill near-zero-byte wire steps.
            return CollectiveCost("ring-allreduce", p, payload_bytes, lat_term, steps)
        bw_term = 2.0 * (p - 1) / p * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        return CollectiveCost(
            "ring-allreduce", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


class AllGather:
    """Ring all-gather: (p-1)/p * total bytes per link + latencies."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-gather cost where each card contributes ``payload_bytes``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allgather", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = p - 1
        lat_term = steps * self.config.roce_latency_us
        if payload_bytes < p:
            # Latency-bound floor, mirroring RingAllReduce: sub-chunk
            # contributions make every ring step a near-empty message.
            return CollectiveCost("ring-allgather", p, payload_bytes, lat_term, steps)
        bw_term = (p - 1) * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        return CollectiveCost(
            "ring-allgather", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


@dataclass(frozen=True)
class RingStep:
    """One synchronous step of a ring collective, as a fabric event.

    ``wire_bytes`` is the *aggregate* traffic the step puts on the
    fabric (all p ring links send concurrently, so one all-reduce step
    moving payload/p per link totals the full payload). A zero-wire
    step models a latency-bound hop: the step still takes
    ``latency_us`` but drains nothing through the fabric arbiter.
    ``tier`` routes the step through the fabric hierarchy: ``"intra"``
    steps drain the box-local RoCE pool, ``"inter"`` steps the
    inter-box Ethernet pool (flat single-box plans are all-intra).
    """

    wire_bytes: float
    latency_us: float
    tier: str = "intra"


@dataclass(frozen=True)
class CollectivePlan:
    """Event-driven decomposition of one collective.

    The runtime replays ``steps`` in order: wait ``latency_us``, then
    drain ``wire_bytes`` through the fabric arbiter at up to
    ``rate_cap`` bytes/s (``inter_rate_cap`` for ``tier="inter"``
    steps). A lone collective on an idle fabric reproduces
    ``analytic_time_us`` *exactly* — the analytic number is defined as
    the replayed step sum (:meth:`replay_time_us`), so the equality is
    closed-form, not a float tolerance. Concurrent collectives share
    the fabric pool and come out slower — that is the contention the
    closed forms cannot see.
    """

    algorithm: str
    num_cards: int
    payload_bytes: int
    steps: tuple[RingStep, ...]
    rate_cap: float
    analytic_time_us: float
    inter_rate_cap: float = 0.0

    @property
    def wire_bytes(self) -> float:
        """Total fabric traffic across all steps."""
        return sum(step.wire_bytes for step in self.steps)

    def replay_time_us(self) -> float:
        """The lone-fabric replay time: the exact per-step sum."""
        return _replay_sum(self.steps, self.rate_cap, self.inter_rate_cap)


def _replay_sum(
    steps: "tuple[RingStep, ...]", rate_cap: float, inter_rate_cap: float
) -> float:
    """Sum each step's latency + uncontended wire-drain time, in us.

    This is *the* closed form for a lone collective: the runtime waits
    ``latency_us`` per step and then drains ``wire_bytes`` at the
    step's tier cap, so summing the identical FP operations here makes
    plan-vs-replay equality exact instead of tolerance-based.
    """
    total = 0.0
    for step in steps:
        total += step.latency_us
        if step.wire_bytes:
            cap = inter_rate_cap if step.tier == "inter" else rate_cap
            total += s_to_us(step.wire_bytes / cap)
    return total


def fabric_bandwidth(config: InterconnectConfig, num_cards: int) -> float:
    """Aggregate fabric capacity of ``num_cards`` ring links, bytes/s.

    In the all-to-all HLS-1 wiring each card owns a dedicated link to
    its ring neighbour, so the fabric pool is ``num_cards`` links wide.
    """
    if num_cards < 1:
        raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
    return num_cards * config.roce_bandwidth_bytes_per_s


def collective_plan(
    op_name: str,
    num_cards: int,
    payload_bytes: int,
    config: InterconnectConfig,
) -> CollectivePlan:
    """Build the per-ring-step fabric plan for one collective node.

    ``op_name`` is the graph-level op (``all_reduce``, ``all_gather``,
    ``reduce_scatter`` or ``broadcast``); ``payload_bytes`` is the
    per-card buffer size. With one card every plan is empty (zero
    steps, zero time) so a 1-card HLS-1 replay stays byte-identical to
    the single-card path. ``analytic_time_us`` is the exact replayed
    step sum (:func:`_replay_sum`); the ring/gather closed forms stay
    as cross-check references and agree to FP rounding.
    """
    if payload_bytes < 0:
        raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
    p = num_cards
    log2_cards(p)  # validate the population
    link_bw = config.roce_bandwidth_bytes_per_s
    latency = config.roce_latency_us

    if op_name == "all_reduce":
        if p == 1:
            return CollectivePlan("ring-allreduce", 1, payload_bytes, (), link_bw, 0.0)
        # 2(p-1) steps; each moves payload/p per link on p concurrent
        # links = payload aggregate. Sub-chunk payloads degenerate to
        # latency-only hops (see RingAllReduce.cost).
        wire = float(payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(2 * (p - 1)))
        cap = p * link_bw
        return CollectivePlan(
            "ring-allreduce", p, payload_bytes, steps, cap,
            _replay_sum(steps, cap, 0.0),
        )

    if op_name == "all_gather":
        if p == 1:
            return CollectivePlan("ring-allgather", 1, payload_bytes, (), link_bw, 0.0)
        wire = float(p * payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(p - 1))
        cap = p * link_bw
        return CollectivePlan(
            "ring-allgather", p, payload_bytes, steps, cap,
            _replay_sum(steps, cap, 0.0),
        )

    if op_name == "reduce_scatter":
        # The first half of the ring all-reduce: p-1 reduce steps, each
        # moving payload/p per link on p concurrent links = payload
        # aggregate; every card ends with one reduced 1/p shard.
        if p == 1:
            return CollectivePlan(
                "ring-reducescatter", 1, payload_bytes, (), link_bw, 0.0
            )
        wire = float(payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(p - 1))
        cap = p * link_bw
        return CollectivePlan(
            "ring-reducescatter", p, payload_bytes, steps, cap,
            _replay_sum(steps, cap, 0.0),
        )

    if op_name == "broadcast":
        # Chain broadcast: the root forwards the buffer around the
        # ring, one link active per step, p-1 hops.
        if p == 1:
            return CollectivePlan("chain-broadcast", 1, payload_bytes, (), link_bw, 0.0)
        wire = float(payload_bytes) if payload_bytes >= p else 0.0
        steps = tuple(RingStep(wire, latency) for _ in range(p - 1))
        return CollectivePlan(
            "chain-broadcast", p, payload_bytes, steps, link_bw,
            _replay_sum(steps, link_bw, 0.0),
        )

    raise ConfigError(f"unknown collective op {op_name!r}")


def p2p_plan(
    payload_bytes: int,
    config: InterconnectConfig,
    *,
    inter: bool = False,
) -> CollectivePlan:
    """A point-to-point send/recv pair as a one-step fabric plan.

    Pipeline-parallel stage boundaries move activations (forward) and
    activation gradients (backward) card-to-card. ``inter`` picks the
    tier: box-local RoCE or the inter-box Ethernet NIC (stages usually
    split across boxes, so the boundary rides the thin tier).
    """
    if payload_bytes < 0:
        raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
    if inter:
        step = RingStep(
            float(payload_bytes), config.eth_latency_us, tier="inter"
        )
        cap = config.eth_bandwidth_bytes_per_s
        return CollectivePlan(
            "p2p-inter", 2, payload_bytes, (step,), config.roce_bandwidth_bytes_per_s,
            _replay_sum((step,), config.roce_bandwidth_bytes_per_s, cap),
            inter_rate_cap=cap,
        )
    step = RingStep(float(payload_bytes), config.roce_latency_us)
    cap = config.roce_bandwidth_bytes_per_s
    return CollectivePlan(
        "p2p-intra", 2, payload_bytes, (step,), cap,
        _replay_sum((step,), cap, 0.0),
    )


def hierarchical_collective_plan(
    op_name: str,
    boxes: int,
    cards_per_box: int,
    payload_bytes: int,
    config: InterconnectConfig,
) -> CollectivePlan:
    """A two-tier (multi-box) collective as one fabric plan.

    The hierarchy is the standard decomposition over ``boxes`` HLS-1s
    of ``cards_per_box`` cards each:

    * ``all_reduce`` — intra-box reduce-scatter, inter-box all-reduce
      of the per-card shards, intra-box all-gather;
    * ``reduce_scatter`` — intra-box reduce-scatter, then inter-box
      reduce-scatter of the shards;
    * ``all_gather`` — intra-box all-gather, then inter-box all-gather
      of the box aggregates;
    * ``broadcast`` — inter-box chain first, then concurrent intra-box
      chains.

    ``boxes=1`` returns the flat :func:`collective_plan` *verbatim* —
    not a reconstruction — so single-box traces stay byte-identical to
    the PR-3 fabric (FP non-associativity would otherwise leak in).
    Intra steps follow the flat sub-chunk convention (latency-only when
    ``payload < cards_per_box``); inter steps floor against the global
    population. Rate caps: ``boxes * cards_per_box`` concurrent RoCE
    links intra, ``boxes`` Ethernet NICs inter.
    """
    log2_cards(boxes)
    if boxes == 1:
        return collective_plan(op_name, cards_per_box, payload_bytes, config)
    if cards_per_box == 1:
        # Degenerate hierarchy: one card per box — the collective runs
        # entirely on the Ethernet tier as a flat ring over the boxes.
        flat = collective_plan(op_name, boxes, payload_bytes, config)
        steps = tuple(
            RingStep(s.wire_bytes, config.eth_latency_us, tier="inter")
            for s in flat.steps
        )
        inter_cap = (
            config.eth_bandwidth_bytes_per_s
            if flat.algorithm == "chain-broadcast"
            else boxes * config.eth_bandwidth_bytes_per_s
        )
        return CollectivePlan(
            flat.algorithm.replace("ring-", "eth-").replace("chain-", "eth-"),
            boxes, payload_bytes, steps, flat.rate_cap,
            _replay_sum(steps, flat.rate_cap, inter_cap),
            inter_rate_cap=inter_cap,
        )
    if payload_bytes < 0:
        raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
    log2_cards(cards_per_box)
    b, c = boxes, cards_per_box
    p = b * c
    link_bw = config.roce_bandwidth_bytes_per_s
    eth_bw = config.eth_bandwidth_bytes_per_s
    intra_lat = config.roce_latency_us
    inter_lat = config.eth_latency_us
    intra_cap = p * link_bw
    inter_cap = b * eth_bw

    # Aggregate wire per step: every box rings concurrently on the
    # intra phases (b rings x payload aggregate each), and the c
    # shard-rings ring concurrently over the b NICs on the inter
    # phases (c rings x payload/c aggregate each = payload).
    intra_wire = float(b * payload_bytes) if payload_bytes >= c else 0.0
    inter_wire = float(payload_bytes) if payload_bytes >= p else 0.0
    gather_intra = float(b * c * payload_bytes) if payload_bytes >= c else 0.0
    gather_inter = (
        float(b * c * payload_bytes) if c * payload_bytes >= b else 0.0
    )

    if op_name == "all_reduce":
        steps = (
            tuple(RingStep(intra_wire, intra_lat) for _ in range(c - 1))
            + tuple(
                RingStep(inter_wire, inter_lat, tier="inter")
                for _ in range(2 * (b - 1))
            )
            + tuple(RingStep(intra_wire, intra_lat) for _ in range(c - 1))
        )
        return CollectivePlan(
            "hier-allreduce", p, payload_bytes, steps, intra_cap,
            _replay_sum(steps, intra_cap, inter_cap),
            inter_rate_cap=inter_cap,
        )

    if op_name == "reduce_scatter":
        steps = (
            tuple(RingStep(intra_wire, intra_lat) for _ in range(c - 1))
            + tuple(
                RingStep(inter_wire, inter_lat, tier="inter")
                for _ in range(b - 1)
            )
        )
        return CollectivePlan(
            "hier-reducescatter", p, payload_bytes, steps, intra_cap,
            _replay_sum(steps, intra_cap, inter_cap),
            inter_rate_cap=inter_cap,
        )

    if op_name == "all_gather":
        steps = (
            tuple(RingStep(gather_intra, intra_lat) for _ in range(c - 1))
            + tuple(
                RingStep(gather_inter, inter_lat, tier="inter")
                for _ in range(b - 1)
            )
        )
        return CollectivePlan(
            "hier-allgather", p, payload_bytes, steps, intra_cap,
            _replay_sum(steps, intra_cap, inter_cap),
            inter_rate_cap=inter_cap,
        )

    if op_name == "broadcast":
        inter_bc = float(payload_bytes) if payload_bytes >= b else 0.0
        intra_bc = float(b * payload_bytes) if payload_bytes >= c else 0.0
        steps = (
            tuple(
                RingStep(inter_bc, inter_lat, tier="inter")
                for _ in range(b - 1)
            )
            + tuple(RingStep(intra_bc, intra_lat) for _ in range(c - 1))
        )
        return CollectivePlan(
            "hier-broadcast", p, payload_bytes, steps, b * link_bw,
            _replay_sum(steps, b * link_bw, eth_bw),
            inter_rate_cap=eth_bw,
        )

    raise ConfigError(f"unknown collective op {op_name!r}")


def scale_plan(plan: CollectivePlan, groups: int) -> CollectivePlan:
    """Widen a plan to ``groups`` concurrent identical group-collectives.

    Tensor parallelism runs one collective per TP group and the groups
    fire simultaneously (every data-parallel replica reduces its own
    shard). Rather than admit ``groups`` drainers the runtime admits
    one with ``groups`` x the wire and ``groups`` x the rate caps — the
    same fluid outcome with one event. ``groups <= 1`` returns ``plan``
    unchanged (object-identical, preserving byte-identity paths).
    """
    if groups <= 1:
        return plan
    steps = tuple(
        RingStep(s.wire_bytes * groups, s.latency_us, s.tier)
        for s in plan.steps
    )
    rate_cap = plan.rate_cap * groups
    inter_cap = plan.inter_rate_cap * groups
    return CollectivePlan(
        plan.algorithm, plan.num_cards, plan.payload_bytes, steps,
        rate_cap, _replay_sum(steps, rate_cap, inter_cap),
        inter_rate_cap=inter_cap,
    )


class HostLink:
    """PCIe Gen4 path between the external host CPU and a card (§3.1)."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Host<->device copy duration."""
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        return self.config.pcie_latency_us + s_to_us(
            payload_bytes / self.config.pcie_bandwidth_bytes_per_s
        )


def data_parallel_step_time_us(
    compute_time_us: float,
    gradient_bytes: int,
    num_cards: int,
    config: InterconnectConfig,
    *,
    overlap_fraction: float = 0.0,
) -> float:
    """One data-parallel training step: per-card compute + allreduce.

    **Analytic reference only.** The event-driven multi-card runtime
    (``synapse.runtime.HLS1Runtime``) is what A4/A12 report; this
    closed form is kept as the cross-check both studies print next to
    the simulated number. ``overlap_fraction`` is how much of the
    all-reduce hides under backward compute; 0 models the naive
    sequential step.

    The two views agree when overlap is off (one bucket, issued after
    the last backward op) up to per-bucket launch overhead. Once
    per-bucket readiness is modeled they diverge, because the analytic
    form assumes a single monolithic all-reduce over ``gradient_bytes``
    at a hand-tuned ``overlap_fraction``, while the simulated runtime
    (a) starts each bucket the moment its producing backward ops
    retire, so the hidden fraction is an *outcome*, not an input;
    (b) pays 2(p-1) link latencies per bucket, which the monolithic
    form amortizes once; and (c) shares fabric bandwidth between
    buckets that are in flight simultaneously.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ConfigError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    comm = RingAllReduce(config).cost(num_cards, gradient_bytes).time_us
    exposed = comm * (1.0 - overlap_fraction)
    hidden = comm * overlap_fraction
    # Hidden communication can only hide under actual compute time.
    return compute_time_us + exposed + max(0.0, hidden - compute_time_us)


def scaling_efficiency(step_time_1: float, step_time_p: float, p: int) -> float:
    """Weak-scaling efficiency of p cards vs 1 card at fixed per-card batch."""
    if p < 1 or step_time_1 <= 0 or step_time_p <= 0:
        raise ConfigError("invalid scaling-efficiency inputs")
    return step_time_1 / step_time_p


def log2_cards(num_cards: int) -> int:
    """Validate a power-of-two card count and return its log2."""
    if num_cards < 1 or (num_cards & (num_cards - 1)) != 0:
        raise ConfigError(f"card count must be a power of two, got {num_cards}")
    return int(math.log2(num_cards))
