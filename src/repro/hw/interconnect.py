"""Multi-card interconnect model for the HLS-1 scaling extension.

Gaudi integrates RoCE v2 NICs on chip; inside an HLS-1 the eight cards
form an all-to-all fabric, which data-parallel training uses for
gradient all-reduce (§2.1: "GAUDI ... delivers exceptional scalability
in both expanding and multiplying setups"). The paper itself profiles a
single card; this module powers the scaling *extension* experiment
(DESIGN.md exp A4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..util.errors import ConfigError
from ..util.units import s_to_us
from .config import InterconnectConfig


@dataclass(frozen=True)
class CollectiveCost:
    """Duration breakdown of one collective operation."""

    algorithm: str
    num_cards: int
    payload_bytes: int
    time_us: float
    steps: int


class RingAllReduce:
    """Bandwidth-optimal ring all-reduce cost model.

    time = 2 (p-1)/p * bytes / link_bw  +  2 (p-1) * latency

    which is the standard Rabenseifner/ring bound; with the HLS-1's
    all-to-all wiring each card has a dedicated link to its ring
    neighbour so the links don't contend.
    """

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-reduce cost for ``payload_bytes`` across ``num_cards``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allreduce", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = 2 * (p - 1)
        bw_term = 2.0 * (p - 1) / p * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        lat_term = steps * self.config.roce_latency_us
        return CollectiveCost(
            "ring-allreduce", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


class AllGather:
    """Ring all-gather: (p-1)/p * total bytes per link + latencies."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def cost(self, num_cards: int, payload_bytes: int) -> CollectiveCost:
        """All-gather cost where each card contributes ``payload_bytes``."""
        if num_cards < 1:
            raise ConfigError(f"num_cards must be >= 1, got {num_cards}")
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if num_cards == 1:
            return CollectiveCost("ring-allgather", 1, payload_bytes, 0.0, 0)
        p = num_cards
        steps = p - 1
        bw_term = (p - 1) * payload_bytes / self.config.roce_bandwidth_bytes_per_s
        lat_term = steps * self.config.roce_latency_us
        return CollectiveCost(
            "ring-allgather", p, payload_bytes, s_to_us(bw_term) + lat_term, steps
        )


class HostLink:
    """PCIe Gen4 path between the external host CPU and a card (§3.1)."""

    def __init__(self, config: InterconnectConfig):
        self.config = config

    def transfer_time_us(self, payload_bytes: int) -> float:
        """Host<->device copy duration."""
        if payload_bytes < 0:
            raise ConfigError(f"payload_bytes must be >= 0, got {payload_bytes}")
        return self.config.pcie_latency_us + s_to_us(
            payload_bytes / self.config.pcie_bandwidth_bytes_per_s
        )


def data_parallel_step_time_us(
    compute_time_us: float,
    gradient_bytes: int,
    num_cards: int,
    config: InterconnectConfig,
    *,
    overlap_fraction: float = 0.0,
) -> float:
    """One data-parallel training step: per-card compute + allreduce.

    ``overlap_fraction`` is how much of the all-reduce hides under
    backward compute (bucketed gradient reduction); 0 models the naive
    sequential step.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ConfigError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    comm = RingAllReduce(config).cost(num_cards, gradient_bytes).time_us
    exposed = comm * (1.0 - overlap_fraction)
    hidden = comm * overlap_fraction
    # Hidden communication can only hide under actual compute time.
    return compute_time_us + exposed + max(0.0, hidden - compute_time_us)


def scaling_efficiency(step_time_1: float, step_time_p: float, p: int) -> float:
    """Weak-scaling efficiency of p cards vs 1 card at fixed per-card batch."""
    if p < 1 or step_time_1 <= 0 or step_time_p <= 0:
        raise ConfigError("invalid scaling-efficiency inputs")
    return step_time_1 / step_time_p


def log2_cards(num_cards: int) -> int:
    """Validate a power-of-two card count and return its log2."""
    if num_cards < 1 or (num_cards & (num_cards - 1)) != 0:
        raise ConfigError(f"card count must be a power of two, got {num_cards}")
    return int(math.log2(num_cards))
