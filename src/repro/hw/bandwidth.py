"""Processor-sharing arbitration of the shared HBM bandwidth.

On silicon every engine (MME, TPC cluster, DMA) drains its HBM traffic
through the *same* memory controllers, so truly concurrent phases share
the effective bandwidth instead of each seeing all of it (DESIGN.md §7
used to list this as the simulator's biggest known bias; GFormer's
Gaudi measurements, arXiv:2412.19829, show MME/TPC co-execution is
bandwidth-arbitrated on hardware).

:class:`BandwidthArbiter` is the fluid (processor-sharing) model of
that controller: each *drainer* — one executing op with outstanding
HBM traffic — receives an equal share of the effective bandwidth,
water-filled against per-drainer rate caps (a DMA channel cannot pull
more than its own link rate, so its unused share flows back to the
uncapped engines). The contended runtime advances the arbiter between
discrete events; the arbiter integrates every drainer's remaining
bytes under piecewise-constant rates and reports completions.

The aggregate allocation never exceeds the effective bandwidth and is
work-conserving (adding drainers never reduces total drain rate), so
contention can stretch a schedule but never beats the uncontended
timing — invariants the property suite checks via :attr:`rate_log`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..util.errors import ExecutionError

#: residual bytes treated as fully drained (floating-point dust from
#: integrating rate * dt across events)
DRAIN_EPS_BYTES = 1e-6

#: residual drain *time* treated as complete — a remaining-time below
#: the clock's resolution can never advance the clock (us)
DRAIN_EPS_TIME_US = 1e-9


@dataclass
class _Drainer:
    """One op's outstanding HBM traffic."""

    key: int
    remaining_bytes: float
    total_bytes: float
    rate_cap: float = math.inf  # bytes/s this drainer alone can pull
    started_us: float = 0.0
    #: current allocated rate in bytes/s (set by _reallocate)
    rate: float = 0.0
    #: when the last byte drained (set on completion)
    drained_us: float | None = None


@dataclass(frozen=True)
class RateSegment:
    """One piecewise-constant allocation interval (for invariant checks)."""

    start_us: float
    end_us: float
    total_rate: float  # aggregate bytes/s granted over the segment
    drainers: int


class BandwidthArbiter:
    """Fair-share (processor-sharing) allocator of one bandwidth pool.

    ``shared=False`` disables the sharing entirely — every drainer gets
    ``min(rate_cap, bandwidth)`` regardless of concurrency — which
    reproduces the pre-contention timing model through the same event
    machinery (used by equivalence tests and ``hbm_contention=False``
    sanity checks).
    """

    def __init__(self, bandwidth_bytes_per_s: float, *, shared: bool = True):
        if bandwidth_bytes_per_s <= 0:
            raise ExecutionError(
                f"arbiter bandwidth must be > 0, got {bandwidth_bytes_per_s}"
            )
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.shared = shared
        self._clock = 0.0
        self._drainers: dict[int, _Drainer] = {}
        #: closed allocation segments, for the aggregate-rate invariant
        self.rate_log: list[RateSegment] = []
        #: completed drainers by key (achieved-bandwidth queries)
        self.completed: dict[int, _Drainer] = {}

    # -- queries -------------------------------------------------------------

    @property
    def clock_us(self) -> float:
        """Time the arbiter has integrated up to."""
        return self._clock

    @property
    def active(self) -> int:
        """Number of drainers with outstanding bytes."""
        return len(self._drainers)

    def allocation(self, key: int) -> float:
        """Current rate (bytes/s) granted to ``key``."""
        return self._drainers[key].rate

    def total_rate(self) -> float:
        """Aggregate granted rate (bytes/s) right now."""
        return sum(d.rate for d in self._drainers.values())

    def next_completion_us(self) -> float | None:
        """Earliest time any active drainer finishes, or ``None``."""
        best: float | None = None
        for d in self._drainers.values():
            if d.rate <= 0:
                continue
            t = self._clock + (d.remaining_bytes / d.rate) * 1e6
            if best is None or t < best:
                best = t
        return best

    # -- mutation ------------------------------------------------------------

    def admit(
        self, key: int, num_bytes: float, now_us: float,
        rate_cap: float = math.inf,
    ) -> None:
        """Register ``num_bytes`` of traffic for op ``key`` starting now."""
        if num_bytes <= 0:
            raise ExecutionError(
                f"arbiter admit needs positive bytes, got {num_bytes}"
            )
        if key in self._drainers:
            raise ExecutionError(f"drainer {key} already active")
        self.advance(now_us)
        self._drainers[key] = _Drainer(
            key, float(num_bytes), float(num_bytes), rate_cap, now_us
        )
        self._reallocate()

    def advance(self, to_us: float) -> list[int]:
        """Integrate drains up to ``to_us``; return keys that completed."""
        if to_us < self._clock - 1e-9:
            raise ExecutionError(
                f"arbiter cannot rewind from {self._clock} to {to_us}"
            )
        dt_us = max(0.0, to_us - self._clock)
        if dt_us > 0 and self._drainers:
            self.rate_log.append(RateSegment(
                self._clock, to_us, self.total_rate(), len(self._drainers)
            ))
            for d in self._drainers.values():
                d.remaining_bytes -= d.rate * (dt_us * 1e-6)
        self._clock = max(self._clock, to_us)
        # A drainer is done when its residual bytes are fp dust, or when
        # the time needed to drain them falls below the clock's own
        # resolution (it could then never advance the event loop).
        time_eps = max(DRAIN_EPS_TIME_US, 4 * math.ulp(self._clock))
        done = [
            key for key, d in self._drainers.items()
            if d.remaining_bytes <= max(DRAIN_EPS_BYTES, 1e-12 * d.total_bytes)
            or (
                d.rate > 0
                and (d.remaining_bytes / d.rate) * 1e6 <= time_eps
            )
        ]
        for key in done:
            d = self._drainers.pop(key)
            d.remaining_bytes = 0.0
            d.drained_us = self._clock
            self.completed[key] = d
        if done:
            self._reallocate()
        return done

    def _reallocate(self) -> None:
        """Water-fill the pool across active drainers.

        Equal shares, except drainers whose own rate cap is below their
        share take only the cap; the freed bandwidth redistributes to
        the rest. Total granted rate is min(bandwidth, sum of caps).
        """
        if not self.shared:
            for d in self._drainers.values():
                d.rate = min(d.rate_cap, self.bandwidth)
            return
        pool = set(self._drainers)
        remaining = self.bandwidth
        while pool:
            share = remaining / len(pool)
            capped = [k for k in pool if self._drainers[k].rate_cap <= share]
            if not capped:
                for k in pool:
                    self._drainers[k].rate = share
                break
            for k in capped:
                d = self._drainers[k]
                d.rate = d.rate_cap
                remaining = max(0.0, remaining - d.rate_cap)
                pool.discard(k)

    # -- post-hoc accounting --------------------------------------------------

    def achieved_bandwidth(self, key: int) -> float:
        """Mean achieved bytes/s over a completed drainer's lifetime."""
        d = self.completed[key]
        span_us = (d.drained_us or d.started_us) - d.started_us
        if span_us <= 0:
            return 0.0
        return d.total_bytes / (span_us * 1e-6)
