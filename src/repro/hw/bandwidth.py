"""Processor-sharing arbitration of the shared HBM bandwidth.

On silicon every engine (MME, TPC cluster, DMA) drains its HBM traffic
through the *same* memory controllers, so truly concurrent phases share
the effective bandwidth instead of each seeing all of it (DESIGN.md §7
used to list this as the simulator's biggest known bias; GFormer's
Gaudi measurements, arXiv:2412.19829, show MME/TPC co-execution is
bandwidth-arbitrated on hardware).

:class:`BandwidthArbiter` is the fluid (processor-sharing) model of
that controller: each *drainer* — one executing op with outstanding
HBM traffic — receives an equal share of the effective bandwidth,
water-filled against per-drainer rate caps (a DMA channel cannot pull
more than its own link rate, so its unused share flows back to the
uncapped engines). The contended runtime advances the arbiter between
discrete events; the arbiter integrates every drainer's remaining
bytes under piecewise-constant rates and reports completions.

The aggregate allocation never exceeds the effective bandwidth and is
work-conserving (adding drainers never reduces total drain rate), so
contention can stretch a schedule but never beats the uncontended
timing — invariants the property suite checks via :attr:`rate_log`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..util.errors import ExecutionError

#: residual bytes treated as fully drained (floating-point dust from
#: integrating rate * dt across events)
DRAIN_EPS_BYTES = 1e-6

#: pool size above which the arbiter's drain math switches from the
#: per-drainer Python loop to array ops over the (remaining, rate)
#: vectors; both paths do the same IEEE-754 arithmetic per element, so
#: the crossover is a pure performance knob
VECTOR_MIN_DRAINERS = 4

#: residual drain *time* treated as complete — a remaining-time below
#: the clock's resolution can never advance the clock (us)
DRAIN_EPS_TIME_US = 1e-9


@dataclass
class _Drainer:
    """One op's outstanding HBM traffic."""

    key: int
    remaining_bytes: float
    total_bytes: float
    rate_cap: float = math.inf  # bytes/s this drainer alone can pull
    started_us: float = 0.0
    #: current allocated rate in bytes/s (set by _reallocate)
    rate: float = 0.0
    #: when the last byte drained (set on completion)
    drained_us: float | None = None
    #: residual bytes below which the drainer counts as done — fixed at
    #: admission (``max(DRAIN_EPS_BYTES, 1e-12 * total_bytes)``) so the
    #: completion scan does not recompute it every epoch
    done_below_bytes: float = DRAIN_EPS_BYTES


@dataclass(frozen=True)
class RateSegment:
    """One piecewise-constant allocation interval (for invariant checks)."""

    start_us: float
    end_us: float
    total_rate: float  # aggregate bytes/s granted over the segment
    drainers: int


class BandwidthArbiter:
    """Fair-share (processor-sharing) allocator of one bandwidth pool.

    ``shared=False`` disables the sharing entirely — every drainer gets
    ``min(rate_cap, bandwidth)`` regardless of concurrency — which
    reproduces the pre-contention timing model through the same event
    machinery (used by equivalence tests and ``hbm_contention=False``
    sanity checks).
    """

    def __init__(
        self, bandwidth_bytes_per_s: float, *, shared: bool = True,
        log_rates: bool = True,
    ):
        if bandwidth_bytes_per_s <= 0:
            raise ExecutionError(
                f"arbiter bandwidth must be > 0, got {bandwidth_bytes_per_s}"
            )
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.shared = shared
        #: record a RateSegment per integration epoch (the invariant
        #: suite's evidence); production callers that never read the
        #: log can turn it off — allocations are unaffected
        self._log_rates = log_rates
        self._clock = 0.0
        self._drainers: dict[int, _Drainer] = {}
        #: closed allocation segments, for the aggregate-rate invariant
        self.rate_log: list[RateSegment] = []
        #: completed drainers by key (achieved-bandwidth queries)
        self.completed: dict[int, _Drainer] = {}

    # -- queries -------------------------------------------------------------

    @property
    def clock_us(self) -> float:
        """Time the arbiter has integrated up to."""
        return self._clock

    @property
    def active(self) -> int:
        """Number of drainers with outstanding bytes."""
        return len(self._drainers)

    def allocation(self, key: int) -> float:
        """Current rate (bytes/s) granted to ``key``."""
        return self._drainers[key].rate

    def total_rate(self) -> float:
        """Aggregate granted rate (bytes/s) right now."""
        return sum(d.rate for d in self._drainers.values())

    def next_completion_us(self) -> float | None:
        """Earliest time any active drainer finishes, or ``None``.

        Large pools compute every completion time in one array op over
        the (remaining, rate) vectors; the per-element arithmetic is
        identical to the scalar loop's, so both paths agree bit for bit.
        """
        if len(self._drainers) >= VECTOR_MIN_DRAINERS:
            rem, rate = self._vectors()
            draining = rate > 0
            if not draining.any():
                return None
            t = self._clock + (rem[draining] / rate[draining]) * 1e6
            return float(t.min())
        best: float | None = None
        for d in self._drainers.values():
            if d.rate <= 0:
                continue
            t = self._clock + (d.remaining_bytes / d.rate) * 1e6
            if best is None or t < best:
                best = t
        return best

    def _vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """(remaining_bytes, rate) of the active pool, as arrays."""
        m = len(self._drainers)
        rem = np.fromiter(
            (d.remaining_bytes for d in self._drainers.values()),
            dtype=np.float64, count=m,
        )
        rate = np.fromiter(
            (d.rate for d in self._drainers.values()),
            dtype=np.float64, count=m,
        )
        return rem, rate

    def drain_until(self, deadlines) -> tuple[float, list[int]]:
        """Advance to the next epoch boundary, computed in closed form.

        ``deadlines`` is an array (or any sequence) of upcoming external
        event times — pending op finishes, collective step timers, the
        fabric's own next completion. The arbiter computes every active
        drainer's completion time as one array op over the (remaining,
        rate) vectors, takes the earliest of those and the external
        deadlines, and integrates the whole pool to that instant in a
        single step. Returns ``(epoch end, keys completed at it)``.

        One epoch per call, never a cascade: a completion can free an
        engine, admit new traffic, and reallocate every share, so the
        caller must handle the returned completions before asking for
        the next epoch. Raises when there is no boundary to advance to
        (no external deadline and nothing draining) — in the event loop
        that state is a deadlock.
        """
        drainers = self._drainers
        clock = self._clock
        m = len(drainers)
        t: float | None = None
        if m >= VECTOR_MIN_DRAINERS:
            rem, rate = self._vectors()
            draining = rate > 0
            if draining.any():
                comp = clock + (rem[draining] / rate[draining]) * 1e6
                t = float(comp.min())
        else:
            for d in drainers.values():
                if d.rate > 0:
                    c = clock + (d.remaining_bytes / d.rate) * 1e6
                    if t is None or c < t:
                        t = c
        if len(deadlines):
            if len(deadlines) >= VECTOR_MIN_DRAINERS:
                external = float(
                    np.min(np.asarray(deadlines, dtype=np.float64))
                )
            else:
                external = min(deadlines)
            t = external if t is None else min(t, external)
        if t is None:
            raise ExecutionError(
                "drain_until has no epoch boundary: no external deadline "
                "and no draining traffic"
            )
        if not m:
            # empty pool: nothing to integrate or complete — move the
            # clock without paying the full completion scan
            if t > clock:
                self._clock = t
            return t, []
        # inline advance(t): same integration, completion test, and
        # reallocation arithmetic, minus the nested-call overhead the
        # epoch loop would pay ~once per event
        dt_us = t - clock
        done: list[int] = []
        if dt_us > 0:
            if self._log_rates:
                self.rate_log.append(RateSegment(
                    clock, t, self.total_rate(), m
                ))
            self._clock = t
            time_eps = max(DRAIN_EPS_TIME_US, 4 * math.ulp(t))
            if m >= VECTOR_MIN_DRAINERS:
                rem, rate = self._vectors()
                rem -= rate * (dt_us * 1e-6)
                for d, r in zip(drainers.values(), rem.tolist()):
                    d.remaining_bytes = r
                    if r <= d.done_below_bytes or (
                        d.rate > 0 and (r / d.rate) * 1e6 <= time_eps
                    ):
                        done.append(d.key)
            else:
                dt_s = dt_us * 1e-6
                for d in drainers.values():
                    r = d.remaining_bytes - d.rate * dt_s
                    d.remaining_bytes = r
                    if r <= d.done_below_bytes or (
                        d.rate > 0 and (r / d.rate) * 1e6 <= time_eps
                    ):
                        done.append(d.key)
        else:
            # dt == 0: reallocation at this instant can still satisfy
            # the rate-based completion test — the scan must run
            time_eps = max(DRAIN_EPS_TIME_US, 4 * math.ulp(self._clock))
            for key, d in drainers.items():
                if d.remaining_bytes <= d.done_below_bytes or (
                    d.rate > 0
                    and (d.remaining_bytes / d.rate) * 1e6 <= time_eps
                ):
                    done.append(key)
        if done:
            clk = self._clock
            completed = self.completed
            for key in done:
                d = drainers.pop(key)
                d.remaining_bytes = 0.0
                d.drained_us = clk
                completed[key] = d
            self._reallocate()
        return t, done

    # -- mutation ------------------------------------------------------------

    def admit(
        self, key: int, num_bytes: float, now_us: float,
        rate_cap: float = math.inf,
    ) -> None:
        """Register ``num_bytes`` of traffic for op ``key`` starting now."""
        if num_bytes <= 0:
            raise ExecutionError(
                f"arbiter admit needs positive bytes, got {num_bytes}"
            )
        if key in self._drainers:
            raise ExecutionError(f"drainer {key} already active")
        self.advance(now_us)
        total = float(num_bytes)
        self._drainers[key] = _Drainer(
            key, total, total, rate_cap, now_us,
            done_below_bytes=max(DRAIN_EPS_BYTES, 1e-12 * total),
        )
        self._reallocate()

    def admit_clocked(
        self, key: int, num_bytes: float, now_us: float,
        rate_cap: float = math.inf,
    ) -> None:
        """Admit traffic at an instant the pool is already integrated to.

        The epoch-driven loop only admits at boundaries
        :meth:`drain_until` has just advanced to, so the re-integration
        and dt==0 completion rescan :meth:`admit` performs are provably
        no-ops there: integrating zero time changes no remaining bytes,
        and admission only ever *shrinks* shares (water-filling never
        raises a rate when a drainer joins), so the rate-based
        completion test can pass for no drainer it did not already pass
        for. Requires ``now_us`` to equal the arbiter clock whenever
        traffic is active; with an idle pool the clock just moves.
        """
        if num_bytes <= 0:
            raise ExecutionError(
                f"arbiter admit needs positive bytes, got {num_bytes}"
            )
        if key in self._drainers:
            raise ExecutionError(f"drainer {key} already active")
        if not self._drainers:
            if now_us < self._clock - 1e-9:
                raise ExecutionError(
                    f"arbiter cannot rewind from {self._clock} to {now_us}"
                )
            if now_us > self._clock:
                self._clock = now_us
        elif now_us != self._clock:
            raise ExecutionError(
                f"admit_clocked at {now_us} but the pool is integrated "
                f"to {self._clock}; use admit()"
            )
        total = float(num_bytes)
        d = _Drainer.__new__(_Drainer)
        d.key = key
        d.remaining_bytes = total
        d.total_bytes = total
        d.rate_cap = rate_cap
        d.started_us = now_us
        d.rate = 0.0
        d.drained_us = None
        threshold = 1e-12 * total
        d.done_below_bytes = (
            threshold if threshold > DRAIN_EPS_BYTES else DRAIN_EPS_BYTES
        )
        self._drainers[key] = d
        self._reallocate()

    def advance(self, to_us: float) -> list[int]:
        """Integrate drains up to ``to_us``; return keys that completed."""
        if to_us < self._clock - 1e-9:
            raise ExecutionError(
                f"arbiter cannot rewind from {self._clock} to {to_us}"
            )
        dt_us = to_us - self._clock
        if dt_us > 0 and self._drainers:
            if self._log_rates:
                self.rate_log.append(RateSegment(
                    self._clock, to_us, self.total_rate(),
                    len(self._drainers),
                ))
            if len(self._drainers) >= VECTOR_MIN_DRAINERS:
                # one array op over the (remaining, rate) vectors; the
                # per-element subtraction is the same IEEE-754 op the
                # scalar loop does, so both paths agree bit for bit
                rem, rate = self._vectors()
                rem -= rate * (dt_us * 1e-6)
                for d, r in zip(self._drainers.values(), rem.tolist()):
                    d.remaining_bytes = r
            else:
                for d in self._drainers.values():
                    d.remaining_bytes -= d.rate * (dt_us * 1e-6)
        self._clock = max(self._clock, to_us)
        # A drainer is done when its residual bytes are fp dust, or when
        # the time needed to drain them falls below the clock's own
        # resolution (it could then never advance the event loop).
        time_eps = max(DRAIN_EPS_TIME_US, 4 * math.ulp(self._clock))
        done = [
            key for key, d in self._drainers.items()
            if d.remaining_bytes <= d.done_below_bytes
            or (
                d.rate > 0
                and (d.remaining_bytes / d.rate) * 1e6 <= time_eps
            )
        ]
        for key in done:
            d = self._drainers.pop(key)
            d.remaining_bytes = 0.0
            d.drained_us = self._clock
            self.completed[key] = d
        if done:
            self._reallocate()
        return done

    def _reallocate(self) -> None:
        """Water-fill the pool across active drainers.

        Equal shares, except drainers whose own rate cap is below their
        share take only the cap; the freed bandwidth redistributes to
        the rest. Total granted rate is min(bandwidth, sum of caps).
        """
        if not self.shared:
            for d in self._drainers.values():
                d.rate = min(d.rate_cap, self.bandwidth)
            return
        drainers = self._drainers
        if drainers:
            # fast path: no drainer capped below the equal share (the
            # overwhelmingly common pool) — same share arithmetic the
            # first water-fill round computes, minus the set machinery
            share = self.bandwidth / len(drainers)
            for d in drainers.values():
                if d.rate_cap <= share:
                    break
            else:
                for d in drainers.values():
                    d.rate = share
                return
        pool = set(self._drainers)
        remaining = self.bandwidth
        while pool:
            share = remaining / len(pool)
            capped = [k for k in pool if self._drainers[k].rate_cap <= share]
            if not capped:
                for k in pool:
                    self._drainers[k].rate = share
                break
            for k in capped:
                d = self._drainers[k]
                d.rate = d.rate_cap
                remaining = max(0.0, remaining - d.rate_cap)
                pool.discard(k)

    # -- post-hoc accounting --------------------------------------------------

    def achieved_bandwidth(self, key: int) -> float:
        """Mean achieved bytes/s over a completed drainer's lifetime."""
        d = self.completed[key]
        span_us = (d.drained_us or d.started_us) - d.started_us
        if span_us <= 0:
            return 0.0
        return d.total_bytes / (span_us * 1e-6)


class TwoTierFabric:
    """Two bandwidth pools behind one arbiter-shaped interface.

    A multi-box HLS-1 cluster has two distinct wire pools: the box-
    local RoCE links (wide, all-to-all) and the inter-box Ethernet
    NICs (thin, high-latency). Hierarchical collective plans tag each
    ring step with its tier; the runtime routes the step's traffic to
    the matching pool via ``admit(..., tier=...)``, and the pools
    arbitrate independently — intra steps of one collective never
    contend with another collective's inter steps, exactly as the
    separate physical links behave.

    The query surface mirrors :class:`BandwidthArbiter` closely enough
    for the event loops to treat either uniformly: ``active``,
    ``next_completion_us``, ``advance`` (concatenated completions —
    callers sort, as they already do for the flat fabric), plus
    ``busy_us`` as the merged-interval union over both rate logs (the
    two pools overlap in time, so summing segment spans would double
    count).
    """

    def __init__(
        self, intra_bandwidth_bytes_per_s: float,
        inter_bandwidth_bytes_per_s: float,
    ):
        self.intra = BandwidthArbiter(intra_bandwidth_bytes_per_s, shared=True)
        self.inter = BandwidthArbiter(inter_bandwidth_bytes_per_s, shared=True)

    @property
    def active(self) -> int:
        """Drainers outstanding across both tiers."""
        return self.intra.active + self.inter.active

    def admit(
        self, key: int, num_bytes: float, now_us: float,
        *, rate_cap: float = math.inf, tier: str = "intra",
    ) -> None:
        """Route ``num_bytes`` for ``key`` to the tier's pool."""
        pool = self.inter if tier == "inter" else self.intra
        pool.admit(key, num_bytes, now_us, rate_cap=rate_cap)

    def admit_clocked(
        self, key: int, num_bytes: float, now_us: float,
        *, rate_cap: float = math.inf, tier: str = "intra",
    ) -> None:
        """Epoch-boundary admit (see BandwidthArbiter.admit_clocked)."""
        pool = self.inter if tier == "inter" else self.intra
        pool.admit_clocked(key, num_bytes, now_us, rate_cap=rate_cap)

    def next_completion_us(self) -> float | None:
        """Earliest completion across both pools, or ``None``."""
        times = [
            t for t in (
                self.intra.next_completion_us(),
                self.inter.next_completion_us(),
            )
            if t is not None
        ]
        return min(times) if times else None

    def advance(self, to_us: float) -> list[int]:
        """Integrate both pools to ``to_us``; completions concatenated."""
        return self.intra.advance(to_us) + self.inter.advance(to_us)

    def drain_until(self, deadlines) -> tuple[float, list[int]]:
        """Epoch step over both pools: earliest boundary wins.

        Each pool's own completions are deadlines for the other, so
        the epoch ends at the earliest of either pool's completion or
        an external deadline, with both pools integrated exactly there.
        """
        bounds = list(deadlines)
        nxt = self.next_completion_us()
        if nxt is not None:
            bounds.append(nxt)
        if not bounds and not self.active:
            raise ExecutionError(
                "drain_until has no epoch boundary: no external deadline "
                "and no draining traffic"
            )
        t = min(bounds)
        return t, self.advance(t)

    def busy_us(self) -> float:
        """Wall time either tier was moving bytes (interval union)."""
        spans = sorted(
            (seg.start_us, seg.end_us)
            for pool in (self.intra, self.inter)
            for seg in pool.rate_log
            if seg.total_rate > 0
        )
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in spans:
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            total += cur_end - cur_start
        return total
