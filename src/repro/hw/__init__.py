"""Simulated Gaudi hardware: configs, cost models, engines, memory.

The package models the architecture the paper describes in §2.1–§2.2:
a Matrix Multiplication Engine, eight VLIW/SIMD Tensor Processing
Cores, a DMA engine moving data through shared memory, 32 GB of HBM,
and RoCE/PCIe links — with throughput constants calibrated against the
paper's own measurements (Table 2).
"""

from .config import (
    DMAConfig,
    GaudiConfig,
    gaudi2_config,
    HBMConfig,
    HLS1Config,
    InterconnectConfig,
    MMEConfig,
    SharedMemoryConfig,
    TPCClusterConfig,
)
from .backend import (
    Backend,
    GaudiBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .bandwidth import BandwidthArbiter, DRAIN_EPS_BYTES, RateSegment
from .costmodel import (
    EAGER_DISPATCH_OVERHEAD_US,
    CostModel,
    CostParts,
    DMAModel,
    EngineKind,
    MatmulDims,
    MMEModel,
    OpClass,
    TPCModel,
    WorkItem,
    tpc_matmul_cycles,
)
from .des import EngineTimeline, EventQueue, Interval
from .energy import (
    EnergyBreakdown,
    EnergyConfig,
    joules_per_token,
    schedule_energy,
)
from .device import GaudiDevice, HLS1System, default_device
from .dtypes import (
    DType,
    TPC_VECTOR_BITS,
    dtype_info,
    itemsize,
    numpy_dtype,
    parse_dtype,
    simd_lanes,
)
from .interconnect import (
    AllGather,
    CollectiveCost,
    HostLink,
    RingAllReduce,
    data_parallel_step_time_us,
    scaling_efficiency,
)
from .memory import Allocation, MemoryTracker, plan_peak_bytes

__all__ = [
    "DMAConfig",
    "GaudiConfig",
    "gaudi2_config",
    "HBMConfig",
    "HLS1Config",
    "InterconnectConfig",
    "MMEConfig",
    "SharedMemoryConfig",
    "TPCClusterConfig",
    "Backend",
    "GaudiBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "BandwidthArbiter",
    "DRAIN_EPS_BYTES",
    "RateSegment",
    "CostModel",
    "CostParts",
    "EAGER_DISPATCH_OVERHEAD_US",
    "DMAModel",
    "EngineKind",
    "MatmulDims",
    "MMEModel",
    "OpClass",
    "TPCModel",
    "WorkItem",
    "tpc_matmul_cycles",
    "EnergyBreakdown",
    "EnergyConfig",
    "joules_per_token",
    "schedule_energy",
    "EngineTimeline",
    "EventQueue",
    "Interval",
    "GaudiDevice",
    "HLS1System",
    "default_device",
    "DType",
    "TPC_VECTOR_BITS",
    "dtype_info",
    "itemsize",
    "numpy_dtype",
    "parse_dtype",
    "simd_lanes",
    "AllGather",
    "CollectiveCost",
    "HostLink",
    "RingAllReduce",
    "data_parallel_step_time_us",
    "scaling_efficiency",
    "Allocation",
    "MemoryTracker",
    "plan_peak_bytes",
]
