"""Backend protocol: one accelerator model behind a uniform surface.

The paper's study is Gaudi-specific — MME/TPC engines, HBM capacities,
Table-1 op placement — but nothing in the compiler/runtime stack needs
to *be* Gaudi-specific: the pass pipeline needs an engine-placement
table, the memory planner a capacity, the fluid runtime a shared
memory channel and a per-engine pricing function. This module names
that contract (the shape follows arXiv 2407.14645's "one analytical
core, per-device descriptors"):

* **engine set** — the timelines a device of this backend exposes,
  plus role properties (``matmul_engine``, ``vector_engine``,
  ``dma_engine``, ``host_engine``, ``collective_engine``,
  ``fusion_engine``) the compiler passes use instead of naming
  :class:`~repro.hw.costmodel.EngineKind` members directly (the
  ``lint_passes`` backend-coupling rule polices this);
* **placement table** — :meth:`Backend.engine_for` maps an op
  definition to the engine that runs it (Gaudi: the Table-1 column on
  the :class:`~repro.synapse.ops.OpDef`; WSE: everything computes on
  the PE grid);
* **memory hierarchy** — a capacity for the planner's budget and a
  cost model whose ``mem_bandwidth`` feeds the runtime's
  :class:`~repro.hw.bandwidth.BandwidthArbiter` pool;
* **cost hooks** — :meth:`Backend.cost_model` builds the per-op-class
  pricing object (``time_us`` / ``cost_parts`` over the backend's
  engines);
* **lowering/validation hooks** — :meth:`Backend.graph_warnings` lets
  a backend veto or flag graphs its device model cannot honor.

``backend="gaudi"`` (the default everywhere) routes every one of these
through the exact pre-refactor Gaudi expressions, so default traces
and numerics stay byte-identical to the single-backend stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..util.errors import ConfigError
from .config import GaudiConfig
from .costmodel import CostModel, EngineKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import GaudiDevice


class Backend:
    """One accelerator model: engines, placement, memory, pricing.

    Subclasses override the class attributes and the config-shaped
    methods; the role properties default to the attribute values so a
    backend is fully described by a handful of declarations.
    """

    #: registry key and the ``CompilerOptions.backend`` value
    name: str = ""
    #: engine timelines a device of this backend exposes, in trace order
    engines: tuple[EngineKind, ...] = ()
    #: engine that runs matmul-class work
    matmul_engine: EngineKind = EngineKind.MME
    #: engine that runs elementwise/reduction/special vector work
    vector_engine: EngineKind = EngineKind.TPC
    #: engine fused elementwise chains land on
    fusion_engine: EngineKind = EngineKind.TPC
    #: engine that stages inter-engine transfers
    dma_engine: EngineKind = EngineKind.DMA
    #: engine that absorbs host round-trips (recompilations)
    host_engine: EngineKind = EngineKind.HOST
    #: engine that drives collectives / the fabric
    collective_engine: EngineKind = EngineKind.NIC
    #: whether the row-slicing pass's anchor split pays off (it models
    #: the Gaudi MME/TPC ping-pong; single-grid backends skip it)
    supports_tpc_slicing: bool = True

    # -- placement -----------------------------------------------------------

    @property
    def non_staged_engines(self) -> tuple[EngineKind, ...]:
        """Engines whose reads never need a DMA staging hop."""
        return (self.dma_engine, self.host_engine, self.collective_engine)

    def engine_for(self, opdef) -> EngineKind:
        """Placement table: the engine that executes ``opdef``."""
        raise NotImplementedError

    # -- configuration -------------------------------------------------------

    def default_config(self):
        """A fresh default device config for this backend."""
        raise NotImplementedError

    def owns_config(self, config) -> bool:
        """Whether ``config`` describes a device of this backend."""
        raise NotImplementedError

    def coerce_config(self, config):
        """``config`` if it belongs to this backend, else the default.

        Lets call sites that historically pass a :class:`GaudiConfig`
        (sweeps, profilers) retarget at another backend without
        threading a second config object through every signature.
        """
        if config is not None and self.owns_config(config):
            return config
        return self.default_config()

    # -- memory + pricing ----------------------------------------------------

    def cost_model(self, config):
        """Per-op-class pricing object for ``config``."""
        raise NotImplementedError

    def memory_capacity_bytes(self, config) -> int:
        """Device-memory budget the memory planner plans against."""
        raise NotImplementedError

    def make_device(self, config=None):
        """A fresh device with this backend's engine timelines."""
        raise NotImplementedError

    # -- lowering / validation hooks ----------------------------------------

    def graph_warnings(self, graph) -> list[str]:
        """Backend-specific validation findings for ``graph``.

        Returned strings are advisory (surfaced through graph lint);
        an empty list means the backend accepts the graph as-is.
        """
        return []

    def describe(self) -> dict:
        """Engine + role summary for reports."""
        return {
            "name": self.name,
            "engines": [e.value for e in self.engines],
            "matmul_engine": self.matmul_engine.value,
            "vector_engine": self.vector_engine.value,
            "fusion_engine": self.fusion_engine.value,
            "collective_engine": self.collective_engine.value,
        }


class GaudiBackend(Backend):
    """The paper's device: MME/TPC split, HBM, Table-1 placement."""

    name = "gaudi"
    engines = (
        EngineKind.MME, EngineKind.TPC, EngineKind.DMA,
        EngineKind.HOST, EngineKind.NIC,
    )
    matmul_engine = EngineKind.MME
    vector_engine = EngineKind.TPC
    fusion_engine = EngineKind.TPC
    dma_engine = EngineKind.DMA
    host_engine = EngineKind.HOST
    collective_engine = EngineKind.NIC
    supports_tpc_slicing = True

    def engine_for(self, opdef) -> EngineKind:
        """Gaudi placement is the Table-1 column on the op definition."""
        return opdef.engine

    def default_config(self) -> GaudiConfig:
        return GaudiConfig()

    def owns_config(self, config) -> bool:
        return isinstance(config, GaudiConfig)

    def cost_model(self, config) -> CostModel:
        return CostModel(config)

    def memory_capacity_bytes(self, config) -> int:
        return config.hbm.capacity_bytes

    def make_device(self, config=None) -> "GaudiDevice":
        from .device import GaudiDevice

        return GaudiDevice(self.coerce_config(config))


_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend instance to the registry (names are unique)."""
    if not backend.name:
        raise ConfigError("backend must declare a non-empty name")
    if backend.name in _BACKENDS:
        raise ConfigError(f"backend {backend.name!r} already registered")
    _BACKENDS[backend.name] = backend
    return backend


def backend_names() -> list[str]:
    """All registered backend names, sorted."""
    _ensure_builtin_backends()
    return sorted(_BACKENDS)


def get_backend(name: str) -> Backend:
    """Look up a backend by name (``gaudi`` and ``wse`` are built in)."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; registered: {sorted(_BACKENDS)}"
        ) from None


def _ensure_builtin_backends() -> None:
    if "gaudi" not in _BACKENDS:
        register_backend(GaudiBackend())
    if "wse" not in _BACKENDS:
        from .backends.wse import WSEBackend

        register_backend(WSEBackend())
