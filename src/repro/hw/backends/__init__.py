"""Non-Gaudi backend implementations of the Backend protocol.

Each module declares one accelerator model (configs, cost model,
device, placement) behind :class:`repro.hw.backend.Backend`. The
registry in :mod:`repro.hw.backend` imports these lazily so the
default Gaudi path never pays for them.
"""

from .wse import (
    MemoryXConfig,
    PEGridConfig,
    WaferSRAMConfig,
    WSEBackend,
    WSEConfig,
    WSECostModel,
    WSEDevice,
)

__all__ = [
    "MemoryXConfig",
    "PEGridConfig",
    "WaferSRAMConfig",
    "WSEBackend",
    "WSEConfig",
    "WSECostModel",
    "WSEDevice",
]
