"""Cerebras-style wafer-scale-engine backend (arXiv 2409.00287).

The WSE inverts Gaudi's memory story. Gaudi keeps weights *and*
activations in HBM and streams both through the MME/TPC split; the
wafer keeps **activations resident** in on-wafer SRAM next to the
processing-element (PE) grid and **streams weights** in from external
MemoryX units, layer by layer (Cerebras "weight streaming"). The
consequences this model reproduces:

* matmul throughput is ``min(PE-grid compute, weight-stream drain)``
  — the MemoryX link replaces HBM as the shared channel the
  :class:`~repro.hw.bandwidth.BandwidthArbiter` divides, and a
  matmul's channel traffic is its *weight* bytes (``k x n``), not its
  activation bytes;
* elementwise/reduction/special work reads and writes wafer SRAM,
  which is fast enough (PB/s) that those ops are compute-bound — they
  put **zero** traffic on the arbiter's pool;
* there is no KV-cache HBM pressure term: decode-time caches live in
  wafer SRAM against :class:`WaferSRAMConfig.capacity_bytes`, so
  serving pressure is capacity-shaped, not bandwidth-shaped;
* everything computes on one engine (the PE grid) — there is no
  MME-idle "blank area" of the kind the paper's Fig. 4 shows, which
  is exactly what makes the A18 cross-backend ablation interesting.

Constants follow the CS-2 system arXiv 2409.00287 benchmarks: 850k
PEs at 1.1 GHz (~7.5 PFLOP/s half-precision peak), 40 GiB of wafer
SRAM at ~20 PB/s, and an aggregate MemoryX streaming link in the
TB/s range. The pricing twins for the attention kernel pack come for
free: kernel-pack ops carry :class:`~repro.hw.costmodel.MatmulDims`
twins, and the PE-grid model prices any GEMM geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...util.errors import ConfigError
from ...util.units import s_to_us
from ..backend import Backend
from ..config import GIB, DMAConfig
from ..costmodel import CostParts, DMAModel, EngineKind, MatmulDims, OpClass, WorkItem
from ..des import EngineTimeline
from ..dtypes import DType, itemsize
from ..memory import MemoryTracker
from ...util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class PEGridConfig:
    """The wafer's processing-element grid (CS-2 scale).

    850k PEs, each a small SIMD core with local memory, connected by a
    2D mesh. Matmuls map as a dataflow systolic wave across the grid:
    coverage of the mesh by the GEMM's (m, n) extents plays the role
    Gaudi's MAC-array spatial term plays, and a wavefront fill factor
    in ``k`` mirrors the MME's pipeline fill.
    """

    cores: int = 850_000
    freq_ghz: float = 1.1
    #: FLOPs per core-cycle a GEMM wave sustains (FMA over SIMD-4)
    matmul_flops_per_cycle: float = 8.0
    #: FLOPs per core-cycle for vector (non-GEMM) work
    vector_flops_per_cycle: float = 2.0
    #: wavefront fill cycles of the systolic reduction in ``k``
    fill_cycles: int = 32
    #: dataflow dispatch cost per scheduled op — far below Gaudi's TPC
    #: launch because there is no host kernel-launch round-trip
    launch_overhead_us: float = 0.4
    elementwise_eff: float = 0.90
    #: fabric-tree reductions beat a SIMD core's horizontal combines
    reduction_eff: float = 0.30
    special_cycles: dict[str, int] = field(
        default_factory=lambda: {
            "exp": 12,
            "log": 12,
            "sqrt": 8,
            "rsqrt": 8,
            "erf": 14,
            "tanh": 12,
            "sigmoid": 12,
            "pow": 16,
            "div": 6,
        }
    )
    default_special_cycles: int = 12

    def __post_init__(self) -> None:
        check_positive_int("PEGridConfig.cores", self.cores)
        check_positive("PEGridConfig.freq_ghz", self.freq_ghz)
        check_positive(
            "PEGridConfig.matmul_flops_per_cycle", self.matmul_flops_per_cycle
        )
        check_positive(
            "PEGridConfig.vector_flops_per_cycle", self.vector_flops_per_cycle
        )
        check_non_negative(
            "PEGridConfig.launch_overhead_us", self.launch_overhead_us
        )
        check_fraction("PEGridConfig.elementwise_eff", self.elementwise_eff)
        check_fraction("PEGridConfig.reduction_eff", self.reduction_eff)

    @property
    def grid_side(self) -> int:
        """Side length of the (square-modeled) PE mesh."""
        return max(1, int(math.isqrt(self.cores)))

    @property
    def peak_matmul_tflops(self) -> float:
        """Whole-grid GEMM peak (half precision), TFLOP/s."""
        return (
            self.cores * self.matmul_flops_per_cycle * self.freq_ghz * 1e9
            / 1e12
        )

    @property
    def peak_vector_tflops(self) -> float:
        """Whole-grid vector peak, TFLOP/s."""
        return (
            self.cores * self.vector_flops_per_cycle * self.freq_ghz * 1e9
            / 1e12
        )

    def special_cost(self, fn: str) -> int:
        """Cycles per element of special function ``fn``."""
        return self.special_cycles.get(fn, self.default_special_cycles)


@dataclass(frozen=True)
class WaferSRAMConfig:
    """On-wafer SRAM distributed across the PE grid (CS-2: 40 GiB).

    Activations (and decode KV caches) live here; its bandwidth is so
    far above the streaming link that SRAM-resident traffic never
    reaches the shared arbiter pool.
    """

    capacity_bytes: int = 40 * GIB
    bandwidth_bytes_per_s: float = 20.0e15
    efficiency: float = 0.90

    def __post_init__(self) -> None:
        check_positive("WaferSRAMConfig.capacity_bytes", self.capacity_bytes)
        check_positive(
            "WaferSRAMConfig.bandwidth_bytes_per_s",
            self.bandwidth_bytes_per_s,
        )
        check_fraction("WaferSRAMConfig.efficiency", self.efficiency)

    @property
    def effective_bandwidth(self) -> float:
        """Sustained wafer-SRAM bandwidth in bytes/s."""
        return self.bandwidth_bytes_per_s * self.efficiency


@dataclass(frozen=True)
class MemoryXConfig:
    """External weight store + the streaming links onto the wafer.

    This is the WSE's shared, contended channel — the HBM analog. Every
    matmul drains its weight bytes through it, and spill/staging
    transfers ride the same links.
    """

    bandwidth_bytes_per_s: float = 2.4e12
    latency_us: float = 2.0
    #: fraction of a pipelined staging transfer's bytes left exposed
    #: (weight broadcast for layer L+1 overlaps layer L's compute)
    pipelined_exposure: float = 0.15

    def __post_init__(self) -> None:
        check_positive(
            "MemoryXConfig.bandwidth_bytes_per_s", self.bandwidth_bytes_per_s
        )
        check_non_negative("MemoryXConfig.latency_us", self.latency_us)
        check_fraction(
            "MemoryXConfig.pipelined_exposure", self.pipelined_exposure
        )


@dataclass(frozen=True)
class WSEConfig:
    """Full wafer-scale-engine system model (one CS-2-class device)."""

    name: str = "wse2-cs2"
    pe: PEGridConfig = field(default_factory=PEGridConfig)
    sram: WaferSRAMConfig = field(default_factory=WaferSRAMConfig)
    memoryx: MemoryXConfig = field(default_factory=MemoryXConfig)
    default_dtype: DType = DType.BF16


class PEGridModel:
    """Timing model of the PE grid: GEMM waves + vector work."""

    def __init__(self, config: PEGridConfig, memoryx: MemoryXConfig):
        self.config = config
        self.memoryx = memoryx

    @staticmethod
    def dtype_rate_factor(dtype: DType) -> float:
        """Grid throughput multiplier per dtype (bf16 calibrated)."""
        return min(2.0, 2.0 / itemsize(dtype))

    def achieved_tflops(
        self, dims: MatmulDims, dtype: DType = DType.BF16
    ) -> float:
        """Sustained GEMM TFLOP/s at the given geometry.

        Spatial coverage of the mesh by (m, n) under-fills the wave for
        small GEMMs; the ``k`` wavefront fill mirrors the MME pipeline.
        """
        cfg = self.config
        side = cfg.grid_side
        spatial = (min(dims.m, side) / side) * (min(dims.n, side) / side)
        fill = dims.k / (dims.k + cfg.fill_cycles)
        return (
            cfg.peak_matmul_tflops * spatial * fill
            * self.dtype_rate_factor(dtype)
        )

    def matmul_time_us(
        self, dims: MatmulDims, dtype: DType = DType.BF16
    ) -> float:
        """Compute time of a GEMM wave, launch folded in."""
        rate = self.achieved_tflops(dims, dtype) * 1e12
        return s_to_us(dims.flops / rate) + self.config.launch_overhead_us

    @staticmethod
    def stream_bytes(item: WorkItem) -> int:
        """Weight bytes a matmul drains from MemoryX.

        The stationary (k x n) operand is broadcast across the grid
        once per layer invocation — the batch dimension reuses it, so
        it does not multiply. Activation operands stay in SRAM.
        """
        dims = item.matmul
        if dims is None:
            return 0
        return dims.k * dims.n * itemsize(item.dtype)

    def cost_parts(self, item: WorkItem) -> CostParts:
        """Decomposed cost of ``item`` on the PE grid.

        Matmuls put their weight-stream bytes on the shared MemoryX
        channel; everything else is SRAM-resident and contributes no
        arbiter traffic.
        """
        cfg = self.config
        if item.op_class is OpClass.MATMUL:
            if item.matmul is None:
                raise ConfigError(f"matmul op {item.name!r} missing dims")
            return CostParts(
                compute_us=self.matmul_time_us(item.matmul, item.dtype),
                hbm_bytes=float(self.stream_bytes(item)),
                rate_cap=self.memoryx.bandwidth_bytes_per_s,
                fixed_us=item.fixed_time_us,
            )
        if item.op_class is OpClass.ELEMENTWISE:
            rate = cfg.peak_vector_tflops * 1e12 * cfg.elementwise_eff
            compute_us = s_to_us(item.flops / rate) if item.flops else 0.0
        elif item.op_class is OpClass.REDUCTION:
            rate = cfg.peak_vector_tflops * 1e12 * cfg.reduction_eff
            compute_us = s_to_us(item.flops / rate) if item.flops else 0.0
        elif item.op_class is OpClass.SPECIAL:
            fn = item.special_fn or "generic"
            cycles = item.elements * cfg.special_cost(fn) / cfg.cores
            compute_us = cycles / (cfg.freq_ghz * 1e3)
        elif item.op_class is OpClass.DATA_MOVE:
            # on-wafer routing: the mesh moves data as part of dataflow
            compute_us = 0.0
        else:
            raise ConfigError(
                f"PE grid cannot execute op class {item.op_class} "
                f"for {item.name!r}"
            )
        return CostParts(
            compute_us=compute_us,
            launch_us=cfg.launch_overhead_us,
            fixed_us=item.fixed_time_us,
        )

    def time_us(self, item: WorkItem, stream_bandwidth: float) -> float:
        """Uncontended duration at the given MemoryX rate."""
        parts = self.cost_parts(item)
        return parts.uncontended_time_us(stream_bandwidth)


@dataclass
class WSECostModel:
    """Facade bundling the WSE per-engine models (CostModel twin).

    Exposes the same surface the runtime prices Gaudi through:
    ``time_us``/``cost_parts`` keyed by engine, plus the backend-neutral
    trio ``mem_bandwidth``/``fused_launch_us``/``fusion_engine`` and
    the ``fused_parts`` hook for fused elementwise chains.
    """

    config: WSEConfig
    pe: PEGridModel = field(init=False)
    stream: DMAModel = field(init=False)

    def __post_init__(self) -> None:
        self.pe = PEGridModel(self.config.pe, self.config.memoryx)
        # Staging/spill transfers ride the MemoryX links; reuse the DMA
        # channel model with the streaming link's constants.
        self.stream = DMAModel(DMAConfig(
            bandwidth_bytes_per_s=self.config.memoryx.bandwidth_bytes_per_s,
            latency_us=self.config.memoryx.latency_us,
            pipelined_exposure=self.config.memoryx.pipelined_exposure,
        ))

    @property
    def mem_bandwidth(self) -> float:
        """The shared contended channel: the MemoryX streaming links."""
        return self.config.memoryx.bandwidth_bytes_per_s

    @property
    def fused_launch_us(self) -> float:
        return self.config.pe.launch_overhead_us

    @property
    def fusion_engine(self) -> EngineKind:
        return EngineKind.PE

    def fused_parts(
        self, compute_us: float, traffic_bytes: int, fixed_us: float
    ) -> CostParts:
        """Fused chains drain their external traffic through wafer
        SRAM, not the MemoryX channel — fold the (tiny) SRAM drain into
        the compute floor and put nothing on the arbiter."""
        sram_us = s_to_us(
            traffic_bytes / self.config.sram.effective_bandwidth
        )
        return CostParts(
            compute_us=max(compute_us, sram_us),
            launch_us=self.fused_launch_us,
            fixed_us=fixed_us,
        )

    def time_us(self, engine: EngineKind, item: WorkItem) -> float:
        """Duration of ``item`` on ``engine``."""
        if engine is EngineKind.PE:
            return self.pe.time_us(item, self.mem_bandwidth)
        if engine is EngineKind.DMA:
            return self.stream.time_us(item)
        if engine in (EngineKind.HOST, EngineKind.NIC):
            return item.fixed_time_us
        raise ConfigError(f"WSE has no engine {engine!r}")

    def cost_parts(self, engine: EngineKind, item: WorkItem) -> CostParts:
        """Decomposed cost of ``item`` on ``engine``."""
        if engine is EngineKind.PE:
            return self.pe.cost_parts(item)
        if engine is EngineKind.DMA:
            return self.stream.cost_parts(item)
        if engine in (EngineKind.HOST, EngineKind.NIC):
            return CostParts(fixed_us=item.fixed_time_us)
        raise ConfigError(f"WSE has no engine {engine!r}")


class WSEDevice:
    """One simulated wafer-scale engine (GaudiDevice twin)."""

    def __init__(
        self, config: WSEConfig | None = None, *, enforce_memory: bool = True
    ):
        self.config = config or WSEConfig()
        self.cost_model = WSECostModel(self.config)
        self.timelines: dict[EngineKind, EngineTimeline] = {
            EngineKind.PE: EngineTimeline("PE"),
            EngineKind.DMA: EngineTimeline("DMA"),
            EngineKind.HOST: EngineTimeline("HOST"),
            EngineKind.NIC: EngineTimeline("NIC"),
        }
        # activations + streamed-through weights plan against wafer SRAM
        self.hbm = MemoryTracker(
            self.config.sram.capacity_bytes, enforce=enforce_memory
        )

    @property
    def now(self) -> float:
        """Device clock: the latest completion time across engines."""
        return max(tl.free_at for tl in self.timelines.values())

    def timeline(self, engine: EngineKind) -> EngineTimeline:
        """The busy-interval ledger of ``engine``."""
        return self.timelines[engine]

    def reset(self) -> None:
        """Clear all engine timelines and memory statistics."""
        for tl in self.timelines.values():
            tl.reset()
        self.hbm.reset()

    def utilization(
        self, engine: EngineKind, horizon: float | None = None
    ) -> float:
        """Fraction of time ``engine`` was busy up to ``horizon``."""
        horizon = self.now if horizon is None else horizon
        return self.timelines[engine].utilization(horizon)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        cfg = self.config
        return (
            f"{cfg.name}: {cfg.pe.cores / 1e3:.0f}k PEs "
            f"({cfg.pe.peak_matmul_tflops / 1e3:.1f} PFLOPS peak), "
            f"SRAM {cfg.sram.capacity_bytes / (1 << 30):.0f} GiB, "
            f"MemoryX {cfg.memoryx.bandwidth_bytes_per_s / 1e12:.1f} TB/s"
        )


class WSEBackend(Backend):
    """Weight-streaming dataflow backend: one PE grid, streamed weights."""

    name = "wse"
    engines = (
        EngineKind.PE, EngineKind.DMA, EngineKind.HOST, EngineKind.NIC,
    )
    matmul_engine = EngineKind.PE
    vector_engine = EngineKind.PE
    fusion_engine = EngineKind.PE
    dma_engine = EngineKind.DMA
    host_engine = EngineKind.HOST
    collective_engine = EngineKind.NIC
    # the Gaudi row-slicing pass models MME/TPC ping-pong; a single
    # compute grid has no cross-engine bubble to fill
    supports_tpc_slicing = False

    def engine_for(self, opdef) -> EngineKind:
        """Everything computes on the PE grid; shared roles keep their
        Gaudi engines (HOST recompiles, NIC collectives)."""
        if opdef.engine in (EngineKind.HOST, EngineKind.NIC):
            return opdef.engine
        if opdef.op_class is OpClass.COLLECTIVE:
            return EngineKind.NIC
        if opdef.op_class is OpClass.HOST:
            return EngineKind.HOST
        return EngineKind.PE

    def default_config(self) -> WSEConfig:
        return WSEConfig()

    def owns_config(self, config) -> bool:
        return isinstance(config, WSEConfig)

    def cost_model(self, config) -> WSECostModel:
        return WSECostModel(config)

    def memory_capacity_bytes(self, config) -> int:
        return config.sram.capacity_bytes

    def make_device(self, config=None) -> WSEDevice:
        return WSEDevice(self.coerce_config(config))

    def graph_warnings(self, graph) -> list[str]:
        """Weight streaming wants 2-D parameter matmuls; flag params so
        large a single layer's stream would dominate its compute."""
        findings: list[str] = []
        link = MemoryXConfig().bandwidth_bytes_per_s
        for _, value in sorted(graph.values.items()):
            if value.kind != "param":
                continue
            stream_us = s_to_us(value.nbytes / link)
            if stream_us > 1e4:  # 10 ms for one weight broadcast
                findings.append(
                    f"param {value.name or value.vid} streams for "
                    f"{stream_us / 1e3:.1f} ms per layer invocation — "
                    "consider sharding it across wafer regions"
                )
        return findings
