"""The TPC programming model: VLIW ISA, index spaces, kernels, simulator.

Mirrors §2.2 of the paper — the four-slot VLIW instruction word, the
2048-bit SIMD vector unit, 1 KB scalar + 80 KB vector local memories,
CUDA-thread-like index spaces, and a kernel SDK with a simulator. The
batched-matmul kernel here is the reproduction of the custom kernel the
paper measures for Table 2's TPC column.
"""

from .indexspace import IndexSpace, balance_ratio, partition_members
from .isa import (
    Bundle,
    InstructionStream,
    Slot,
    SlotOp,
    spu,
    vload_global,
    vload_global_streamed,
    vload_local,
    vpu,
    vstore_global,
    vstore_local,
)
from .kernel import REGISTRY, KernelRegistry, TensorSpec, TpcKernel
from .simulator import FUNCTIONAL_ELEMENT_LIMIT, LaunchResult, TPCSimulator

# Importing the kernel package populates REGISTRY.
from . import kernels  # noqa: F401  (import for side effect)
from .kernels import (
    BatchMatmulKernel,
    BinaryElementwiseKernel,
    GluKernel,
    RowReduceKernel,
    SoftmaxKernel,
    UnaryElementwiseKernel,
)

__all__ = [
    "IndexSpace",
    "balance_ratio",
    "partition_members",
    "Bundle",
    "InstructionStream",
    "Slot",
    "SlotOp",
    "spu",
    "vload_global",
    "vload_global_streamed",
    "vload_local",
    "vpu",
    "vstore_global",
    "vstore_local",
    "REGISTRY",
    "KernelRegistry",
    "TensorSpec",
    "TpcKernel",
    "FUNCTIONAL_ELEMENT_LIMIT",
    "LaunchResult",
    "TPCSimulator",
    "BatchMatmulKernel",
    "BinaryElementwiseKernel",
    "GluKernel",
    "RowReduceKernel",
    "SoftmaxKernel",
    "UnaryElementwiseKernel",
]
