"""Batched matrix-multiplication TPC kernel.

This is the repro of the custom kernel the paper takes from Habana's
``Habana_Custom_Kernel`` repository to measure the TPC side of Table 2
("We implement TPC batch matrix-matrix product kernels using example
code from Habana_Custom_Kernel", §3.2).

Work division: one index-space member computes a block of
``ROWS_PER_MEMBER`` output rows for one batch element. Inside a member
the kernel tiles the contraction dimension in ``k_chunk`` steps so that
a B-matrix chunk (``k_chunk x lanes`` elements) plus the A row-block
fits the 80 KB vector local memory; the chunk is loaded once and reused
across all rows of the block, which is why the loads stream for free
behind the FMA loop (see :func:`~repro.tpc.isa.vload_global_streamed`).

Timing shape: a square size-s problem sustains roughly
``peak * s / (s + c)`` with c ~ 20 — reproducing the paper's TPC column
(1.86 TFLOPS at 128 up to 2.19 at 2048).
"""

from __future__ import annotations

import math

import numpy as np

from ...util.errors import KernelError
from ..indexspace import IndexSpace
from ..isa import (
    InstructionStream,
    spu,
    vload_global,
    vload_global_streamed,
    vpu,
    vstore_global,
)
from ..kernel import Shape, TensorSpec, TpcKernel

#: Output rows computed by one index-space member.
ROWS_PER_MEMBER = 32
#: bf16 contraction tile (recomputed per launch from the lane count so
#: fp32's fatter elements shrink the tile; see repro.tpc.memory)
K_CHUNK = 256
#: Cycles of addressing/descriptor setup per member.
PROLOGUE_CYCLES = 40
#: Scalar loop-bookkeeping overhead as a fraction of FMA cycles
#: (the VLIW inner loop sustains ~97% of peak).
LOOP_OVERHEAD_FRACTION = 1.0 / 0.972 - 1.0


class BatchMatmulKernel(TpcKernel):
    """C[b] = A[b] @ B[b] for b in range(batch)."""

    name = "bmm"
    inputs = (TensorSpec("a", 3, 3), TensorSpec("b", 3, 3))
    outputs = (TensorSpec("c", 3, 3),)
    uniform_members = True

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        a, b = shapes["a"], shapes["b"]
        if a[0] != b[0]:
            raise KernelError(f"bmm: batch mismatch {a[0]} vs {b[0]}")
        if a[2] != b[1]:
            raise KernelError(
                f"bmm: contraction mismatch A[.,.,{a[2]}] @ B[.,{b[1]},.]"
            )

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        a, b = shapes["a"], shapes["b"]
        return {"c": (a[0], a[1], b[2])}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        batch, m, _ = shapes["a"]
        return IndexSpace((batch, math.ceil(m / ROWS_PER_MEMBER)))

    def flops(self, shapes: dict[str, Shape]) -> float:
        batch, m, k = shapes["a"]
        n = shapes["b"][2]
        return 2.0 * batch * m * n * k

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        b, block = member
        a_mat = inputs["a"][b]
        b_mat = inputs["b"][b]
        r0 = block * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, a_mat.shape[0])
        outputs["c"][b, r0:r1, :] = a_mat[r0:r1, :] @ b_mat

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        from ..memory import LocalMemory, max_k_chunk_for_lanes

        _, m, k = shapes["a"]
        n = shapes["b"][2]
        rows = min(ROWS_PER_MEMBER, m)
        n_tiles = math.ceil(n / lanes)
        k_chunk = min(max_k_chunk_for_lanes(lanes, ROWS_PER_MEMBER), k)
        # Static footprint check: the chunk must actually fit the 80 KB
        # vector bank (KernelError here means the tiling math is wrong).
        itemsize = 256 // lanes
        local = LocalMemory()
        local.alloc("b_tile", k_chunk * lanes * itemsize)
        local.alloc("a_block", rows * k_chunk * itemsize)

        stream = InstructionStream()
        # Member prologue: tensor descriptors, index-space addressing.
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        # First chunk of B and the A row-block are loaded before compute
        # can start; only this first fill is exposed (double-buffered).
        first_b_vectors = k_chunk
        first_a_vectors = math.ceil(rows * k_chunk / lanes)
        stream.emit(
            vload_global(double_buffered=True),
            repeat=first_b_vectors + first_a_vectors,
        )
        # Main loop: one FMA bundle per (row, k-step, n-tile); subsequent
        # tile loads stream behind it in the Load slot.
        fma = rows * k * n_tiles
        stream.emit(vpu("mac_v"), vload_global_streamed(), repeat=fma)
        # Scalar loop bookkeeping not hidden by the VLIW schedule.
        loop_overhead = math.ceil(fma * LOOP_OVERHEAD_FRACTION)
        stream.emit(spu("loop_ctl"), repeat=loop_overhead)
        # Results leave through the Store slot, double-buffered.
        stream.emit(vstore_global(double_buffered=True), repeat=rows * n_tiles)
        return stream
