"""Fused softmax TPC kernel with MME-side exp-as-matmul offload.

GFormer's (arXiv 2412.19829, §3) attack on the Fig-4 softmax bottleneck
from the *kernel* side: the naive kernel's dominant cost is the
multi-cycle exponential per vector
(:data:`repro.hw.config.EXP_SPECIAL_CYCLES` VPU cycles). This kernel
keeps the whole max/sub/exp/sum/div chain in one index-space pass but
evaluates the exponential as a matmul against a fixed ``basis``-wide
interpolation basis on the MME: the TPC decomposes each shifted score
into basis coefficients (one cheap VPU cycle), streams the coefficient
vectors out through a double-buffered store, and streams the
exponentiated row back in while it reduces the running sum.

The TPC-side price per vector drops from ``1 + EXP_STALL`` cycles to a
handful of single-cycle bundles plus two double-buffered global
accesses; the MME-side GEMM is priced by the aggregate model through
:func:`repro.hw.costmodel.exp_offload_dims` (thin K = the basis width,
so the array under-fills — the honest cost of the offload).
"""

from __future__ import annotations

import math

import numpy as np

from ...hw.costmodel import EXP_OFFLOAD_BASIS, MatmulDims, exp_offload_dims
from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel
from ..memory import LocalMemory

PROLOGUE_CYCLES = 20
ROWS_PER_MEMBER = 4


class FusedSoftmaxKernel(TpcKernel):
    """y[..., :] = softmax(x[..., :]) with the exp on the MME."""

    name = "fused_softmax"
    inputs = (TensorSpec("x", 2, 5),)
    outputs = (TensorSpec("y", 2, 5),)
    uniform_members = True

    def __init__(self, basis: int = EXP_OFFLOAD_BASIS):
        self.basis = int(basis)

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": shapes["x"]}

    def _num_rows(self, shapes: dict[str, Shape]) -> int:
        return int(math.prod(shapes["x"][:-1]))

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        rows = self._num_rows(shapes)
        return IndexSpace((max(1, math.ceil(rows / ROWS_PER_MEMBER)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        # TPC side: max + sub + decompose + sum + div (~5 per element);
        # the MME-side basis GEMM is accounted by mme_offload_dims.
        return 5.0 * math.prod(shapes["x"])

    def mme_offload_dims(self, shapes: dict[str, Shape]) -> MatmulDims:
        """GEMM dims of the exp work this launch offloads to the MME."""
        return exp_offload_dims(shapes["x"], self.basis)

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        length = inputs["x"].shape[-1]
        x = inputs["x"].reshape(-1, length)
        y = outputs["y"].reshape(-1, length)
        r0 = member[0] * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, x.shape[0])
        block = x[r0:r1, :]
        shifted = block - block.max(axis=-1, keepdims=True)
        # The basis interpolation is exact in this model (the MME holds
        # the exp table at full precision), so the offloaded exp equals
        # the naive kernel's result bit for bit.
        e = np.exp(shifted)
        y[r0:r1, :] = e / e.sum(axis=-1, keepdims=True)

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        length = shapes["x"][-1]
        rows = min(ROWS_PER_MEMBER, self._num_rows(shapes))
        vectors = math.ceil(length / lanes)
        itemsize = 256 // lanes
        # Footprint: the shifted row block plus the returning exp block
        # (double-buffered halves) must sit in the 80 KB vector bank.
        local = LocalMemory()
        local.alloc("row_block", rows * length * itemsize)
        local.alloc("exp_block", rows * length * itemsize)

        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        for _ in range(rows):
            # Pass 1: running max while streaming the row in.
            stream.emit(vload_global(), vpu("vmax"), repeat=vectors)
            stream.emit(vpu("hmax", stall_cycles=float(lanes - 1)))
            # Pass 2: subtract the max and decompose into basis
            # coefficients — one cycle each instead of the naive
            # kernel's EXP_STALL-cycle transcendental — then ship the
            # coefficients to the MME through a double-buffered store.
            stream.emit(vpu("vsub"), repeat=vectors)
            stream.emit(
                vpu("basis_decomp"), vstore_global(double_buffered=True),
                repeat=vectors,
            )
            # Pass 3: the exponentiated row streams back while the VPU
            # accumulates the denominator.
            stream.emit(
                vload_global(double_buffered=True), vpu("vadd"),
                repeat=vectors,
            )
            stream.emit(vpu("hadd", stall_cycles=float(lanes - 1)))
            # SPU computes the reciprocal of the row sum once.
            stream.emit(spu("recip", stall_cycles=5.0))
            # Pass 4: scale and stream the row back out.
            stream.emit(vpu("mul"), vstore_global(), repeat=vectors)
        return stream
