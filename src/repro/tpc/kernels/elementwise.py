"""Elementwise TPC kernels: activations and binary arithmetic.

These are the op category §3.3 calls "extremely suitable for SIMD
architecture like TPC": each vector is loaded, transformed in the VPU,
and stored, with the global-memory port (one 2048-bit access per four
cycles, §2.2) as the structural bottleneck.

The activation set matches the paper's Figure 7 study: ReLU,
LeakyReLU, GELU, GLU — plus ELU (the Linear Transformer feature map),
exponential (FAVOR), sigmoid and tanh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...util.errors import KernelError
from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel

#: Elements processed by one index-space member (64 vectors of work —
#: enough to amortize the member prologue).
ELEMENTS_PER_MEMBER_VECTORS = 64
PROLOGUE_CYCLES = 20


def _numel(shape: Shape) -> int:
    return int(math.prod(shape)) if shape else 1


def _flat_member_slice(member_idx: int, chunk: int, numel: int) -> slice:
    lo = member_idx * chunk
    return slice(lo, min(lo + chunk, numel))


@dataclass(frozen=True)
class UnarySpec:
    """Description of a unary elementwise function."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    #: extra VPU stall cycles per vector beyond the single issue cycle
    vpu_stall: float
    #: FLOPs charged per element (for TFLOPS reporting)
    flops_per_element: float = 1.0


def _gelu(x: np.ndarray) -> np.ndarray:
    # tanh-approximated GELU (the form TPC special-function tables
    # implement); max abs error vs erf-GELU is ~1e-3.
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


UNARY_SPECS: dict[str, UnarySpec] = {
    "relu": UnarySpec("relu", lambda x: np.maximum(x, 0.0), vpu_stall=0.0),
    "leaky_relu": UnarySpec(
        "leaky_relu", lambda x: np.where(x >= 0, x, 0.01 * x), vpu_stall=1.0,
        flops_per_element=2.0,
    ),
    "elu": UnarySpec(
        # elu(x) = x for x>0 else exp(x)-1 ; exp costs 12 VPU cycles.
        "elu", lambda x: np.where(x > 0, x, np.expm1(x)), vpu_stall=13.0,
        flops_per_element=3.0,
    ),
    "exp": UnarySpec("exp", np.exp, vpu_stall=11.0, flops_per_element=1.0),
    "gelu": UnarySpec("gelu", _gelu, vpu_stall=17.0, flops_per_element=5.0),
    "sigmoid": UnarySpec("sigmoid", _sigmoid, vpu_stall=13.0, flops_per_element=3.0),
    "tanh": UnarySpec("tanh", np.tanh, vpu_stall=13.0, flops_per_element=3.0),
    "square": UnarySpec("square", np.square, vpu_stall=0.0),
    "sqrt": UnarySpec("sqrt", np.sqrt, vpu_stall=7.0),
    "log": UnarySpec("log", np.log, vpu_stall=13.0),
    "neg": UnarySpec("neg", np.negative, vpu_stall=0.0),
    "abs": UnarySpec("abs", np.abs, vpu_stall=0.0),
}


class UnaryElementwiseKernel(TpcKernel):
    """Generic y = f(x) kernel parameterized by a :class:`UnarySpec`."""

    inputs = (TensorSpec("x", 1, 5),)
    outputs = (TensorSpec("y", 1, 5),)
    uniform_members = True

    def __init__(self, spec_name: str, lanes_hint: int = 128):
        try:
            self.spec = UNARY_SPECS[spec_name]
        except KeyError:
            raise KernelError(
                f"unknown unary function {spec_name!r}; "
                f"known: {sorted(UNARY_SPECS)}"
            ) from None
        self.name = f"unary_{spec_name}"
        self._chunk = ELEMENTS_PER_MEMBER_VECTORS * lanes_hint

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": shapes["x"]}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        return IndexSpace((max(1, math.ceil(_numel(shapes["x"]) / self._chunk)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        return _numel(shapes["x"]) * self.spec.flops_per_element

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        x = inputs["x"].reshape(-1)
        y = outputs["y"].reshape(-1)
        sl = _flat_member_slice(member[0], self._chunk, x.size)
        y[sl] = self.spec.fn(x[sl])

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        vectors = math.ceil(min(self._chunk, _numel(shapes["x"])) / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        # Per vector: one global load (4-cycle port) then a bundle that
        # both computes and stores; the store shares the port, so the
        # bundle costs max(4, 1 + vpu_stall) cycles.
        stream.emit(vload_global(), repeat=vectors)
        stream.emit(
            vpu(self.spec.name, stall_cycles=max(3.0, self.spec.vpu_stall)),
            vstore_global(),
            repeat=vectors,
        )
        return stream


@dataclass(frozen=True)
class BinarySpec:
    """Description of a binary elementwise function."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    vpu_stall: float = 0.0
    flops_per_element: float = 1.0


BINARY_SPECS: dict[str, BinarySpec] = {
    "add": BinarySpec("add", np.add),
    "sub": BinarySpec("sub", np.subtract),
    "mul": BinarySpec("mul", np.multiply),
    "div": BinarySpec("div", np.divide, vpu_stall=5.0, flops_per_element=1.0),
    "max": BinarySpec("max", np.maximum),
}


class BinaryElementwiseKernel(TpcKernel):
    """Generic z = f(x, y) for same-shape tensors."""

    inputs = (TensorSpec("x", 1, 5), TensorSpec("y", 1, 5))
    outputs = (TensorSpec("z", 1, 5),)
    uniform_members = True

    def __init__(self, spec_name: str, lanes_hint: int = 128):
        try:
            self.spec = BINARY_SPECS[spec_name]
        except KeyError:
            raise KernelError(
                f"unknown binary function {spec_name!r}; "
                f"known: {sorted(BINARY_SPECS)}"
            ) from None
        self.name = f"binary_{spec_name}"
        self._chunk = ELEMENTS_PER_MEMBER_VECTORS * lanes_hint

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        if shapes["x"] != shapes["y"]:
            raise KernelError(
                f"{self.name}: shape mismatch {shapes['x']} vs {shapes['y']}"
            )

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"z": shapes["x"]}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        return IndexSpace((max(1, math.ceil(_numel(shapes["x"]) / self._chunk)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        return _numel(shapes["x"]) * self.spec.flops_per_element

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        x = inputs["x"].reshape(-1)
        y = inputs["y"].reshape(-1)
        z = outputs["z"].reshape(-1)
        sl = _flat_member_slice(member[0], self._chunk, x.size)
        z[sl] = self.spec.fn(x[sl], y[sl])

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        vectors = math.ceil(min(self._chunk, _numel(shapes["x"])) / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        # Two operand streams share the global port: 2 loads per vector.
        stream.emit(vload_global(), repeat=2 * vectors)
        stream.emit(
            vpu(self.spec.name, stall_cycles=max(3.0, self.spec.vpu_stall)),
            vstore_global(),
            repeat=vectors,
        )
        return stream


class GluKernel(TpcKernel):
    """Gated Linear Unit: splits the last dim in half, y = a * sigmoid(b).

    The paper singles GLU out (Fig. 7): it is the slowest activation and
    "SynapseAI does not have good support for GLU, which cause extra
    compilation during the execution". The *kernel* itself is only
    moderately more expensive (two operand streams + a sigmoid); the
    recompilation penalty is a graph-level effect modeled by the
    compiler (see :mod:`repro.synapse.compiler`), not here.
    """

    name = "glu"
    inputs = (TensorSpec("x", 1, 5),)
    outputs = (TensorSpec("y", 1, 5),)
    uniform_members = True
    SIGMOID_STALL = 13.0

    def __init__(self, lanes_hint: int = 128):
        self._chunk = ELEMENTS_PER_MEMBER_VECTORS * lanes_hint

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        if shapes["x"][-1] % 2 != 0:
            raise KernelError(
                f"glu: last dim must be even, got {shapes['x'][-1]}"
            )

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        x = shapes["x"]
        return {"y": x[:-1] + (x[-1] // 2,)}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        out_numel = _numel(self.output_shapes(shapes)["y"])
        return IndexSpace((max(1, math.ceil(out_numel / self._chunk)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        # sigmoid (3) + multiply (1) per output element
        return _numel(self.output_shapes(shapes)["y"]) * 4.0

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        x = inputs["x"]
        half = x.shape[-1] // 2
        a = x[..., :half].reshape(-1)
        b = x[..., half:].reshape(-1)
        y = outputs["y"].reshape(-1)
        sl = _flat_member_slice(member[0], self._chunk, y.size)
        y[sl] = a[sl] * _sigmoid(b[sl])

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        out_numel = _numel(self.output_shapes(shapes)["y"])
        vectors = math.ceil(min(self._chunk, out_numel) / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        # Gate and value streams both come from global memory; the gate
        # halves are strided (split along the last dim), which defeats
        # the access pipelining: full 4-cycle cost on both loads.
        stream.emit(vload_global(), repeat=2 * vectors)
        stream.emit(vpu("sigmoid", stall_cycles=self.SIGMOID_STALL), repeat=vectors)
        stream.emit(vpu("mul"), vstore_global(), repeat=vectors)
        return stream
