"""Flash-style tiled online-softmax attention kernel.

The FlashAttention recurrence on Gaudi's two-engine layout: attention is
computed tile by tile, keeping a running row max ``m``, denominator
``l`` and output accumulator in fp32 local memory, so the O(seq²) score
matrix *never exists in HBM* — the only global traffic is the O(seq·d)
Q/K/V streams and the output. Per visited (Q-tile, K-tile) pair:

    m_next = max(m_prev, rowmax(S))          # S = Q_tile K_tileᵀ * scale
    alpha  = exp(m_prev - m_next)
    P      = exp(S - m_next)
    l_next = alpha * l_prev + rowsum(P)
    acc    = alpha * acc + P V_tile
    out    = acc / l_next                    # after the last tile

Causal tiles entirely above the diagonal are skipped before any work is
issued (the tile-level analogue of the windowed kernel's block skip).

Engine split: the tile GEMMs (QKᵀ and PV) ride the MME — the TPC ships
coefficient tiles out and streams score/partial-output tiles back
through double-buffered global accesses, exactly like the fused
softmax's exp offload — while the online-softmax recurrence (max, exp,
rescale, accumulate) runs on the TPC over resident tiles. The default
128x128 tile is sized to the MME's 128x128 MAC array: smaller tiles
leave array rows dark (``spatial < 1`` in
:meth:`repro.hw.costmodel.MMEModel.achieved_tflops`) and give back the
very throughput the offload is buying. The aggregate model prices the
whole op through :func:`repro.hw.costmodel.flash_attention_dims` (MME
tile GEMMs + O(seq·d) HBM bytes).
"""

from __future__ import annotations

import math

import numpy as np

from ...hw.config import EXP_SPECIAL_CYCLES
from ...hw.costmodel import flash_attention_tile_pairs
from ...util.errors import KernelError
from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel
from ..memory import LocalMemory

PROLOGUE_CYCLES = 40
EXP_STALL = float(EXP_SPECIAL_CYCLES - 1)
#: Finite mask value for intra-tile causal masking (same constant as the
#: frontend mask and the windowed kernel): after the running-max shift,
#: exp of a masked score underflows to exactly 0.
MASK_VALUE = -1.0e9


class FlashAttentionKernel(TpcKernel):
    """out[b] = softmax(mask(Q[b] Kᵀ[b] * scale)) V[b], tiled online."""

    name = "flash_attention"
    inputs = (
        TensorSpec("q", 3, 3), TensorSpec("k", 3, 3), TensorSpec("v", 3, 3),
    )
    outputs = (TensorSpec("out", 3, 3),)
    uniform_members = False  # causal members skip above-diagonal tiles

    def __init__(self, q_block: int = 128, k_block: int = 128,
                 causal: bool = False, scale: float | None = None):
        if q_block < 1 or k_block < 1:
            raise KernelError(
                f"tile sizes must be >= 1, got q_block={q_block}, "
                f"k_block={k_block}"
            )
        self.q_block = int(q_block)
        self.k_block = int(k_block)
        self.causal = bool(causal)
        self.scale = scale

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        q, k, v = shapes["q"], shapes["k"], shapes["v"]
        if not (q[0] == k[0] == v[0]):
            raise KernelError(f"batch mismatch: {q[0]}, {k[0]}, {v[0]}")
        if q[2] != k[2]:
            raise KernelError(f"head-dim mismatch: Q {q[2]} vs K {k[2]}")
        if k[1] != v[1]:
            raise KernelError(f"key count mismatch: K {k[1]} vs V {v[1]}")
        if self.causal and q[1] != k[1]:
            raise KernelError(
                f"causal flash attention needs square attention, got "
                f"{q[1]} queries vs {k[1]} keys"
            )

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        q, v = shapes["q"], shapes["v"]
        return {"out": (q[0], q[1], v[2])}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        batch, seq, _ = shapes["q"]
        return IndexSpace((batch, math.ceil(seq / self.q_block)))

    def _tile_limit(self, r1: int, keys: int) -> int:
        """One past the last key any row < r1 may attend to."""
        return min(keys, r1) if self.causal else keys

    def flops(self, shapes: dict[str, Shape]) -> float:
        batch, seq, d = shapes["q"]
        pairs = flash_attention_tile_pairs(
            seq, self.q_block, self.k_block, self.causal
        )
        # two GEMMs (QKᵀ + PV) per visited tile pair, twin of
        # flash_attention_dims
        return 2.0 * 2.0 * batch * pairs * self.q_block * self.k_block * d

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        b, block = member
        q, k, v = inputs["q"][b], inputs["k"][b], inputs["v"][b]
        seq, keys = q.shape[0], k.shape[0]
        r0 = block * self.q_block
        r1 = min(r0 + self.q_block, seq)
        scale = self.scale if self.scale is not None else q.shape[-1] ** -0.5
        q_tile = q[r0:r1].astype(np.float32)

        rows = r1 - r0
        m = np.full((rows, 1), -np.inf, dtype=np.float32)
        l = np.zeros((rows, 1), dtype=np.float32)
        acc = np.zeros((rows, v.shape[1]), dtype=np.float32)
        limit = self._tile_limit(r1, keys)
        with np.errstate(over="ignore", invalid="ignore"):
            for c0 in range(0, limit, self.k_block):
                c1 = min(c0 + self.k_block, limit)
                s = (q_tile @ k[c0:c1].astype(np.float32).T) * scale
                if self.causal:
                    i = np.arange(r0, r1)[:, None]
                    j = np.arange(c0, c1)[None, :]
                    s = np.where(j <= i, s, MASK_VALUE)
                m_next = np.maximum(m, s.max(axis=-1, keepdims=True))
                alpha = np.exp(m - m_next)
                p = np.exp(s - m_next)
                l = alpha * l + p.sum(axis=-1, keepdims=True)
                acc = alpha * acc + p @ v[c0:c1].astype(np.float32)
                m = m_next
        out = np.divide(acc, l, out=np.zeros_like(acc), where=l > 0)
        outputs["out"][b, r0:r1, :] = out.astype(outputs["out"].dtype)

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        _, seq, d = shapes["q"]
        keys, dv = shapes["k"][1], shapes["v"][2]
        _, block = member
        r0 = block * self.q_block
        r1 = min(r0 + self.q_block, seq)
        rows = r1 - r0
        kb = min(self.k_block, keys)
        tree = float(math.ceil(math.log2(max(2, lanes))))
        itemsize = 256 // lanes

        # Footprint: Q tile, a strip of the returning score tile (fp32;
        # rows are consumed one at a time as they stream back from the
        # MME, so the full q_block x k_block tile is never resident),
        # the fp32 m/l statistics and accumulator. The 128x128 default
        # tile — sized to fill the MME's MAC array — would not fit
        # whole: 128*128*4 bytes of scores alone is 64 KiB of the
        # 80 KiB local memory.  K/V tiles live MME-side.
        local = LocalMemory()
        local.alloc("q_tile", rows * d * itemsize)
        local.alloc("score_strip", min(16, rows) * kb * 4)
        local.alloc("stats_ml", 2 * rows * 4)
        local.alloc("acc", rows * dv * 4)

        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        # Q tile ships to the MME once per member.
        stream.emit(
            vstore_global(double_buffered=True),
            repeat=math.ceil(rows * d / lanes),
        )
        limit = self._tile_limit(r1, keys)
        tile_vectors = math.ceil(kb / lanes)
        out_vectors = math.ceil(dv / lanes)
        for _ in range(math.ceil(limit / kb)):
            # Score tile streams back from the MME (QKᵀ ran there).
            stream.emit(
                vload_global(double_buffered=True),
                repeat=rows * tile_vectors,
            )
            # Intra-tile causal mask (single-cycle, resident tile).
            if self.causal:
                stream.emit(vpu("vmask"), repeat=rows * tile_vectors)
            for _ in range(rows):
                # Running max update: vector max + lane-shuffle tree.
                stream.emit(vpu("vmax"), repeat=tile_vectors)
                stream.emit(vpu("hmax_tree", stall_cycles=tree))
                # P = exp(S - m_next): the transcendental stays on the
                # TPC — flash wins on HBM traffic, not exp cycles.
                stream.emit(vpu("sub_exp", stall_cycles=EXP_STALL),
                            repeat=tile_vectors)
                # alpha = exp(m_prev - m_next) on the SPU, then l and
                # acc rescale.
                stream.emit(spu("alpha_exp", stall_cycles=EXP_STALL))
                stream.emit(vpu("vadd"), repeat=tile_vectors)
                stream.emit(vpu("hadd_tree", stall_cycles=tree))
                stream.emit(vpu("mul"), repeat=out_vectors)
            # P ships out; the PV partial tile returns and accumulates.
            stream.emit(vstore_global(double_buffered=True),
                        repeat=rows * tile_vectors)
            stream.emit(
                vload_global(double_buffered=True), vpu("vadd"),
                repeat=rows * out_vectors,
            )
        # Epilogue: out = acc / l, then stream the tile out.
        for _ in range(rows):
            stream.emit(spu("recip", stall_cycles=5.0))
            stream.emit(vpu("mul"), repeat=out_vectors)
        stream.emit(vstore_global(double_buffered=True),
                    repeat=rows * out_vectors)
        return stream
