"""Row-wise LayerNorm TPC kernel.

LayerNorm is the other reduction-bearing Transformer op that lands on
the TPC (Table 1 leaves nothing else). The kernel normalizes each row
in three passes — mean-reduce, variance-reduce, scale — and, like the
softmax kernel, pays the serial horizontal-combine cost twice per row.
"""

from __future__ import annotations

import math

import numpy as np

from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel

PROLOGUE_CYCLES = 20
RSQRT_STALL = 7.0
ROWS_PER_MEMBER = 4
EPS = 1e-5


class LayerNormKernel(TpcKernel):
    """y[..., :] = (x - mean) / sqrt(var + eps) along the last dim."""

    name = "layernorm"
    inputs = (TensorSpec("x", 2, 5),)
    outputs = (TensorSpec("y", 2, 5),)
    uniform_members = True

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": shapes["x"]}

    def _num_rows(self, shapes: dict[str, Shape]) -> int:
        return int(math.prod(shapes["x"][:-1]))

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        rows = self._num_rows(shapes)
        return IndexSpace((max(1, math.ceil(rows / ROWS_PER_MEMBER)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        # mean + centered square + var + rsqrt-scale: ~6 ops/element
        return 6.0 * math.prod(shapes["x"])

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        length = inputs["x"].shape[-1]
        x = inputs["x"].reshape(-1, length)
        y = outputs["y"].reshape(-1, length)
        r0 = member[0] * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, x.shape[0])
        block = x[r0:r1, :]
        mu = block.mean(axis=-1, keepdims=True)
        var = ((block - mu) ** 2).mean(axis=-1, keepdims=True)
        y[r0:r1, :] = (block - mu) / np.sqrt(var + EPS)

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        length = shapes["x"][-1]
        rows = min(ROWS_PER_MEMBER, self._num_rows(shapes))
        vectors = math.ceil(length / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        for _ in range(rows):
            # pass 1: stream the row in, accumulating the sum
            stream.emit(vload_global(), vpu("vadd"), repeat=vectors)
            stream.emit(vpu("hadd", stall_cycles=float(lanes - 1)))
            # pass 2: centered squares from local memory + sum
            stream.emit(vpu("sub_sq"), repeat=vectors)
            stream.emit(vpu("hadd2", stall_cycles=float(lanes - 1)))
            # scalar rsqrt of the variance
            stream.emit(spu("rsqrt", stall_cycles=RSQRT_STALL))
            # pass 3: scale and stream out
            stream.emit(vpu("mul"), vstore_global(), repeat=vectors)
        return stream
