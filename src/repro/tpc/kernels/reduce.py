"""Reduction TPC kernels: row-wise sum and max.

§3.3: "Softmax requires reduction operations, which are not well-suited
for single instruction, multiple data (SIMD) architectures like TPC."
The timing model makes that concrete: after the vectorized partial pass
(one VPU op per 2048-bit vector), combining the ``lanes`` partial
results needs a horizontal tree the VPU executes serially — ~``lanes``
cycles that no amount of data hides, so short rows see terrible
efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...util.errors import KernelError
from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel

PROLOGUE_CYCLES = 20
#: Rows handled by one index-space member.
ROWS_PER_MEMBER = 4


@dataclass(frozen=True)
class ReduceSpec:
    """A row-reduction function."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]  # reduces axis=-1


REDUCE_SPECS: dict[str, ReduceSpec] = {
    "sum": ReduceSpec("sum", lambda x: np.sum(x, axis=-1)),
    "max": ReduceSpec("max", lambda x: np.max(x, axis=-1)),
}


class RowReduceKernel(TpcKernel):
    """y[..., r] = reduce(x[..., r, :]) over the last dimension."""

    inputs = (TensorSpec("x", 2, 5),)
    outputs = (TensorSpec("y", 1, 4),)
    uniform_members = True

    def __init__(self, spec_name: str):
        try:
            self.spec = REDUCE_SPECS[spec_name]
        except KeyError:
            raise KernelError(
                f"unknown reduction {spec_name!r}; known: {sorted(REDUCE_SPECS)}"
            ) from None
        self.name = f"reduce_{spec_name}"

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": shapes["x"][:-1]}

    def _num_rows(self, shapes: dict[str, Shape]) -> int:
        return int(math.prod(shapes["x"][:-1]))

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        rows = self._num_rows(shapes)
        return IndexSpace((max(1, math.ceil(rows / ROWS_PER_MEMBER)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        return float(math.prod(shapes["x"]))

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        length = inputs["x"].shape[-1]
        x = inputs["x"].reshape(-1, length)
        y = outputs["y"].reshape(-1)
        r0 = member[0] * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, x.shape[0])
        y[r0:r1] = self.spec.fn(x[r0:r1, :])

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        length = shapes["x"][-1]
        rows = min(ROWS_PER_MEMBER, self._num_rows(shapes))
        vectors = math.ceil(length / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        for _ in range(rows):
            # Vectorized partial pass: load + accumulate per vector.
            stream.emit(
                vload_global(), vpu(f"v{self.spec.name}"), repeat=vectors
            )
            # Horizontal combine across lanes: serial shuffle/op tree,
            # ~1 cycle per lane — the SIMD-hostile part.
            stream.emit(vpu(f"h{self.spec.name}", stall_cycles=float(lanes - 1)))
        # One scalar result per row leaves via the store slot.
        stream.emit(vstore_global(), repeat=max(1, rows * 1 // lanes + 1))
        return stream
