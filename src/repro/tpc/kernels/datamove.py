"""Data-movement TPC kernels: 2D transpose and embedding gather.

Neither moves a single FLOP, yet both burn real TPC time — transpose
because one side of the access pattern is strided (defeating the
4-cycle global-port pipelining), gather because every row lands where
the index table says. They complete the kernel library's coverage of
the op classes the framework maps to the TPC.
"""

from __future__ import annotations

import math

import numpy as np

from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel

PROLOGUE_CYCLES = 20
#: square tile staged through vector local memory per member
TILE = 64


class Transpose2DKernel(TpcKernel):
    """y = x.T for 2D tensors, tiled through local memory."""

    name = "transpose2d"
    inputs = (TensorSpec("x", 2, 2),)
    outputs = (TensorSpec("y", 2, 2),)
    uniform_members = True

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        r, c = shapes["x"]
        return {"y": (c, r)}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        r, c = shapes["x"]
        return IndexSpace((math.ceil(r / TILE), math.ceil(c / TILE)))

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        ti, tj = member
        x = inputs["x"]
        r0, c0 = ti * TILE, tj * TILE
        r1 = min(r0 + TILE, x.shape[0])
        c1 = min(c0 + TILE, x.shape[1])
        outputs["y"][c0:c1, r0:r1] = x[r0:r1, c0:c1].T

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        vectors = math.ceil(TILE * TILE / lanes)
        # staging through local memory keeps strided access off the
        # global port: contiguous source rows in, in-tile transpose in
        # local memory (single-cycle), contiguous destination rows out
        stream.emit(vload_global(double_buffered=True), repeat=vectors)
        stream.emit(vstore_global(double_buffered=True), repeat=vectors)
        return stream


class GatherRowsKernel(TpcKernel):
    """y[i, :] = table[idx[i], :] — the embedding lookup."""

    name = "gather_rows"
    inputs = (TensorSpec("table", 2, 2), TensorSpec("idx", 1, 1))
    outputs = (TensorSpec("y", 2, 2),)
    uniform_members = True
    ROWS_PER_MEMBER = 8

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": (shapes["idx"][0], shapes["table"][1])}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        n = shapes["idx"][0]
        return IndexSpace((max(1, math.ceil(n / self.ROWS_PER_MEMBER)),))

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        lo = member[0] * self.ROWS_PER_MEMBER
        hi = min(lo + self.ROWS_PER_MEMBER, inputs["idx"].shape[0])
        rows = inputs["idx"][lo:hi].astype(np.int64)
        outputs["y"][lo:hi, :] = inputs["table"][rows, :]

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        width = shapes["table"][1]
        vectors_per_row = math.ceil(width / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        for _ in range(self.ROWS_PER_MEMBER):
            # scalar index load + address computation, then a random-
            # access row copy (no pipelining across rows: the next
            # address depends on the next index)
            stream.emit(spu("load_index", stall_cycles=3.0))
            stream.emit(vload_global(), repeat=vectors_per_row)
            stream.emit(vstore_global(double_buffered=True),
                        repeat=vectors_per_row)
        return stream
