"""Row-wise softmax TPC kernel.

The op at the center of the paper: softmax is the Transformer operation
that SynapseAI can only map to the TPC, and on long sequences it
"exceeds 80% of the total running time" of a layer (§3.3, Fig. 4).

The kernel computes a numerically stable softmax per row in four
passes — max-reduce, subtract+exp, sum-reduce, divide — and its timing
stream shows exactly why the TPC dislikes it: two horizontal reductions
per row (serial across SIMD lanes) plus a multi-cycle exponential per
vector (:data:`repro.hw.config.EXP_SPECIAL_CYCLES`), on O(N^2)
attention-matrix rows.
"""

from __future__ import annotations

import math

import numpy as np

from ...hw.config import EXP_SPECIAL_CYCLES
from ..indexspace import IndexSpace
from ..isa import InstructionStream, spu, vload_global, vpu, vstore_global
from ..kernel import Shape, TensorSpec, TpcKernel

PROLOGUE_CYCLES = 20
#: Stall cycles of the fused subtract+exponentiate bundle. A bundle
#: retires in ``1 + stall`` cycles, so this is derived from the
#: hw-layer calibration rather than kept as a second copy of it.
EXP_STALL = float(EXP_SPECIAL_CYCLES - 1)
ROWS_PER_MEMBER = 4


class SoftmaxKernel(TpcKernel):
    """y[..., :] = softmax(x[..., :]) along the last dimension."""

    name = "softmax"
    inputs = (TensorSpec("x", 2, 5),)
    outputs = (TensorSpec("y", 2, 5),)
    uniform_members = True

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        return {"y": shapes["x"]}

    def _num_rows(self, shapes: dict[str, Shape]) -> int:
        return int(math.prod(shapes["x"][:-1]))

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        rows = self._num_rows(shapes)
        return IndexSpace((max(1, math.ceil(rows / ROWS_PER_MEMBER)),))

    def flops(self, shapes: dict[str, Shape]) -> float:
        # max + sub + exp + sum + div: ~5 ops per element.
        return 5.0 * math.prod(shapes["x"])

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        length = inputs["x"].shape[-1]
        x = inputs["x"].reshape(-1, length)
        y = outputs["y"].reshape(-1, length)
        r0 = member[0] * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, x.shape[0])
        block = x[r0:r1, :]
        shifted = block - block.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        y[r0:r1, :] = e / e.sum(axis=-1, keepdims=True)

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        length = shapes["x"][-1]
        rows = min(ROWS_PER_MEMBER, self._num_rows(shapes))
        vectors = math.ceil(length / lanes)
        stream = InstructionStream()
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        for _ in range(rows):
            # Pass 1: running max while streaming the row in.
            stream.emit(vload_global(), vpu("vmax"), repeat=vectors)
            stream.emit(vpu("hmax", stall_cycles=float(lanes - 1)))
            # Pass 2: subtract the max and exponentiate; the row now
            # lives in vector local memory (single-cycle access).
            stream.emit(vpu("sub_exp", stall_cycles=EXP_STALL), repeat=vectors)
            # Pass 3: sum of exponentials + horizontal combine.
            stream.emit(vpu("vadd"), repeat=vectors)
            stream.emit(vpu("hadd", stall_cycles=float(lanes - 1)))
            # SPU computes the reciprocal of the row sum once.
            stream.emit(spu("recip", stall_cycles=5.0))
            # Pass 4: scale and stream the row back out.
            stream.emit(vpu("mul"), vstore_global(), repeat=vectors)
        return stream
