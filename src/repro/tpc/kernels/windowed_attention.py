"""Windowed (sliding-window) attention TPC kernel.

GFormer's sparse-attention leg: each query attends only to a band of
``window`` keys, so the kernel computes a blocked QKᵀ → softmax → V
sweep over the band and *skips fully masked key blocks entirely* — the
work drops from O(seq²·d) to O(seq·window·d) and the score strip never
exceeds ``rows x (window + rows)`` elements of fp32 local memory.

One index-space member owns ``ROWS_PER_MEMBER`` query rows of one batch
element. It loads its Q block once, streams the in-window K chunk-wise
through the FMA loop (scores land in the local strip), runs a
tree-reduction softmax over the strip — the strip is resident, so the
horizontal reductions use lane-shuffle trees instead of the naive
kernel's serial scan — and streams V back through a second FMA sweep.

Numerics match :data:`repro.synapse.ops` ``windowed_attention`` exactly:
out-of-window scores are masked to the same finite -1e9 before the
stable softmax. The aggregate cost model prices this kernel through
:func:`repro.hw.costmodel.windowed_attention_dims`.
"""

from __future__ import annotations

import math

import numpy as np

from ...hw.config import EXP_SPECIAL_CYCLES
from ...util.errors import KernelError
from ..indexspace import IndexSpace
from ..isa import (
    InstructionStream,
    spu,
    vload_global,
    vload_global_streamed,
    vpu,
    vstore_global,
)
from ..kernel import Shape, TensorSpec, TpcKernel
from ..memory import LocalMemory

#: Query rows computed by one index-space member.
ROWS_PER_MEMBER = 16
#: Keys streamed per K/V chunk (bounds the chunk's local footprint).
KEY_CHUNK = 128
PROLOGUE_CYCLES = 40
EXP_STALL = float(EXP_SPECIAL_CYCLES - 1)
#: The masked score value (matches the frontend causal mask and the
#: graph-level op): finite, and exp underflows to exactly 0 after the
#: max shift.
MASK_VALUE = -1.0e9


class WindowedAttentionKernel(TpcKernel):
    """out[b] = softmax(mask(Q[b] Kᵀ[b] * scale)) V[b], banded."""

    name = "windowed_attention"
    inputs = (
        TensorSpec("q", 3, 3), TensorSpec("k", 3, 3), TensorSpec("v", 3, 3),
    )
    outputs = (TensorSpec("out", 3, 3),)
    uniform_members = False  # band width varies along the diagonal

    def __init__(self, window: int = 512, causal: bool = True,
                 scale: float | None = None):
        if window < 1:
            raise KernelError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.causal = bool(causal)
        self.scale = scale

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        q, k, v = shapes["q"], shapes["k"], shapes["v"]
        if not (q[0] == k[0] == v[0]):
            raise KernelError(f"batch mismatch: {q[0]}, {k[0]}, {v[0]}")
        if q[1] != k[1]:
            raise KernelError(
                f"windowed_attention needs square attention, got "
                f"{q[1]} queries vs {k[1]} keys"
            )
        if q[2] != k[2]:
            raise KernelError(f"head-dim mismatch: Q {q[2]} vs K {k[2]}")
        if k[1] != v[1]:
            raise KernelError(f"key count mismatch: K {k[1]} vs V {v[1]}")

    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        q, v = shapes["q"], shapes["v"]
        return {"out": (q[0], q[1], v[2])}

    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        batch, seq, _ = shapes["q"]
        return IndexSpace((batch, math.ceil(seq / ROWS_PER_MEMBER)))

    def _row_span(self, r0: int, r1: int, seq: int) -> tuple[int, int]:
        """Key range [lo, hi) covering rows [r0, r1) of the band."""
        w = self.window
        if self.causal:
            lo = max(0, r0 - w + 1)
            hi = min(seq, r1)
        else:
            lo = max(0, r0 - (w - 1) // 2)
            hi = min(seq, (r1 - 1) + w // 2 + 1)
        return lo, max(lo + 1, hi)

    def flops(self, shapes: dict[str, Shape]) -> float:
        batch, seq, d = shapes["q"]
        dv = shapes["v"][2]
        total = 0.0
        for i in range(seq):
            lo, hi = self._row_span(i, i + 1, seq)
            total += (hi - lo) * 2.0 * (d + dv)
        return batch * total

    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        b, block = member
        q, k, v = inputs["q"][b], inputs["k"][b], inputs["v"][b]
        seq = q.shape[0]
        r0 = block * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, seq)
        lo, hi = self._row_span(r0, r1, seq)
        scale = self.scale if self.scale is not None else q.shape[-1] ** -0.5
        s = (q[r0:r1] @ k[lo:hi].T) * scale
        i = np.arange(r0, r1)[:, None]
        j = np.arange(lo, hi)[None, :]
        if self.causal:
            keep = (j <= i) & (j > i - self.window)
        else:
            w = self.window
            keep = (j >= i - (w - 1) // 2) & (j <= i + w // 2)
        s = np.where(keep, s, MASK_VALUE)
        with np.errstate(over="ignore", invalid="ignore"):
            e = np.exp(s - s.max(axis=-1, keepdims=True))
        denom = e.sum(axis=-1, keepdims=True)
        p = np.divide(e, denom, out=np.zeros_like(e), where=denom > 0)
        outputs["out"][b, r0:r1, :] = p @ v[lo:hi]

    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        _, seq, d = shapes["q"]
        dv = shapes["v"][2]
        _, block = member
        r0 = block * ROWS_PER_MEMBER
        r1 = min(r0 + ROWS_PER_MEMBER, seq)
        rows = r1 - r0
        lo, hi = self._row_span(r0, r1, seq)
        span = hi - lo
        tree = float(math.ceil(math.log2(max(2, lanes))))
        itemsize = 256 // lanes

        # Footprint: Q block + the fp32 score strip + one K chunk + one
        # V chunk + the fp32 output accumulator must fit the 80 KB bank.
        # This is what bounds the usable window (~768 keys at 16 rows).
        local = LocalMemory()
        local.alloc("q_block", rows * d * itemsize)
        local.alloc("score_strip", rows * span * 4)
        local.alloc("k_chunk", min(KEY_CHUNK, span) * d * itemsize)
        local.alloc("v_chunk", min(KEY_CHUNK, span) * dv * itemsize)
        local.alloc("acc", rows * dv * 4)

        stream = InstructionStream()
        # Prologue covers addressing plus the band-bounds computation
        # that decides which key blocks are skipped outright.
        stream.emit(spu("addr_setup"), repeat=PROLOGUE_CYCLES)
        stream.emit(
            vload_global(double_buffered=True),
            repeat=math.ceil(rows * d / lanes),
        )
        span_vectors = math.ceil(span / lanes)
        # Scores: one FMA bundle per (row, k-element, span-tile); K
        # chunks stream behind the loop like the bmm kernel's B tiles.
        fma_qk = rows * d * span_vectors
        stream.emit(vpu("mac_v"), vload_global_streamed(), repeat=fma_qk)
        # Apply the band mask on the resident strip (single-cycle).
        stream.emit(vpu("vmask"), repeat=rows * span_vectors)
        # Softmax over the strip. The strip is local, so horizontal
        # reductions are lane-shuffle trees, not the serial scan the
        # global-memory softmax kernel pays.
        for _ in range(rows):
            stream.emit(vpu("vmax"), repeat=span_vectors)
            stream.emit(vpu("hmax_tree", stall_cycles=tree))
            stream.emit(vpu("sub_exp", stall_cycles=EXP_STALL),
                        repeat=span_vectors)
            stream.emit(vpu("vadd"), repeat=span_vectors)
            stream.emit(vpu("hadd_tree", stall_cycles=tree))
            stream.emit(spu("recip", stall_cycles=5.0))
            stream.emit(vpu("mul"), repeat=span_vectors)
        # P @ V over the same band; V chunks stream behind the FMA loop.
        fma_pv = rows * span * math.ceil(dv / lanes)
        stream.emit(vpu("mac_v"), vload_global_streamed(), repeat=fma_pv)
        loop_overhead = math.ceil((fma_qk + fma_pv) * (1.0 / 0.972 - 1.0))
        stream.emit(spu("loop_ctl"), repeat=loop_overhead)
        stream.emit(
            vstore_global(double_buffered=True),
            repeat=rows * math.ceil(dv / lanes),
        )
        return stream
