"""TPC kernel library: the custom kernels used by the experiments.

All kernels register into :data:`repro.tpc.kernel.REGISTRY` by name so
host code can instantiate them like the SynapseAI SDK resolves TPC GUIDs:

>>> from repro.tpc import REGISTRY, TPCSimulator
>>> kernel = REGISTRY.create("bmm")
"""

from ..kernel import REGISTRY
from .bmm import BatchMatmulKernel
from .elementwise import (
    BINARY_SPECS,
    BinaryElementwiseKernel,
    GluKernel,
    UNARY_SPECS,
    UnaryElementwiseKernel,
)
from .datamove import GatherRowsKernel, Transpose2DKernel
from .flash_attention import FlashAttentionKernel
from .fused_softmax import FusedSoftmaxKernel
from .layernorm import LayerNormKernel
from .reduce import REDUCE_SPECS, RowReduceKernel
from .softmax import SoftmaxKernel
from .windowed_attention import WindowedAttentionKernel

REGISTRY.register(BatchMatmulKernel)
REGISTRY.register(SoftmaxKernel)
REGISTRY.register(FusedSoftmaxKernel)
REGISTRY.register(WindowedAttentionKernel)
REGISTRY.register(FlashAttentionKernel)
REGISTRY.register(GluKernel)
REGISTRY.register(LayerNormKernel)
REGISTRY.register(Transpose2DKernel)
REGISTRY.register(GatherRowsKernel)


class _NamedUnary(UnaryElementwiseKernel):
    """Registry adapter: a unary kernel with its function baked in."""

    _SPEC_NAME = ""

    def __init__(self, lanes_hint: int = 128):
        super().__init__(self._SPEC_NAME, lanes_hint)


class _NamedBinary(BinaryElementwiseKernel):
    """Registry adapter: a binary kernel with its function baked in."""

    _SPEC_NAME = ""

    def __init__(self, lanes_hint: int = 128):
        super().__init__(self._SPEC_NAME, lanes_hint)


class _NamedReduce(RowReduceKernel):
    """Registry adapter: a reduce kernel with its function baked in."""

    _SPEC_NAME = ""

    def __init__(self):
        super().__init__(self._SPEC_NAME)


def _register_specs() -> None:
    for spec_name in UNARY_SPECS:
        cls = type(
            f"Unary{spec_name.title().replace('_', '')}Kernel",
            (_NamedUnary,),
            {"_SPEC_NAME": spec_name, "name": f"unary_{spec_name}"},
        )
        REGISTRY.register(cls)
    for spec_name in BINARY_SPECS:
        cls = type(
            f"Binary{spec_name.title()}Kernel",
            (_NamedBinary,),
            {"_SPEC_NAME": spec_name, "name": f"binary_{spec_name}"},
        )
        REGISTRY.register(cls)
    for spec_name in REDUCE_SPECS:
        cls = type(
            f"Reduce{spec_name.title()}Kernel",
            (_NamedReduce,),
            {"_SPEC_NAME": spec_name, "name": f"reduce_{spec_name}"},
        )
        REGISTRY.register(cls)


_register_specs()

__all__ = [
    "BatchMatmulKernel",
    "BinaryElementwiseKernel",
    "FlashAttentionKernel",
    "FusedSoftmaxKernel",
    "GatherRowsKernel",
    "GluKernel",
    "LayerNormKernel",
    "Transpose2DKernel",
    "RowReduceKernel",
    "SoftmaxKernel",
    "UnaryElementwiseKernel",
    "WindowedAttentionKernel",
    "BINARY_SPECS",
    "REDUCE_SPECS",
    "UNARY_SPECS",
]
