"""Index spaces: how TPC kernels divide work across the cluster.

§2.2: "Index spacing, similar to threads in CUDA programming,
efficiently divides workloads among TPC processors. Each index space
member corresponds to an independent unit of work executed on a single
TPC." An :class:`IndexSpace` is a 1–5 dimensional grid of members; the
launcher partitions members across the eight cores.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from ..util.errors import KernelError

MAX_RANK = 5


@dataclass(frozen=True)
class IndexSpace:
    """A grid of independent work units, rank 1..5."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.dims) <= MAX_RANK:
            raise KernelError(
                f"index space rank must be 1..{MAX_RANK}, got {len(self.dims)}"
            )
        for d in self.dims:
            if not isinstance(d, int) or isinstance(d, bool) or d < 1:
                raise KernelError(f"index space dims must be positive ints: {self.dims}")

    @property
    def size(self) -> int:
        """Total number of members."""
        return math.prod(self.dims)

    def members(self) -> "itertools.product":
        """Iterate all members in row-major order."""
        return itertools.product(*(range(d) for d in self.dims))

    def member_at(self, flat: int) -> tuple[int, ...]:
        """The ``flat``-th member in row-major order."""
        if not 0 <= flat < self.size:
            raise KernelError(f"member index {flat} out of range [0, {self.size})")
        coords = []
        for d in reversed(self.dims):
            coords.append(flat % d)
            flat //= d
        return tuple(reversed(coords))


def partition_members(space: IndexSpace, num_cores: int) -> list[list[int]]:
    """Block-partition member flat-indices across ``num_cores`` cores.

    Returns one list of flat member indices per core; the partition is
    contiguous (members 0..k-1 to core 0, ...) which preserves the
    spatial locality kernels rely on, and balanced to within one member.
    """
    if num_cores < 1:
        raise KernelError(f"num_cores must be >= 1, got {num_cores}")
    n = space.size
    base, extra = divmod(n, num_cores)
    assignments: list[list[int]] = []
    start = 0
    for core in range(num_cores):
        count = base + (1 if core < extra else 0)
        assignments.append(list(range(start, start + count)))
        start += count
    return assignments


def balance_ratio(per_core_cycles: list[float]) -> float:
    """Mean/max load ratio in (0, 1]; 1.0 is a perfectly balanced launch."""
    if not per_core_cycles:
        raise KernelError("no per-core cycle data")
    peak = max(per_core_cycles)
    if peak <= 0:
        return 1.0
    return (sum(per_core_cycles) / len(per_core_cycles)) / peak
