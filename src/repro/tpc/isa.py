"""TPC VLIW instruction-set model.

The TPC is a VLIW SIMD processor whose instruction word has four
functional slots (§2.2 of the paper):

* **Load** — memory loads, value movements/settings;
* **SPU** — scalar computations;
* **VPU** — 2048-bit vector computations;
* **Store** — memory stores, value movements/settings.

We model a program as a stream of :class:`Bundle` objects (one VLIW
word each). A bundle always retires in ``max(1, stall)`` cycles: slots
issue in parallel, and a bundle only costs extra when one of its slots
stalls (e.g. a global-memory access that misses the 4-cycle pipelining
window). This is deliberately a *timing* model, not a functional ISA —
functional behaviour lives in the kernels' numpy bodies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..util.errors import KernelError


class Slot(enum.Enum):
    """The four functional slots of the TPC VLIW word (§2.2)."""

    LOAD = "load"
    SPU = "spu"
    VPU = "vpu"
    STORE = "store"


@dataclass(frozen=True)
class SlotOp:
    """One operation occupying one slot of a bundle."""

    slot: Slot
    mnemonic: str
    #: extra cycles beyond the single issue cycle (e.g. transcendental
    #: VPU ops, exposed global-memory latency)
    stall_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.stall_cycles < 0:
            raise KernelError(
                f"{self.mnemonic}: stall_cycles must be >= 0, got {self.stall_cycles}"
            )


@dataclass
class Bundle:
    """A single VLIW instruction word: at most one op per slot."""

    ops: tuple[SlotOp, ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise KernelError(f"bundle repeat must be >= 1, got {self.repeat}")
        seen: set[Slot] = set()
        for op in self.ops:
            if op.slot in seen:
                raise KernelError(
                    f"slot {op.slot.value} used twice in one bundle "
                    f"({[o.mnemonic for o in self.ops]})"
                )
            seen.add(op.slot)

    @property
    def cycles(self) -> float:
        """Retire time of one issue of this bundle."""
        stall = max((op.stall_cycles for op in self.ops), default=0.0)
        return 1.0 + stall

    @property
    def total_cycles(self) -> float:
        """Retire time including the repeat count."""
        return self.cycles * self.repeat


@dataclass
class InstructionStream:
    """A kernel inner program: an ordered list of bundles.

    Kernels emit their per-index-space-member work as a stream; the
    simulator sums retire times. ``slot_counts`` supports the classic
    VLIW utilization question: how full are the four slots?
    """

    bundles: list[Bundle] = field(default_factory=list)

    def emit(self, *ops: SlotOp, repeat: int = 1) -> Bundle:
        """Append one bundle of ``ops`` issued ``repeat`` times."""
        bundle = Bundle(tuple(ops), repeat)
        self.bundles.append(bundle)
        return bundle

    @property
    def cycles(self) -> float:
        """Total retire cycles of the stream."""
        return sum(b.total_cycles for b in self.bundles)

    def slot_counts(self) -> dict[Slot, int]:
        """Number of issued ops per slot (weighted by repeats)."""
        counts = {slot: 0 for slot in Slot}
        for bundle in self.bundles:
            for op in bundle.ops:
                counts[op.slot] += bundle.repeat
        return counts

    def slot_utilization(self) -> float:
        """Mean fraction of the 4 slots filled per issued bundle."""
        issued = sum(b.repeat for b in self.bundles)
        if issued == 0:
            return 0.0
        filled = sum(len(b.ops) * b.repeat for b in self.bundles)
        return filled / (4 * issued)


# Canonical slot-op constructors used by the kernel library. The stall
# numbers encode the architectural statements from §2.2: local memory
# has "unrestricted bandwidth ... in each cycle" (no stall), while a
# 2048-bit global-memory access completes every 4 cycles (3 exposed
# stall cycles when not covered by double buffering).

GLOBAL_ACCESS_STALL = 3.0
DOUBLE_BUFFERED_GLOBAL_STALL = 1.0


def vload_local(mnemonic: str = "ld_l_v") -> SlotOp:
    """Vector load from local memory (single cycle, §2.2)."""
    return SlotOp(Slot.LOAD, mnemonic)


def vload_global(*, double_buffered: bool = False) -> SlotOp:
    """Vector load from global memory through a tensor access point."""
    stall = DOUBLE_BUFFERED_GLOBAL_STALL if double_buffered else GLOBAL_ACCESS_STALL
    return SlotOp(Slot.LOAD, "ld_g_v", stall_cycles=stall)


def vload_global_streamed() -> SlotOp:
    """Global load fully hidden under a long compute loop.

    When a kernel issues many more VPU bundles than loads (e.g. the
    matmul inner loop reuses a local tile across 32 rows), the 4-cycle
    global access pipelines entirely behind compute and the load rides
    in an FMA bundle's Load slot for free.
    """
    return SlotOp(Slot.LOAD, "ld_g_v_stream", stall_cycles=0.0)


def vstore_local(mnemonic: str = "st_l_v") -> SlotOp:
    """Vector store to local memory."""
    return SlotOp(Slot.STORE, mnemonic)


def vstore_global(*, double_buffered: bool = False) -> SlotOp:
    """Vector store to global memory."""
    stall = DOUBLE_BUFFERED_GLOBAL_STALL if double_buffered else GLOBAL_ACCESS_STALL
    return SlotOp(Slot.STORE, "st_g_v", stall_cycles=stall)


def vpu(mnemonic: str, stall_cycles: float = 0.0) -> SlotOp:
    """A VPU (vector) operation."""
    return SlotOp(Slot.VPU, mnemonic, stall_cycles=stall_cycles)


def spu(mnemonic: str, stall_cycles: float = 0.0) -> SlotOp:
    """An SPU (scalar) operation."""
    return SlotOp(Slot.SPU, mnemonic, stall_cycles=stall_cycles)
