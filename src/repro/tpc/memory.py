"""Per-core TPC local-memory accounting.

§2.2: each TPC owns 1 KB of scalar local memory and 80 KB of vector
local memory with single-cycle access. Kernels tile their working sets
to fit; this module gives kernel authors the allocator that enforces
it and the helper that picks the largest contraction tile fitting the
budget — which is why the bmm kernel's K-chunk shrinks automatically
for fp32 (fewer lanes, fatter elements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import TPCClusterConfig
from ..hw.dtypes import DType, itemsize
from ..util.errors import KernelError
from ..util.units import fmt_bytes


@dataclass
class LocalMemory:
    """One core's scalar + vector local banks."""

    scalar_capacity: int = 1024
    vector_capacity: int = 80 * 1024
    _scalar_used: int = field(default=0, init=False)
    _vector_used: int = field(default=0, init=False)
    _live: dict[str, tuple[str, int]] = field(default_factory=dict, init=False)

    def alloc(self, name: str, nbytes: int, *, bank: str = "vector") -> None:
        """Reserve ``nbytes`` in a bank under ``name``."""
        if bank not in ("scalar", "vector"):
            raise KernelError(f"unknown local-memory bank {bank!r}")
        if nbytes < 0:
            raise KernelError(f"allocation must be >= 0, got {nbytes}")
        if name in self._live:
            raise KernelError(f"buffer {name!r} already allocated")
        capacity = self.scalar_capacity if bank == "scalar" else \
            self.vector_capacity
        used = self._scalar_used if bank == "scalar" else self._vector_used
        if used + nbytes > capacity:
            raise KernelError(
                f"{bank} local memory exhausted: {name!r} needs "
                f"{fmt_bytes(nbytes)}, {fmt_bytes(capacity - used)} free "
                f"of {fmt_bytes(capacity)}"
            )
        self._live[name] = (bank, nbytes)
        if bank == "scalar":
            self._scalar_used += nbytes
        else:
            self._vector_used += nbytes

    def free(self, name: str) -> None:
        """Release a named buffer."""
        try:
            bank, nbytes = self._live.pop(name)
        except KeyError:
            raise KernelError(f"unknown buffer {name!r}") from None
        if bank == "scalar":
            self._scalar_used -= nbytes
        else:
            self._vector_used -= nbytes

    def vector_free_bytes(self) -> int:
        """Remaining vector-bank bytes."""
        return self.vector_capacity - self._vector_used

    def scalar_free_bytes(self) -> int:
        """Remaining scalar-bank bytes."""
        return self.scalar_capacity - self._scalar_used


def from_config(config: TPCClusterConfig) -> LocalMemory:
    """A :class:`LocalMemory` sized from the cluster config."""
    return LocalMemory(
        scalar_capacity=config.scalar_local_bytes,
        vector_capacity=config.vector_local_bytes,
    )


def max_k_chunk(
    dtype: DType,
    lanes: int,
    rows_per_member: int,
    *,
    vector_capacity: int = 80 * 1024,
    alignment: int = 32,
) -> int:
    """Largest contraction tile whose working set fits local memory.

    The bmm kernel holds a ``k x lanes`` B tile plus a
    ``rows x k`` A block per step; this solves for k and rounds down to
    ``alignment``. bf16 at 128 lanes gives exactly the kernel's
    historical 256; fp32 (64 lanes, 4 B) gives 192.
    """
    isz = itemsize(dtype)
    return _solve_k(isz, lanes, rows_per_member, vector_capacity, alignment)


def max_k_chunk_for_lanes(
    lanes: int,
    rows_per_member: int,
    *,
    vector_capacity: int = 80 * 1024,
    alignment: int = 32,
) -> int:
    """Like :func:`max_k_chunk` with the element size derived from the
    lane count (a 2048-bit VPU: ``itemsize = 256 // lanes``)."""
    if lanes <= 0 or 256 % lanes:
        raise KernelError(f"invalid lane count {lanes} for a 2048-bit VPU")
    return _solve_k(256 // lanes, lanes, rows_per_member, vector_capacity,
                    alignment)


def _solve_k(isz: int, lanes: int, rows_per_member: int,
             vector_capacity: int, alignment: int) -> int:
    per_k = (lanes + rows_per_member) * isz
    if per_k <= 0:
        raise KernelError("degenerate tile geometry")
    k = vector_capacity // per_k
    k -= k % alignment
    if k < alignment:
        raise KernelError(
            f"local memory cannot hold even one {alignment}-deep tile "
            f"at {lanes} lanes x {isz} B elements"
        )
    return k
