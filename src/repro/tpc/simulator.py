"""The TPC cluster simulator: launch kernels, get outputs + timing.

Plays the role of the SynapseAI TPC SDK's simulator (§2.2): given a
kernel and input tensors (or just shapes), it

1. validates shapes and builds the index space,
2. partitions members across the cores,
3. sums each core's VLIW retire cycles (timing), and
4. optionally executes the functional numpy body per member (values).

Timing-only launches accept bare shapes, so paper-scale problems
(sequence length 2048, batch 128) can be timed without materializing
multi-GiB arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hw.config import TPCClusterConfig
from ..hw.dtypes import DType, numpy_dtype
from ..util.errors import KernelError
from ..util.units import tflops
from .indexspace import balance_ratio, partition_members
from .kernel import Shape, TpcKernel

#: Refuse functional execution above this many total output elements —
#: the caller almost certainly wanted a timing-only launch.
FUNCTIONAL_ELEMENT_LIMIT = 64_000_000


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel_name: str
    index_space_size: int
    per_core_cycles: list[float]
    time_us: float
    flops: float
    outputs: dict[str, np.ndarray] | None = None
    output_shapes: dict[str, Shape] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        """Cluster makespan in cycles (slowest core)."""
        return max(self.per_core_cycles)

    @property
    def balance(self) -> float:
        """Mean/max core-load ratio in (0, 1]."""
        return balance_ratio(self.per_core_cycles)

    @property
    def achieved_tflops(self) -> float:
        """Sustained TFLOP/s of the launch."""
        return tflops(self.flops, self.time_us)


class TPCSimulator:
    """Functional + timing simulator for one TPC cluster."""

    def __init__(
        self,
        config: TPCClusterConfig | None = None,
        dtype: DType = DType.BF16,
    ):
        self.config = config or TPCClusterConfig()
        self.dtype = dtype

    # -- timing ---------------------------------------------------------

    def _per_core_cycles(
        self, kernel: TpcKernel, shapes: dict[str, Shape]
    ) -> list[float]:
        space = kernel.index_space(shapes)
        lanes = self.config.lanes(self.dtype)
        parts = partition_members(space, self.config.num_cores)
        if kernel.uniform_members:
            member0 = space.member_at(0)
            per_member = kernel.member_stream(member0, shapes, lanes).cycles
            return [len(p) * per_member for p in parts]
        cycles = []
        for part in parts:
            total = 0.0
            for flat in part:
                member = space.member_at(flat)
                total += kernel.member_stream(member, shapes, lanes).cycles
            cycles.append(total)
        return cycles

    # -- launching ------------------------------------------------------

    def launch(
        self,
        kernel: TpcKernel,
        inputs: dict[str, np.ndarray] | None = None,
        *,
        shapes: dict[str, Shape] | None = None,
    ) -> LaunchResult:
        """Run ``kernel``; pass arrays for a functional launch or
        ``shapes=`` for timing-only."""
        if (inputs is None) == (shapes is None):
            raise KernelError("pass exactly one of inputs= or shapes=")
        if inputs is not None:
            shapes = {name: tuple(arr.shape) for name, arr in inputs.items()}
        assert shapes is not None
        shapes = {name: tuple(s) for name, s in shapes.items()}
        if not kernel.dtype_supported(self.dtype):
            raise KernelError(
                f"kernel {kernel.name!r} does not support dtype {self.dtype}"
            )
        kernel.validate(shapes)
        out_shapes = kernel.output_shapes(shapes)

        per_core = self._per_core_cycles(kernel, shapes)
        time_us = max(per_core) / (self.config.freq_ghz * 1e3)
        time_us += self.config.launch_overhead_us

        outputs: dict[str, np.ndarray] | None = None
        if inputs is not None:
            total_out = sum(int(np.prod(s)) for s in out_shapes.values())
            if total_out > FUNCTIONAL_ELEMENT_LIMIT:
                raise KernelError(
                    f"functional launch of {kernel.name!r} would produce "
                    f"{total_out} elements (> {FUNCTIONAL_ELEMENT_LIMIT}); "
                    "use a timing-only launch (shapes=...)"
                )
            carrier = numpy_dtype(self.dtype)
            cast_inputs = {
                name: np.asarray(arr, dtype=carrier) if arr.dtype.kind == "f"
                else np.asarray(arr)
                for name, arr in inputs.items()
            }
            outputs = {
                name: np.zeros(shape, dtype=carrier)
                for name, shape in out_shapes.items()
            }
            space = kernel.index_space(shapes)
            for member in space.members():
                kernel.execute_member(member, cast_inputs, outputs)

        return LaunchResult(
            kernel_name=kernel.name,
            index_space_size=kernel.index_space(shapes).size,
            per_core_cycles=per_core,
            time_us=time_us,
            flops=kernel.flops(shapes),
            outputs=outputs,
            output_shapes=out_shapes,
        )
