"""TPC kernel framework: declaring, validating and registering kernels.

A TPC program has two halves (§2.2): *host glue code* that launches the
kernel, and the *kernel* itself that runs on the cores. Here a kernel
is a Python class providing three things:

* shape validation + output-shape inference,
* an :class:`~repro.tpc.indexspace.IndexSpace` dividing the work,
* per-member behaviour, twice over:
  - ``execute_member`` — the functional body (numpy), and
  - ``member_stream`` — the timing body (a VLIW
    :class:`~repro.tpc.isa.InstructionStream`).

This mirrors how real TPC-C kernels are developed against the SynapseAI
TPC SDK's compiler + simulator; our simulator is
:class:`repro.tpc.simulator.TPCSimulator`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..hw.dtypes import DType
from ..util.errors import KernelError
from ..util.validation import check_shape
from .indexspace import IndexSpace
from .isa import InstructionStream

Shape = tuple[int, ...]


@dataclass(frozen=True)
class TensorSpec:
    """Declared kernel tensor: name + allowed rank range (1..5 on Gaudi)."""

    name: str
    min_rank: int = 1
    max_rank: int = 5

    def validate(self, shape: Shape) -> None:
        """Check ``shape`` against this spec."""
        check_shape(self.name, shape)
        if not self.min_rank <= len(shape) <= self.max_rank:
            raise KernelError(
                f"tensor {self.name!r}: rank {len(shape)} outside "
                f"[{self.min_rank}, {self.max_rank}]"
            )


class TpcKernel(abc.ABC):
    """Base class for TPC kernels.

    Subclasses set ``name``, ``inputs`` and ``outputs`` class attributes
    and implement the four abstract methods. ``uniform_members`` may be
    set True when every index-space member performs identical work —
    the simulator then times one member and multiplies, which keeps
    paper-scale launches (tens of thousands of members) cheap.
    """

    name: str = ""
    inputs: tuple[TensorSpec, ...] = ()
    outputs: tuple[TensorSpec, ...] = ()
    uniform_members: bool = False

    def validate(self, shapes: dict[str, Shape]) -> None:
        """Validate the input-shape dict against declared specs."""
        for spec in self.inputs:
            if spec.name not in shapes:
                raise KernelError(f"{self.name}: missing input {spec.name!r}")
            spec.validate(shapes[spec.name])
        extra = set(shapes) - {s.name for s in self.inputs}
        if extra:
            raise KernelError(f"{self.name}: unexpected inputs {sorted(extra)}")
        self.check_shapes(shapes)

    def check_shapes(self, shapes: dict[str, Shape]) -> None:
        """Hook for kernel-specific cross-tensor shape constraints."""

    @abc.abstractmethod
    def output_shapes(self, shapes: dict[str, Shape]) -> dict[str, Shape]:
        """Infer output shapes from validated input shapes."""

    @abc.abstractmethod
    def index_space(self, shapes: dict[str, Shape]) -> IndexSpace:
        """The work grid for the given input shapes."""

    @abc.abstractmethod
    def execute_member(
        self,
        member: tuple[int, ...],
        inputs: dict[str, np.ndarray],
        outputs: dict[str, np.ndarray],
    ) -> None:
        """Functional body: fill the member's slice of each output."""

    @abc.abstractmethod
    def member_stream(
        self, member: tuple[int, ...], shapes: dict[str, Shape], lanes: int
    ) -> InstructionStream:
        """Timing body: the VLIW instruction stream of one member."""

    def flops(self, shapes: dict[str, Shape]) -> float:
        """Arithmetic work of the whole launch (for TFLOPS reporting)."""
        return 0.0

    def dtype_supported(self, dtype: DType) -> bool:
        """Whether the kernel has a code path for ``dtype``."""
        return True


class KernelRegistry:
    """Name -> kernel factory registry (the 'custom kernel library')."""

    def __init__(self) -> None:
        self._kernels: dict[str, type[TpcKernel]] = {}

    def register(self, kernel_cls: type[TpcKernel]) -> type[TpcKernel]:
        """Register a kernel class; usable as a decorator."""
        name = kernel_cls.name
        if not name:
            raise KernelError(f"kernel class {kernel_cls.__name__} has no name")
        if name in self._kernels:
            raise KernelError(f"kernel {name!r} already registered")
        self._kernels[name] = kernel_cls
        return kernel_cls

    def create(self, name: str, **kwargs) -> TpcKernel:
        """Instantiate a registered kernel by name."""
        try:
            cls = self._kernels[name]
        except KeyError:
            raise KernelError(
                f"unknown kernel {name!r}; registered: {sorted(self._kernels)}"
            ) from None
        return cls(**kwargs)

    def names(self) -> list[str]:
        """Sorted registered kernel names."""
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels


#: Global registry populated by :mod:`repro.tpc.kernels`.
REGISTRY = KernelRegistry()
