"""Command-line interface: ``python -m repro <experiment>``.

Runs any single experiment from the paper (tables, figures, ablations,
extensions) or the whole study, printing the same rendering the
benchmark harness produces. Exit code is non-zero when a shape check
misses — the CLI is usable as a CI gate for the reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .core import (
    SWEEP_POLICIES,
    run_activation_study,
    run_attention_study,
    run_backend_ablation,
    run_chunked_attention_study,
    run_decode_study,
    run_e2e,
    run_energy_study,
    run_full_study,
    run_fusion_ablation,
    run_generation_comparison,
    run_hbm_contention_ablation,
    run_kernel_pack_ablation,
    run_memory_ablation,
    run_mme_vs_tpc,
    run_op_mapping,
    run_overlap_scheduler_ablation,
    run_parallel_study,
    run_pass_toggle_ablation,
    run_pipelined_attention_study,
    run_reorder_ablation,
    run_comm_overlap_ablation,
    run_scaling_study,
    run_seq_sweep,
    run_serving_ablation,
    run_tpc_core_sweep,
)
from .core.reference import ShapeCheck
from .hw.device import default_device
from .synapse import (
    DEFAULT_RECIPE_CACHE_DIR,
    PASS_OPTION_FLAGS,
    default_compiler_options,
    disable_passes,
    set_default_compiler_options,
    set_default_recipe_cache_dir,
)


def _simple(run: Callable[[], object]) -> tuple[str, list[ShapeCheck]]:
    result = run()
    return result.render(), result.checks()


#: CLI-selected HLS-1 population for the multi-card experiments
#: (``--cards``); ``None`` means each experiment's default sweep
_CLI_CARDS: int | None = None

#: CLI-selected process-pool width (``--jobs``) for the simulations
#: that can fan out; 1 keeps everything in-process
_CLI_JOBS: int = 1


def _scaling() -> tuple[str, list[ShapeCheck]]:
    if _CLI_CARDS is None:
        return _simple(lambda: run_scaling_study(jobs=_CLI_JOBS))
    counts = tuple(p for p in (1, 2, 4, 8) if p <= _CLI_CARDS)
    return _simple(
        lambda: run_scaling_study(card_counts=counts, jobs=_CLI_JOBS)
    )


def _comm_ablation() -> tuple[str, list[ShapeCheck]]:
    cards = _CLI_CARDS if _CLI_CARDS is not None else 8
    return _simple(
        lambda: run_comm_overlap_ablation(num_cards=cards, jobs=_CLI_JOBS)
    )


EXPERIMENTS: dict[str, tuple[str, Callable[[], tuple[str, list[ShapeCheck]]]]] = {
    "table1": ("Table 1: operation-engine mapping",
               lambda: _simple(run_op_mapping)),
    "table2": ("Table 2: MME vs TPC batched matmul",
               lambda: _simple(run_mme_vs_tpc)),
    "fig4-6": ("Figures 4-6: attention-variant layer profiles",
               lambda: _simple(run_attention_study)),
    "fig7": ("Figure 7: activation functions",
             lambda: _simple(run_activation_study)),
    "fig8": ("Figure 8: GPT end-to-end training step",
             lambda: _simple(lambda: run_e2e("gpt"))),
    "fig9": ("Figure 9: BERT end-to-end training step",
             lambda: _simple(lambda: run_e2e("bert"))),
    "seq-sweep": ("Long-sequence sweep (challenge #3)",
                  lambda: _simple(run_seq_sweep)),
    "ablation-reorder": ("A1: issue-order ablation",
                         lambda: _simple(run_reorder_ablation)),
    "ablation-fusion": ("A2: elementwise-fusion ablation",
                        lambda: _simple(run_fusion_ablation)),
    "ablation-tpc-cores": ("A3: TPC core-count sweep",
                           lambda: _simple(run_tpc_core_sweep)),
    "scaling": ("A4: HLS-1 multi-card scaling extension",
                _scaling),
    "chunked": ("A5: chunked-attention extension",
                lambda: _simple(run_chunked_attention_study)),
    "pipelined": ("A6: pipelined exact-attention extension",
                  lambda: _simple(run_pipelined_attention_study)),
    "gaudi2": ("A7: Gaudi2 what-if extension",
               lambda: _simple(run_generation_comparison)),
    "energy": ("A8: energy extension",
               lambda: _simple(run_energy_study)),
    "decode": ("A9: KV-cached decode extension",
               lambda: _simple(run_decode_study)),
    "ablation-passes": ("A10: per-pass toggle ablation",
                        lambda: _simple(run_pass_toggle_ablation)),
    "ablation-hbm": ("A11: HBM contention ablation",
                     lambda: _simple(run_hbm_contention_ablation)),
    "ablation-comm": ("A12: communication-overlap ablation",
                      _comm_ablation),
    "ablation-overlap": ("A13: overlap scheduler ablation",
                         lambda: _simple(run_overlap_scheduler_ablation)),
    "ablation-memory": ("A14: memory planning ablation",
                        lambda: _simple(run_memory_ablation)),
    "ablation-serving": ("A15: static vs continuous batching",
                         lambda: _simple(run_serving_ablation)),
    "ablation-parallel": ("A16: multi-box parallel layouts",
                          lambda: _simple(run_parallel_study)),
    "ablation-kernels": ("A17: attention kernel pack",
                         lambda: _simple(run_kernel_pack_ablation)),
    "ablation-backends": ("A18: cross-backend comparison (Gaudi vs WSE)",
                          lambda: _simple(run_backend_ablation)),
}


def _lint_gate() -> int:
    """Compile the Fig-4 layer and Fig-8 GPT graphs and lint both.

    The CI gate: a non-zero exit means a representative paper graph no
    longer compiles. Lint warnings are informational.
    """
    from . import ht
    from .core.e2e_llm import record_training_step
    from .models import TransformerLayer, paper_layer_config
    from .synapse import GraphCompiler, lint_graph, render_warnings

    layer_cfg = paper_layer_config("softmax")
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record("fig4-layer", mode="symbolic") as rec:
        layer(ht.input_tensor((8, 256, layer_cfg.d_model)))
    graphs = [rec.graph, record_training_step("gpt", batch=2,
                                              seq_len=128).graph]
    compiler = GraphCompiler(options=default_compiler_options())
    for graph in graphs:
        schedule = compiler.compile(graph)
        warnings = lint_graph(graph)
        print(f"== lint {graph.name!r}: {len(schedule)} scheduled ops, "
              f"{len(warnings)} warning(s) ==")
        if warnings:
            print(render_warnings(warnings))
        for entry in schedule.stats.get("passes", []):
            print(f"  pass {entry['pass']:<20} "
                  f"{'on ' if entry['enabled'] else 'off'} "
                  f"units {entry['units_in']}->{entry['units_out']} "
                  f"transforms {entry['transforms']}")
    return 0


def _profile_self(scenario: str, top: int) -> int:
    """cProfile one named experiment, print the top cumulative frames.

    The self-measurement loop behind the simulator-performance work:
    run any EXPERIMENTS scenario under :mod:`cProfile` and show where
    the wall-clock goes (vector drains, pass pipeline, recording).
    """
    import cProfile
    import pstats

    title, runner = EXPERIMENTS[scenario]
    print(f"== profile-self: {title} ==")
    profiler = cProfile.Profile()
    profiler.enable()
    runner()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Benchmarking and In-depth Performance "
                    "Study of LLMs on Habana Gaudi Processors' (SC-W 2023) "
                    "on a calibrated simulator.",
    )
    parser.add_argument(
        "--disable-pass", action="append", default=[],
        choices=sorted(PASS_OPTION_FLAGS), metavar="PASS",
        help="disable a GraphCompiler pass for every compile "
             f"(choices: {', '.join(sorted(PASS_OPTION_FLAGS))}; "
             "repeatable)",
    )
    parser.add_argument(
        "--no-recipe-cache", action="store_true",
        help="recompile every graph instead of reusing cached recipes",
    )
    parser.add_argument(
        "--no-hbm-contention", action="store_true",
        help="time every op at full HBM bandwidth instead of sharing "
             "it across concurrent engines (the pre-contention model)",
    )
    parser.add_argument(
        "--cards", type=int, default=None, metavar="N",
        help="HLS-1 population for multi-card experiments "
             "(power of two <= 8; caps the A4 sweep, sets A12's box)",
    )
    parser.add_argument(
        "--bucket-mb", type=float, default=None, metavar="MB",
        help="gradient-bucket size for collective injection "
             "(default 25)",
    )
    parser.add_argument(
        "--no-comm-overlap", action="store_true",
        help="emit one monolithic gradient all-reduce behind the last "
             "gradient instead of bucketed overlapped all-reduces",
    )
    parser.add_argument(
        "--scheduler", choices=("inorder", "reorder", "lookahead"),
        default=None,
        help="out-of-order issue policy when reordering is on: "
             "'reorder' is the legacy greedy earliest-ready scheduler, "
             "'lookahead' (default) adds critical-path priorities and "
             "an MME-starvation lookahead",
    )
    parser.add_argument(
        "--tpc-slice-ops", action="store_true",
        help="slice large batch-parallel TPC ops into row slices so "
             "they overlap with MME compute (the A13 machinery)",
    )
    parser.add_argument(
        "--hbm-budget", type=float, default=None, metavar="GIB",
        help="HBM budget in GiB for the memory planner (default: the "
             "device's 32 GiB capacity)",
    )
    parser.add_argument(
        "--memory-policy", choices=("none", "recompute", "spill", "auto"),
        default=None,
        help="what the memory planner may do when a graph's peak "
             "exceeds the HBM budget: recompute checkpointed "
             "activations, spill values to host over the DMA, or "
             "'auto' to pick the cheaper transform per interval "
             "(default 'none': validate and reject, the pre-planning "
             "behaviour)",
    )
    parser.add_argument(
        "--recipe-cache-dir", nargs="?", const=DEFAULT_RECIPE_CACHE_DIR,
        default=None, metavar="DIR",
        help="persist compiled recipes to DIR and reuse them across "
             f"runs (default {DEFAULT_RECIPE_CACHE_DIR} when the flag "
             "is given without a value)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="process-pool width for the multi-card simulations "
             "(A4/A12); results are identical at any width",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="hardware backend every compile targets: 'gaudi' "
             "(default) or 'wse'; single-card experiments retarget "
             "wholesale, multi-card ones require gaudi",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run every experiment")
    study.add_argument("--no-extensions", action="store_true",
                       help="skip ablations/extensions (A1-A9)")
    study.add_argument("-o", "--output", help="also write the report here")
    study.add_argument("--artifacts",
                       help="directory for report.txt + checks.json")

    for name, (title, _) in EXPERIMENTS.items():
        sub.add_parser(name, help=title)

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative scenario grid (model x batch x seq x "
             "cards x policy) on the sweep harness",
    )
    sweep.add_argument("--model", action="append", default=[],
                       metavar="NAME",
                       help="workload: gpt, bert, or layer:<kind> "
                            "(repeatable; default gpt)")
    sweep.add_argument("--batch", action="append", default=[], type=int,
                       metavar="N",
                       help="batch size axis (repeatable; default: the "
                            "workload's paper shape)")
    sweep.add_argument("--seq-len", action="append", default=[], type=int,
                       metavar="N",
                       help="sequence length axis (repeatable)")
    sweep.add_argument("--card", action="append", default=[], type=int,
                       metavar="N",
                       help="cards-per-box axis (repeatable; default 1)")
    sweep.add_argument("--boxes", action="append", default=[], type=int,
                       metavar="N",
                       help="HLS-1 box-count axis bridged by the "
                            "Ethernet tier (repeatable; default 1)")
    sweep.add_argument("--tp", type=int, default=1, metavar="N",
                       help="tensor-parallel degree applied to every "
                            "point's compile (default 1)")
    sweep.add_argument("--pp", type=int, default=1, metavar="N",
                       help="pipeline-parallel stages applied to every "
                            "point's compile (microbatches = pp; "
                            "default 1)")
    sweep.add_argument("--auto-layout", action="store_true",
                       help="let the auto-parallelism planner pick "
                            "(tp, pp, dp) per (model, cards x boxes) "
                            "population instead of --tp/--pp")
    sweep.add_argument("--policy", action="append", default=[],
                       choices=sorted(SWEEP_POLICIES), metavar="POLICY",
                       help="compiler-option bundle axis (choices: "
                            f"{', '.join(sorted(SWEEP_POLICIES))}; "
                            "repeatable; default 'default')")
    sweep.add_argument("--attention-kernel", action="append", default=[],
                       choices=("naive", "fused", "windowed", "flash"),
                       metavar="KERNEL",
                       help="attention-lowering axis crossed with every "
                            "policy (choices: naive, fused, windowed, "
                            "flash; repeatable; default: the compile "
                            "default, naive)")
    sweep.add_argument("--backend", action="append", default=None,
                       dest="backend_axis", metavar="NAME",
                       help="hardware-backend axis crossed with every "
                            "policy (gaudi, wse; repeatable; non-gaudi "
                            "backends require cards = boxes = 1; "
                            "default: the compile default, gaudi)")
    sweep.add_argument("-o", "--out", metavar="FILE",
                       help="stream one JSON line per completed point "
                            "to FILE")

    serve = sub.add_parser(
        "serve",
        help="simulate request-level inference serving (Poisson "
             "arrivals, KV-cached decode, static or continuous "
             "batching)",
    )
    serve.add_argument("--requests", type=int, default=10_000, metavar="N",
                       help="arrivals per scenario (default 10000)")
    serve.add_argument("--rate", action="append", default=[], type=float,
                       metavar="R",
                       help="arrival rate in requests/s (repeatable; "
                            "default 10, 20, 40)")
    serve.add_argument("--policy", action="append", default=[],
                       choices=("static", "continuous"), metavar="POLICY",
                       help="batching policy axis (repeatable; default "
                            "both)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="in-flight batch slots (default 8)")
    serve.add_argument("--seed", type=int, default=0, metavar="N",
                       help="arrival-trace seed (default 0)")
    serve.add_argument("--attention-kernel", default=None,
                       choices=("naive", "fused", "windowed", "flash"),
                       metavar="KERNEL",
                       help="attention lowering for every prefill/decode "
                            "compile (default: the compile default, "
                            "naive)")
    serve.add_argument("-o", "--out", metavar="FILE",
                       help="stream one JSON line per completed "
                            "scenario to FILE")

    prof = sub.add_parser(
        "profile-self",
        help="cProfile one named experiment and print the hottest "
             "simulator frames",
    )
    prof.add_argument("scenario", choices=sorted(EXPERIMENTS),
                      help="which experiment to profile")
    prof.add_argument("--top", type=int, default=20, metavar="N",
                      help="how many cumulative entries to print "
                           "(default 20)")

    sub.add_parser("describe", help="print the simulated-device summary")
    sub.add_parser("lint-gate",
                   help="compile + lint the Fig-4 and Fig-8 graphs (CI)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    options = default_compiler_options()
    if args.disable_pass:
        options = disable_passes(options, *args.disable_pass)
    if args.no_recipe_cache:
        import dataclasses

        options = dataclasses.replace(options, use_recipe_cache=False)
    if args.no_hbm_contention:
        import dataclasses

        options = dataclasses.replace(options, hbm_contention=False)
    if args.bucket_mb is not None:
        import dataclasses

        options = dataclasses.replace(options, bucket_mb=args.bucket_mb)
    if args.no_comm_overlap:
        import dataclasses

        options = dataclasses.replace(options, comm_overlap=False)
    if args.scheduler is not None:
        import dataclasses

        options = dataclasses.replace(options, scheduler=args.scheduler)
    if args.backend is not None:
        import dataclasses

        from .hw.backend import get_backend

        get_backend(args.backend)  # fail fast on unknown names
        options = dataclasses.replace(options, backend=args.backend)
    if args.tpc_slice_ops:
        import dataclasses

        options = dataclasses.replace(options, tpc_slice_ops=True)
    if args.hbm_budget is not None:
        import dataclasses

        options = dataclasses.replace(
            options, hbm_budget=int(args.hbm_budget * (1 << 30))
        )
    if args.memory_policy is not None:
        import dataclasses

        options = dataclasses.replace(
            options, memory_policy=args.memory_policy
        )
    set_default_compiler_options(options)
    if args.recipe_cache_dir is not None:
        set_default_recipe_cache_dir(args.recipe_cache_dir)
    if args.cards is not None:
        global _CLI_CARDS
        _CLI_CARDS = args.cards
    if args.jobs != 1:
        global _CLI_JOBS
        _CLI_JOBS = max(1, args.jobs)

    if args.command == "lint-gate":
        return _lint_gate()

    if args.command == "sweep":
        from .core import run_sweep, sweep_spec_from_cli
        from .synapse.recipe import default_recipe_cache_dir

        backend_axis = args.backend_axis or (
            [args.backend] if args.backend else []
        )
        spec = sweep_spec_from_cli(
            args.model, args.batch, args.seq_len, args.card, args.policy,
            boxes=args.boxes, tp=args.tp, pp=args.pp,
            auto_layout=args.auto_layout,
            attention=args.attention_kernel,
            backend=backend_axis,
        )
        result = run_sweep(
            spec, jobs=_CLI_JOBS, stream=args.out,
            recipe_dir=default_recipe_cache_dir(),
        )
        print(result.render())
        if args.out:
            print(f"\n{len(result.results)} point(s) streamed to "
                  f"{args.out}")
        return 0

    if args.command == "serve":
        from .core import (
            SERVING_POLICIES,
            ServingPoint,
            render_serving_table,
            run_serving,
        )
        from .synapse.recipe import default_recipe_cache_dir

        rates = args.rate or [10.0, 20.0, 40.0]
        policies = args.policy or list(SERVING_POLICIES)
        points = [
            ServingPoint(
                policy=policy, rate_per_s=rate,
                num_requests=args.requests, seed=args.seed,
                max_batch=args.max_batch,
            )
            for rate in rates
            for policy in policies
        ]
        serve_options = None
        if args.attention_kernel:
            import dataclasses as _dc

            serve_options = _dc.replace(
                default_compiler_options(),
                attention_lowering=args.attention_kernel,
            )
        results = run_serving(
            points, jobs=_CLI_JOBS, stream=args.out,
            options=serve_options,
            recipe_dir=default_recipe_cache_dir(),
        )
        print(render_serving_table(
            results,
            title=f"serving: {args.requests} requests/scenario, "
                  f"max batch {args.max_batch}",
        ))
        if args.out:
            print(f"\n{len(results)} scenario(s) streamed to {args.out}")
        return 0

    if args.command == "profile-self":
        return _profile_self(args.scenario, args.top)

    if args.command == "describe":
        if args.backend is not None:
            from .hw.backend import get_backend

            backend = get_backend(args.backend)
            device = backend.make_device(backend.default_config())
            print(device.describe())
        else:
            print(default_device().describe())
        return 0

    if args.command == "study":
        report = run_full_study(
            include_extensions=not args.no_extensions, jobs=_CLI_JOBS
        )
        text = report.render()
        print(text)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
        if args.artifacts:
            from .core import save_study

            path = save_study(report, args.artifacts)
            print(f"\nartifacts written to {path.parent}")
        return 0 if report.all_passed else 1

    title, runner = EXPERIMENTS[args.command]
    text, checks = runner()
    print(f"== {title} ==")
    print(text)
    print()
    for check in checks:
        print(check)
    return 0 if all(c.passed for c in checks) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
