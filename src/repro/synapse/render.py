"""ASCII rendering of hardware traces — the paper's figures, in text.

Figures 4–9 of the paper are profiler timelines with one lane per
engine, colored blocks for op executions and white gaps for idleness.
:func:`ascii_timeline` renders the same view in a terminal: ``#``-style
block characters per op (letter-coded by source op) and spaces for the
blank areas the paper keeps pointing at.
"""

from __future__ import annotations

from ..hw.costmodel import EngineKind
from ..util.units import fmt_time_us
from .trace import Timeline

#: engines shown, top to bottom, matching the paper's figures
LANES = (EngineKind.MME, EngineKind.TPC, EngineKind.DMA, EngineKind.NIC,
         EngineKind.HOST)

_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _glyph_map(timeline: Timeline) -> dict[str, str]:
    srcs: list[str] = []
    for ev in timeline.events:
        key = ev.src or ev.name
        if key not in srcs:
            srcs.append(key)
    return {src: _GLYPHS[i % len(_GLYPHS)] for i, src in enumerate(srcs)}


def ascii_timeline(
    timeline: Timeline,
    *,
    width: int = 100,
    lanes: tuple[EngineKind, ...] = LANES,
    show_legend: bool = True,
) -> str:
    """Render ``timeline`` as fixed-width engine lanes.

    Each column is ``makespan / width`` microseconds; a column shows the
    glyph of the op that occupies the largest share of it, or a space
    when the engine is idle (the paper's "blank areas").
    """
    total = timeline.total_time_us
    if total <= 0 or width < 1:
        return "(empty trace)"
    glyphs = _glyph_map(timeline)
    col_us = total / width
    lines = [
        f"trace {timeline.name!r}  makespan {fmt_time_us(total)}  "
        f"({col_us:.1f} us/column)"
    ]
    for engine in lanes:
        events = timeline.engine_events(engine)
        if not events and engine in (EngineKind.DMA, EngineKind.NIC,
                                     EngineKind.HOST):
            continue
        occupancy = [0.0] * width
        owner = [" "] * width
        best = [0.0] * width
        for ev in events:
            first = int(ev.start_us / col_us)
            last = int(min(ev.end_us / col_us, width - 1e-9))
            for col in range(max(first, 0), min(last, width - 1) + 1):
                lo = max(ev.start_us, col * col_us)
                hi = min(ev.end_us, (col + 1) * col_us)
                share = max(0.0, hi - lo)
                occupancy[col] += share
                if share > best[col]:
                    best[col] = share
                    owner[col] = glyphs[ev.src or ev.name]
        row = "".join(
            owner[c] if occupancy[c] >= 0.5 * col_us else
            ("." if occupancy[c] > 0 else " ")
            for c in range(width)
        )
        util = timeline.utilization(engine)
        lines.append(f"{engine.value:>4} |{row}| {util:5.1%}")
    if show_legend:
        legend = "  ".join(f"{g}={src}" for src, g in glyphs.items())
        lines.append(f"legend: {legend}")
    return "\n".join(lines)


def gap_report(
    timeline: Timeline, engine: EngineKind, *, min_dur_us: float = 50.0, top: int = 5
) -> str:
    """List the largest idle gaps of ``engine`` — the blank areas."""
    gaps = sorted(
        timeline.gaps(engine, min_dur_us=min_dur_us),
        key=lambda g: g.duration,
        reverse=True,
    )[:top]
    if not gaps:
        return f"{engine.value}: no idle gaps > {fmt_time_us(min_dur_us)}"
    lines = [f"{engine.value}: {len(gaps)} largest idle gaps "
             f"(idle fraction {timeline.idle_fraction(engine):.1%})"]
    for g in gaps:
        lines.append(
            f"  [{fmt_time_us(g.start)} .. {fmt_time_us(g.end)}] "
            f"duration {fmt_time_us(g.duration)}"
        )
    return "\n".join(lines)
