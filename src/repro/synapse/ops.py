"""Operation registry: semantics, work estimates, and the Table 1 mapping.

Every op the frontend can emit is described once here:

* ``engine`` — which compute engine SynapseAI maps it to. This encodes
  the paper's Table 1: **only matrix multiplication goes to the MME;
  everything else — even ``scalar * tensor`` — goes to the TPC.**
* ``infer_shape`` / ``compute`` — symbolic and functional semantics
  (the frontend uses ``compute`` for eager numpy execution).
* ``work_item`` construction — FLOPs / bytes / special-function info
  the cost models consume.
* ``composite`` ops (softmax, layernorm, cross-entropy pieces) carry a
  ``lower`` hook the GraphCompiler expands into primitives.
* ``supported`` — ops SynapseAI handles poorly trigger a host
  recompilation (the paper's GLU finding, §3.3).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..hw.costmodel import (
    EXP_OFFLOAD_BASIS,
    EngineKind,
    MatmulDims,
    OpClass,
    WorkItem,
    exp_offload_dims,
    flash_attention_dims,
    windowed_attention_dims,
)
from ..hw.dtypes import DType, itemsize
from ..util.errors import GraphError, ShapeError

Shape = tuple[int, ...]


def _numel(shape: Shape) -> int:
    return int(math.prod(shape)) if shape else 1


def _broadcast(a: Shape, b: Shape) -> Shape:
    try:
        return tuple(np.broadcast_shapes(a, b))
    except ValueError:
        raise ShapeError(f"shapes {a} and {b} are not broadcastable") from None


# ---------------------------------------------------------------------------
# shape inference helpers


def _same_shape_unary(shapes: list[Shape], attrs: dict) -> Shape:
    return shapes[0]


def _broadcast_binary(shapes: list[Shape], attrs: dict) -> Shape:
    return _broadcast(shapes[0], shapes[1])


def matmul_spec(a: Shape, b: Shape, attrs: dict) -> tuple[Shape, MatmulDims]:
    """Output shape + GEMM dims of a (batched, broadcast) matmul."""
    ta = bool(attrs.get("transpose_a", False))
    tb = bool(attrs.get("transpose_b", False))
    if len(a) < 2 or len(b) < 2:
        raise ShapeError(f"matmul needs rank >= 2 operands, got {a} @ {b}")
    am, ak = (a[-1], a[-2]) if ta else (a[-2], a[-1])
    bk, bn = (b[-1], b[-2]) if tb else (b[-2], b[-1])
    if ak != bk:
        raise ShapeError(f"matmul contraction mismatch: {a} @ {b} (K {ak} vs {bk})")
    batch_shape = _broadcast(a[:-2], b[:-2])
    out = batch_shape + (am, bn)
    dims = MatmulDims(max(1, _numel(batch_shape)), am, bn, ak)
    return out, dims


def _matmul_shape(shapes: list[Shape], attrs: dict) -> Shape:
    return matmul_spec(shapes[0], shapes[1], attrs)[0]


def _reduce_shape(shapes: list[Shape], attrs: dict) -> Shape:
    shape = shapes[0]
    axis = attrs.get("axis")
    keepdims = bool(attrs.get("keepdims", False))
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    out = []
    for i, d in enumerate(shape):
        if i in axes:
            if keepdims:
                out.append(1)
        else:
            out.append(d)
    return tuple(out)


def _transpose_shape(shapes: list[Shape], attrs: dict) -> Shape:
    shape = shapes[0]
    axes = attrs.get("axes")
    if axes is None:
        axes = tuple(reversed(range(len(shape))))
    if sorted(a % len(shape) for a in axes) != list(range(len(shape))):
        raise ShapeError(f"invalid transpose axes {axes} for rank {len(shape)}")
    return tuple(shape[a % len(shape)] for a in axes)


def _reshape_shape(shapes: list[Shape], attrs: dict) -> Shape:
    new = tuple(attrs["shape"])
    if _numel(new) != _numel(shapes[0]):
        raise ShapeError(f"cannot reshape {shapes[0]} to {new}")
    return new


def _broadcast_to_shape(shapes: list[Shape], attrs: dict) -> Shape:
    target = tuple(attrs["shape"])
    if _broadcast(shapes[0], target) != target:
        raise ShapeError(f"cannot broadcast {shapes[0]} to {target}")
    return target


def _gather_rows_shape(shapes: list[Shape], attrs: dict) -> Shape:
    table, idx = shapes
    if len(table) != 2:
        raise ShapeError(f"gather_rows table must be rank 2, got {table}")
    return idx + (table[1],)


def _glu_shape(shapes: list[Shape], attrs: dict) -> Shape:
    shape = shapes[0]
    if shape[-1] % 2:
        raise ShapeError(f"glu last dim must be even, got {shape}")
    return shape[:-1] + (shape[-1] // 2,)


# ---------------------------------------------------------------------------
# functional kernels (numpy)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _gelu(x: np.ndarray) -> np.ndarray:
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray, axis: int) -> np.ndarray:
    m = x.max(axis=axis, keepdims=True)
    # rows whose max is non-finite would turn x - m into inf - inf; the
    # shift only needs to be the max on rows where that max is finite
    shift = np.where(np.isfinite(m), m, 0.0)
    with np.errstate(over="ignore", invalid="ignore"):
        e = np.exp(x - shift)
    if np.isposinf(m).any():
        # +inf logits take all the mass (split across ties), as the
        # limit of softmax on growing finite logits
        e = np.where(np.isposinf(m), (x == m).astype(x.dtype), e)
    denom = e.sum(axis=axis, keepdims=True)
    # all -inf (or NaN-poisoned) rows have no mass anywhere: return 0
    # rather than warn on 0/0
    return np.divide(e, denom, out=np.zeros_like(e), where=denom > 0)


def _matmul_compute(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
    a, b = inputs
    if attrs.get("transpose_a"):
        a = np.swapaxes(a, -1, -2)
    if attrs.get("transpose_b"):
        b = np.swapaxes(b, -1, -2)
    return a @ b


def _reduce_compute(fn: Callable) -> Callable:
    def compute(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
        axis = attrs.get("axis")
        if isinstance(axis, list):
            axis = tuple(axis)
        return fn(inputs[0], axis=axis, keepdims=bool(attrs.get("keepdims", False)))

    return compute


# ---------------------------------------------------------------------------
# op definition


@dataclass(frozen=True)
class OpDef:
    """Static description of one op kind."""

    name: str
    op_class: OpClass
    engine: EngineKind
    infer_shape: Callable[[list[Shape], dict], Shape]
    compute: Callable[[list[np.ndarray], dict], np.ndarray]
    special_fn: str | None = None
    flops_per_element: float = 1.0
    #: bytes read multiplier on inputs (0.0 for view-only ops)
    reads_inputs: bool = True
    writes_output: bool = True
    composite: bool = False
    supported: bool = True
    #: custom WorkItem builder for ops whose cost shape no generic
    #: op_class branch describes (the attention kernel pack); called as
    #: ``work_item_fn(label, in_shapes, out_shape, dtype, attrs,
    #: bytes_read, bytes_written)``
    work_item_fn: Callable[..., WorkItem] | None = None
    #: human explanation shown in the Table 1 reproduction
    doc: str = ""


_REGISTRY: dict[str, OpDef] = {}


def _guard_nonfinite(name: str, compute: Callable) -> Callable:
    """Make a compute kernel warning-free on non-finite inputs.

    Saturated values (exp overflow -> inf) legitimately flow through
    concrete-mode graphs, and numpy raises RuntimeWarnings on the
    follow-on arithmetic (inf - inf in ``add``, 0 * inf, inf / inf).
    The test suite runs with RuntimeWarning as an error, so every
    kernel computes under ``errstate(ignore)`` and clamps indeterminate
    NaNs to 0 (infinities are kept: they are the saturation semantics).
    """

    def wrapped(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            out = compute(inputs, attrs)
        out = np.asarray(out)
        if out.dtype.kind == "f" and not np.isfinite(out).all():
            out = np.nan_to_num(out, nan=0.0, posinf=np.inf, neginf=-np.inf)
        return out

    wrapped.__name__ = f"compute_{name}"
    return wrapped


def register(opdef: OpDef) -> OpDef:
    """Add an op definition to the registry (names are unique).

    The compute kernel is wrapped by :func:`_guard_nonfinite` so eager
    execution never leaks numpy RuntimeWarnings.
    """
    if opdef.name in _REGISTRY:
        raise GraphError(f"op {opdef.name!r} already registered")
    opdef = dataclasses.replace(
        opdef, compute=_guard_nonfinite(opdef.name, opdef.compute)
    )
    _REGISTRY[opdef.name] = opdef
    return opdef


def op(name: str) -> OpDef:
    """Look up an op definition by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise GraphError(
            f"unknown op {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def op_names() -> list[str]:
    """All registered op names, sorted."""
    return sorted(_REGISTRY)


def engine_for(name: str) -> EngineKind:
    """The Table 1 mapping: which engine runs this op."""
    return op(name).engine


# ---------------------------------------------------------------------------
# work-item construction


def work_item_for(
    name: str,
    in_shapes: list[Shape],
    out_shape: Shape,
    dtype: DType,
    attrs: dict,
    *,
    label: str = "",
    opdef: OpDef | None = None,
) -> WorkItem:
    """Build the cost-model :class:`WorkItem` for one node.

    Callers that already hold the :class:`OpDef` (the compiler memoizes
    one lookup per op kind) pass it via ``opdef`` to skip the registry.
    """
    if opdef is None:
        opdef = op(name)
    isz = itemsize(dtype)
    out_numel = _numel(out_shape)
    bytes_read = (
        sum(_numel(s) * isz for s in in_shapes) if opdef.reads_inputs else 0
    )
    bytes_written = out_numel * isz if opdef.writes_output else 0

    if opdef.work_item_fn is not None:
        # Kernel-pack ops: their GEMM twin is a function of attrs (window
        # size, tile geometry), not of the two-operand matmul_spec form.
        return opdef.work_item_fn(
            label or name, in_shapes, out_shape, dtype, attrs,
            bytes_read, bytes_written,
        )
    if opdef.op_class is OpClass.MATMUL:
        _, dims = matmul_spec(in_shapes[0], in_shapes[1], attrs)
        return WorkItem(
            label or name, OpClass.MATMUL, flops=dims.flops,
            bytes_read=bytes_read, bytes_written=bytes_written,
            elements=out_numel, dtype=dtype, matmul=dims,
        )
    if opdef.op_class is OpClass.REDUCTION:
        in_numel = _numel(in_shapes[0])
        return WorkItem(
            label or name, OpClass.REDUCTION, flops=float(in_numel),
            bytes_read=bytes_read, bytes_written=bytes_written,
            elements=in_numel, dtype=dtype,
        )
    if opdef.op_class is OpClass.SPECIAL:
        return WorkItem(
            label or name, OpClass.SPECIAL,
            flops=out_numel * opdef.flops_per_element,
            bytes_read=bytes_read, bytes_written=bytes_written,
            elements=out_numel, dtype=dtype, special_fn=opdef.special_fn,
        )
    if opdef.op_class is OpClass.DATA_MOVE:
        return WorkItem(
            label or name, OpClass.DATA_MOVE, flops=0.0,
            bytes_read=bytes_read, bytes_written=bytes_written,
            elements=out_numel, dtype=dtype,
        )
    if opdef.op_class is OpClass.COLLECTIVE:
        # The NIC moves the payload; reduction math rides along on the
        # wire (ring all-reduce adds in transit), so flops stay 0 and
        # the fabric plan — not the per-card cost model — prices it.
        return WorkItem(
            label or name, OpClass.COLLECTIVE, flops=0.0,
            bytes_read=bytes_read, bytes_written=bytes_written,
            elements=out_numel, dtype=dtype,
        )
    return WorkItem(
        label or name, OpClass.ELEMENTWISE,
        flops=out_numel * opdef.flops_per_element,
        bytes_read=bytes_read, bytes_written=bytes_written,
        elements=out_numel, dtype=dtype,
    )


# ---------------------------------------------------------------------------
# registry population


def _ew(name, compute, *, flops=1.0, doc="", shape=_same_shape_unary,
        engine=EngineKind.TPC, supported=True):
    register(OpDef(name, OpClass.ELEMENTWISE, engine, shape, compute,
                   flops_per_element=flops, doc=doc, supported=supported))


def _special(name, compute, special_fn, *, flops=1.0, doc="",
             shape=_same_shape_unary):
    register(OpDef(name, OpClass.SPECIAL, EngineKind.TPC, shape, compute,
                   special_fn=special_fn, flops_per_element=flops, doc=doc))


# -- matmul: the only MME citizen (Table 1) --------------------------------
register(OpDef(
    "matmul", OpClass.MATMUL, EngineKind.MME, _matmul_shape, _matmul_compute,
    doc="matrix product (torch.matmul / torch.bmm / nn.Linear)",
))

# -- elementwise binary (TPC per Table 1) ----------------------------------
_ew("add", lambda i, a: i[0] + i[1], shape=_broadcast_binary,
    doc="tensor + tensor")
_ew("sub", lambda i, a: i[0] - i[1], shape=_broadcast_binary,
    doc="tensor - tensor")
_ew("mul", lambda i, a: i[0] * i[1], shape=_broadcast_binary,
    doc="element-wise mul (torch.mul)")
_ew("div", lambda i, a: i[0] / i[1], shape=_broadcast_binary, flops=4.0,
    doc="element-wise division")
_ew("maximum", lambda i, a: np.maximum(i[0], i[1]), shape=_broadcast_binary,
    doc="element-wise max")


def _where_shape(shapes: list[Shape], attrs: dict) -> Shape:
    return _broadcast(_broadcast(shapes[0], shapes[1]), shapes[2])


register(OpDef(
    "where", OpClass.ELEMENTWISE, EngineKind.TPC, _where_shape,
    lambda i, a: np.where(i[0] != 0, i[1], i[2]),
    doc="select by mask (mask, a, b)",
))

# -- scalar-operand ops: still TPC (Table 1's surprising rows) -------------
_ew("smul", lambda i, a: i[0] * a["alpha"], doc="scalar * tensor")
_ew("sadd", lambda i, a: i[0] + a["alpha"], doc="scalar +- tensor")
_ew("spow", lambda i, a: i[0] ** a["alpha"], flops=18.0,
    doc="tensor ** scalar")

# -- elementwise unary ------------------------------------------------------
_ew("neg", lambda i, a: -i[0], doc="negation")
_ew("abs", lambda i, a: np.abs(i[0]), doc="absolute value")
_ew("square", lambda i, a: np.square(i[0]), doc="tensor square (torch.square)")
_ew("relu", lambda i, a: np.maximum(i[0], 0.0), doc="ReLU activation")
_ew("leaky_relu",
    lambda i, a: np.where(i[0] >= 0, i[0], a.get("slope", 0.01) * i[0]),
    flops=2.0, doc="LeakyReLU activation")
_ew("ones_like", lambda i, a: np.ones_like(i[0]), doc="torch.ones_like")
_ew("zeros_like", lambda i, a: np.zeros_like(i[0]), doc="torch.zeros_like")
_ew("fill", lambda i, a: np.full_like(i[0], a["value"]), doc="constant fill")
_ew("cast", lambda i, a: i[0], doc="dtype cast")
_ew("step_ge0", lambda i, a: (i[0] >= 0).astype(i[0].dtype),
    doc="unit step (backward of relu)")
_ew("eq", lambda i, a: (i[0] == i[1]).astype(i[0].dtype),
    shape=_broadcast_binary, doc="elementwise equality mask")
def _dropout_compute(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
    p = float(attrs["p"])
    keep = 1.0 - p
    rng = np.random.default_rng(int(attrs["seed"]))
    mask = (rng.random(inputs[0].shape) >= p).astype(inputs[0].dtype)
    return inputs[0] * mask / keep


# Dropout: RNG + mask + scale on the TPC (the TPC ISA has "random
# number production", section 2.2). Deterministic per seed, which also
# makes its VJP elegant: dropout is linear in x, so the backward is the
# same masked scaling re-applied to the gradient.
_ew("dropout", _dropout_compute, flops=3.0,
    doc="training dropout (mask + rescale)")

# GLU: elementwise on the TPC, but SynapseAI support is poor — the graph
# compiler triggers a host recompilation when it meets one (section 3.3).
_ew("glu",
    lambda i, a: i[0][..., : i[0].shape[-1] // 2]
    * _sigmoid(i[0][..., i[0].shape[-1] // 2:]),
    flops=5.0, shape=_glu_shape, supported=False,
    doc="gated linear unit (poorly supported: host recompilation)")

# -- special functions (TPC) -------------------------------------------------
_special("exp", lambda i, a: np.exp(i[0]), "exp",
         doc="exponential (large logits saturate to inf, as on hardware)")
_special("log", lambda i, a: np.log(i[0]), "log",
         doc="natural logarithm (torch.log)")
_special("sqrt", lambda i, a: np.sqrt(i[0]), "sqrt",
         doc="square root (torch.sqrt)")
_special("rsqrt", lambda i, a: 1.0 / np.sqrt(i[0]), "rsqrt",
         doc="reciprocal square root")
_special("sigmoid", lambda i, a: _sigmoid(i[0]), "sigmoid", flops=3.0,
         doc="logistic sigmoid")
_special("tanh", lambda i, a: np.tanh(i[0]), "tanh", flops=3.0,
         doc="hyperbolic tangent")
_special("gelu", lambda i, a: _gelu(i[0]), "erf", flops=5.0,
         doc="GELU activation")
_special("elu",
         lambda i, a: np.where(i[0] > 0, i[0], np.expm1(i[0])), "exp",
         flops=3.0, doc="ELU activation (Linear Transformer feature map)")

# -- reductions (TPC; SIMD-hostile per section 3.3) -------------------------
register(OpDef("sum", OpClass.REDUCTION, EngineKind.TPC, _reduce_shape,
               _reduce_compute(np.sum), doc="sum reduction"))
register(OpDef("max", OpClass.REDUCTION, EngineKind.TPC, _reduce_shape,
               _reduce_compute(np.max), doc="max reduction"))
register(OpDef("mean", OpClass.REDUCTION, EngineKind.TPC, _reduce_shape,
               _reduce_compute(np.mean), doc="mean reduction"))

# -- data movement -----------------------------------------------------------
register(OpDef(
    "transpose", OpClass.DATA_MOVE, EngineKind.TPC, _transpose_shape,
    lambda i, a: np.transpose(
        i[0], a.get("axes") or tuple(reversed(range(i[0].ndim)))
    ),
    doc="physical permute (tensor.transpose)",
))
register(OpDef(
    "reshape", OpClass.DATA_MOVE, EngineKind.TPC, _reshape_shape,
    lambda i, a: i[0].reshape(a["shape"]),
    reads_inputs=False, writes_output=False,  # metadata-only view
    doc="reshape (view; no data movement)",
))
register(OpDef(
    "broadcast_to", OpClass.DATA_MOVE, EngineKind.TPC, _broadcast_to_shape,
    lambda i, a: np.broadcast_to(i[0], a["shape"]).copy(),
    reads_inputs=False, writes_output=False,  # stride trick; no traffic
    doc="broadcast (view; no data movement)",
))
register(OpDef(
    "gather_rows", OpClass.DATA_MOVE, EngineKind.TPC, _gather_rows_shape,
    lambda i, a: i[0][i[1].astype(np.int64)],
    doc="embedding-table row gather",
))
register(OpDef(
    "scatter_add_rows", OpClass.DATA_MOVE, EngineKind.TPC,
    lambda shapes, attrs: tuple(attrs["shape"]),
    lambda i, a: _scatter_add_rows(i[0], i[1], tuple(a["shape"])),
    doc="row scatter-add (backward of gather_rows)",
))
def _slice_last_shape(shapes: list[Shape], attrs: dict) -> Shape:
    shape = shapes[0]
    lo, hi = int(attrs["lo"]), int(attrs["hi"])
    if not 0 <= lo <= hi <= shape[-1]:
        raise ShapeError(f"slice_last [{lo}:{hi}] out of range for {shape}")
    return shape[:-1] + (hi - lo,)


def _concat_last_shape(shapes: list[Shape], attrs: dict) -> Shape:
    a, b = shapes
    if a[:-1] != b[:-1]:
        raise ShapeError(f"concat_last: leading dims differ, {a} vs {b}")
    return a[:-1] + (a[-1] + b[-1],)


def _slice_rows_shape(shapes: list[Shape], attrs: dict) -> Shape:
    shape = shapes[0]
    if len(shape) < 2:
        raise ShapeError(f"slice_rows needs rank >= 2, got {shape}")
    lo, hi = int(attrs["lo"]), int(attrs["hi"])
    if not 0 <= lo <= hi <= shape[-2]:
        raise ShapeError(f"slice_rows [{lo}:{hi}] out of range for {shape}")
    return shape[:-2] + (hi - lo, shape[-1])


def _concat_rows_shape(shapes: list[Shape], attrs: dict) -> Shape:
    a, b = shapes
    if a[:-2] != b[:-2] or a[-1] != b[-1]:
        raise ShapeError(f"concat_rows: incompatible {a} vs {b}")
    return a[:-2] + (a[-2] + b[-2], a[-1])


def _assemble_rows_shape(shapes: list[Shape], attrs: dict) -> Shape:
    if not shapes:
        raise ShapeError("assemble_rows needs at least one input")
    first = shapes[0]
    if len(first) < 2:
        raise ShapeError(f"assemble_rows needs rank >= 2 inputs, got {first}")
    rows = 0
    for s in shapes:
        if len(s) != len(first) or s[:-2] != first[:-2] or s[-1] != first[-1]:
            raise ShapeError(f"assemble_rows: incompatible {s} vs {first}")
        rows += s[-2]
    return first[:-2] + (rows, first[-1])


register(OpDef(
    "slice_last", OpClass.DATA_MOVE, EngineKind.TPC, _slice_last_shape,
    lambda i, a: i[0][..., int(a["lo"]): int(a["hi"])].copy(),
    doc="contiguous slice along the last dim",
))
register(OpDef(
    "slice_rows", OpClass.DATA_MOVE, EngineKind.TPC, _slice_rows_shape,
    lambda i, a: i[0][..., int(a["lo"]): int(a["hi"]), :].copy(),
    reads_inputs=False, writes_output=False,  # contiguous view
    doc="row-block slice along dim -2 (a view for contiguous tensors)",
))
register(OpDef(
    "concat_rows", OpClass.DATA_MOVE, EngineKind.TPC, _concat_rows_shape,
    lambda i, a: np.concatenate([i[0], i[1]], axis=-2),
    doc="row-block concatenation along dim -2",
))
register(OpDef(
    "assemble_rows", OpClass.DATA_MOVE, EngineKind.TPC,
    _assemble_rows_shape,
    lambda i, a: np.concatenate(list(i), axis=-2),
    # Zero traffic: the tpc_slicing pass's slices compute directly into
    # disjoint row blocks of the output buffer; this node only restores
    # the dataflow (one launch, no bytes).
    reads_inputs=False, writes_output=False,
    doc="n-ary row-slice reassembly along dim -2 (tpc_slicing pass)",
))
register(OpDef(
    "concat_last", OpClass.DATA_MOVE, EngineKind.TPC, _concat_last_shape,
    lambda i, a: np.concatenate([i[0], i[1]], axis=-1),
    doc="concatenation along the last dim",
))
register(OpDef(
    "onehot", OpClass.DATA_MOVE, EngineKind.TPC,
    lambda shapes, attrs: shapes[0] + (attrs["depth"],),
    lambda i, a: np.eye(a["depth"], dtype=np.float32)[i[0].astype(np.int64)],
    doc="one-hot expansion",
))


def _scatter_add_rows(grad: np.ndarray, idx: np.ndarray, shape: Shape) -> np.ndarray:
    out = np.zeros(shape, dtype=grad.dtype)
    flat_idx = idx.astype(np.int64).reshape(-1)
    np.add.at(out, flat_idx, grad.reshape(-1, grad.shape[-1]))
    return out


# -- collectives (NIC; multi-card data parallelism, §2.1) -------------------
# Per-card view: each card holds one replica of the buffer; the op's
# eager semantics are what a *symmetric* data-parallel run observes
# (every replica identical), so all_reduce/broadcast are identities and
# all_gather stacks num_cards copies. Cross-card timing comes from the
# fabric plan replayed by the multi-card runtime, never from here.


def _all_gather_shape(shapes: list[Shape], attrs: dict) -> Shape:
    p = int(attrs.get("num_cards", 1))
    if p < 1:
        raise ShapeError(f"all_gather num_cards must be >= 1, got {p}")
    return (p,) + shapes[0]


register(OpDef(
    "all_reduce", OpClass.COLLECTIVE, EngineKind.NIC, _same_shape_unary,
    lambda i, a: i[0].copy(),
    doc="ring all-reduce across cards (sum of symmetric replicas)",
))
register(OpDef(
    "all_gather", OpClass.COLLECTIVE, EngineKind.NIC, _all_gather_shape,
    lambda i, a: np.broadcast_to(
        i[0][None], (int(a.get("num_cards", 1)),) + i[0].shape
    ).copy(),
    doc="ring all-gather: stack each card's shard along a new axis",
))
register(OpDef(
    "broadcast", OpClass.COLLECTIVE, EngineKind.NIC, _same_shape_unary,
    lambda i, a: i[0].copy(),
    doc="chain broadcast of the root card's buffer",
))


def _reduce_scatter_shape(shapes: list[Shape], attrs: dict) -> Shape:
    p = int(attrs.get("num_cards", 1))
    if p < 1:
        raise ShapeError(f"reduce_scatter num_cards must be >= 1, got {p}")
    numel = 1
    for dim in shapes[0]:
        numel *= dim
    if numel % p:
        raise ShapeError(
            f"reduce_scatter payload of {numel} elements does not split "
            f"into {p} per-card shards"
        )
    return (numel // p,)


register(OpDef(
    "reduce_scatter", OpClass.COLLECTIVE, EngineKind.NIC,
    _reduce_scatter_shape,
    lambda i, a: i[0].reshape(-1)[
        : i[0].size // int(a.get("num_cards", 1))
    ].copy(),
    doc="ring reduce-scatter: each card keeps one reduced 1/p shard",
))
# Point-to-point stage-boundary transfers (pipeline parallelism).
# Same per-card identity convention as the ring collectives: the
# symmetric replica observes the buffer unchanged; the p2p fabric plan
# prices the hop.
register(OpDef(
    "send", OpClass.COLLECTIVE, EngineKind.NIC, _same_shape_unary,
    lambda i, a: i[0].copy(),
    doc="point-to-point send of a stage-boundary buffer",
))
register(OpDef(
    "recv", OpClass.COLLECTIVE, EngineKind.NIC, _same_shape_unary,
    lambda i, a: i[0].copy(),
    doc="point-to-point receive of a stage-boundary buffer",
))

# -- composite ops (lowered by the GraphCompiler) ----------------------------
register(OpDef(
    "softmax", OpClass.ELEMENTWISE, EngineKind.TPC,
    lambda shapes, attrs: shapes[0],
    lambda i, a: _softmax(i[0], a.get("axis", -1)),
    composite=True, flops_per_element=5.0,
    doc="softmax (lowered to max/sub/exp/sum/div on the TPC)",
))
register(OpDef(
    "log_softmax", OpClass.ELEMENTWISE, EngineKind.TPC,
    lambda shapes, attrs: shapes[0],
    lambda i, a: i[0]
    - i[0].max(axis=a.get("axis", -1), keepdims=True)
    - np.log(
        np.exp(i[0] - i[0].max(axis=a.get("axis", -1), keepdims=True)).sum(
            axis=a.get("axis", -1), keepdims=True
        )
    ),
    composite=True, flops_per_element=5.0,
    doc="log-softmax (lowered)",
))


# -- attention kernel pack (PR-9 GFormer-style lowerings) --------------------
# These ops are what the ``attention_lowering`` compiler pass splices in
# for the non-naive kernel choices. Their numerics mirror the naive cone
# (the fused trio composes to exactly the lowered softmax; the attention
# ops apply the same -1e9 masking the frontend's causal mask uses), and
# their cost shapes come from the analytic twins in
# :mod:`repro.hw.costmodel` so the aggregate simulator prices the same
# structure the mini-ISA kernels in :mod:`repro.tpc.kernels` implement.

#: Finite mask value of the attention kernels. Matches the frontend's
#: causal-mask constant (``models.attention``): after the stable
#: max-shift, ``exp`` of a masked score underflows to exactly 0.0, so
#: masking by ``where(keep, s, -1e9)`` and masking by ``add(s, -1e9)``
#: produce byte-identical probabilities on finite scores.
ATTENTION_MASK_VALUE = -1.0e9


def _softmax_shift(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
    x = inputs[0]
    m = x.max(axis=attrs.get("axis", -1), keepdims=True)
    return x - np.where(np.isfinite(m), m, 0.0)


def _softmax_norm(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
    e = inputs[0]
    denom = e.sum(axis=attrs.get("axis", -1), keepdims=True)
    return np.divide(e, denom, out=np.zeros_like(e), where=denom > 0)


def attention_keep_mask(n_q: int, n_k: int, attrs: dict) -> np.ndarray:
    """Boolean (n_q, n_k) keep-mask from causal/window attrs."""
    i = np.arange(n_q)[:, None]
    j = np.arange(n_k)[None, :]
    keep = np.ones((n_q, n_k), dtype=bool)
    causal = bool(attrs.get("causal", False))
    if causal:
        keep &= j <= i
    window = attrs.get("window")
    if window is not None:
        w = int(window)
        if causal:
            keep &= j > i - w
        else:
            keep &= (j >= i - (w - 1) // 2) & (j <= i + w // 2)
    return keep


def _attention_shape(shapes: list[Shape], attrs: dict) -> Shape:
    if len(shapes) != 3:
        raise ShapeError(f"attention expects q, k, v; got {len(shapes)} inputs")
    q, k, v = shapes
    if min(len(q), len(k), len(v)) < 2:
        raise ShapeError(f"attention operands need rank >= 2: {q}, {k}, {v}")
    if q[:-2] != k[:-2] or q[:-2] != v[:-2]:
        raise ShapeError(f"attention batch dims differ: {q}, {k}, {v}")
    if q[-1] != k[-1] or k[-2] != v[-2]:
        raise ShapeError(f"attention contraction mismatch: {q}, {k}, {v}")
    return q[:-1] + (v[-1],)


def _attention_compute(inputs: list[np.ndarray], attrs: dict) -> np.ndarray:
    q, k, v = inputs
    scale = float(attrs.get("scale", q.shape[-1] ** -0.5))
    s = (q @ np.swapaxes(k, -1, -2)) * scale
    keep = attention_keep_mask(q.shape[-2], k.shape[-2], attrs)
    s = np.where(keep, s, ATTENTION_MASK_VALUE)
    return _softmax(s, -1) @ v


def _exp_basis_item(label, in_shapes, out_shape, dtype, attrs,
                    bytes_read, bytes_written) -> WorkItem:
    dims = exp_offload_dims(out_shape, int(attrs.get("basis",
                                                     EXP_OFFLOAD_BASIS)))
    return WorkItem(
        label, OpClass.MATMUL, flops=dims.flops,
        bytes_read=bytes_read, bytes_written=bytes_written,
        elements=_numel(out_shape), dtype=dtype, matmul=dims,
    )


def _windowed_attention_item(label, in_shapes, out_shape, dtype, attrs,
                             bytes_read, bytes_written) -> WorkItem:
    q = in_shapes[0]
    dims = windowed_attention_dims(
        max(1, _numel(q[:-2])), q[-2], q[-1],
        int(attrs.get("window", q[-2])), bool(attrs.get("causal", False)),
    )
    return WorkItem(
        label, OpClass.MATMUL, flops=dims.flops,
        bytes_read=bytes_read, bytes_written=bytes_written,
        elements=_numel(out_shape), dtype=dtype, matmul=dims,
    )


def _flash_attention_item(label, in_shapes, out_shape, dtype, attrs,
                          bytes_read, bytes_written) -> WorkItem:
    q = in_shapes[0]
    dims = flash_attention_dims(
        max(1, _numel(q[:-2])), q[-2], q[-1],
        int(attrs.get("q_block", 128)), int(attrs.get("k_block", 128)),
        bool(attrs.get("causal", False)),
    )
    return WorkItem(
        label, OpClass.MATMUL, flops=dims.flops,
        bytes_read=bytes_read, bytes_written=bytes_written,
        elements=_numel(out_shape), dtype=dtype, matmul=dims,
    )


register(OpDef(
    "softmax_shift", OpClass.ELEMENTWISE, EngineKind.TPC,
    _same_shape_unary, _softmax_shift, flops_per_element=2.0,
    doc="x - rowmax(x): TPC front end of the fused softmax",
))
register(OpDef(
    "exp_basis_mm", OpClass.MATMUL, EngineKind.MME,
    _same_shape_unary, lambda i, a: np.exp(i[0]),
    work_item_fn=_exp_basis_item,
    doc="exp as a thin-K matmul against a fixed basis on the MME "
        "(GFormer exp offload); numerically exact here",
))
register(OpDef(
    "softmax_norm", OpClass.ELEMENTWISE, EngineKind.TPC,
    _same_shape_unary, _softmax_norm, flops_per_element=3.0,
    doc="e / rowsum(e): TPC back end of the fused softmax",
))
register(OpDef(
    "windowed_attention", OpClass.MATMUL, EngineKind.TPC,
    _attention_shape, _attention_compute,
    work_item_fn=_windowed_attention_item,
    doc="banded QK^T -> softmax -> V TPC kernel over a sliding window, "
        "skipping fully masked key blocks",
))
register(OpDef(
    "flash_attention", OpClass.MATMUL, EngineKind.MME,
    _attention_shape, _attention_compute,
    work_item_fn=_flash_attention_item,
    doc="tiled online-softmax attention; the score matrix never reaches "
        "HBM (running max/denominator stay in local memory)",
))
