"""Critical-path analysis over a compiled schedule's dependency DAG.

"Which ops actually bound the makespan?" — the question behind every
optimization decision in the paper. The *data* critical path (longest
dependency chain by duration) tells you the floor no scheduler can
beat; comparing it to the executed makespan separates algorithmic
serialization (softmax chains) from queueing artifacts (in-order
engines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.costmodel import CostModel
from ..util.errors import ExecutionError
from ..util.tabulate import render_table
from ..util.units import fmt_time_us
from .runtime import op_duration_us
from .schedule import Schedule, ScheduledOp


@dataclass
class CriticalPathResult:
    """The longest duration-weighted dependency chain."""

    ops: list[ScheduledOp]
    durations_us: list[float]
    total_us: float
    #: sum of ALL op durations (the serial bound)
    serial_total_us: float

    def __len__(self) -> int:
        return len(self.ops)

    def parallelism(self) -> float:
        """serial work / critical path — the available parallelism."""
        if self.total_us <= 0:
            return 1.0
        return self.serial_total_us / self.total_us

    def share_of(self, makespan_us: float) -> float:
        """How much of an executed makespan the data path explains."""
        if makespan_us <= 0:
            raise ExecutionError("makespan must be positive")
        return self.total_us / makespan_us

    def by_src(self) -> dict[str, float]:
        """Critical-path microseconds grouped by source op."""
        out: dict[str, float] = {}
        for op, dur in zip(self.ops, self.durations_us):
            key = op.src or op.label
            out[key] = out.get(key, 0.0) + dur
        return out

    def render(self, *, top: int = 10) -> str:
        """The path's dominant contributors."""
        contributions = sorted(
            self.by_src().items(), key=lambda kv: kv[1], reverse=True
        )[:top]
        rows = [
            (src, us / 1e3, f"{us / self.total_us:.0%}")
            for src, us in contributions
        ]
        header = (
            f"critical path: {fmt_time_us(self.total_us)} over "
            f"{len(self.ops)} ops; serial work "
            f"{fmt_time_us(self.serial_total_us)} "
            f"(parallelism {self.parallelism():.2f}x)"
        )
        return header + "\n" + render_table(
            ["source op", "path ms", "share"], rows,
        )


def critical_path(
    schedule: Schedule, cost: CostModel
) -> CriticalPathResult:
    """Longest-duration chain through the schedule's dependency DAG.

    Uses the same per-op durations the runtime charges; ops are already
    topologically ordered (dependencies point backwards), so a single
    DP pass suffices.
    """
    n = len(schedule.ops)
    if n == 0:
        return CriticalPathResult([], [], 0.0, 0.0)
    durations = [op_duration_us(cost, op) for op in schedule.ops]
    best = [0.0] * n       # longest finish time ending at op i
    parent = [-1] * n
    for op in schedule.ops:
        start = 0.0
        for dep in op.deps:
            if best[dep] > start:
                start = best[dep]
                parent[op.index] = dep
        best[op.index] = start + durations[op.index]
    end = max(range(n), key=lambda i: best[i])
    chain: list[int] = []
    cursor = end
    while cursor != -1:
        chain.append(cursor)
        cursor = parent[cursor]
    chain.reverse()
    return CriticalPathResult(
        ops=[schedule.ops[i] for i in chain],
        durations_us=[durations[i] for i in chain],
        total_us=best[end],
        serial_total_us=sum(durations),
    )
