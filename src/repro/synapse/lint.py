"""Graph linter: catch performance smells before profiling.

The paper's §4 insights are, in effect, lint rules ("use basic ops",
"make work matmul-shaped"). This linter walks a recorded graph and
flags what a Gaudi performance engineer would circle in review:

* mixed-dtype op inputs (hidden casts / broken MME eligibility),
* ops the compiler must recompile for (GLU),
* TPC-heavy FLOP balance (most arithmetic *not* reaching the MME),
* physical transposes that could often be folded into matmul flags,
* reductions over short axes (worst-case SIMD efficiency, §3.3),
* values produced and never consumed (dead compute).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.costmodel import EngineKind, OpClass
from .graph import Graph
from .ops import op as op_def

SHORT_REDUCTION_AXIS = 32
TPC_FLOPS_SHARE_WARN = 0.5


@dataclass(frozen=True)
class LintWarning:
    """One finding; ``rule`` is stable for filtering/tests."""

    rule: str
    message: str
    node_id: int | None = None

    def __str__(self) -> str:
        where = f" (node {self.node_id})" if self.node_id is not None else ""
        return f"[{self.rule}]{where} {self.message}"


def lint_graph(graph: Graph) -> list[LintWarning]:
    """Run every rule; returns warnings in graph order."""
    graph.validate()
    warnings: list[LintWarning] = []
    consumed = {vid for node in graph.nodes for vid in node.inputs}

    mme_flops = 0.0
    tpc_flops = 0.0
    for node in graph.nodes:
        opdef = op_def(node.op)
        in_values = [graph.value(v) for v in node.inputs]
        out_value = graph.value(node.output)

        dtypes = {v.dtype for v in in_values if v.numel > 0}
        if len(dtypes) > 1:
            warnings.append(LintWarning(
                "mixed-dtype",
                f"{node.op} mixes input dtypes "
                f"{sorted(d.value for d in dtypes)}",
                node.nid,
            ))

        if not opdef.supported:
            warnings.append(LintWarning(
                "recompile",
                f"{node.op} is poorly supported by SynapseAI and will "
                "trigger a host recompilation (see Fig 7's GLU)",
                node.nid,
            ))

        if opdef.op_class is OpClass.COLLECTIVE:
            coll_dtypes = {v.dtype for v in in_values}
            if len(coll_dtypes) > 1:
                warnings.append(LintWarning(
                    "collective-dtype",
                    f"{node.op} inputs mix dtypes "
                    f"{sorted(d.value for d in coll_dtypes)}: a collective "
                    "reduces one homogeneous buffer on every card",
                    node.nid,
                ))
            counts = {v.numel for v in in_values}
            if len(counts) > 1:
                warnings.append(LintWarning(
                    "collective-payload",
                    f"{node.op} inputs disagree on element count "
                    f"{sorted(counts)}: every card must contribute the "
                    "same payload",
                    node.nid,
                ))
            num_cards = node.attrs.get("num_cards")
            if (
                node.op == "all_gather"
                and isinstance(num_cards, int)
                and num_cards >= 1
                and in_values
                and out_value.numel != num_cards * in_values[0].numel
            ):
                warnings.append(LintWarning(
                    "collective-payload",
                    f"all_gather output has {out_value.numel} elements, "
                    f"expected num_cards ({num_cards}) x per-card "
                    f"{in_values[0].numel}",
                    node.nid,
                ))

        if node.op == "transpose":
            consumers = [
                n for n in graph.nodes if node.output in n.inputs
            ]
            if consumers and all(n.op == "matmul" for n in consumers):
                warnings.append(LintWarning(
                    "foldable-transpose",
                    "physical transpose feeds only matmuls; use the "
                    "matmul transpose flags and keep the data in place",
                    node.nid,
                ))

        if opdef.op_class is OpClass.REDUCTION:
            axis = node.attrs.get("axis")
            if isinstance(axis, int):
                length = in_values[0].shape[axis]
                if length < SHORT_REDUCTION_AXIS:
                    warnings.append(LintWarning(
                        "short-reduction",
                        f"{node.op} reduces an axis of length {length}: "
                        "horizontal combines dominate on the SIMD TPC "
                        "(section 3.3)",
                        node.nid,
                    ))

        # rough FLOP split for the balance rule
        numel = out_value.numel
        if opdef.op_class is OpClass.MATMUL:
            from .ops import matmul_spec

            _, dims = matmul_spec(
                in_values[0].shape, in_values[1].shape, node.attrs
            )
            mme_flops += dims.flops
        elif opdef.op_class in (OpClass.ELEMENTWISE, OpClass.SPECIAL,
                                OpClass.REDUCTION):
            tpc_flops += numel * opdef.flops_per_element

    produced = {node.output for node in graph.nodes}
    dead = produced - consumed
    # terminal values are the graph's outputs; "dead" only when there
    # is more than one terminal and some carry no name (accidental)
    if len(dead) > 1:
        unnamed = [vid for vid in dead if not graph.value(vid).name]
        for vid in sorted(unnamed)[1:]:
            producer = next(n for n in graph.nodes if n.output == vid)
            warnings.append(LintWarning(
                "dead-value",
                f"{producer.op} produces value {vid} that nothing "
                "consumes; dead compute still burns engine time",
                producer.nid,
            ))

    total = mme_flops + tpc_flops
    if total > 0 and tpc_flops / total > TPC_FLOPS_SHARE_WARN:
        warnings.append(LintWarning(
            "tpc-heavy",
            f"{tpc_flops / total:.0%} of arithmetic maps to the TPC "
            "(~7x slower than the MME, Table 2); restructure toward "
            "matmuls (section 4 insight #3)",
        ))
    return warnings


def render_warnings(warnings: list[LintWarning]) -> str:
    """Human-readable lint report."""
    if not warnings:
        return "lint: clean (no findings)"
    lines = [f"lint: {len(warnings)} finding(s)"]
    lines.extend(f"  {w}" for w in warnings)
    return "\n".join(lines)
