"""Graph linter: catch performance smells before profiling.

The paper's §4 insights are, in effect, lint rules ("use basic ops",
"make work matmul-shaped"). This linter walks a recorded graph and
flags what a Gaudi performance engineer would circle in review:

* mixed-dtype op inputs (hidden casts / broken MME eligibility),
* ops the compiler must recompile for (GLU),
* TPC-heavy FLOP balance (most arithmetic *not* reaching the MME),
* physical transposes that could often be folded into matmul flags,
* reductions over short axes (worst-case SIMD efficiency, §3.3),
* values produced and never consumed (dead compute),
* row-sliced subgraphs (``tpc_slicing`` pass) whose ``assemble_rows``
  does not stitch the slices back into the original tensor,
* fused-softmax trios (``attention_lowering="fused"``) that do not
  consume/produce the same values as the naive softmax they replace,
* ``windowed_attention`` ops that fail to declare their sliding-window
  mask (schedule lint then checks the band's coverage).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.costmodel import EngineKind, OpClass
from .graph import Graph
from .ops import op as op_def

SHORT_REDUCTION_AXIS = 32
TPC_FLOPS_SHARE_WARN = 0.5


@dataclass(frozen=True)
class LintWarning:
    """One finding; ``rule`` is stable for filtering/tests."""

    rule: str
    message: str
    node_id: int | None = None

    def __str__(self) -> str:
        where = f" (node {self.node_id})" if self.node_id is not None else ""
        return f"[{self.rule}]{where} {self.message}"


def _check_slice_reassembly(graph, node, producer_of) -> list[LintWarning]:
    """Verify an ``assemble_rows`` node reconstitutes one whole tensor.

    Each branch feeding the reassembly is walked upstream (stopping at
    graph inputs and at other ``assemble_rows`` nodes, which reset
    slice bounds) to the ``slice_rows`` nodes that carved its rows.
    A correct slicing leaves exactly one ``[lo, hi)`` window per
    branch, the windows tile ``[0, rows)`` contiguously in ascending
    order, and every branch output carries exactly its window's rows.
    """
    warnings: list[LintWarning] = []

    def bounds_of(vid) -> set[tuple[int, int]]:
        found: set[tuple[int, int]] = set()
        stack, seen = [vid], set()
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            producer = producer_of.get(v)
            if producer is None or producer.op == "assemble_rows":
                continue
            if producer.op == "slice_rows":
                found.add((producer.attrs["lo"], producer.attrs["hi"]))
                continue
            stack.extend(producer.inputs)
        return found

    windows: list[tuple[int, int]] = []
    for vid in node.inputs:
        branch = bounds_of(vid)
        if len(branch) != 1:
            warnings.append(LintWarning(
                "slice-reassembly",
                f"assemble_rows branch (value {vid}) traces to "
                f"{sorted(branch) or 'no'} slice_rows windows, expected "
                "exactly one",
                node.nid,
            ))
            return warnings
        (window,) = branch
        rows = graph.value(vid).shape[-2]
        if rows != window[1] - window[0]:
            warnings.append(LintWarning(
                "slice-reassembly",
                f"assemble_rows branch (value {vid}) has {rows} rows but "
                f"its slice window {window} spans {window[1] - window[0]}",
                node.nid,
            ))
        windows.append(window)

    expect_lo = 0
    for lo, hi in windows:
        if lo != expect_lo:
            warnings.append(LintWarning(
                "slice-reassembly",
                f"assemble_rows windows {windows} do not tile rows "
                f"contiguously from 0 (gap or overlap at {lo})",
                node.nid,
            ))
            return warnings
        expect_lo = hi
    out_rows = graph.value(node.output).shape[-2]
    if expect_lo != out_rows:
        warnings.append(LintWarning(
            "slice-reassembly",
            f"assemble_rows windows cover [0, {expect_lo}) but the "
            f"output declares {out_rows} rows",
            node.nid,
        ))
    return warnings


def _check_fused_softmax_cone(graph, node, producer_of) -> list[LintWarning]:
    """Verify a fused-softmax trio consumes/produces the naive cone's
    values: ``softmax_norm`` must normalize an ``exp_basis_mm`` that
    exponentiates a ``softmax_shift``, all three over the same shape and
    axis — anything else computes a different tensor than the naive
    ``softmax`` the ``attention_lowering`` pass replaced."""
    warnings: list[LintWarning] = []
    exp = producer_of.get(node.inputs[0])
    if exp is None or exp.op != "exp_basis_mm":
        got = exp.op if exp is not None else "a graph input"
        warnings.append(LintWarning(
            "fused-softmax-cone",
            f"softmax_norm consumes {got}, expected the exp_basis_mm "
            "stage of the fused trio",
            node.nid,
        ))
        return warnings
    shift = producer_of.get(exp.inputs[0])
    if shift is None or shift.op != "softmax_shift":
        got = shift.op if shift is not None else "a graph input"
        warnings.append(LintWarning(
            "fused-softmax-cone",
            f"exp_basis_mm consumes {got}, expected the softmax_shift "
            "stage of the fused trio",
            exp.nid,
        ))
        return warnings
    cone_in = graph.value(shift.inputs[0]).shape
    cone_out = graph.value(node.output).shape
    if cone_in != cone_out:
        warnings.append(LintWarning(
            "fused-softmax-cone",
            f"fused softmax maps shape {cone_in} to {cone_out}; the "
            "naive cone it replaces is shape-preserving",
            node.nid,
        ))
    axes = {n.attrs.get("axis", -1) for n in (shift, exp, node)}
    if len(axes) > 1:
        warnings.append(LintWarning(
            "fused-softmax-cone",
            f"fused softmax stages disagree on the reduction axis "
            f"{sorted(axes, key=repr)}",
            node.nid,
        ))
    return warnings


def lint_graph(graph: Graph) -> list[LintWarning]:
    """Run every rule; returns warnings in graph order."""
    graph.validate()
    warnings: list[LintWarning] = []
    consumed = {vid for node in graph.nodes for vid in node.inputs}
    producer_of = {node.output: node for node in graph.nodes}

    mme_flops = 0.0
    tpc_flops = 0.0
    for node in graph.nodes:
        opdef = op_def(node.op)
        in_values = [graph.value(v) for v in node.inputs]
        out_value = graph.value(node.output)

        dtypes = {v.dtype for v in in_values if v.numel > 0}
        if len(dtypes) > 1:
            warnings.append(LintWarning(
                "mixed-dtype",
                f"{node.op} mixes input dtypes "
                f"{sorted(d.value for d in dtypes)}",
                node.nid,
            ))

        if not opdef.supported:
            warnings.append(LintWarning(
                "recompile",
                f"{node.op} is poorly supported by SynapseAI and will "
                "trigger a host recompilation (see Fig 7's GLU)",
                node.nid,
            ))

        if opdef.op_class is OpClass.COLLECTIVE:
            coll_dtypes = {v.dtype for v in in_values}
            if len(coll_dtypes) > 1:
                warnings.append(LintWarning(
                    "collective-dtype",
                    f"{node.op} inputs mix dtypes "
                    f"{sorted(d.value for d in coll_dtypes)}: a collective "
                    "reduces one homogeneous buffer on every card",
                    node.nid,
                ))
            counts = {v.numel for v in in_values}
            if len(counts) > 1:
                warnings.append(LintWarning(
                    "collective-payload",
                    f"{node.op} inputs disagree on element count "
                    f"{sorted(counts)}: every card must contribute the "
                    "same payload",
                    node.nid,
                ))
            num_cards = node.attrs.get("num_cards")
            if (
                node.op == "all_gather"
                and isinstance(num_cards, int)
                and num_cards >= 1
                and in_values
                and out_value.numel != num_cards * in_values[0].numel
            ):
                warnings.append(LintWarning(
                    "collective-payload",
                    f"all_gather output has {out_value.numel} elements, "
                    f"expected num_cards ({num_cards}) x per-card "
                    f"{in_values[0].numel}",
                    node.nid,
                ))
            if (
                node.op == "reduce_scatter"
                and isinstance(num_cards, int)
                and num_cards >= 1
                and in_values
                and out_value.numel * num_cards != in_values[0].numel
            ):
                warnings.append(LintWarning(
                    "collective-payload",
                    f"reduce_scatter output has {out_value.numel} "
                    f"elements, expected per-card {in_values[0].numel} / "
                    f"num_cards ({num_cards})",
                    node.nid,
                ))
            if (
                node.op in ("send", "recv")
                and in_values
                and out_value.numel != in_values[0].numel
            ):
                warnings.append(LintWarning(
                    "collective-payload",
                    f"{node.op} output has {out_value.numel} elements "
                    f"but the wire payload is {in_values[0].numel}: "
                    "point-to-point transfers preserve the buffer",
                    node.nid,
                ))

        if node.op == "assemble_rows":
            warnings.extend(
                _check_slice_reassembly(graph, node, producer_of)
            )

        if node.op == "softmax_norm":
            warnings.extend(
                _check_fused_softmax_cone(graph, node, producer_of)
            )

        if node.op == "windowed_attention":
            window = node.attrs.get("window")
            if node.attrs.get("mask") != "sliding_window":
                warnings.append(LintWarning(
                    "windowed-mask",
                    f"{node.op} does not declare mask='sliding_window'; "
                    "schedule lint cannot check the band's coverage "
                    "without the declared mask kind",
                    node.nid,
                ))
            elif not isinstance(window, int) or window < 1:
                warnings.append(LintWarning(
                    "windowed-mask",
                    f"{node.op} declares a sliding-window mask but its "
                    f"window attr is {window!r} (need an int >= 1)",
                    node.nid,
                ))

        if node.op == "transpose":
            consumers = [
                n for n in graph.nodes if node.output in n.inputs
            ]
            if consumers and all(n.op == "matmul" for n in consumers):
                warnings.append(LintWarning(
                    "foldable-transpose",
                    "physical transpose feeds only matmuls; use the "
                    "matmul transpose flags and keep the data in place",
                    node.nid,
                ))

        if opdef.op_class is OpClass.REDUCTION:
            axis = node.attrs.get("axis")
            if isinstance(axis, int):
                length = in_values[0].shape[axis]
                if length < SHORT_REDUCTION_AXIS:
                    warnings.append(LintWarning(
                        "short-reduction",
                        f"{node.op} reduces an axis of length {length}: "
                        "horizontal combines dominate on the SIMD TPC "
                        "(section 3.3)",
                        node.nid,
                    ))

        # rough FLOP split for the balance rule
        numel = out_value.numel
        if opdef.op_class is OpClass.MATMUL:
            if opdef.work_item_fn is not None:
                # kernel-pack ops (exp_basis_mm, windowed/flash
                # attention): their GEMM twin depends on attrs, not the
                # two-operand matmul form — and windowed runs on the TPC
                from .ops import work_item_for

                item = work_item_for(
                    node.op, [v.shape for v in in_values],
                    out_value.shape, out_value.dtype, node.attrs,
                    opdef=opdef,
                )
                if opdef.engine is EngineKind.MME:
                    mme_flops += item.flops
                else:
                    tpc_flops += item.flops
            else:
                from .ops import matmul_spec

                _, dims = matmul_spec(
                    in_values[0].shape, in_values[1].shape, node.attrs
                )
                mme_flops += dims.flops
        elif opdef.op_class in (OpClass.ELEMENTWISE, OpClass.SPECIAL,
                                OpClass.REDUCTION):
            tpc_flops += numel * opdef.flops_per_element

    produced = {node.output for node in graph.nodes}
    dead = produced - consumed
    # terminal values are the graph's outputs; "dead" only when there
    # is more than one terminal and some carry no name (accidental)
    if len(dead) > 1:
        unnamed = [vid for vid in dead if not graph.value(vid).name]
        for vid in sorted(unnamed)[1:]:
            producer = next(n for n in graph.nodes if n.output == vid)
            warnings.append(LintWarning(
                "dead-value",
                f"{producer.op} produces value {vid} that nothing "
                "consumes; dead compute still burns engine time",
                producer.nid,
            ))

    total = mme_flops + tpc_flops
    if total > 0 and tpc_flops / total > TPC_FLOPS_SHARE_WARN:
        warnings.append(LintWarning(
            "tpc-heavy",
            f"{tpc_flops / total:.0%} of arithmetic maps to the TPC "
            "(~7x slower than the MME, Table 2); restructure toward "
            "matmuls (section 4 insight #3)",
        ))
    return warnings


def lint_schedule(schedule) -> list[LintWarning]:
    """Lint a *planned* schedule: memory-planner output invariants.

    Mirrors the ``slice-reassembly`` rule at the schedule level — the
    planner's rewrites must tile the original computation exactly:

    * ``recompute-segment`` — a value written more than once by
      compute ops must be re-materialized by clones of the *same*
      graph nodes reading the *same* values; anything else recomputes
      a different tensor than was dropped.
    * ``spill-pairing`` — every ``spill_in`` restore must pair with a
      ``spill_out`` offload of the same value and byte count, and the
      value must not be read while it sits off-device.
    * ``window-coverage`` — every scheduled ``windowed_attention`` must
      carry the declared sliding-window mask, and the band must be a
      strict subset of the score matrix: a window at least the key
      count silently degrades to full attention at banded-kernel cost.
    """
    warnings: list[LintWarning] = []

    compute_writers: dict[int, list] = {}
    for op in schedule.ops:
        if op.node_ids:
            for vid in op.writes:
                compute_writers.setdefault(vid, []).append(op)
    for vid, writers in compute_writers.items():
        if len(writers) < 2:
            continue
        first = writers[0]
        for later in writers[1:]:
            if later.node_ids != first.node_ids:
                warnings.append(LintWarning(
                    "recompute-segment",
                    f"value {vid} is re-materialized by op "
                    f"{later.index} ({later.label!r}) replaying nodes "
                    f"{later.node_ids}, but the original writer "
                    f"replays {first.node_ids} — the recompute does "
                    "not tile the dropped segment",
                    later.index,
                ))
            elif later.reads != first.reads:
                warnings.append(LintWarning(
                    "recompute-segment",
                    f"value {vid} is recomputed by op {later.index} "
                    f"({later.label!r}) from reads {later.reads}, but "
                    f"the original writer read {first.reads}",
                    later.index,
                ))

    spill_outs: dict[int, list] = {}
    for op in schedule.ops:
        if op.src == "spill" and op.reads and not op.writes:
            spill_outs.setdefault(op.reads[0], []).append(op)
    for op in schedule.ops:
        if op.src != "spill" or not op.writes:
            continue
        vid = op.writes[0]
        outs = [
            o for o in spill_outs.get(vid, ())
            if o.index in op.deps and o.index < op.index
        ]
        if not outs:
            warnings.append(LintWarning(
                "spill-pairing",
                f"spill_in restores value {vid} (op {op.index}) with "
                "no paired spill_out among its dependencies",
                op.index,
            ))
            continue
        out = max(outs, key=lambda o: o.index)
        moved_out = sum(i.bytes_read + i.bytes_written for i in out.items)
        moved_in = sum(i.bytes_read + i.bytes_written for i in op.items)
        if moved_out != moved_in:
            warnings.append(LintWarning(
                "spill-pairing",
                f"spill pair for value {vid} moves {moved_out} bytes "
                f"out but {moved_in} bytes back",
                op.index,
            ))
        for between in schedule.ops[out.index + 1:op.index]:
            if vid in between.reads:
                warnings.append(LintWarning(
                    "spill-pairing",
                    f"op {between.index} ({between.label!r}) reads "
                    f"value {vid} while it is spilled out "
                    f"(ops {out.index}..{op.index})",
                    between.index,
                ))

    graph = getattr(schedule, "graph", None)
    if graph is not None:
        for node in graph.nodes:
            if node.op != "windowed_attention":
                continue
            window = node.attrs.get("window")
            if (
                node.attrs.get("mask") != "sliding_window"
                or not isinstance(window, int) or window < 1
            ):
                warnings.append(LintWarning(
                    "window-coverage",
                    "scheduled windowed_attention lacks a well-formed "
                    f"sliding-window declaration (mask="
                    f"{node.attrs.get('mask')!r}, window={window!r})",
                    node.nid,
                ))
                continue
            keys = graph.value(node.inputs[1]).shape[-2]
            if window >= keys:
                warnings.append(LintWarning(
                    "window-coverage",
                    f"window {window} >= key count {keys}: the band "
                    "covers the whole score matrix — this is full "
                    "attention at banded-kernel prices; use the flash "
                    "or naive lowering instead",
                    node.nid,
                ))
    return warnings


#: source tokens that betray a pass reading geometry (shapes, byte
#: counts, or node attributes — which embed extents; see
#: :func:`~repro.synapse.recipe.structure_signature`)
_GEOMETRY_TOKENS = (
    ".shape", ".numel", ".nbytes", ".attrs", "work_item_for",
    "lower_graph", "itemsize",
)

#: source tokens that betray a pass hardcoding the Gaudi backend —
#: engine members, the Gaudi device config, or its sub-configs. Since
#: the backend abstraction (PR-10), passes must route placement and
#: pricing through ``state.backend`` (``engine_for``, ``cost_model``,
#: the engine-role attributes) so the same pipeline serves every
#: registered backend.
_BACKEND_TOKENS = (
    "EngineKind.", "GaudiConfig", "CostModel(",
    ".config.mme", ".config.tpc", ".config.hbm", ".config.dma",
)


def lint_passes(passes=None) -> list[LintWarning]:
    """Audit compiler passes' incremental-recompilation declarations.

    Keeps the pass cache honest as new passes land (see
    :mod:`repro.synapse.passes.incremental`):

    * ``pass-geometry-over-declared`` — the pass declares geometry
      dependence but its ``run`` reads only shape-invariant fields;
      its results would be needlessly recomputed at every batch/seq
      sweep point.
    * ``pass-geometry-under-declared`` — the inverse, and the
      dangerous one: ``run`` touches shapes/byte counts/attributes but
      the pass declares structure-only, so cached results could be
      replayed against a graph they do not describe.
    * ``pass-backend-coupled`` — the pass's ``run`` names
      ``EngineKind`` members, ``GaudiConfig``, or Gaudi sub-config
      fields directly instead of asking ``state.backend``; such a pass
      silently mis-places or mis-prices work on every other backend.

    The scan is lexical over the ``run`` source plus the sources of
    the helpers it directly calls (one level — deliberately not the
    helpers' helpers, which is where replay-side geometry
    *recomputation* lives; what matters is what the cached decision
    itself reads).
    """
    import inspect
    import re
    import sys

    from .passes import default_passes

    def sources_of(compiler_pass) -> str:
        cls = type(compiler_pass)
        try:
            run_src = inspect.getsource(cls.run)
        except (OSError, TypeError):  # pragma: no cover - REPL-defined pass
            return ""
        pieces = [run_src]
        module = sys.modules.get(cls.__module__)
        namespace = dict(getattr(module, "__dict__", {}))
        namespace.update(cls.__dict__)
        for called in set(re.findall(r"(\w+)\s*\(", run_src)):
            target = namespace.get(called)
            if target is None or not callable(target):
                continue
            if getattr(target, "__module__", None) != cls.__module__:
                continue
            try:
                pieces.append(inspect.getsource(target))
            except (OSError, TypeError):  # pragma: no cover - builtins
                continue
        return "\n".join(pieces)

    warnings: list[LintWarning] = []
    for compiler_pass in passes if passes is not None else default_passes():
        source = sources_of(compiler_pass)
        if not source:  # pragma: no cover - source unavailable
            continue
        reads_geometry = any(tok in source for tok in _GEOMETRY_TOKENS)
        declares_geometry = "geometry" in compiler_pass.signature_deps
        if declares_geometry and not reads_geometry:
            warnings.append(LintWarning(
                "pass-geometry-over-declared",
                f"pass {compiler_pass.name!r} declares geometry "
                "dependence but its run() reads only shape-invariant "
                "fields; declare signature_deps=('structure',) so "
                "sweep points that change only batch/seq can reuse it",
            ))
        elif reads_geometry and not declares_geometry:
            warnings.append(LintWarning(
                "pass-geometry-under-declared",
                f"pass {compiler_pass.name!r} reads geometry "
                "(shapes/bytes/attrs) in run() but declares "
                "structure-only signature_deps — cached results could "
                "replay against graphs they do not describe",
            ))
        coupled = [tok for tok in _BACKEND_TOKENS if tok in source]
        if coupled:
            warnings.append(LintWarning(
                "pass-backend-coupled",
                f"pass {compiler_pass.name!r} hardcodes the Gaudi "
                f"backend in run() ({', '.join(sorted(coupled))}); "
                "route engine placement and pricing through "
                "state.backend instead",
            ))
    return warnings


def render_warnings(warnings: list[LintWarning]) -> str:
    """Human-readable lint report."""
    if not warnings:
        return "lint: clean (no findings)"
    lines = [f"lint: {len(warnings)} finding(s)"]
    lines.extend(f"  {w}" for w in warnings)
    return "\n".join(lines)
