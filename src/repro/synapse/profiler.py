"""SynapseProfiler: compile + execute + analyze in one call.

"SynapseAI profiler is used as suggested by Habana to generate hardware
trace events and accurately measure the execution time of each
operation" (§3.2). :class:`SynapseProfiler` is that tool's analog: feed
it a graph, get a :class:`ProfileResult` with the trace and the derived
metrics the paper reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..hw.config import GaudiConfig, HLS1Config
from ..hw.costmodel import EngineKind
from ..hw.device import GaudiDevice, HLS1Device
from ..util.errors import ConfigError
from ..util.tabulate import render_kv
from ..util.units import fmt_bytes, fmt_time_us, us_to_ms
from .compiler import (
    CompilerOptions,
    GraphCompiler,
    default_compiler_options,
)
from .graph import Graph
from .runtime import HLS1Runtime, Runtime
from .schedule import Schedule
from .trace import Timeline, TraceEvent


@dataclass
class ProfileResult:
    """A profiled graph execution, normalized to start at t=0."""

    graph_name: str
    timeline: Timeline
    schedule: Schedule
    total_time_us: float
    #: whether compilation was served from the recipe cache
    cache_hit: bool = False
    #: cards the schedule ran on (1 for a single-Gaudi profile)
    num_cards: int = 1
    #: NIC busy time on card 0 not hidden under MME/TPC compute — the
    #: communication the training step actually waits for
    exposed_comm_us: float = 0.0
    #: time the HLS-1 fabric had wire traffic draining
    fabric_busy_us: float = 0.0

    # -- the paper's headline metrics ----------------------------------------

    @property
    def total_time_ms(self) -> float:
        """Makespan in milliseconds (the unit the paper quotes)."""
        return us_to_ms(self.total_time_us)

    def utilization(self, engine: EngineKind) -> float:
        """Busy fraction of ``engine`` over the makespan."""
        return self.timeline.utilization(engine)

    def idle_fraction(
        self, engine: EngineKind, *, until: str = "makespan"
    ) -> float:
        """The 'blank areas' fraction of ``engine``.

        ``until="last_compute"`` measures against the last MME/TPC
        completion instead of the trailing DMA drain.
        """
        return self.timeline.idle_fraction(engine, until=until)

    def idle_us(self, engine: EngineKind, *, until: str = "makespan") -> float:
        """Idle microseconds of ``engine`` (see :meth:`Timeline.idle_us`)."""
        return self.timeline.idle_us(engine, until=until)

    @property
    def mme_idle_fraction(self) -> float:
        """Idle fraction of the MME — Fig 4/6/8/9's observation."""
        return self.idle_fraction(EngineKind.MME)

    @property
    def overlap_stats(self) -> dict:
        """The ``tpc_slicing`` pass's per-schedule overlap statistics
        (empty when the pass did not run or sliced nothing)."""
        return dict(self.schedule.stats.get("overlap", {}))

    def src_share(self, src: str, engine: EngineKind = EngineKind.TPC) -> float:
        """Share of ``engine`` busy time attributed to source op ``src``."""
        return self.timeline.src_share(src, engine)

    @property
    def softmax_tpc_share(self) -> float:
        """Softmax's share of TPC busy time (Fig 4: > 80%)."""
        return self.src_share("softmax", EngineKind.TPC)

    @property
    def peak_hbm_bytes(self) -> int:
        """Planned peak HBM footprint."""
        return self.schedule.memory.peak_bytes

    # -- HBM contention metrics ----------------------------------------------

    @property
    def contention_stall_us(self) -> float:
        """Total time ops waited on the shared HBM beyond their
        uncontended drain (0.0 when profiled with contention off)."""
        return sum(ev.contention_stall_us for ev in self.timeline.events)

    @property
    def contended_op_count(self) -> int:
        """Number of ops that lost measurable time to HBM sharing."""
        return sum(
            1 for ev in self.timeline.events
            if ev.contention_stall_us > 1e-9
        )

    @property
    def contention_stall_fraction(self) -> float:
        """Aggregate stall as a fraction of the makespan."""
        if self.total_time_us <= 0:
            return 0.0
        return self.contention_stall_us / self.total_time_us

    # -- multi-card metrics ---------------------------------------------------

    @property
    def exposed_comm_fraction(self) -> float:
        """Exposed communication as a fraction of the makespan."""
        if self.total_time_us <= 0:
            return 0.0
        return self.exposed_comm_us / self.total_time_us

    @property
    def fabric_utilization(self) -> float:
        """Fraction of the makespan the fabric was draining wire bytes."""
        if self.total_time_us <= 0:
            return 0.0
        return self.fabric_busy_us / self.total_time_us

    def scope_breakdown(self, *, depth: int = 2) -> list[tuple[str, float, float]]:
        """Busy time per scope prefix: (scope, busy_us, share).

        ``depth`` truncates dotted scopes ("bert.encoder.layer0.attn" at
        depth 2 -> "bert.encoder"); backward ops group under "bwd".
        Sorted by busy time, descending. Shares are of total busy time
        across engines (they sum to ~1, not to the makespan).
        """
        busy: dict[str, float] = {}
        for ev in self.timeline.events:
            if ev.engine not in (EngineKind.MME, EngineKind.TPC):
                continue
            parts = [p for p in ev.scope.split(".") if p]
            key = ".".join(parts[:depth]) if parts else "(top)"
            busy[key] = busy.get(key, 0.0) + ev.dur_us
        total = sum(busy.values())
        if total <= 0:
            return []
        return sorted(
            ((scope, us, us / total) for scope, us in busy.items()),
            key=lambda row: row[1],
            reverse=True,
        )

    def summary(self) -> str:
        """Multi-line human-readable profile summary."""
        pairs = [
            ("graph", self.graph_name),
            ("total time", fmt_time_us(self.total_time_us)),
            ("ops scheduled", len(self.schedule)),
            ("MME utilization", f"{self.utilization(EngineKind.MME):.1%}"),
            ("TPC utilization", f"{self.utilization(EngineKind.TPC):.1%}"),
            ("DMA utilization", f"{self.utilization(EngineKind.DMA):.1%}"),
            ("peak HBM", fmt_bytes(self.peak_hbm_bytes)),
            ("HBM contention stall", fmt_time_us(self.contention_stall_us)),
            ("ops stalled by contention", self.contended_op_count),
        ]
        if self.num_cards > 1:
            pairs += [
                ("cards", self.num_cards),
                ("exposed comm", fmt_time_us(self.exposed_comm_us)),
                ("fabric utilization", f"{self.fabric_utilization:.1%}"),
            ]
        shares = sorted(
            self.timeline.busy_by_src(EngineKind.TPC).items(),
            key=lambda kv: kv[1],
            reverse=True,
        )[:5]
        for src, busy in shares:
            pairs.append((f"TPC busy: {src}", fmt_time_us(busy)))
        return render_kv(pairs, title=f"profile of {self.graph_name!r}")


class SynapseProfiler:
    """Compile a graph and profile its execution on a fresh device."""

    def __init__(
        self,
        config: GaudiConfig | None = None,
        options: CompilerOptions | None = None,
    ):
        self.options = options or default_compiler_options()
        self.compiler = GraphCompiler(config, self.options)
        # the compiler resolved options.backend and coerced the config,
        # so a profiler built with a GaudiConfig retargets cleanly
        self.backend = self.compiler.backend
        self.config = self.compiler.config

    def compile(self, graph: Graph) -> Schedule:
        """Compile only (exposed for schedule inspection in tests)."""
        return self.compiler.compile(graph)

    def _scheduler(self) -> str | None:
        """Issue policy for the runtime: the configured out-of-order
        scheduler when ``reorder`` is on, else the legacy default."""
        return self.options.scheduler if self.options.reorder else None

    def profile(
        self, graph: Graph, *, device: GaudiDevice | None = None
    ) -> ProfileResult:
        """Compile + execute ``graph``; returns a t=0-normalized result."""
        schedule = self.compiler.compile(graph)
        device = device or self.backend.make_device(self.config)
        runtime = Runtime(device)
        result = runtime.execute(
            schedule,
            reorder=self.options.reorder,
            hbm_contention=self.options.hbm_contention,
            scheduler=self._scheduler(),
            engine=self.options.sim_engine,
        )
        timeline = result.timeline.shifted(-result.start_offset_us)
        return ProfileResult(
            graph_name=graph.name,
            timeline=timeline,
            schedule=schedule,
            total_time_us=result.total_time_us,
            cache_hit=self.compiler.last_cache_hit,
        )

    def profile_repeated(
        self,
        graph: Graph,
        iterations: int,
        *,
        device: GaudiDevice | None = None,
        compile_us_per_op: float = 40.0,
    ) -> list[ProfileResult]:
        """Profile ``iterations`` back-to-back executions.

        Every iteration compiles through the recipe cache: the first
        compile misses and is preceded by a host graph-compilation
        event sized proportionally to the schedule; subsequent
        iterations hit the cache and replay the compiled recipe with no
        compilation cost (SynapseAI compiles a graph once and replays
        it). With ``use_recipe_cache`` off, only iteration 1 is charged
        — matching the pre-cache behaviour. Each returned result is
        normalized to its own start.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        device = device or self.backend.make_device(self.config)
        runtime = Runtime(device)
        results: list[ProfileResult] = []
        for i in range(iterations):
            schedule = self.compiler.compile(graph)
            if self.options.use_recipe_cache:
                fresh_compile = not self.compiler.last_cache_hit
            else:
                fresh_compile = i == 0
            if fresh_compile and compile_us_per_op > 0:
                compile_us = compile_us_per_op * len(schedule)
                host = self.backend.host_engine
                interval = device.timeline(host).reserve(
                    device.now, compile_us, "graph_compile"
                )
                compile_event = TraceEvent(
                    "graph_compile", host,
                    interval.start, compile_us, src="compile",
                )
                # first iteration must wait for compilation: advance
                # every non-host engine's availability past it
                # (whatever timelines the backend's device declares)
                for engine in device.timelines:
                    if engine is self.backend.host_engine:
                        continue
                    device.timeline(engine).reserve(interval.end, 0.0,
                                                    "compile_barrier")
            else:
                compile_event = None
            result = runtime.execute(
                schedule,
                reorder=self.options.reorder,
                hbm_contention=self.options.hbm_contention,
                scheduler=self._scheduler(),
                engine=self.options.sim_engine,
            )
            start = (
                compile_event.start_us if compile_event is not None
                else result.start_offset_us
            )
            timeline = result.timeline
            if compile_event is not None:
                timeline = Timeline(
                    [compile_event] + list(timeline.events),
                    name=timeline.name,
                )
            timeline = timeline.shifted(-start)
            results.append(ProfileResult(
                graph_name=graph.name,
                timeline=timeline,
                schedule=schedule,
                total_time_us=timeline.total_time_us,
                cache_hit=self.compiler.last_cache_hit,
            ))
        return results


class HLS1Profiler:
    """Compile once, execute on every card of an HLS-1 box.

    The data-parallel analog of :class:`SynapseProfiler`: collective
    injection is forced on (a DDP step without gradient all-reduce is
    not a DDP step) and execution goes through
    :class:`~repro.synapse.runtime.HLS1Runtime`. The compiled schedule
    is card-count independent, so profiling the same graph across box
    sizes keeps hitting the recipe cache.
    """

    def __init__(
        self,
        config: HLS1Config | None = None,
        options: CompilerOptions | None = None,
    ):
        self.config = config or HLS1Config()
        base = options or default_compiler_options()
        if base.backend != "gaudi":
            raise ConfigError(
                "HLS1Profiler models a Gaudi HLS-1 box; "
                f"backend {base.backend!r} has no multi-card system model"
            )
        if not base.inject_collectives:
            base = dataclasses.replace(base, inject_collectives=True)
        self.options = base
        self.compiler = GraphCompiler(self.config.card, base)

    def compile(self, graph: Graph) -> Schedule:
        """Compile only (exposed for schedule inspection in tests)."""
        return self.compiler.compile(graph)

    def profile(
        self, graph: Graph, *, system: HLS1Device | None = None
    ) -> ProfileResult:
        """Compile + execute ``graph`` on the box; t=0-normalized."""
        schedule = self.compiler.compile(graph)
        system = system or HLS1Device(self.config)
        runtime = HLS1Runtime(system)
        result = runtime.execute(
            schedule,
            reorder=self.options.reorder,
            hbm_contention=self.options.hbm_contention,
            scheduler=(
                self.options.scheduler if self.options.reorder else None
            ),
            engine=self.options.sim_engine,
        )
        timeline = result.timeline.shifted(-result.start_offset_us)
        return ProfileResult(
            graph_name=graph.name,
            timeline=timeline,
            schedule=schedule,
            total_time_us=result.total_time_us,
            cache_hit=self.compiler.last_cache_hit,
            num_cards=result.num_cards,
            exposed_comm_us=result.exposed_comm_us,
            fabric_busy_us=result.fabric_busy_us,
        )
