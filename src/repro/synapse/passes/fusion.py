"""ElementwiseFusionPass: group nodes into engine-tagged pending ops.

This is the grouping stage: every non-elided node becomes (part of) a
:class:`~repro.synapse.passes.state.PendingOp` carrying its Table-1
engine and cost-model work items. With fusion enabled, single-consumer
TPC chains — within one lowered composite (e.g. the sub+exp of a
softmax) or across plain elementwise ops — merge into one pending op
so intermediates stay on-chip and HBM traffic is charged only at the
chain edges. Disabled, the pass still runs structurally and produces
one pending op per node (the fusion-off ablation).
"""

from __future__ import annotations

import math

from ...hw.costmodel import EngineKind, OpClass
from ...hw.dtypes import itemsize
from ..graph import Graph, Node
from ..ops import work_item_for
from .base import CompilerPass
from .state import CompilationState, PendingOp

#: op classes eligible for elementwise fusion
FUSABLE_CLASSES = (OpClass.ELEMENTWISE, OpClass.SPECIAL)


def _node_item(state: CompilationState, graph: Graph, node: Node):
    in_shapes = [graph.value(v).shape for v in node.inputs]
    out = graph.value(node.output)
    return work_item_for(
        node.op, in_shapes, out.shape, out.dtype, node.attrs,
        label=node.label(), opdef=state.opdef(node.op),
    )


def _external_read_bytes(
    graph: Graph, node: Node, resolved: tuple[int, ...], internal: set[int]
) -> int:
    """HBM bytes this chain member reads from outside the chain.

    Same accounting as ``WorkItem.bytes_read`` (input numel at the
    output dtype's width), restricted to inputs whose storage is not an
    intermediate of the chain being assembled.
    """
    width = itemsize(graph.value(node.output).dtype)
    total = 0
    for vid, storage in zip(node.inputs, resolved):
        if storage in internal:
            continue
        total += math.prod(graph.value(vid).shape) * width
    return total


def group_nodes(state: CompilationState, *, fuse: bool) -> list[PendingOp]:
    """Build the pending-op list; merge fusable chains when ``fuse``."""
    graph = state.graph
    consumers = graph.consumers()
    alias = state.alias
    pendings: list[PendingOp] = []
    open_chain: PendingOp | None = None

    def close() -> None:
        nonlocal open_chain
        if open_chain is not None:
            pendings.append(open_chain)
            open_chain = None

    for node in graph.nodes:
        if node.nid in state.elided:
            continue
        opdef = state.opdef(node.op)
        engine = state.backend.engine_for(opdef)
        # dependencies point at real storage producers; the work
        # item keeps the node's declared (view-level) shapes
        resolved = tuple(alias.get(v, v) for v in node.inputs)
        item = _node_item(state, graph, node)
        fusable = (
            fuse
            and engine is state.backend.fusion_engine
            and opdef.op_class in FUSABLE_CLASSES
            and opdef.supported
        )
        last = open_chain.nodes[-1] if open_chain is not None else None
        # Fuse within one lowered composite (same src, e.g. the
        # sub+exp of a softmax) or across plain elementwise ops;
        # never across composites — attribution stays truthful.
        src_compatible = last is not None and (
            node.src == last.src
            or (node.src == node.op and last.src == last.op)
        )
        if (
            fusable
            and open_chain is not None
            and open_chain.output_vid in resolved
            and len(consumers[open_chain.output_vid]) == 1
            and src_compatible
            and node.scope == last.scope
        ):
            open_chain.internal.add(open_chain.output_vid)
            open_chain.reads.update(
                v for v in resolved if v not in open_chain.internal
            )
            open_chain.external_read_bytes += _external_read_bytes(
                graph, node, resolved, open_chain.internal
            )
            open_chain.nodes.append(node)
            open_chain.items.append(item)
            continue
        close()
        pending = PendingOp(
            [node], engine, [item], reads=set(resolved),
            external_read_bytes=item.bytes_read,
        )
        if fusable:
            open_chain = pending
        else:
            pendings.append(pending)
    close()
    pendings.sort(key=lambda p: p.nodes[0].nid)
    return pendings


def rebuild_pending(
    state: CompilationState, groups: list[tuple[tuple[int, ...], EngineKind]]
) -> list[PendingOp]:
    """Reconstruct the pending list from cached grouping decisions.

    The cached payload holds only the structural decision — which
    nodes form each pending op, and on what engine. Everything
    geometric (work items, read sets, external-read bytes) is
    recomputed from the *current* graph, mirroring ``group_nodes``'s
    incremental chain construction step for step, so a replayed
    compile is byte-identical to a cold one at any batch/seq point.
    """
    graph = state.graph
    alias = state.alias
    node_of = {n.nid: n for n in graph.nodes}
    pendings: list[PendingOp] = []
    for nids, engine in groups:
        nodes = [node_of[nid] for nid in nids]
        first = nodes[0]
        resolved = tuple(alias.get(v, v) for v in first.inputs)
        item = _node_item(state, graph, first)
        pending = PendingOp(
            [first], engine, [item], reads=set(resolved),
            external_read_bytes=item.bytes_read,
        )
        for node in nodes[1:]:
            resolved = tuple(alias.get(v, v) for v in node.inputs)
            item = _node_item(state, graph, node)
            pending.internal.add(pending.output_vid)
            pending.reads.update(
                v for v in resolved if v not in pending.internal
            )
            pending.external_read_bytes += _external_read_bytes(
                graph, node, resolved, pending.internal
            )
            pending.nodes.append(node)
            pending.items.append(item)
        pendings.append(pending)
    return pendings


class ElementwiseFusionPass(CompilerPass):
    """Group nodes into pending ops, fusing elementwise TPC chains."""

    name = "elementwise_fusion"
    option_flag = "fuse_elementwise"
    # chain decisions read op kinds, engines, consumer counts, and
    # src/scope provenance — the shapes only size the work items,
    # which the replay recomputes from the current graph
    signature_deps = ("structure",)
    incremental = True

    def run(self, state: CompilationState) -> dict:
        """Group with fusion; transforms = nodes absorbed into chains."""
        state.pending = group_nodes(state, fuse=True)
        absorbed = sum(len(p.nodes) - 1 for p in state.pending)
        chains = sum(1 for p in state.pending if len(p.nodes) > 1)
        return {"transforms": absorbed, "chains": chains}

    def record(self, state: CompilationState) -> dict:
        return {"groups": [
            (tuple(n.nid for n in p.nodes), p.engine) for p in state.pending
        ]}

    def replay(self, state: CompilationState, payload: dict) -> dict:
        groups = payload["groups"]
        state.pending = rebuild_pending(state, groups)
        absorbed = sum(len(nids) - 1 for nids, _ in groups)
        chains = sum(1 for nids, _ in groups if len(nids) > 1)
        return {"transforms": absorbed, "chains": chains}

    def run_disabled(self, state: CompilationState) -> dict:
        """Grouping still happens — one pending op per node."""
        state.pending = group_nodes(state, fuse=False)
        return {}
