"""DmaStagingPass: stage values crossing the MME/TPC boundary.

Values produced on one compute engine and consumed on the other
transfer through shared memory; the pass decides, per pending op,
which reads need a DMA op in front of them. Transfers are pipelined
(see :class:`~repro.hw.config.DMAConfig`) and deduplicated per
(value, consumer-engine) pair at emission. Disabling the pass is the
"free interconnect" ablation: producers feed consumers directly.
"""

from __future__ import annotations

from ...hw.costmodel import EngineKind
from .base import CompilerPass
from .state import CompilationState


class DmaStagingPass(CompilerPass):
    """Plan DMA transfers for engine-boundary crossings."""

    name = "dma_staging"
    option_flag = "insert_dma"
    # boundary crossings follow from producer/consumer engines, i.e.
    # op kinds; transfer *sizes* are read at emission from the values
    signature_deps = ("structure",)
    incremental = True

    def record(self, state: CompilationState) -> dict:
        return {"dma_reads": [
            (i, tuple(sorted(p.dma_reads)))
            for i, p in enumerate(state.pending) if p.dma_reads
        ]}

    def replay(self, state: CompilationState, payload: dict) -> dict:
        assert state.pending is not None, "grouping must run before DMA"
        planned: set[tuple[int, EngineKind]] = set()
        for i, vids in payload["dma_reads"]:
            pending = state.pending[i]
            pending.dma_reads = set(vids)
            planned.update((vid, pending.engine) for vid in vids)
        return {"transforms": len(planned)}

    def run(self, state: CompilationState) -> dict:
        """Mark reads needing staging; transforms = distinct DMA ops."""
        assert state.pending is not None, "grouping must run before DMA"
        # transfer engines never stage their own reads; the set is the
        # backend's declaration, not a hardwired engine list
        non_staged = state.backend.non_staged_engines
        producer_engine: dict[int, EngineKind] = {}
        planned: set[tuple[int, EngineKind]] = set()
        for pending in state.pending:
            for vid in pending.reads:
                prod = producer_engine.get(vid)
                if (
                    prod is None  # graph input: already resident in HBM
                    or prod is pending.engine
                    or prod in non_staged
                    or pending.engine in non_staged
                ):
                    continue
                pending.dma_reads.add(vid)
                planned.add((vid, pending.engine))
            producer_engine[pending.output_vid] = pending.engine
        return {"transforms": len(planned)}
