"""Incremental recompilation: a process-wide cache of pass results.

A recipe-cache miss re-runs the whole pipeline even when the new
graph differs from a previously compiled one only in geometry (batch,
sequence length) or in downstream options (memory policy, bucket
size). Most passes do not read what changed: validation, view
elision, fusion grouping, recompile marking, and DMA staging decide
from graph *structure* alone, and lowering is a pure function of the
input graph. This module keys each such pass's recorded effect by the
sub-signature of the inputs it actually reads, so a sweep over batch
x seq x policy replays the structural decisions and re-runs only the
shape-dependent stages (slicing, emission, collective injection,
memory planning).

Keying. Every pass declares ``signature_deps`` — which graph
components (``"structure"``, ``"geometry"``) its decisions read — and
``option_deps``, the :class:`CompilerOptions` fields it consults. A
pass's cache key hashes those components of the graph *as it stands
when the pass runs* (so a rewrite by lowering or slicing
automatically invalidates downstream entries) together with the
pipeline prefix: the ordered ``(pass, enabled, read-options)`` record
of every pass executed so far. The prefix is what makes annotation
chains sound — fusion's grouping depends on elision's alias map, and
both are deterministic functions of the same keyed inputs.

Honesty is enforced two ways: the hypothesis equivalence suite
asserts replayed compilations are byte-identical to cold ones, and
``lint_passes`` flags passes whose declarations drift from what their
source actually reads.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from .base import CompilerPass

#: graph components a pass may declare in ``signature_deps``
SIGNATURE_COMPONENTS = ("structure", "geometry")


class PassResultCache:
    """Bounded LRU of recorded pass effects, shared process-wide.

    Values are the in-memory payloads a pass's ``record`` hook
    returned (id maps, group node-id lists, a lowered ``Graph`` — all
    treated as immutable once stored); ``replay`` applies them to a
    fresh :class:`CompilationState`. Nothing is serialized: unlike the
    recipe cache this tier never touches disk, it only amortizes
    repeated pipeline runs inside one process (a sweep).
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, payload: dict) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)


#: the process-wide cache every PassManager consults
_PASS_CACHE = PassResultCache()


def pass_cache() -> PassResultCache:
    """The process-wide pass-result cache."""
    return _PASS_CACHE


def reset_pass_cache() -> None:
    """Drop every cached pass result (test isolation)."""
    _PASS_CACHE.clear()


def pass_cache_stats() -> dict:
    """Hit/miss counters of the process-wide pass cache."""
    return _PASS_CACHE.info()


def pass_cache_key(
    compiler_pass: "CompilerPass",
    component_sigs: dict[str, str],
    option_values: tuple,
    prefix: tuple[str, ...],
) -> str:
    """Cache key for one pass at one pipeline position.

    ``component_sigs`` holds the current graph's signatures for the
    components the pass declared; ``prefix`` is the executed-pipeline
    record up to and including this pass.
    """
    h = hashlib.sha256()
    h.update(f"pass:{compiler_pass.name}\n".encode())
    for component in compiler_pass.signature_deps:
        h.update(f"{component}:{component_sigs[component]}\n".encode())
    h.update(f"options:{option_values!r}\n".encode())
    h.update(f"prefix:{prefix!r}\n".encode())
    return h.hexdigest()
