"""ViewElisionPass: alias pure-view ops instead of scheduling them.

Reshape, broadcast, and contiguous row slices move no bytes; on an
in-order engine a scheduled zero-cost view still occupies a queue slot
and serializes software pipelines (this single issue is what initially
broke the A6 pipelined-attention extension). The pass records an alias
map (view output -> underlying storage) and the set of elided node
ids; downstream passes resolve reads through the map so dependencies
point at real storage producers while work items keep the node's
declared (view-level) shapes.
"""

from __future__ import annotations

from ...hw.costmodel import OpClass
from .base import CompilerPass
from .state import CompilationState


class ViewElisionPass(CompilerPass):
    """Turn zero-cost view ops into aliases of their source value."""

    name = "view_elision"
    option_flag = "elide_views"
    # view-ness is an op-registry property plus input arity — the
    # alias/elided id maps are pure functions of graph structure
    signature_deps = ("structure",)
    incremental = True

    def record(self, state: CompilationState) -> dict:
        return {"alias": dict(state.alias), "elided": set(state.elided)}

    def replay(self, state: CompilationState, payload: dict) -> dict:
        state.alias.update(payload["alias"])
        state.elided.update(payload["elided"])
        return {"transforms": len(payload["elided"])}

    def run(self, state: CompilationState) -> dict:
        """Populate ``state.alias`` / ``state.elided`` in program order."""
        alias = state.alias
        for node in state.graph.nodes:
            opdef = state.opdef(node.op)
            if (
                opdef.op_class is OpClass.DATA_MOVE
                and not opdef.reads_inputs
                and not opdef.writes_output
                # n-ary reassembly (assemble_rows) is traffic-free but
                # not a view of any single input — it must keep its
                # engine slot so slice dataflow re-joins correctly
                and len(node.inputs) == 1
            ):
                src_vid = node.inputs[0]
                alias[node.output] = alias.get(src_vid, src_vid)
                state.elided.add(node.nid)
        return {"transforms": len(state.elided)}
