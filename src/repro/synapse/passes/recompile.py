"""RecompileInjectionPass: host stalls for poorly supported ops.

The paper's GLU finding (§3.3): SynapseAI meets an op it supports
badly and performs "extra compilation during the execution" — a host
event that stalls everything behind it (Fig 7's GLU bubble). The pass
marks which pending ops must be preceded by such an event, honouring
``recompile_once`` (charge only the first occurrence of each op kind).
Emission materializes the HOST ops; disabling the pass models a
runtime with full kernel coverage.
"""

from __future__ import annotations

from .base import CompilerPass
from .state import CompilationState


class RecompileInjectionPass(CompilerPass):
    """Mark pending ops that trigger a host recompilation stall."""

    name = "recompile_injection"
    option_flag = "inject_recompiles"
    # which ops are poorly supported is an op-registry fact; the
    # penalty magnitude (recompile_penalty_us) is charged at emission
    signature_deps = ("structure",)
    option_deps = ("recompile_once",)
    incremental = True

    def record(self, state: CompilationState) -> dict:
        return {"marked": [
            i for i, p in enumerate(state.pending) if p.needs_recompile
        ]}

    def replay(self, state: CompilationState, payload: dict) -> dict:
        assert state.pending is not None, "grouping must run before recompile"
        for i in payload["marked"]:
            state.pending[i].needs_recompile = True
        return {"transforms": len(payload["marked"])}

    def run(self, state: CompilationState) -> dict:
        """Flag unsupported ops per the ``recompile_once`` policy."""
        assert state.pending is not None, "grouping must run before recompile"
        recompiled: set[str] = set()
        marked = 0
        for pending in state.pending:
            first = pending.nodes[0]
            if state.opdef(first.op).supported:
                continue
            if first.op in recompiled and state.options.recompile_once:
                continue
            recompiled.add(first.op)
            pending.needs_recompile = True
            marked += 1
        return {"transforms": marked}
