"""ValidatePass: SSA + program-order invariants before anything runs.

The IR contract (see :meth:`repro.synapse.graph.Graph.validate`) is
what every later pass assumes: single static assignment and values
produced before use. Catching violations here gives one clear error
instead of a corrupted schedule three passes later.
"""

from __future__ import annotations

from .base import CompilerPass
from .state import CompilationState


class ValidatePass(CompilerPass):
    """Check the input graph's SSA/program-order invariants."""

    name = "validate"
    option_flag = "validate_graph"
    # SSA + program order read op connectivity and value kinds only —
    # never a shape — so a batch/seq re-record revalidates for free
    signature_deps = ("structure",)
    incremental = True

    def run(self, state: CompilationState) -> dict:
        """Raise :class:`~repro.util.errors.GraphError` on a bad graph."""
        state.graph.validate()
        return {"values": len(state.graph.values)}

    def record(self, state: CompilationState) -> dict:
        """Only successful validations are cached (failures raise)."""
        return {"values": len(state.graph.values)}

    def replay(self, state: CompilationState, payload: dict) -> dict:
        """A structurally identical graph is known-valid: skip the walk."""
        return dict(payload)
