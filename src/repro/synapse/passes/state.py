"""Shared mutable state threaded through the compiler pass pipeline.

Every :class:`~repro.synapse.passes.base.CompilerPass` consumes and
produces one :class:`CompilationState`. The state mirrors the stages a
graph moves through inside SynapseAI's Graph Compiler:

``graph`` (the IR, possibly rewritten by lowering) -> ``alias`` /
``elided`` (view elision's annotations) -> ``pending`` (fusion groups
tagged with their engine) -> ``ops`` (the emitted schedule) ->
``memory`` (the liveness plan).

Keeping the intermediate products explicit is the point of the
refactor: each transformation can be toggled, measured, and ablated
independently — the inspectability the paper asks SynapseAI for (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ...hw.backend import Backend, get_backend
from ...hw.config import GaudiConfig
from ...hw.costmodel import EngineKind, WorkItem
from ..graph import Graph, Node
from ..ops import OpDef
from ..ops import op as op_def
from ..schedule import MemoryPlan, ScheduledOp

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..compiler import CompilerOptions


@dataclass
class PendingOp:
    """A compute op being assembled (possibly absorbing fused nodes)."""

    nodes: list[Node]
    engine: EngineKind
    items: list[WorkItem]
    reads: set[int] = field(default_factory=set)
    #: value ids internal to the fused chain (never materialized)
    internal: set[int] = field(default_factory=set)
    #: HBM bytes of every member's chain-external reads (per read, not
    #: deduplicated — mirrors ``WorkItem.bytes_read`` accounting)
    external_read_bytes: int = 0
    #: set by RecompileInjectionPass: emit a host stall before this op
    needs_recompile: bool = False
    #: set by DmaStagingPass: reads that must be staged through a DMA op
    dma_reads: set[int] = field(default_factory=set)

    @property
    def output_vid(self) -> int:
        """Value id produced by the (last node of the) pending op."""
        return self.nodes[-1].output


@dataclass
class CompilationState:
    """Everything a pass may read or write."""

    graph: Graph
    config: GaudiConfig
    options: "CompilerOptions"
    #: the accelerator model compilation targets; passes consult its
    #: placement table and role engines instead of naming EngineKind
    #: members (the ``lint_passes`` backend-coupling rule polices this).
    #: Resolved from ``options.backend`` when not supplied.
    backend: Backend = None  # type: ignore[assignment]
    #: view-output vid -> the underlying storage's vid (ViewElisionPass)
    alias: dict[int, int] = field(default_factory=dict)
    #: node ids elided as pure views (ViewElisionPass)
    elided: set[int] = field(default_factory=set)
    #: fusion groups in program order (ElementwiseFusionPass); ``None``
    #: until the grouping stage has run
    pending: list[PendingOp] | None = None
    #: emitted schedule (EmitSchedulePass); ``None`` until emission
    ops: list[ScheduledOp] | None = None
    #: liveness plan (MemoryPlanningPass)
    memory: MemoryPlan | None = None
    #: compiler statistics; ``stats["passes"]`` is the per-pass report
    stats: dict = field(default_factory=lambda: {"passes": []})
    _opdefs: dict[str, OpDef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend is None:
            self.backend = get_backend(
                getattr(self.options, "backend", "gaudi")
            )

    def opdef(self, name: str) -> OpDef:
        """Memoized registry lookup (one ``op_def`` call per op kind)."""
        cached = self._opdefs.get(name)
        if cached is None:
            cached = self._opdefs[name] = op_def(name)
        return cached

    def unit_count(self) -> int:
        """Size of the representation the pipeline currently holds.

        Graph nodes before grouping, pending groups after fusion,
        scheduled ops after emission — the "nodes in/out" figure each
        pass reports.
        """
        if self.ops is not None:
            return len(self.ops)
        if self.pending is not None:
            return len(self.pending)
        return len(self.graph.nodes)
