"""PipelinePartitionPass: duration-balanced stages + boundary p2p ops.

Runs after collective injection. With ``pp > 1`` the schedule splits
into ``pp`` stages, each living on its own slice of the card pool:

* the **body** — every compute/DMA op plus the TP collectives — is cut
  into ``pp`` contiguous, duration-balanced segments of the emitted
  stream, priced by the same :func:`~repro.synapse.runtime
  .op_duration_us` proxy the runtime uses. The emitted stream is the
  unrolled forward+backward of one microbatch, so a contiguous cut is
  cost-equivalent to a GPipe layer placement for pricing purposes
  (each stage owns a contiguous span of the model's work), without
  pretending to recover layer structure the schedule no longer has;
* the **tail** — the data-parallel gradient all-reduces and everything
  downstream of them (optimizer) — stays resident with the stage that
  produced its inputs (``max`` over dep stages): gradient reduction is
  per-stage in a pipelined run, not a final global phase;
* at each of the ``pp - 1`` boundaries one aggregated ``send``/
  ``recv`` pair carries every value produced at-or-before the cut and
  read after it. Readers on the far side depend on the ``recv``, so
  the point-to-point hop sits on the critical path exactly where the
  activation handoff would.

Stage placement and microbatch count land in ``stats["pipeline"]``
(``stage_of`` aligned with final op indices); the multi-card runtime
re-times the per-stage sub-schedules and composes the GPipe fill/drain
``(m + pp - 1)``-slot timeline from them. Like every NIC op here the
send/recv pairs carry no ``node_ids``, so eager execution skips them
and numerics stay byte-identical to the unpartitioned schedule.
"""

from __future__ import annotations

from ...hw.dtypes import DType, itemsize
from ...util.errors import CompileError
from ..ops import work_item_for
from ..schedule import ScheduledOp
from .base import CompilerPass
from .state import CompilationState


class PipelinePartitionPass(CompilerPass):
    """Split the schedule into ``pp`` stages joined by send/recv ops."""

    name = "pipeline_partition"
    option_flag = "pp"
    option_deps = ("pp", "microbatches")

    def enabled(self, options) -> bool:
        """On only for a real pipeline (``pp`` is an int, not a bool)."""
        return int(getattr(options, self.option_flag, 1) or 0) > 1

    def run(self, state: CompilationState) -> dict:
        from ..runtime import op_duration_us  # no cycle: runtime pulls
        # in the cost model only, never the pass pipeline

        assert state.ops is not None, "emission must run before partition"
        pp = int(state.options.pp)
        microbatches = int(state.options.microbatches)
        if microbatches < pp:
            raise CompileError(
                f"pipeline_partition: microbatches ({microbatches}) must "
                f"be >= pipeline stages ({pp}) to fill the pipeline"
            )
        ops = state.ops
        graph = state.graph

        # The DDP tail (gradient all-reduces + downstream closure,
        # i.e. the optimizer) is placed after the cut, per stage.
        consumers: dict[int, list[int]] = {}
        for op in ops:
            for dep in op.deps:
                consumers.setdefault(dep, []).append(op.index)
        tail: set[int] = set()
        collective_engine = state.backend.collective_engine
        frontier = [
            op.index for op in ops
            if op.engine is collective_engine and op.scope == "ddp"
        ]
        while frontier:
            idx = frontier.pop()
            if idx in tail:
                continue
            tail.add(idx)
            frontier.extend(consumers.get(idx, ()))

        body = [op for op in ops if op.index not in tail]
        if len(body) < pp:
            raise CompileError(
                f"pipeline_partition: schedule has {len(body)} "
                f"partitionable ops, fewer than pp={pp} stages"
            )

        # Contiguous duration-balanced cut of the body stream.
        cost = state.backend.cost_model(state.config)
        durations = [op_duration_us(cost, op) for op in body]
        total = sum(durations)
        stage_of_old: dict[int, int] = {}
        stage = 0
        elapsed = 0.0
        for pos, (op, dur) in enumerate(zip(body, durations)):
            if stage < pp - 1 and elapsed >= total * (stage + 1) / pp:
                stage += 1
            # never let a later stage run out of ops
            stage = max(stage, pp - (len(body) - pos))
            stage_of_old[op.index] = stage
            elapsed += dur
        for op in ops:  # tail: ride with the producing stage
            if op.index in tail:
                stage_of_old[op.index] = max(
                    (stage_of_old[d] for d in op.deps), default=pp - 1
                )

        # Values that must hop boundary b: produced at stage <= b,
        # read at some stage > b.
        producer_stage: dict[int, int] = {}
        last_read_stage: dict[int, int] = {}
        producer_of: dict[int, int] = {}
        for op in ops:
            s = stage_of_old[op.index]
            if op.index not in tail:
                # only body-produced values hop boundaries; the tail's
                # writes (optimizer updates) never feed another stage
                for vid in op.writes:
                    if vid not in producer_of:
                        producer_of[vid] = op.index
                        producer_stage[vid] = s
            for vid in op.reads:
                if vid in producer_of:
                    last_read_stage[vid] = max(
                        last_read_stage.get(vid, 0), s
                    )
        crossing: list[list[int]] = [
            sorted(
                vid for vid, ps in producer_stage.items()
                if ps <= b and last_read_stage.get(vid, 0) > b
            )
            for b in range(pp - 1)
        ]
        boundary_bytes = [
            sum(graph.value(v).nbytes for v in vids) for vids in crossing
        ]

        # Rebuild: body ops stay in order; one send/recv pair lands at
        # each stage cut; the tail follows with deps remapped onto the
        # recv that delivered its inputs' stage.
        index_map: dict[int, int] = {}
        recv_at: dict[int, int] = {}  # boundary -> recv new index
        new_ops: list[ScheduledOp] = []
        stage_final: list[int] = []

        def _append(op: ScheduledOp, s: int) -> None:
            op.index = len(new_ops)
            new_ops.append(op)
            stage_final.append(s)

        def _boundary(b: int) -> None:
            vids = crossing[b]
            elems = max(1, -(-boundary_bytes[b] // itemsize(DType.FP32)))
            deps = sorted(
                {index_map[producer_of[v]] for v in vids}
                | ({recv_at[b - 1]} if b - 1 in recv_at else set())
            )
            send = ScheduledOp(
                index=0, label=f"send:stage{b}",
                engine=collective_engine,
                items=[work_item_for(
                    "send", [(elems,)], (elems,), DType.FP32, {},
                    label=f"send:stage{b}",
                )],
                deps=deps, src="send", scope="pp", reads=list(vids),
            )
            _append(send, b)
            recv = ScheduledOp(
                index=0, label=f"recv:stage{b + 1}",
                engine=collective_engine,
                items=[work_item_for(
                    "recv", [(elems,)], (elems,), DType.FP32, {},
                    label=f"recv:stage{b + 1}",
                )],
                deps=[send.index], src="recv", scope="pp",
                reads=list(vids),
            )
            _append(recv, b + 1)
            recv_at[b] = recv.index

        current = 0
        for op in body:
            s = stage_of_old[op.index]
            while current < s:
                _boundary(current)
                current += 1
            clone = op.clone()
            index_map[op.index] = len(new_ops)
            clone.deps = sorted(
                {index_map[d] for d in op.deps if d in index_map}
                | {
                    recv_at[s - 1] for v in op.reads
                    if s > 0 and producer_stage.get(v, s) < s
                    and (s - 1) in recv_at
                }
            )
            _append(clone, s)
        while current < pp - 1:  # degenerate: empty trailing stages
            _boundary(current)
            current += 1
        for op in ops:
            if op.index not in tail:
                continue
            s = stage_of_old[op.index]
            clone = op.clone()
            index_map[op.index] = len(new_ops)
            clone.deps = sorted(
                {index_map[d] for d in op.deps if d in index_map}
                | {
                    recv_at[s - 1] for v in op.reads
                    if s > 0 and producer_stage.get(v, s) < s
                    and (s - 1) in recv_at
                }
            )
            _append(clone, s)
        state.ops = new_ops

        state.stats["pipeline"] = {
            "pp": pp,
            "microbatches": microbatches,
            "stage_of": stage_final,
            "boundary_bytes": boundary_bytes,
        }
        return {
            "transforms": 2 * (pp - 1),
            "stages": pp,
            "boundary_bytes": sum(boundary_bytes),
        }
