"""CollectiveInjectionPass: bucketed gradient all-reduce for DDP.

Runs after emission. The optimizer marked every parameter gradient on
the graph (``graph.metadata["gradients"]``); this pass partitions those
values into size-bounded buckets — in *producer retirement order*, i.e.
the order backward compute finishes them — and inserts one ``all_reduce``
NIC op per bucket immediately after the bucket's last producer. Each
collective therefore becomes ready as soon as its gradients exist,
letting the multi-card runtime overlap communication with the
remaining backward compute, exactly the mechanism DDP implementations
use. With ``comm_overlap`` off everything lands in one bucket behind
the final gradient — the naive sequential step the analytic
``data_parallel_step_time_us`` models.

The injected schedule is card-count independent (bucketing depends on
``bucket_mb``, not the population), so one compiled recipe serves every
HLS-1 size and the recipe cache keeps hitting across an A4 sweep.
"""

from __future__ import annotations

from ...util.units import MIB
from ..ops import work_item_for
from ..schedule import ScheduledOp
from .base import CompilerPass
from .state import CompilationState


class CollectiveInjectionPass(CompilerPass):
    """Insert bucketed all-reduce ops over marked parameter gradients."""

    name = "collective_injection"
    option_flag = "inject_collectives"

    def run(self, state: CompilationState) -> dict:
        assert state.ops is not None, "emission must run before injection"
        gradients = state.graph.gradients()
        if not gradients:
            return {"transforms": 0, "buckets": 0, "gradient_bytes": 0}

        # Weight gradients the tensor_parallel pass sharded live at
        # 1/tp size per card, so their DP all-reduce moves 1/tp bytes.
        tp_info = state.stats.get("tensor_parallel") or {}
        tp = int(tp_info.get("tp", 1) or 1)
        shard_vids: set[int] = (
            set(tp_info.get("shard_vids", ())) if tp > 1 else set()
        )

        # Resolve marked vids to their storage (fusion stores
        # alias-resolved vids in reads/writes) and to the schedule index
        # that produces them.
        producer_of: dict[int, int] = {}
        for op in state.ops:
            for vid in op.writes:
                producer_of[vid] = op.index
        grads: list[tuple[int, int, int]] = []  # (producer idx, vid, nbytes)
        seen: set[int] = set()
        for vid, _name in gradients:
            storage = state.alias.get(vid, vid)
            idx = producer_of.get(storage)
            if idx is None or storage in seen:
                continue  # not produced on-device (or duplicate alias)
            seen.add(storage)
            nbytes = state.graph.value(storage).nbytes
            if storage in shard_vids:
                nbytes //= tp
            grads.append((idx, storage, nbytes))
        if not grads:
            return {"transforms": 0, "buckets": 0, "gradient_bytes": 0}
        grads.sort()

        # Bucket in retirement order; a new bucket starts when the cap
        # would overflow or the dtype changes (a collective reduces one
        # homogeneous buffer). Overlap off = one unbounded bucket.
        cap = (
            state.options.bucket_mb * MIB
            if state.options.comm_overlap
            else float("inf")
        )
        buckets: list[list[tuple[int, int, int]]] = []
        bucket: list[tuple[int, int, int]] = []
        bucket_bytes = 0
        bucket_dtype = None
        for idx, vid, nbytes in grads:
            dtype = state.graph.value(vid).dtype
            if bucket and (bucket_bytes + nbytes > cap or dtype != bucket_dtype):
                buckets.append(bucket)
                bucket, bucket_bytes = [], 0
            bucket.append((idx, vid, nbytes))
            bucket_bytes += nbytes
            bucket_dtype = dtype
        buckets.append(bucket)

        # Each bucket's all-reduce is anchored right after its last
        # producer. One forward rebuild suffices: deps always point
        # backward, so the index map is complete whenever it is read.
        anchored: dict[int, list[list[tuple[int, int, int]]]] = {}
        for b in buckets:
            anchored.setdefault(max(i for i, _, _ in b), []).append(b)
        index_map: dict[int, int] = {}
        coll_for_vid: dict[int, int] = {}
        new_ops: list[ScheduledOp] = []
        n_collectives = 0
        for op in state.ops:
            old_index = op.index
            # Later readers of a bucketed gradient (the optimizer) must
            # wait for the reduced value.
            extra = {coll_for_vid[v] for v in op.reads if v in coll_for_vid}
            index_map[old_index] = len(new_ops)
            op.index = len(new_ops)
            op.deps = sorted({*(index_map[d] for d in op.deps), *extra})
            new_ops.append(op)
            for b in anchored.get(old_index, ()):
                vids = [v for _, v, _ in b]
                elems = sum(
                    state.graph.value(v).numel // (tp if v in shard_vids else 1)
                    for v in vids
                )
                item = work_item_for(
                    "all_reduce", [(elems,)], (elems,),
                    state.graph.value(vids[0]).dtype, {},
                    label=f"all_reduce:bucket{n_collectives}",
                )
                coll = ScheduledOp(
                    index=len(new_ops),
                    label=f"all_reduce:bucket{n_collectives}",
                    engine=state.backend.collective_engine,
                    items=[item],
                    deps=sorted(index_map[i] for i, _, _ in b),
                    src="all_reduce",
                    scope="ddp",
                    reads=sorted(vids),
                    writes=[],  # in-place reduction over the gradients
                )
                new_ops.append(coll)
                for v in vids:
                    coll_for_vid[v] = coll.index
                n_collectives += 1
        state.ops = new_ops

        total_bytes = sum(nb for _, _, nb in grads)
        state.stats["collectives"] = n_collectives
        state.stats["gradient_bytes"] = total_bytes
        return {
            "transforms": n_collectives,
            "buckets": n_collectives,
            "gradients": len(grads),
            "gradient_bytes": total_bytes,
        }
