"""MemoryPlanningPass: liveness planning, recompute/spill, HBM budget.

Computes the peak HBM footprint by interval liveness over the emitted
schedule (shared with :mod:`repro.synapse.memtrace` through
:mod:`repro.synapse.liveness`): params and inputs are persistent,
activations free after their last consumer, fused-chain internals
never materialize.

With ``memory_policy="none"`` this is the historical validation pass:
schedules whose peak exceeds the budget (``hbm_budget``, defaulting to
the 32 GB capacity) are rejected at compile time when
``enforce_memory`` is set — reproducing why the paper's end-to-end
runs used batch 8 ("due to limited GAUDI memory", §3.4).

The other policies turn the pass into a *planner*. While the peak
exceeds the budget, it picks one value that is live across the peak
but not accessed there, and either

* **spills** it — paired DMA ops: ``spill_out`` right after the
  value's last access before the peak releases the HBM pages,
  ``spill_in`` just before the next consumer restores them. Both are
  unpipelined DMA transfers, so at runtime they drain through the
  shared-HBM :class:`~repro.hw.bandwidth.BandwidthArbiter` and contend
  with compute for bandwidth, while the dependency structure (the
  restore only waits on the offload) lets the lookahead scheduler
  start prefetches early and hide them; or
* **recomputes** it — for values inside a recorded checkpoint segment
  (:meth:`~repro.synapse.graph.Graph.mark_checkpoint`), the producing
  cone is cloned immediately before the next consumer and the original
  store is dropped after its last pre-peak use.

The choice is cost-model driven: each candidate is scored by the
cheaper of its two estimated time costs (two DMA transfers vs. the
uncontended duration of the recompute cone) per byte freed, and the
policy (``recompute`` / ``spill`` / ``auto``) restricts which methods
are eligible. One transform is applied per iteration and liveness is
recomputed, so later decisions see the updated footprint.
"""

from __future__ import annotations

from ...hw.costmodel import CostModel, EngineKind, OpClass, WorkItem
from ...util.errors import CompileError, DeviceMemoryError
from ...util.units import fmt_bytes
from ..liveness import LiveInterval, LivenessResult, compute_liveness
from ..schedule import MemoryPlan, ScheduledOp
from .base import CompilerPass
from .state import CompilationState

#: valid ``CompilerOptions.memory_policy`` values
MEMORY_POLICIES = ("none", "recompute", "spill", "auto")

#: planner iteration cap (one spill pair or recompute segment each)
_MAX_PLAN_STEPS = 1000

#: recompute-cone size cap: past this many re-emitted ops the segment
#: is treated as non-recomputable (spill, if allowed, still applies)
_MAX_CONE_OPS = 16


class MemoryPlanningPass(CompilerPass):
    """Plan the HBM footprint and enforce the capacity budget."""

    name = "memory_planning"
    option_flag = "plan_memory"

    def run(self, state: CompilationState) -> dict:
        """Fill ``state.memory``; plan, then raise if still over budget."""
        assert state.ops is not None, "emission must run before memory"
        graph = state.graph
        options = state.options
        policy = options.memory_policy
        if policy not in MEMORY_POLICIES:
            raise CompileError(
                f"unknown memory_policy {policy!r} "
                f"(choices: {', '.join(MEMORY_POLICIES)})"
            )
        budget = options.hbm_budget or state.backend.memory_capacity_bytes(
            state.config
        )

        live = compute_liveness(graph, state.ops)
        oracle_peak = live.peak_bytes
        n_spill = n_recompute = 0
        spill_bytes = recompute_bytes = 0
        if policy != "none" and live.peak_bytes > budget:
            cost = state.backend.cost_model(state.config)
            droppable = graph.checkpoint_droppable()
            for _ in range(_MAX_PLAN_STEPS):
                if live.peak_bytes <= budget:
                    break
                action = self._plan_step(state, live, policy, droppable, cost)
                if action is None:
                    break
                kind, nbytes = action
                if kind == "spill":
                    n_spill += 1
                    spill_bytes += nbytes
                else:
                    n_recompute += 1
                    recompute_bytes += nbytes
                live = compute_liveness(graph, state.ops)

        state.memory = MemoryPlan(
            persistent_bytes=live.persistent_bytes,
            peak_bytes=live.peak_bytes,
            free_after=dict(live.free_after),
        )
        state.stats["memory"] = {
            "policy": policy,
            "budget_bytes": budget,
            "oracle_peak_bytes": oracle_peak,
            "peak_bytes": live.peak_bytes,
            "spill_ops": n_spill,
            "spill_bytes": spill_bytes,
            "recompute_ops": n_recompute,
            "recompute_bytes": recompute_bytes,
        }
        if options.enforce_memory and live.peak_bytes > budget:
            raise DeviceMemoryError(
                live.peak_bytes,
                budget,
                detail=f"graph {graph.name!r} peak "
                       f"{fmt_bytes(live.peak_bytes)} "
                       f"(memory_policy {policy!r})",
            )
        return {
            "transforms": (
                n_spill + n_recompute
                if policy != "none"
                else len(live.free_after)
            ),
            "peak_bytes": live.peak_bytes,
            "persistent_bytes": live.persistent_bytes,
        }

    # -- planning ----------------------------------------------------------

    def _plan_step(
        self,
        state: CompilationState,
        live: LivenessResult,
        policy: str,
        droppable: set[int],
        cost: CostModel,
    ) -> tuple[str, int] | None:
        """Apply the best single transform at the current peak.

        Returns ``(kind, bytes_freed)`` or None when no candidate at
        the peak can be moved (the persistent set or the peak op's own
        operands are what overflow).
        """
        from ..runtime import op_duration_us

        ops = state.ops
        assert ops is not None
        graph = state.graph
        p = live.peak_index
        if p < 0:
            return None  # the persistent set alone overflows

        reads_pos: dict[int, list[int]] = {}
        first_writer: dict[int, ScheduledOp] = {}
        for pos, op in enumerate(ops):
            for vid in op.reads:
                reads_pos.setdefault(vid, []).append(pos)
            for vid in op.writes:
                first_writer.setdefault(vid, op)

        best: tuple[float, str, int, int, int, list[ScheduledOp] | None] | None = None
        for vid, spans in live.intervals.items():
            nbytes = graph.value(vid).nbytes
            if nbytes <= 0:
                continue
            for span in spans:
                if span.end is None or not span.covers(p):
                    continue
                gap = self._peak_gap(reads_pos, span, p)
                if gap is None:
                    continue
                e0, e1 = gap
                choices: list[tuple[float, str, list[ScheduledOp] | None]] = []
                if policy in ("spill", "auto"):
                    item = WorkItem(
                        f"spill:{vid}", OpClass.DATA_MOVE,
                        bytes_read=nbytes, pipelined=False,
                    )
                    spill_us = 2.0 * cost.time_us(
                        state.backend.dma_engine, item
                    )
                    choices.append((spill_us, "spill", None))
                if policy in ("recompute", "auto") and vid in droppable:
                    cone = self._recompute_cone(
                        graph, live, first_writer, vid, droppable, e1
                    )
                    if cone is not None:
                        rec_us = sum(op_duration_us(cost, c) for c in cone)
                        choices.append((rec_us, "recompute", cone))
                if not choices:
                    continue
                us, kind, cone = min(choices, key=lambda c: c[0])
                score = us / nbytes
                if best is None or score < best[0]:
                    best = (score, kind, vid, e0, e1, cone)

        if best is None:
            return None
        _, kind, vid, e0, e1, cone = best
        nbytes = graph.value(vid).nbytes
        if kind == "spill":
            self._apply_spill(
                ops, graph, vid, e0, e1, state.backend.dma_engine
            )
        else:
            assert cone is not None
            self._apply_recompute(ops, vid, cone, e1)
        return kind, nbytes

    @staticmethod
    def _peak_gap(
        reads_pos: dict[int, list[int]],
        span: LiveInterval,
        p: int,
    ) -> tuple[int, int] | None:
        """The access-free window of ``span`` around the peak.

        Returns ``(e0, e1)``: the last access at or before the peak and
        the next read after it; None when the value is touched at the
        peak itself or has no read on the far side.
        """
        assert span.end is not None
        events = [span.start] + [
            r for r in reads_pos.get(span.vid, ())
            if span.start <= r <= span.end
        ]
        if any(e == p for e in events):
            return None
        before = [e for e in events if e < p]
        after = [e for e in events if e > p]
        if not before or not after:
            return None
        return max(before), min(after)

    @staticmethod
    def _recompute_cone(
        graph,
        live: LivenessResult,
        first_writer: dict[int, ScheduledOp],
        vid: int,
        droppable: set[int],
        at: int,
    ) -> list[ScheduledOp] | None:
        """Compute ops to clone so ``vid`` re-materializes before ``at``.

        Every cone input must be live at the insertion point, a graph
        input, or itself droppable (then its producer joins the cone).
        None when the segment is not recomputable that way.
        """
        graph_inputs = {v.vid for v in graph.graph_inputs()}
        need = [vid]
        cone: list[ScheduledOp] = []
        seen: set[int] = set()
        while need:
            v = need.pop()
            op = first_writer.get(v)
            if op is None or not op.node_ids:
                return None  # no compute producer (input or DMA-born)
            if id(op) in seen:
                continue
            seen.add(id(op))
            cone.append(op)
            if len(cone) > _MAX_CONE_OPS:
                return None
            for r in op.reads:
                if r in graph_inputs or r in live.fused_internal:
                    continue
                spans = live.intervals.get(r, ())
                if any(
                    s.start < at and (s.end is None or s.end >= at)
                    for s in spans
                ):
                    continue  # still resident when the clone runs
                if r in droppable:
                    need.append(r)
                else:
                    return None
        return sorted(cone, key=lambda o: o.index)

    # -- schedule transforms -----------------------------------------------

    @staticmethod
    def _insert(ops: list[ScheduledOp], pos: int, new_op: ScheduledOp) -> None:
        """Insert ``new_op`` at ``pos``; renumber indices and deps."""
        assert all(d < pos for d in new_op.deps), "insertion breaks topology"
        for op in ops:
            op.deps = [d + 1 if d >= pos else d for d in op.deps]
        ops.insert(pos, new_op)
        for i, op in enumerate(ops):
            op.index = i

    @classmethod
    def _apply_spill(
        cls,
        ops: list[ScheduledOp],
        graph,
        vid: int,
        e0: int,
        e1: int,
        dma_engine: EngineKind,
    ) -> None:
        """Offload ``vid`` after position ``e0``, restore before ``e1``."""
        value = graph.value(vid)
        out = ScheduledOp(
            index=0,
            label=f"spill_out:{value.name or vid}",
            engine=dma_engine,
            items=[WorkItem(
                f"spill_out:{vid}", OpClass.DATA_MOVE,
                bytes_read=value.nbytes, pipelined=False,
            )],
            deps=[e0],
            src="spill", scope=ops[e0].scope,
            reads=[vid],
        )
        cls._insert(ops, e0 + 1, out)
        # every position >= e0 + 1 shifted by one: the consumer is at
        # e1 + 1 and the restore goes right before it
        restore = ScheduledOp(
            index=0,
            label=f"spill_in:{value.name or vid}",
            engine=dma_engine,
            items=[WorkItem(
                f"spill_in:{vid}", OpClass.DATA_MOVE,
                bytes_written=value.nbytes, pipelined=False,
            )],
            deps=[out.index],
            src="spill", scope=ops[e1 + 1].scope,
            writes=[vid],
        )
        cls._insert(ops, e1 + 1, restore)
        for op in ops[restore.index + 1:]:
            if vid in op.reads and restore.index not in op.deps:
                op.deps = sorted(set(op.deps) | {restore.index})

    @classmethod
    def _apply_recompute(
        cls,
        ops: list[ScheduledOp],
        vid: int,
        cone: list[ScheduledOp],
        at: int,
    ) -> None:
        """Clone ``cone`` (producers first) immediately before ``at``."""
        pos = at
        for orig in cone:
            clone = orig.clone()
            clone.label = f"recompute:{orig.label}"
            clone.src = "recompute"
            deps = []
            for r in clone.reads:
                for i in range(pos - 1, -1, -1):
                    if r in ops[i].writes:
                        deps.append(i)
                        break
            clone.deps = sorted(set(deps))
            cls._insert(ops, pos, clone)
            pos += 1
        rewritten = {
            w: at + off for off, orig in enumerate(cone) for w in orig.writes
        }
        for op in ops[pos:]:
            extra = {idx for w, idx in rewritten.items() if w in op.reads}
            if extra - set(op.deps):
                op.deps = sorted(set(op.deps) | extra)
