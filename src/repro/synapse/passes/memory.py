"""MemoryPlanningPass: liveness over the schedule, HBM enforcement.

Computes the peak HBM footprint by walking the emitted schedule in
order: params and inputs are persistent, activations free after their
last consumer, fused-chain internals never materialize. Schedules
whose peak exceeds the 32 GB budget are rejected at compile time when
``enforce_memory`` is set — reproducing why the paper's end-to-end
runs used batch 8 ("due to limited GAUDI memory", §3.4).
"""

from __future__ import annotations

from ...util.errors import DeviceMemoryError
from ...util.units import fmt_bytes
from ..schedule import MemoryPlan
from .base import CompilerPass
from .state import CompilationState


class MemoryPlanningPass(CompilerPass):
    """Plan the HBM footprint and enforce the capacity budget."""

    name = "memory_planning"
    option_flag = "plan_memory"

    def run(self, state: CompilationState) -> dict:
        """Fill ``state.memory``; raise on over-budget schedules."""
        assert state.ops is not None, "emission must run before memory"
        graph = state.graph
        persistent = sum(v.nbytes for v in graph.graph_inputs())
        # Values internal to fused chains never materialize in HBM.
        internal = self._fused_internal_values(state)

        last_use: dict[int, int] = {}
        alloc_at: dict[int, int] = {}
        for sched in state.ops:
            for vid in sched.reads:
                last_use[vid] = sched.index
            for vid in sched.writes:
                alloc_at[vid] = sched.index

        graph_input_ids = {v.vid for v in graph.graph_inputs()}
        live = persistent
        peak = persistent
        free_after: dict[int, int] = {}
        frees_at: dict[int, list[int]] = {}
        for vid, idx in last_use.items():
            if vid in graph_input_ids or vid in internal:
                continue
            if vid in alloc_at:
                free_after[vid] = idx
                frees_at.setdefault(idx, []).append(vid)
        for sched in state.ops:
            for vid in sched.writes:
                if vid in internal or vid in graph_input_ids:
                    continue
                live += graph.value(vid).nbytes
            peak = max(peak, live)
            for vid in frees_at.get(sched.index, ()):
                live -= graph.value(vid).nbytes

        state.memory = MemoryPlan(
            persistent_bytes=persistent, peak_bytes=peak,
            free_after=free_after,
        )
        if state.options.enforce_memory and not state.memory.fits(
            state.config.hbm.capacity_bytes
        ):
            raise DeviceMemoryError(
                peak,
                state.config.hbm.capacity_bytes,
                detail=f"graph {graph.name!r} peak {fmt_bytes(peak)}",
            )
        return {
            "transforms": len(free_after),
            "peak_bytes": peak,
            "persistent_bytes": persistent,
        }

    @staticmethod
    def _fused_internal_values(state: CompilationState) -> set[int]:
        node_by_id = {n.nid: n for n in state.graph.nodes}
        internal: set[int] = set()
        for sched in state.ops or []:
            if not sched.is_fused:
                continue
            outs = [node_by_id[nid].output for nid in sched.node_ids]
            internal.update(outs[:-1])  # all but the chain's final output
        return internal
