"""Pass protocol and the PassManager that drives the pipeline.

The GraphCompiler is an ordered list of named passes over a shared
:class:`~repro.synapse.passes.state.CompilationState`. The manager
times every pass, records nodes in/out and transform counts into
``Schedule.stats["passes"]``, and honours the per-pass enable flags on
:class:`~repro.synapse.compiler.CompilerOptions` — which is what makes
single-pass ablations (`--disable-pass`) possible.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ...hw.config import GaudiConfig
from ..graph import Graph
from ..schedule import MemoryPlan, Schedule
from .state import CompilationState

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..compiler import CompilerOptions


class CompilerPass:
    """One named transformation in the compilation pipeline.

    Subclasses set ``name`` (stable, used by stats/CLI) and optionally
    ``option_flag`` — the :class:`CompilerOptions` boolean that gates
    the pass. A pass without a flag always runs (e.g. emission).
    """

    #: stable pass name (stats entries, ``--disable-pass`` argument)
    name: str = "pass"
    #: CompilerOptions field enabling this pass; ``None`` = always on
    option_flag: str | None = None

    def enabled(self, options: "CompilerOptions") -> bool:
        """Whether the pass is enabled under ``options``."""
        if self.option_flag is None:
            return True
        return bool(getattr(options, self.option_flag))

    def run(self, state: CompilationState) -> dict:
        """Apply the transformation; returns pass-specific stats."""
        raise NotImplementedError

    def run_disabled(self, state: CompilationState) -> dict:
        """Keep the pipeline well-formed when the pass is toggled off.

        Most passes simply do nothing; structural passes (grouping)
        still build their output representation without transforming.
        """
        return {}


class PassManager:
    """Runs an ordered pass list and assembles the final Schedule."""

    def __init__(
        self,
        config: GaudiConfig,
        options: "CompilerOptions",
        passes: list[CompilerPass],
    ):
        self.config = config
        self.options = options
        self.passes = passes

    def run(self, graph: Graph) -> Schedule:
        """Compile ``graph`` through every pass; raises on OOM/invalid."""
        state = CompilationState(graph=graph, config=self.config,
                                 options=self.options)
        for compiler_pass in self.passes:
            enabled = compiler_pass.enabled(self.options)
            units_in = state.unit_count()
            t0 = time.perf_counter()
            extra = (
                compiler_pass.run(state) if enabled
                else compiler_pass.run_disabled(state)
            ) or {}
            wall_us = (time.perf_counter() - t0) * 1e6
            entry = {
                "pass": compiler_pass.name,
                "enabled": enabled,
                "units_in": units_in,
                "units_out": state.unit_count(),
                "wall_us": wall_us,
                "transforms": extra.pop("transforms", 0),
            }
            entry.update(extra)
            state.stats["passes"].append(entry)
        return Schedule(
            graph=state.graph,
            ops=state.ops if state.ops is not None else [],
            memory=state.memory or MemoryPlan(0, 0, {}),
            stats=state.stats,
        )
