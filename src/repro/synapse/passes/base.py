"""Pass protocol and the PassManager that drives the pipeline.

The GraphCompiler is an ordered list of named passes over a shared
:class:`~repro.synapse.passes.state.CompilationState`. The manager
times every pass, records nodes in/out and transform counts into
``Schedule.stats["passes"]``, and honours the per-pass enable flags on
:class:`~repro.synapse.compiler.CompilerOptions` — which is what makes
single-pass ablations (`--disable-pass`) possible.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ...hw.config import GaudiConfig
from ..graph import Graph
from ..recipe import geometry_signature, structure_signature
from ..schedule import MemoryPlan, Schedule
from .incremental import pass_cache, pass_cache_key
from .state import CompilationState

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..compiler import CompilerOptions


class CompilerPass:
    """One named transformation in the compilation pipeline.

    Subclasses set ``name`` (stable, used by stats/CLI) and optionally
    ``option_flag`` — the :class:`CompilerOptions` boolean that gates
    the pass. A pass without a flag always runs (e.g. emission).

    Incremental recompilation contract: ``signature_deps`` declares
    which graph components the pass's *decisions* read
    (``"structure"``, ``"geometry"`` — see
    :func:`~repro.synapse.recipe.structure_signature`), and
    ``option_deps`` the :class:`CompilerOptions` fields it consults.
    A pass that additionally sets ``incremental = True`` and
    implements ``record``/``replay`` gets its effect cached by the
    sub-signature of exactly those inputs; declarations are audited by
    :func:`~repro.synapse.lint.lint_passes`.
    """

    #: stable pass name (stats entries, ``--disable-pass`` argument)
    name: str = "pass"
    #: CompilerOptions field enabling this pass; ``None`` = always on
    option_flag: str | None = None
    #: graph components the pass's decisions depend on; the default —
    #: everything — is always sound but never cacheable across sweeps
    signature_deps: tuple[str, ...] = ("structure", "geometry")
    #: CompilerOptions fields the pass reads while running
    option_deps: tuple[str, ...] = ()
    #: whether the pass records a replayable effect (``record``/``replay``)
    incremental: bool = False

    def enabled(self, options: "CompilerOptions") -> bool:
        """Whether the pass is enabled under ``options``."""
        if self.option_flag is None:
            return True
        return bool(getattr(options, self.option_flag))

    def run(self, state: CompilationState) -> dict:
        """Apply the transformation; returns pass-specific stats."""
        raise NotImplementedError

    def run_disabled(self, state: CompilationState) -> dict:
        """Keep the pipeline well-formed when the pass is toggled off.

        Most passes simply do nothing; structural passes (grouping)
        still build their output representation without transforming.
        """
        return {}

    def record(self, state: CompilationState) -> dict | None:
        """The replayable effect of the ``run`` that just executed.

        Called immediately after a successful ``run`` when the pass is
        ``incremental``; the returned payload must let ``replay``
        reproduce the identical state mutation on any state whose
        declared components match. ``None`` opts out of caching this
        particular run.
        """
        return None

    def replay(self, state: CompilationState, payload: dict) -> dict:
        """Apply a previously recorded effect; returns pass stats."""
        raise NotImplementedError

    def option_values(self, options: "CompilerOptions") -> tuple:
        """The declared option fields' current values (key material)."""
        return tuple(getattr(options, f) for f in self.option_deps)


class PassManager:
    """Runs an ordered pass list and assembles the final Schedule."""

    def __init__(
        self,
        config: GaudiConfig,  # or any backend's device config
        options: "CompilerOptions",
        passes: list[CompilerPass],
    ):
        self.config = config
        self.options = options
        self.passes = passes

    def run(self, graph: Graph) -> Schedule:
        """Compile ``graph`` through every pass; raises on OOM/invalid.

        With ``options.incremental`` (the default), passes that declare
        a replayable effect consult the process-wide pass cache: a hit
        replays the recorded decisions against the current state
        (byte-identical to re-running — the cache key covers every
        input the pass reads), a miss runs the pass and records it.
        Each stats entry carries ``incremental: "hit"|"miss"`` for
        cacheable passes and ``""`` otherwise; the compile-level
        summary lands in ``stats["incremental"]``.
        """
        state = CompilationState(graph=graph, config=self.config,
                                 options=self.options)
        use_cache = bool(getattr(self.options, "incremental", False))
        cache = pass_cache() if use_cache else None
        # signatures are per graph *object*: a rewrite (lowering,
        # slicing) swaps the object and naturally invalidates these
        sigs: dict[str, str] = {}
        sig_graph: Graph | None = None
        # ordered (pass, enabled, read-options) record — the pipeline
        # prefix that makes chained annotation decisions part of every
        # downstream key. Seeded with the backend: placement decisions
        # (grouping engines, staging sets) are backend-shaped, so a
        # recorded effect must never replay under another backend.
        prefix: list[str] = [
            f"backend:{getattr(self.options, 'backend', 'gaudi')}"
        ]
        reused = recomputed = 0
        for compiler_pass in self.passes:
            enabled = compiler_pass.enabled(self.options)
            opt_values = compiler_pass.option_values(self.options)
            prefix.append(
                f"{compiler_pass.name}:{enabled}"
                + (f":{opt_values!r}" if enabled else "")
            )
            units_in = state.unit_count()
            cacheable = use_cache and enabled and compiler_pass.incremental
            key = None
            mode = ""
            t0 = time.perf_counter()
            if cacheable:
                if state.graph is not sig_graph:
                    sig_graph = state.graph
                    sigs = {
                        "structure": structure_signature(sig_graph),
                        "geometry": geometry_signature(sig_graph),
                    }
                key = pass_cache_key(
                    compiler_pass, sigs, opt_values, tuple(prefix)
                )
                payload = cache.get(key)
                if payload is not None:
                    extra = compiler_pass.replay(state, payload) or {}
                    mode = "hit"
                    reused += 1
            if not mode:
                extra = (
                    compiler_pass.run(state) if enabled
                    else compiler_pass.run_disabled(state)
                ) or {}
                if cacheable:
                    payload = compiler_pass.record(state)
                    if payload is not None:
                        cache.put(key, payload)
                    mode = "miss"
                    recomputed += 1
            wall_us = (time.perf_counter() - t0) * 1e6
            entry = {
                "pass": compiler_pass.name,
                "enabled": enabled,
                "units_in": units_in,
                "units_out": state.unit_count(),
                "wall_us": wall_us,
                "transforms": extra.pop("transforms", 0),
                "incremental": mode,
            }
            entry.update(extra)
            state.stats["passes"].append(entry)
        if use_cache:
            state.stats["incremental"] = {
                "reused": reused, "recomputed": recomputed,
            }
        return Schedule(
            graph=state.graph,
            ops=state.ops if state.ops is not None else [],
            memory=state.memory or MemoryPlan(0, 0, {}),
            stats=state.stats,
        )
