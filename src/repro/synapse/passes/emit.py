"""EmitSchedulePass: assemble pending ops into the final Schedule.

The always-on assembly stage — the engine-mapping step made concrete.
Walks the pending list in program order and materializes, per pending
op: its host recompilation event (if RecompileInjectionPass marked
one), the DMA ops its staged reads require (deduplicated per
value/engine pair), and the compute op itself with dependency edges
back to producers. The emitted order is exactly what the in-order
runtime issues per engine — program order preserved, as §3.3 observes
SynapseAI doing.
"""

from __future__ import annotations

from ...hw.costmodel import EngineKind, OpClass, WorkItem
from ..schedule import ScheduledOp
from .base import CompilerPass
from .state import CompilationState


class EmitSchedulePass(CompilerPass):
    """Materialize ScheduledOps (compute, DMA, host) from pending ops."""

    name = "emit"

    def run(self, state: CompilationState) -> dict:
        """Build ``state.ops`` and the headline compiler stats."""
        assert state.pending is not None, "grouping must run before emission"
        graph = state.graph
        ops: list[ScheduledOp] = []
        producer_of: dict[int, int] = {}  # value id -> schedule index
        dma_cache: dict[tuple[int, EngineKind], int] = {}
        n_dma = 0
        n_recompile = 0

        for pending in state.pending:
            first = pending.nodes[0]
            deps: list[int] = []

            if pending.needs_recompile:
                host = ScheduledOp(
                    index=len(ops),
                    label=f"recompile:{first.op}",
                    engine=state.backend.host_engine,
                    items=[WorkItem(
                        f"recompile:{first.op}", OpClass.HOST,
                        fixed_time_us=state.options.recompile_penalty_us,
                    )],
                    deps=[],
                    src=first.src, scope=first.scope,
                )
                ops.append(host)
                deps.append(host.index)
                n_recompile += 1

            for vid in sorted(pending.reads):
                prod_idx = producer_of.get(vid)
                if prod_idx is None:
                    continue  # graph input: already resident in HBM
                if vid not in pending.dma_reads:
                    deps.append(prod_idx)
                    continue
                key = (vid, pending.engine)
                if key not in dma_cache:
                    value = graph.value(vid)
                    dma = ScheduledOp(
                        index=len(ops),
                        label=f"dma:{value.name or vid}",
                        engine=state.backend.dma_engine,
                        items=[WorkItem(
                            f"dma:{vid}", OpClass.DATA_MOVE,
                            bytes_read=value.nbytes, pipelined=True,
                        )],
                        deps=[prod_idx],
                        src="dma", scope=first.scope,
                        reads=[vid],
                    )
                    ops.append(dma)
                    dma_cache[key] = dma.index
                    n_dma += 1
                deps.append(dma_cache[key])

            sched = ScheduledOp(
                index=len(ops),
                label=pending.nodes[-1].label()
                if len(pending.nodes) == 1
                else f"fused[{'+'.join(n.op for n in pending.nodes)}]",
                engine=pending.engine,
                items=pending.items,
                deps=sorted(set(deps)),
                src=first.src,
                scope=first.scope,
                reads=sorted(pending.reads),
                writes=[pending.output_vid],
                node_ids=[n.nid for n in pending.nodes],
                external_read_bytes=pending.external_read_bytes,
            )
            ops.append(sched)
            producer_of[pending.output_vid] = sched.index

        state.ops = ops
        state.stats.update({
            "nodes": len(graph.nodes),
            "scheduled_ops": len(ops),
            "fused_chains": sum(1 for o in ops if o.is_fused),
            "dma_transfers": n_dma,
            "recompilations": n_recompile,
        })
        return {"transforms": len(ops)}
