"""AttentionLoweringPass: choose the attention/softmax kernel lowering.

The PR-4 scheduler attacked the Fig-4 softmax bubble by reordering work
around the naive cone; this pass attacks it from the *kernel* side
(GFormer, arXiv 2412.19829). ``CompilerOptions.attention_lowering``
selects between:

``naive``
    The identity (default). The graph is left byte-for-byte untouched,
    so existing recipes, traces and caches are unchanged.
``fused``
    Every last-axis ``softmax`` composite becomes the fused trio
    ``softmax_shift`` -> ``exp_basis_mm`` -> ``softmax_norm``: the
    max-subtract and normalize stay on the TPC, the exponential runs as
    a thin-K matmul on the MME
    (:class:`repro.tpc.kernels.fused_softmax.FusedSoftmaxKernel`).
``windowed``
    Full attention cones (QKᵀ -> scale -> [mask] -> softmax -> V)
    collapse into one banded ``windowed_attention`` TPC op over
    ``CompilerOptions.attention_window`` keys
    (:class:`~repro.tpc.kernels.windowed_attention.WindowedAttentionKernel`).
    The op declares its mask (``mask="sliding_window"``) so schedule
    lint can check coverage.
``flash``
    The same cones collapse into one tiled online-softmax
    ``flash_attention`` MME op
    (:class:`~repro.tpc.kernels.flash_attention.FlashAttentionKernel`).
    The O(seq²) score matrix disappears from the graph entirely, so the
    PR-5 liveness planner never sees its interval and the score-matrix
    HBM traffic drops to zero.

The pass runs before ``tpc_slicing``: in naive mode the slicer still
finds its softmax anchors; in the fused/collapsed modes there is no
naive cone left to slice. The option fields are not runtime-only, so
every non-naive choice re-keys both recipe-cache tiers automatically.

Cone matching is conservative: every interior value must have a single
consumer, carry no gradient mark, and sit on no checkpoint boundary —
anything else keeps the naive cone (correctness first).
"""

from __future__ import annotations

from ...util.errors import ConfigError
from ..graph import Graph, Node
from ..lowering import _Rewriter
from ..ops import EXP_OFFLOAD_BASIS
from .base import CompilerPass
from .state import CompilationState

ATTENTION_LOWERINGS = ("naive", "fused", "windowed", "flash")
#: flash tile geometry (matches the mini-ISA kernel's defaults and the
#: cost-model twin's attr defaults)
FLASH_Q_BLOCK = 128
FLASH_K_BLOCK = 128


def _single_consumer(consumers: dict, vid: int) -> Node | None:
    nodes = consumers.get(vid, ())
    return nodes[0] if len(nodes) == 1 else None


def _protected_vids(graph: Graph) -> set[int]:
    """Values a cone rewrite must not swallow: gradient-marked values
    and checkpoint segment boundaries (droppable interiors are fine —
    the survival remap simply filters vanished vids)."""
    protected = {vid for vid, _ in graph.gradients()}
    for _, inputs, outputs, _ in graph.checkpoints():
        protected.update(inputs)
        protected.update(outputs)
    return protected


def find_attention_cones(graph: Graph) -> list[dict]:
    """Match full attention cones, keyed by their final matmul.

    Pattern: ``matmul(transpose_b)`` -> optional ``smul`` -> optional
    ``add`` of a const mask (treated as the causal mask) -> last-axis
    ``softmax`` -> ``matmul`` with the probabilities on the left.
    Returns one dict per cone: the member node ids, the q/k/v input
    vids, the final node, the scale, and causality.
    """
    consumers = graph.consumers()
    protected = _protected_vids(graph)
    cones = []
    for qk in graph.nodes:
        if qk.op != "matmul":
            continue
        if not qk.attrs.get("transpose_b") or qk.attrs.get("transpose_a"):
            continue
        members = [qk]
        cursor = qk
        scale = 1.0
        causal = False
        nxt = _single_consumer(consumers, cursor.output)
        if nxt is not None and nxt.op == "smul":
            scale = float(nxt.attrs.get("alpha", 1.0))
            members.append(nxt)
            cursor = nxt
            nxt = _single_consumer(consumers, cursor.output)
        if nxt is not None and nxt.op == "add":
            other = [v for v in nxt.inputs if v != cursor.output]
            if len(other) == 1 and graph.value(other[0]).kind == "const":
                causal = True
                members.append(nxt)
                cursor = nxt
                nxt = _single_consumer(consumers, cursor.output)
            else:
                continue
        if nxt is None or nxt.op != "softmax":
            continue
        rank = len(graph.value(nxt.output).shape)
        if nxt.attrs.get("axis", -1) not in (-1, rank - 1):
            continue
        members.append(nxt)
        pv = _single_consumer(consumers, nxt.output)
        if (
            pv is None or pv.op != "matmul"
            or pv.inputs[0] != nxt.output
            or pv.attrs.get("transpose_a") or pv.attrs.get("transpose_b")
        ):
            continue
        q_vid, k_vid = qk.inputs
        v_vid = pv.inputs[1]
        q, k, v = (graph.value(x) for x in (q_vid, k_vid, v_vid))
        # the fused op needs exact (non-broadcast) batch agreement and
        # square attention — anything else keeps the naive cone
        if q.shape[:-2] != k.shape[:-2] or q.shape[:-2] != v.shape[:-2]:
            continue
        if q.shape[-2] != k.shape[-2]:
            continue
        if any(n.output in protected for n in members):
            continue
        members.append(pv)
        cones.append({
            "members": members,
            "final": pv,
            "q": q_vid, "k": k_vid, "v": v_vid,
            "scale": scale, "causal": causal,
        })
    return cones


class AttentionLoweringPass(CompilerPass):
    """Rewrite softmax/attention cones per the selected kernel pack."""

    name = "attention_lowering"
    # Always runs; "naive" is the identity, so there is nothing to
    # disable (mirrors the emit stage). The declared option_deps put
    # the kernel choice into every downstream incremental-cache key.
    option_flag = None
    signature_deps = ("structure", "geometry")
    option_deps = ("attention_lowering", "attention_window")

    def run(self, state: CompilationState) -> dict:
        mode = state.options.attention_lowering
        if mode not in ATTENTION_LOWERINGS:
            raise ConfigError(
                f"unknown attention_lowering {mode!r}; choices: "
                f"{', '.join(ATTENTION_LOWERINGS)}"
            )
        window = int(state.options.attention_window)
        if window < 1:
            raise ConfigError(f"attention_window must be >= 1, got {window}")
        if mode == "naive":
            return {"transforms": 0, "mode": mode}
        if mode == "fused":
            return self._rewrite_fused(state)
        return self._rewrite_cones(state, mode, window)

    def _rewrite_fused(self, state: CompilationState) -> dict:
        graph = state.graph
        targets = {
            node.nid for node in graph.nodes
            if node.op == "softmax"
        }
        if not targets:
            return {"transforms": 0, "mode": "fused"}
        rw = _Rewriter(graph)
        for node in graph.nodes:
            if node.nid not in targets:
                rw.copy_node(node)
                continue
            x = rw.map_value(node.inputs[0])
            axis = node.attrs.get("axis", -1)
            src, scope = node.op, node.scope
            shift = rw.emit("softmax_shift", [x], attrs={"axis": axis},
                            src=src, scope=scope)
            e = rw.emit(
                "exp_basis_mm", [shift],
                attrs={"axis": axis, "basis": EXP_OFFLOAD_BASIS},
                src=src, scope=scope,
            )
            out = rw.emit("softmax_norm", [e], attrs={"axis": axis},
                          src=src, scope=scope)
            rw.vmap[node.output] = out.vid
        self._finish(state, rw)
        return {"transforms": len(targets), "mode": "fused"}

    def _rewrite_cones(self, state: CompilationState, mode: str,
                       window: int) -> dict:
        graph = state.graph
        cones = find_attention_cones(graph)
        if not cones:
            return {"transforms": 0, "mode": mode}
        interior = {
            n.nid for cone in cones for n in cone["members"]
            if n is not cone["final"]
        }
        final = {cone["final"].nid: cone for cone in cones}
        rw = _Rewriter(graph)
        for node in graph.nodes:
            if node.nid in interior:
                continue  # swallowed into the fused op (masks included)
            cone = final.get(node.nid)
            if cone is None:
                rw.copy_node(node)
                continue
            q = rw.map_value(cone["q"])
            k = rw.map_value(cone["k"])
            v = rw.map_value(cone["v"])
            attrs: dict = {"scale": cone["scale"], "causal": cone["causal"]}
            if mode == "windowed":
                op_name = "windowed_attention"
                attrs["window"] = window
                attrs["mask"] = "sliding_window"
            else:
                op_name = "flash_attention"
                attrs["q_block"] = FLASH_Q_BLOCK
                attrs["k_block"] = FLASH_K_BLOCK
            out = rw.emit(op_name, [q, k, v], attrs=attrs,
                          src="softmax", scope=node.scope)
            rw.vmap[node.output] = out.vid
        self._finish(state, rw)
        return {"transforms": len(cones), "mode": mode}

    @staticmethod
    def _finish(state: CompilationState, rw: _Rewriter) -> None:
        """Carry gradient/checkpoint marks over and install the graph.

        Same survival rules as :func:`repro.synapse.lowering.lower_graph`:
        marks on values the rewrite dropped (cone interiors, unused mask
        consts) are filtered out by the vid remap.
        """
        graph = state.graph
        for vid, param_name in graph.gradients():
            new_vid = rw.vmap.get(vid)
            if new_vid is not None:
                rw.new.mark_gradient(new_vid, param_name)
        for label, inputs, outputs, droppable in graph.checkpoints():
            rw.new.mark_checkpoint(
                label,
                [rw.vmap[v] for v in inputs if v in rw.vmap],
                [rw.vmap[v] for v in outputs if v in rw.vmap],
                sorted(rw.vmap[v] for v in droppable if v in rw.vmap),
            )
        rw.new.validate()
        state.graph = rw.new
