"""LowerCompositesPass: expand composite ops into TPC primitives.

Wraps :func:`repro.synapse.lowering.lower_graph` as a pipeline stage.
Softmax becoming max/sub/exp/sum/div (all ``src="softmax"``) is what
lets the profiler attribute Fig 4's ">80% of TPC busy time" back to
the composite. When the pass is disabled, composite ops are a compile
error — nothing downstream knows how to schedule them.

Graphs that contain no composites skip the rewrite entirely (the seed
compiler copied the whole graph regardless), which is one of the wins
of making the stage explicit.
"""

from __future__ import annotations

from ...util.errors import CompileError
from ..lowering import lower_graph
from .base import CompilerPass
from .state import CompilationState


class LowerCompositesPass(CompilerPass):
    """Expand composite ops (softmax, log_softmax) into primitives."""

    name = "lower_composites"
    option_flag = "lower_composites"

    @staticmethod
    def _composites(state: CompilationState) -> list[str]:
        return [
            node.op for node in state.graph.nodes
            if state.opdef(node.op).composite
        ]

    def run(self, state: CompilationState) -> dict:
        """Rewrite the graph if it holds composites; no-op otherwise."""
        composites = self._composites(state)
        if composites:
            state.graph = lower_graph(state.graph)
        return {"transforms": len(composites)}

    def run_disabled(self, state: CompilationState) -> dict:
        """With lowering off, any composite op is unschedulable."""
        composites = self._composites(state)
        if composites:
            raise CompileError(
                f"composite op {composites[0]!r} present but lowering "
                "is disabled"
            )
        return {}
