"""LowerCompositesPass: expand composite ops into TPC primitives.

Wraps :func:`repro.synapse.lowering.lower_graph` as a pipeline stage.
Softmax becoming max/sub/exp/sum/div (all ``src="softmax"``) is what
lets the profiler attribute Fig 4's ">80% of TPC busy time" back to
the composite. When the pass is disabled, composite ops are a compile
error — nothing downstream knows how to schedule them.

Graphs that contain no composites skip the rewrite entirely (the seed
compiler copied the whole graph regardless), which is one of the wins
of making the stage explicit.
"""

from __future__ import annotations

from ...util.errors import CompileError
from ..lowering import lower_graph
from .base import CompilerPass
from .state import CompilationState


class LowerCompositesPass(CompilerPass):
    """Expand composite ops (softmax, log_softmax) into primitives."""

    name = "lower_composites"
    option_flag = "lower_composites"
    # the rewrite embeds concrete shapes in the expanded primitives,
    # so the cache key covers the full graph; reuse kicks in when only
    # downstream options change (policy/bucket sweep points), sharing
    # the lowered graph the way Schedule.clone already shares graphs
    signature_deps = ("structure", "geometry")
    incremental = True
    #: composites found by the most recent ``run`` (record's stats)
    _last_composites = 0

    def record(self, state: CompilationState) -> dict:
        return {
            "graph": state.graph if self._last_composites else None,
            "composites": self._last_composites,
        }

    def replay(self, state: CompilationState, payload: dict) -> dict:
        if payload["graph"] is not None:
            state.graph = payload["graph"]
        return {"transforms": payload["composites"]}

    @staticmethod
    def _composites(state: CompilationState) -> list[str]:
        return [
            node.op for node in state.graph.nodes
            if state.opdef(node.op).composite
        ]

    def run(self, state: CompilationState) -> dict:
        """Rewrite the graph if it holds composites; no-op otherwise."""
        composites = self._composites(state)
        if composites:
            state.graph = lower_graph(state.graph)
        self._last_composites = len(composites)
        return {"transforms": len(composites)}

    def run_disabled(self, state: CompilationState) -> dict:
        """With lowering off, any composite op is unschedulable."""
        composites = self._composites(state)
        if composites:
            raise CompileError(
                f"composite op {composites[0]!r} present but lowering "
                "is disabled"
            )
        return {}
