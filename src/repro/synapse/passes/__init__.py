"""The GraphCompiler's pass pipeline.

One module per transformation, each a named
:class:`~repro.synapse.passes.base.CompilerPass` over a shared
:class:`~repro.synapse.passes.state.CompilationState`:

``validate`` -> ``attention_lowering`` -> ``tpc_slicing`` ->
``lower_composites`` ->
``view_elision`` -> ``elementwise_fusion`` -> ``recompile_injection``
-> ``dma_staging`` -> ``emit`` -> ``tensor_parallel`` ->
``collective_injection`` -> ``pipeline_partition`` ->
``memory_planning``

Every pass reports nodes in/out, wall-clock, and transform counts into
``Schedule.stats["passes"]``, and (except emission) can be disabled
through :class:`~repro.synapse.compiler.CompilerOptions` — the
per-stage toggling and attribution the paper wishes SynapseAI's black
box offered (§4).
"""

from .attention import AttentionLoweringPass
from .base import CompilerPass, PassManager
from .collective import CollectiveInjectionPass
from .incremental import (
    PassResultCache,
    pass_cache,
    pass_cache_stats,
    reset_pass_cache,
)
from .dma import DmaStagingPass
from .emit import EmitSchedulePass
from .fusion import ElementwiseFusionPass
from .lower import LowerCompositesPass
from .memory import MemoryPlanningPass
from .pipeline import PipelinePartitionPass
from .recompile import RecompileInjectionPass
from .tensor_parallel import TensorParallelPass
from .slicing import TpcSlicingPass
from .state import CompilationState, PendingOp
from .validate import ValidatePass
from .views import ViewElisionPass

#: pass name -> the CompilerOptions flag that enables it (the ``emit``
#: assembly stage has no flag and cannot be disabled)
PASS_OPTION_FLAGS: dict[str, str] = {
    ValidatePass.name: ValidatePass.option_flag,
    TpcSlicingPass.name: TpcSlicingPass.option_flag,
    LowerCompositesPass.name: LowerCompositesPass.option_flag,
    ViewElisionPass.name: ViewElisionPass.option_flag,
    ElementwiseFusionPass.name: ElementwiseFusionPass.option_flag,
    RecompileInjectionPass.name: RecompileInjectionPass.option_flag,
    DmaStagingPass.name: DmaStagingPass.option_flag,
    TensorParallelPass.name: TensorParallelPass.option_flag,
    CollectiveInjectionPass.name: CollectiveInjectionPass.option_flag,
    PipelinePartitionPass.name: PipelinePartitionPass.option_flag,
    MemoryPlanningPass.name: MemoryPlanningPass.option_flag,
}


def default_passes() -> list[CompilerPass]:
    """The standard pipeline, in order (fresh instances)."""
    return [
        ValidatePass(),
        # kernel-choice rewrite first: in naive mode it is the identity;
        # in fused/windowed/flash modes the slicer below finds no naive
        # softmax cone left to slice (kernel-side vs scheduler-side).
        AttentionLoweringPass(),
        TpcSlicingPass(),
        LowerCompositesPass(),
        ViewElisionPass(),
        ElementwiseFusionPass(),
        RecompileInjectionPass(),
        DmaStagingPass(),
        EmitSchedulePass(),
        TensorParallelPass(),
        CollectiveInjectionPass(),
        PipelinePartitionPass(),
        MemoryPlanningPass(),
    ]


__all__ = [
    "AttentionLoweringPass",
    "CollectiveInjectionPass",
    "CompilationState",
    "CompilerPass",
    "DmaStagingPass",
    "ElementwiseFusionPass",
    "EmitSchedulePass",
    "LowerCompositesPass",
    "MemoryPlanningPass",
    "PASS_OPTION_FLAGS",
    "PassManager",
    "PassResultCache",
    "PendingOp",
    "PipelinePartitionPass",
    "TensorParallelPass",
    "pass_cache",
    "pass_cache_stats",
    "reset_pass_cache",
    "RecompileInjectionPass",
    "TpcSlicingPass",
    "ValidatePass",
    "ViewElisionPass",
    "default_passes",
]
