"""TpcSlicingPass: split large batch-parallel TPC ops into row slices.

The paper's central bubble (Fig. 4) is a serial
``matmul -> softmax -> matmul`` chain: while the monolithic softmax
runs on the TPC, the MME sits idle. But softmax (and the feature-map
exponentials of Performer, and most activations) is *row-parallel*
along dim -2 — every row block is independent — so the op can be split
into ``k`` slices whose producers and consumers split with it:

    QK -> softmax -> AV            becomes
    QK_0..QK_k-1 -> softmax_0..softmax_k-1 -> AV_0..AV_k-1

Now ``AV_i`` only waits for ``softmax_i``, and the MME computes
``QK_{i+1}`` while the TPC runs ``softmax_i`` — the software pipeline
A6 built by hand at the source level, derived automatically by the
compiler. This is exactly the scheduling direction GFormer (Zhang et
al., 2024) validated on real Gaudi hardware.

Mechanics:

* **Chains.** The pass finds maximal single-consumer chains of
  row-parallel ops anchored on an expensive TPC op (softmax / special
  unary / activation whose cost-model estimate exceeds
  ``tpc_slice_min_us``). Chains extend through same-shape unaries,
  row-compatible binaries (the other operand is row-sliced when it
  shares the row dim, or broadcast), and matmuls whose left operand
  carries the rows — which is what pulls the surrounding MME work into
  the pipeline. Dropout is excluded (its RNG mask is full-shape
  dependent, slicing would change numerics), as are reductions and
  anything reshaping the row axis.
* **Slice count.** ``k`` is cost-model driven: the chain's TPC time
  divided by ``20 x`` the TPC launch overhead bounds the overhead of
  extra launches to ~5%, clamped to [2, 8] and rounded down to a
  divisor of the row count (row blocks stay equal and >= 2 rows).
* **Emission** is stage-major: all ``k`` slices of a chain stage are
  emitted before the next stage, so per-engine in-order issue already
  pipelines (the MME's queue reads ``QK_0..QK_k-1`` before any
  ``AV_i``); the lookahead scheduler then closes the remaining
  bubbles.
* **Reassembly** is a zero-traffic n-ary ``assemble_rows`` node
  (slices compute directly into the output buffer); the lint rule
  ``slice-reassembly`` checks every assembled subgraph covers the
  original tensor exactly.

Runs before ``lower_composites`` so a softmax is sliced as one node
and each slice then lowers with ``src="softmax"`` intact — trace
attribution (Fig. 4's "softmax > 80% of TPC time") survives slicing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...hw.costmodel import CostModel
from ..graph import Graph, Node, TensorValue
from ..lowering import _Rewriter
from ..ops import OpDef, work_item_for
from .base import CompilerPass
from .state import CompilationState

#: ops a slice chain may anchor on (expensive, row-parallel TPC work)
ANCHOR_OPS = frozenset({
    "softmax", "log_softmax", "exp", "elu", "gelu", "sigmoid", "tanh",
    "relu", "leaky_relu",
})

#: same-shape unary ops a chain may extend through (dropout excluded:
#: its RNG mask depends on the full tensor shape; glu is unsupported;
#: cast excluded: the rewriter types slice outputs from their input)
_UNARY_CHAIN_OPS = frozenset({
    "exp", "log", "sqrt", "rsqrt", "sigmoid", "tanh", "gelu", "elu",
    "relu", "leaky_relu", "neg", "abs", "square", "step_ge0",
    "smul", "sadd", "spow",
})

#: binary elementwise ops a chain may extend through
_BINARY_CHAIN_OPS = frozenset({"add", "sub", "mul", "div", "maximum"})

#: slices-per-chain cap (8 matches the TPC core count: more slices
#: than cores cannot add TPC parallelism, only launch overhead)
_MAX_SLICES = 8

#: launch-overhead budget: chain TPC time must amortize ~20 launches
#: per slice for the added serial tails to stay under a few percent
_LAUNCH_AMORTIZATION = 20.0


@dataclass
class _Chain:
    """One sliceable single-consumer chain (top..bottom, program order)."""

    nodes: list[Node]
    #: node id -> input position the carried (sliced) value flows through
    carried_pos: dict[int, int]
    rows: int
    k: int


class TpcSlicingPass(CompilerPass):
    """Split large row-parallel TPC chains into pipelined slices."""

    name = "tpc_slicing"
    option_flag = "tpc_slice_ops"

    def run(self, state: CompilationState) -> dict:
        """Rewrite ``state.graph`` with every profitable chain sliced."""
        if not state.backend.supports_tpc_slicing:
            # the split models the MME/TPC ping-pong; a single compute
            # grid has no cross-engine bubble for slices to fill
            return self.run_disabled(state)
        cost = state.backend.cost_model(state.config)
        min_us = float(state.options.tpc_slice_min_us)
        chains = _find_chains(state.graph, state.backend, cost, min_us)
        stats = {
            "transforms": len(chains),
            "sliced_chains": len(chains),
            "slices_created": sum(c.k for c in chains),
            "sliced_nodes": sum(len(c.nodes) for c in chains),
        }
        state.stats["overlap"] = {
            "sliced_chains": stats["sliced_chains"],
            "slices_created": stats["slices_created"],
            "sliced_nodes": stats["sliced_nodes"],
        }
        if chains:
            state.graph = _apply_chains(state.graph, chains)
        return stats

    def run_disabled(self, state: CompilationState) -> dict:
        """Disabled slicing still reports empty overlap stats."""
        state.stats["overlap"] = {
            "sliced_chains": 0, "slices_created": 0, "sliced_nodes": 0,
        }
        return {}


# -- chain discovery ---------------------------------------------------------


def _member_pos(
    graph: Graph,
    node: Node,
    batch: tuple[int, ...],
    rows: int,
    want_vid: int | None = None,
) -> int | None:
    """Input position the rows flow through if ``node`` can join a
    chain over ``(batch, rows)``; None when it cannot.

    ``want_vid`` (downstream extension) additionally requires the
    carried input to be that specific value.
    """
    out = graph.value(node.output).shape
    if len(out) < 2 or out[:-2] != batch or out[-2] != rows:
        return None
    if node.op in ("softmax", "log_softmax"):
        axis = node.attrs.get("axis", -1)
        if axis not in (-1, len(out) - 1):
            return None
        pos = 0
    elif node.op in _UNARY_CHAIN_OPS:
        if graph.value(node.inputs[0]).shape != out:
            return None
        pos = 0
    elif node.op in _BINARY_CHAIN_OPS:
        pos = None
        for p in (0, 1):
            carried = graph.value(node.inputs[p]).shape
            other = graph.value(node.inputs[1 - p]).shape
            if carried != out or not _side_sliceable(other, rows):
                continue
            if want_vid is not None and node.inputs[p] != want_vid:
                continue
            pos = p
            break
        if pos is None:
            return None
    elif node.op == "matmul":
        if node.attrs.get("transpose_a"):
            return None
        a = graph.value(node.inputs[0]).shape
        if a[:-2] != batch or a[-2] != rows:
            return None
        pos = 0
    else:
        return None
    if want_vid is not None and node.inputs[pos] != want_vid:
        return None
    return pos


def _side_sliceable(shape: tuple[int, ...], rows: int) -> bool:
    """The non-carried binary operand: row-sliceable or broadcast."""
    if len(shape) < 2:
        return True
    return shape[-2] in (1, rows)


def _find_chains(
    graph: Graph, backend, cost: CostModel, min_us: float
) -> list[_Chain]:
    """Maximal profitable slice chains, disjoint, in program order."""
    consumers: dict[int, list[Node]] = {}
    producer_of: dict[int, Node] = {}
    for node in graph.nodes:
        producer_of[node.output] = node
        for vid in node.inputs:
            consumers.setdefault(vid, []).append(node)
    marked = {vid for vid, _ in graph.gradients()}
    opdefs: dict[str, OpDef] = {}

    def tpc_us(node: Node) -> float:
        from ..ops import op as op_def

        opdef = opdefs.setdefault(node.op, op_def(node.op))
        vector = backend.vector_engine
        if backend.engine_for(opdef) is not vector:
            return 0.0
        out = graph.value(node.output)
        item = work_item_for(
            node.op, [graph.value(v).shape for v in node.inputs],
            out.shape, out.dtype, node.attrs, opdef=opdef,
        )
        return cost.time_us(vector, item)

    used: set[int] = set()
    chains: list[_Chain] = []
    for node in graph.nodes:
        if node.nid in used or node.op not in ANCHOR_OPS:
            continue
        out = graph.value(node.output).shape
        if len(out) < 2 or out[-2] < 4:
            continue
        batch, rows = out[:-2], out[-2]
        if _member_pos(graph, node, batch, rows) is None:
            continue
        if tpc_us(node) < min_us:
            continue
        chain, carried_pos = _grow_chain(
            graph, consumers, producer_of, node, batch, rows,
            used, marked,
        )
        chain_tpc_us = sum(tpc_us(n) for n in chain)
        k = _pick_slices(chain_tpc_us, rows, cost.fused_launch_us)
        if k is None:
            continue
        used.update(n.nid for n in chain)
        chains.append(_Chain(chain, carried_pos, rows, k))
    return chains


def _grow_chain(
    graph: Graph,
    consumers: dict[int, list[Node]],
    producer_of: dict[int, Node],
    anchor: Node,
    batch: tuple[int, ...],
    rows: int,
    used: set[int],
    marked: set[int],
) -> tuple[list[Node], dict[int, int]]:
    """Extend ``anchor`` to a maximal single-consumer chain."""
    pos = _member_pos(graph, anchor, batch, rows)
    assert pos is not None  # the caller checked
    chain = [anchor]
    carried_pos = {anchor.nid: pos}
    # upstream: follow the carried input to its producer
    cur = anchor
    while True:
        vid = cur.inputs[carried_pos[cur.nid]]
        prod = producer_of.get(vid)
        if (
            prod is None
            or prod.nid in used
            or len(consumers.get(vid, [])) != 1
            or vid in marked
        ):
            break
        p = _member_pos(graph, prod, batch, rows)
        if p is None:
            break
        chain.insert(0, prod)
        carried_pos[prod.nid] = p
        cur = prod
    # downstream: follow the sole consumer of the chain value
    cur = chain[-1]
    while True:
        cons = consumers.get(cur.output, [])
        if len(cons) != 1 or cur.output in marked:
            break
        nxt = cons[0]
        if nxt.nid in used:
            break
        p = _member_pos(graph, nxt, batch, rows, want_vid=cur.output)
        if p is None:
            break
        chain.append(nxt)
        carried_pos[nxt.nid] = p
        cur = nxt
    return chain, carried_pos


def _pick_slices(
    chain_tpc_us: float, rows: int, launch_us: float
) -> int | None:
    """Cost-model slice count: amortize launches, divide rows evenly.

    None means the chain is not worth slicing (rows too few to split
    into blocks of >= 2).
    """
    if launch_us > 0:
        budget = int(chain_tpc_us / (launch_us * _LAUNCH_AMORTIZATION))
    else:
        budget = _MAX_SLICES
    kmax = min(_MAX_SLICES, max(2, budget))
    for k in range(kmax, 1, -1):
        if rows % k == 0 and rows // k >= 2:
            return k
    return None


# -- graph rewrite -----------------------------------------------------------


def _apply_chains(graph: Graph, chains: list[_Chain]) -> Graph:
    """Copy ``graph`` with every chain replaced by its sliced form."""
    rw = _Rewriter(graph)
    by_last = {chain.nodes[-1].nid: chain for chain in chains}
    members = {n.nid for c in chains for n in c.nodes}
    side_cache: dict[tuple[int, int, int], TensorValue] = {}
    for node in graph.nodes:
        chain = by_last.get(node.nid)
        if chain is not None:
            _emit_chain(rw, graph, chain, side_cache)
        elif node.nid not in members:
            rw.copy_node(node)
        # interior chain members are emitted by their chain's last node
    for vid, param_name in graph.gradients():
        new_vid = rw.vmap.get(vid)
        if new_vid is not None:
            rw.new.mark_gradient(new_vid, param_name)
    # Checkpoint segments survive slicing; values a chain rewrite
    # dissolved (per-slice interiors) simply drop out of the sets.
    for label, inputs, outputs, droppable in graph.checkpoints():
        rw.new.mark_checkpoint(
            label,
            [rw.vmap[v] for v in inputs if v in rw.vmap],
            [rw.vmap[v] for v in outputs if v in rw.vmap],
            [rw.vmap[v] for v in droppable if v in rw.vmap],
        )
    rw.new.validate()
    return rw.new


def _emit_chain(
    rw: _Rewriter,
    graph: Graph,
    chain: _Chain,
    side_cache: dict[tuple[int, int, int], TensorValue],
) -> None:
    """Emit the sliced chain, stage-major, then reassemble.

    Emission happens at the position of the chain's *last* node: every
    chain input was produced before the first member, and the chain's
    output is only consumed after the last, so the splice preserves
    topological order.
    """
    step = chain.rows // chain.k
    bounds = [(i * step, (i + 1) * step) for i in range(chain.k)]
    top = chain.nodes[0]
    top_vid = top.inputs[chain.carried_pos[top.nid]]
    carried = [
        _slice_of(rw, top_vid, lo, hi, side_cache, scope=top.scope)
        for lo, hi in bounds
    ]
    for node in chain.nodes:
        pos = chain.carried_pos[node.nid]
        outs = []
        for i, (lo, hi) in enumerate(bounds):
            inputs = []
            for j, vid in enumerate(node.inputs):
                if j == pos:
                    inputs.append(carried[i])
                else:
                    inputs.append(_side_operand(
                        rw, graph, node, vid, lo, hi, chain.rows,
                        side_cache,
                    ))
            outs.append(rw.emit(
                node.op, inputs, attrs=node.attrs,
                src=node.src, scope=node.scope,
            ))
        carried = outs
    last = chain.nodes[-1]
    assembled = rw.emit(
        "assemble_rows", carried, src="tpc_slice", scope=last.scope,
    )
    # downstream consumers of the chain output now read the assembly
    rw.vmap[last.output] = assembled.vid


def _side_operand(
    rw: _Rewriter,
    graph: Graph,
    node: Node,
    vid: int,
    lo: int,
    hi: int,
    rows: int,
    side_cache: dict[tuple[int, int, int], TensorValue],
) -> TensorValue:
    """The non-carried operand for one slice: row-sliced or whole."""
    shape = graph.value(vid).shape
    if (
        node.op in _BINARY_CHAIN_OPS
        and len(shape) >= 2
        and shape[-2] == rows
    ):
        return _slice_of(rw, vid, lo, hi, side_cache, scope=node.scope)
    return rw.map_value(vid)


def _slice_of(
    rw: _Rewriter,
    vid: int,
    lo: int,
    hi: int,
    side_cache: dict[tuple[int, int, int], TensorValue],
    *,
    scope: str,
) -> TensorValue:
    """A (cached) ``slice_rows`` of old-graph value ``vid``."""
    key = (vid, lo, hi)
    if key not in side_cache:
        side_cache[key] = rw.emit(
            "slice_rows", [rw.map_value(vid)],
            attrs={"lo": lo, "hi": hi}, src="tpc_slice", scope=scope,
        )
    return side_cache[key]
