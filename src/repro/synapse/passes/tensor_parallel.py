"""TensorParallelPass: Megatron-style weight-matmul sharding.

Runs after emission, before collective injection. With ``tp > 1``
every 2-D-parameter matmul splits across the ``tp`` cards of a
tensor-parallel group, column-parallel over the weight's out-features
axis:

* **forward** (``x @ W``) — each card multiplies against its 1/tp
  column shard and contributes its output slice to an injected
  ``all_gather`` (scope ``"tp"``), so downstream ops see the full
  activation;
* **input gradient** (``dY @ W^T``) — each card contracts its weight
  shard against its slice of the output gradient, producing a partial
  sum finished by an injected ``all_reduce``;
* **weight gradient** (``x^T @ dY``) — shards naturally along the same
  out-features axis; no collective, but the gradient value is marked
  in ``stats["tensor_parallel"]["shard_vids"]`` so the downstream
  data-parallel bucketing prices it at 1/tp of its bytes.

Only the *cost model* shards: graph numerics are untouched (injected
NIC ops carry no ``node_ids``, so the executor skips them, and sharded
``WorkItem`` geometry never feeds the eager computes) — the sharded
schedule is numerics-byte-identical to the unsharded one by
construction, which the property suite asserts. Matmuls whose sharded
axes do not divide by ``tp`` (or that read no 2-D parameter) stay
replicated and are priced at full size on every card.
"""

from __future__ import annotations

from ..ops import work_item_for
from ..schedule import ScheduledOp
from .base import CompilerPass
from .state import CompilationState


def _shard(shape: tuple, axis: int, tp: int) -> tuple | None:
    """``shape`` with ``axis`` divided by ``tp``; None if indivisible."""
    dims = list(shape)
    if dims[axis] % tp:
        return None
    dims[axis] = dims[axis] // tp
    return tuple(dims)


class TensorParallelPass(CompilerPass):
    """Shard weight matmuls over the TP group; inject TP collectives."""

    name = "tensor_parallel"
    option_flag = "tp"
    option_deps = ("tp",)

    def enabled(self, options) -> bool:
        """On only for a real group (``tp`` is an int, not a bool)."""
        return int(getattr(options, self.option_flag, 1) or 0) > 1

    def run(self, state: CompilationState) -> dict:
        assert state.ops is not None, "emission must run before sharding"
        tp = int(state.options.tp)
        graph = state.graph
        node_of = {node.nid: node for node in graph.nodes}
        grad_storage = {
            state.alias.get(vid, vid) for vid, _ in graph.gradients()
        }
        matmul_def = state.opdef("matmul")

        # Decide the sharding of every single-node MME matmul first;
        # the rebuild below then weaves in the collectives.
        plans: dict[int, tuple[ScheduledOp, str | None]] = {}
        shard_vids: list[int] = []
        sharded = 0
        for op in state.ops:
            if (
                op.engine is not state.backend.matmul_engine
                or len(op.node_ids) != 1
            ):
                continue
            node = node_of.get(op.node_ids[0])
            if node is None or node.op != "matmul":
                continue
            a = graph.value(node.inputs[0])
            b = graph.value(node.inputs[1])
            out = graph.value(node.output)
            ta = bool(node.attrs.get("transpose_a"))
            tb = bool(node.attrs.get("transpose_b"))
            out_storage = state.alias.get(node.output, node.output)

            new_a = a.shape
            new_b = b.shape
            new_out = out.shape
            coll: str | None = None
            if b.kind == "param" and len(b.shape) == 2:
                if not tb:
                    # column-parallel forward: shard W's out-features
                    # (n) axis and the output slice; gather after
                    new_b = _shard(b.shape, -1, tp)
                    new_out = _shard(out.shape, -1, tp)
                    coll = "all_gather"
                else:
                    # input-gradient matmul contracts over the same
                    # weight axis (k when transposed): partial sums
                    new_b = _shard(b.shape, -1, tp)
                    new_a = _shard(a.shape, -1 if not ta else -2, tp)
                    coll = "all_reduce"
            elif out_storage in grad_storage and len(out.shape) == 2:
                # weight gradient: shards along out-features with no
                # communication; DP bucketing reduces 1/tp per card
                new_out = _shard(out.shape, -1, tp)
                new_b = _shard(b.shape, -2 if tb else -1, tp)
            else:
                continue
            if new_a is None or new_b is None or new_out is None:
                continue  # indivisible: stays replicated at full size

            item = work_item_for(
                "matmul", [new_a, new_b], new_out, out.dtype, node.attrs,
                label=op.items[0].name, opdef=matmul_def,
            )
            shard_op = op.clone()
            shard_op.items = [item]
            plans[op.index] = (shard_op, coll)
            sharded += 1
            if coll is None:
                shard_vids.append(out_storage)

        if not plans:
            state.stats["tensor_parallel"] = {
                "tp": tp, "sharded_matmuls": 0, "tp_collectives": 0,
                "shard_vids": [],
            }
            return {"transforms": 0, "sharded_matmuls": 0}

        # One forward rebuild: deps point backward, so the index map is
        # complete whenever read; readers of a gathered/reduced output
        # additionally wait on its TP collective.
        index_map: dict[int, int] = {}
        coll_for_vid: dict[int, int] = {}
        new_ops: list[ScheduledOp] = []
        n_collectives = 0
        comm_bytes = 0
        for op in state.ops:
            old_index = op.index
            shard_op, coll = plans.get(old_index, (op, None))
            extra = {
                coll_for_vid[v] for v in shard_op.reads if v in coll_for_vid
            }
            index_map[old_index] = len(new_ops)
            shard_op.index = len(new_ops)
            shard_op.deps = sorted(
                {*(index_map[d] for d in shard_op.deps), *extra}
            )
            new_ops.append(shard_op)
            if coll is None:
                continue
            out_vid = shard_op.writes[0] if shard_op.writes else None
            out_value = graph.value(out_vid) if out_vid is not None else None
            if out_value is None:
                continue
            if coll == "all_gather":
                elems = out_value.numel // tp
                item = work_item_for(
                    "all_gather", [(elems,)], (tp, elems), out_value.dtype,
                    {"num_cards": tp},
                    label=f"all_gather:tp{n_collectives}",
                )
            else:
                elems = out_value.numel
                item = work_item_for(
                    "all_reduce", [(elems,)], (elems,), out_value.dtype,
                    {"num_cards": tp},
                    label=f"all_reduce:tp{n_collectives}",
                )
            nic = ScheduledOp(
                index=len(new_ops),
                label=item.name,
                engine=state.backend.collective_engine,
                items=[item],
                deps=[shard_op.index],
                src=coll,
                scope="tp",
                reads=[out_vid],
                writes=[],  # gathers/reduces in place
            )
            new_ops.append(nic)
            coll_for_vid[out_vid] = nic.index
            comm_bytes += item.bytes_read
            n_collectives += 1
        state.ops = new_ops

        state.stats["tensor_parallel"] = {
            "tp": tp,
            "sharded_matmuls": sharded,
            "tp_collectives": n_collectives,
            "tp_comm_bytes": comm_bytes,
            "shard_vids": sorted(shard_vids),
        }
        return {
            "transforms": sharded,
            "sharded_matmuls": sharded,
            "tp_collectives": n_collectives,
        }
