"""The SynapseAI software-stack analog.

Graph IR -> op registry (Table 1's operation/engine mapping) ->
lowering -> GraphCompiler (fusion, DMA staging, recompilation events,
memory planning) -> Runtime (in-order or reordered issue) ->
SynapseProfiler (hardware trace events + the paper's derived metrics).
"""

from .compiler import (
    CompilerOptions,
    GraphCompiler,
    default_compiler_options,
    disable_passes,
    set_default_compiler_options,
)
from .critical_path import CriticalPathResult, critical_path
from .dot import graph_to_dot, schedule_to_dot
from .executor import execute_graph, execute_outputs, execute_schedule
from .graph import Graph, Node, TensorValue
from .lint import LintWarning, lint_graph, lint_schedule, render_warnings
from .liveness import (
    LiveInterval,
    LivenessResult,
    compute_liveness,
    fused_internal_values,
)
from .lowering import lower_graph
from .memtrace import MemorySample, MemoryTimeline, memory_timeline
from .ops import (
    OpDef,
    engine_for,
    matmul_spec,
    op,
    op_names,
    work_item_for,
)
from .passes import (
    PASS_OPTION_FLAGS,
    CollectiveInjectionPass,
    CompilerPass,
    PassManager,
    default_passes,
)
from .profiler import HLS1Profiler, ProfileResult, SynapseProfiler
from .recipe import (
    DEFAULT_RECIPE_CACHE_DIR,
    RecipeCache,
    default_recipe_cache_dir,
    graph_signature,
    recipe_cache_stats,
    recipe_key,
    reset_recipe_cache_stats,
    set_default_recipe_cache_dir,
)
from .render import ascii_timeline, gap_report
from .runtime import (
    ExecutionResult,
    HLS1Runtime,
    Runtime,
    collective_plans,
    fused_chain_traffic_bytes,
    op_cost_parts,
    op_duration_us,
)
from .schedule import MemoryPlan, Schedule, ScheduledOp
from .serving import ServingRuntime, StepCost
from .serialize import (
    graph_from_json,
    graph_to_json,
    load_graph,
    save_graph,
    schedule_from_json,
    schedule_to_json,
)
from .trace import Timeline, TraceEvent, validate_no_engine_overlap

__all__ = [
    "CompilerOptions",
    "GraphCompiler",
    "default_compiler_options",
    "disable_passes",
    "set_default_compiler_options",
    "PASS_OPTION_FLAGS",
    "CollectiveInjectionPass",
    "CompilerPass",
    "PassManager",
    "default_passes",
    "DEFAULT_RECIPE_CACHE_DIR",
    "RecipeCache",
    "default_recipe_cache_dir",
    "graph_signature",
    "recipe_cache_stats",
    "recipe_key",
    "reset_recipe_cache_stats",
    "set_default_recipe_cache_dir",
    "CriticalPathResult",
    "critical_path",
    "graph_to_dot",
    "schedule_to_dot",
    "execute_graph",
    "execute_outputs",
    "execute_schedule",
    "Graph",
    "Node",
    "TensorValue",
    "LintWarning",
    "lint_graph",
    "lint_schedule",
    "render_warnings",
    "LiveInterval",
    "LivenessResult",
    "compute_liveness",
    "fused_internal_values",
    "lower_graph",
    "MemorySample",
    "MemoryTimeline",
    "memory_timeline",
    "OpDef",
    "engine_for",
    "matmul_spec",
    "op",
    "op_names",
    "work_item_for",
    "HLS1Profiler",
    "ProfileResult",
    "SynapseProfiler",
    "ascii_timeline",
    "gap_report",
    "ExecutionResult",
    "HLS1Runtime",
    "Runtime",
    "collective_plans",
    "fused_chain_traffic_bytes",
    "op_cost_parts",
    "op_duration_us",
    "MemoryPlan",
    "Schedule",
    "ScheduledOp",
    "ServingRuntime",
    "StepCost",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "save_graph",
    "schedule_from_json",
    "schedule_to_json",
    "Timeline",
    "TraceEvent",
    "validate_no_engine_overlap",
]
