"""Graph and schedule serialization: save programs, reload anywhere.

A recorded graph is the complete performance-relevant description of a
workload (shapes, ops, attrs, provenance), so serializing it enables
offline workflows: record on one machine, compile/profile/sweep
configurations elsewhere, check a graph into a repo as a benchmark
fixture. JSON, versioned, loss-free for everything the compiler reads.

Compiled schedules round-trip too (:func:`schedule_to_json` /
:func:`schedule_from_json`) — that is what backs the
:class:`~repro.synapse.recipe.RecipeCache`'s on-disk recipe store.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hw.costmodel import EngineKind, MatmulDims, OpClass, WorkItem
from ..hw.dtypes import DType
from ..util.errors import GraphError
from .graph import Graph
from .schedule import MemoryPlan, Schedule, ScheduledOp

FORMAT_VERSION = 1
SCHEDULE_FORMAT_VERSION = 1


def graph_to_json(graph: Graph) -> str:
    """Serialize ``graph`` to a JSON string."""
    return json.dumps(_graph_payload(graph), indent=1)


def _graph_payload(graph: Graph) -> dict:
    payload = {
        "format": "repro-graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "values": [
            {
                "vid": v.vid,
                "shape": list(v.shape),
                "dtype": v.dtype.value,
                "name": v.name,
                "kind": v.kind,
            }
            for _, v in sorted(graph.values.items())
        ],
        "nodes": [
            {
                "nid": n.nid,
                "op": n.op,
                "inputs": list(n.inputs),
                "output": n.output,
                "attrs": _encode_attrs(n.attrs),
                "src": n.src,
                "scope": n.scope,
            }
            for n in graph.nodes
        ],
    }
    gradients = graph.gradients()
    if gradients:
        payload["gradients"] = [
            {"vid": vid, "param": name} for vid, name in gradients
        ]
    checkpoints = graph.checkpoints()
    if checkpoints:
        payload["checkpoints"] = [
            {
                "label": label,
                "inputs": list(inputs),
                "outputs": list(outputs),
                "droppable": list(droppable),
            }
            for label, inputs, outputs, droppable in checkpoints
        ]
    return payload


def _encode_attrs(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def graph_from_json(text: str) -> Graph:
    """Reconstruct a graph serialized by :func:`graph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"not valid JSON: {exc}") from exc
    graph, _, _ = _graph_from_payload(payload)
    return graph


def _graph_from_payload(
    payload,
) -> tuple[Graph, dict[int, int], dict[int, int]]:
    """Rebuild a graph; also returns the old->new vid and nid maps.

    The graph builder renumbers values and nodes, so anything that
    references them by id (a serialized schedule's reads/writes/
    node_ids, the memory plan) must translate through these maps.
    """
    if not isinstance(payload, dict) or payload.get("format") != "repro-graph":
        raise GraphError("not a serialized repro graph")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version {payload.get('version')}"
        )
    graph = Graph(payload.get("name", "graph"))
    vid_map: dict[int, int] = {}
    nid_map: dict[int, int] = {}
    for spec in payload["values"]:
        value = graph.add_value(
            tuple(spec["shape"]), DType(spec["dtype"]),
            name=spec.get("name", ""), kind=spec.get("kind", "activation"),
        )
        vid_map[spec["vid"]] = value.vid
    for spec in payload["nodes"]:
        node = graph.add_node(
            spec["op"],
            [vid_map[v] for v in spec["inputs"]],
            graph.value(vid_map[spec["output"]]),
            attrs=_decode_attrs(spec.get("attrs", {})),
            src=spec.get("src", ""),
            scope=spec.get("scope", ""),
        )
        nid_map[spec["nid"]] = node.nid
    for spec in payload.get("gradients", []):
        graph.mark_gradient(vid_map[spec["vid"]], spec.get("param", ""))
    for spec in payload.get("checkpoints", []):
        graph.mark_checkpoint(
            spec.get("label", ""),
            [vid_map[v] for v in spec.get("inputs", [])],
            [vid_map[v] for v in spec.get("outputs", [])],
            [vid_map[v] for v in spec.get("droppable", [])],
        )
    graph.validate()
    return graph, vid_map, nid_map


# -- compiled schedules (the on-disk recipe store) ---------------------------


def _encode_work_item(item: WorkItem) -> dict:
    spec = {
        "name": item.name,
        "op_class": item.op_class.value,
        "flops": item.flops,
        "bytes_read": item.bytes_read,
        "bytes_written": item.bytes_written,
        "elements": item.elements,
        "dtype": item.dtype.value,
        "special_fn": item.special_fn,
        "fixed_time_us": item.fixed_time_us,
        "pipelined": item.pipelined,
    }
    if item.matmul is not None:
        spec["matmul"] = {
            "batch": item.matmul.batch, "m": item.matmul.m,
            "n": item.matmul.n, "k": item.matmul.k,
        }
    return spec


def _decode_work_item(spec: dict) -> WorkItem:
    matmul = spec.get("matmul")
    return WorkItem(
        name=spec["name"],
        op_class=OpClass(spec["op_class"]),
        flops=spec.get("flops", 0.0),
        bytes_read=spec.get("bytes_read", 0),
        bytes_written=spec.get("bytes_written", 0),
        elements=spec.get("elements", 0),
        dtype=DType(spec.get("dtype", DType.BF16.value)),
        matmul=MatmulDims(**matmul) if matmul else None,
        special_fn=spec.get("special_fn"),
        fixed_time_us=spec.get("fixed_time_us", 0.0),
        pipelined=spec.get("pipelined", False),
    )


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a compiled schedule (graph + ops + memory + stats)."""
    payload = {
        "format": "repro-recipe",
        "version": SCHEDULE_FORMAT_VERSION,
        "graph": _graph_payload(schedule.graph),
        "ops": [
            {
                "index": op.index,
                "label": op.label,
                "engine": op.engine.value,
                "items": [_encode_work_item(i) for i in op.items],
                "deps": list(op.deps),
                "src": op.src,
                "scope": op.scope,
                "reads": list(op.reads),
                "writes": list(op.writes),
                "node_ids": list(op.node_ids),
                "external_read_bytes": op.external_read_bytes,
            }
            for op in schedule.ops
        ],
        "memory": {
            "persistent_bytes": schedule.memory.persistent_bytes,
            "peak_bytes": schedule.memory.peak_bytes,
            "free_after": [
                [vid, idx]
                for vid, idx in sorted(schedule.memory.free_after.items())
            ],
        },
        "stats": schedule.stats,
    }
    return json.dumps(payload, indent=1)


def schedule_from_json(text: str) -> Schedule:
    """Reconstruct a schedule serialized by :func:`schedule_to_json`.

    Raises :class:`~repro.util.errors.GraphError` on malformed input —
    the recipe cache treats that as a plain miss.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-recipe":
        raise GraphError("not a serialized repro recipe")
    if payload.get("version") != SCHEDULE_FORMAT_VERSION:
        raise GraphError(
            f"unsupported recipe format version {payload.get('version')}"
        )
    try:
        graph, vid_map, nid_map = _graph_from_payload(payload["graph"])
        ops = [
            ScheduledOp(
                index=spec["index"],
                label=spec["label"],
                engine=EngineKind(spec["engine"]),
                items=[_decode_work_item(i) for i in spec["items"]],
                deps=list(spec.get("deps", [])),
                src=spec.get("src", ""),
                scope=spec.get("scope", ""),
                reads=[vid_map[v] for v in spec.get("reads", [])],
                writes=[vid_map[v] for v in spec.get("writes", [])],
                node_ids=[nid_map[n] for n in spec.get("node_ids", [])],
                external_read_bytes=spec.get("external_read_bytes"),
            )
            for spec in payload["ops"]
        ]
        memory = MemoryPlan(
            persistent_bytes=payload["memory"]["persistent_bytes"],
            peak_bytes=payload["memory"]["peak_bytes"],
            free_after={
                vid_map[vid]: idx
                for vid, idx in payload["memory"]["free_after"]
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed recipe payload: {exc}") from exc
    return Schedule(
        graph=graph, ops=ops, memory=memory,
        stats=payload.get("stats", {}),
    )


def save_graph(graph: Graph, path: "str | Path") -> Path:
    """Write the graph JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(graph_to_json(graph))
    return path


def load_graph(path: "str | Path") -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise GraphError(f"cannot read {path}: {exc}") from exc
    return graph_from_json(text)
