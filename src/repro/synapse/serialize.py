"""Graph serialization: save recorded programs, reload them anywhere.

A recorded graph is the complete performance-relevant description of a
workload (shapes, ops, attrs, provenance), so serializing it enables
offline workflows: record on one machine, compile/profile/sweep
configurations elsewhere, check a graph into a repo as a benchmark
fixture. JSON, versioned, loss-free for everything the compiler reads.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hw.dtypes import DType
from ..util.errors import GraphError
from .graph import Graph

FORMAT_VERSION = 1


def graph_to_json(graph: Graph) -> str:
    """Serialize ``graph`` to a JSON string."""
    payload = {
        "format": "repro-graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "values": [
            {
                "vid": v.vid,
                "shape": list(v.shape),
                "dtype": v.dtype.value,
                "name": v.name,
                "kind": v.kind,
            }
            for _, v in sorted(graph.values.items())
        ],
        "nodes": [
            {
                "nid": n.nid,
                "op": n.op,
                "inputs": list(n.inputs),
                "output": n.output,
                "attrs": _encode_attrs(n.attrs),
                "src": n.src,
                "scope": n.scope,
            }
            for n in graph.nodes
        ],
    }
    gradients = graph.gradients()
    if gradients:
        payload["gradients"] = [
            {"vid": vid, "param": name} for vid, name in gradients
        ]
    return json.dumps(payload, indent=1)


def _encode_attrs(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def graph_from_json(text: str) -> Graph:
    """Reconstruct a graph serialized by :func:`graph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-graph":
        raise GraphError("not a serialized repro graph")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version {payload.get('version')}"
        )
    graph = Graph(payload.get("name", "graph"))
    vid_map: dict[int, int] = {}
    for spec in payload["values"]:
        value = graph.add_value(
            tuple(spec["shape"]), DType(spec["dtype"]),
            name=spec.get("name", ""), kind=spec.get("kind", "activation"),
        )
        vid_map[spec["vid"]] = value.vid
    for spec in payload["nodes"]:
        graph.add_node(
            spec["op"],
            [vid_map[v] for v in spec["inputs"]],
            graph.value(vid_map[spec["output"]]),
            attrs=_decode_attrs(spec.get("attrs", {})),
            src=spec.get("src", ""),
            scope=spec.get("scope", ""),
        )
    for spec in payload.get("gradients", []):
        graph.mark_gradient(vid_map[spec["vid"]], spec.get("param", ""))
    graph.validate()
    return graph


def save_graph(graph: Graph, path: "str | Path") -> Path:
    """Write the graph JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(graph_to_json(graph))
    return path


def load_graph(path: "str | Path") -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise GraphError(f"cannot read {path}: {exc}") from exc
    return graph_from_json(text)
