"""Compiled-schedule data structures.

The GraphCompiler turns a (lowered) graph into a :class:`Schedule`: a
program-ordered list of :class:`ScheduledOp` — compute ops tagged with
their engine and :class:`~repro.hw.costmodel.WorkItem`, interleaved
with the DMA staging transfers and host recompilation events the
compiler inserted. The runtime only sees this structure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

from ..hw.costmodel import EngineKind, WorkItem
from .graph import Graph


@dataclass
class ScheduledOp:
    """One schedulable unit (possibly a fused elementwise chain)."""

    index: int
    label: str
    engine: EngineKind
    #: the member work items; length > 1 only for fused chains
    items: list[WorkItem]
    #: indices of ScheduledOps that must complete first
    deps: list[int] = field(default_factory=list)
    src: str = ""
    scope: str = ""
    #: value ids this op reads / produces (memory planning); DMA and
    #: host ops reference the staged value via ``reads``
    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)
    #: node ids of the graph nodes folded into this op
    node_ids: list[int] = field(default_factory=list)
    #: HBM bytes read from outside the op across *all* members — for a
    #: fused chain this includes external inputs feeding middle members,
    #: which the first member's ``bytes_read`` alone misses. ``None``
    #: for ops built outside the compiler (runtime falls back to the
    #: first member's declared reads).
    external_read_bytes: int | None = None

    @property
    def is_fused(self) -> bool:
        """Whether this op is a fused elementwise chain."""
        return len(self.items) > 1

    @property
    def flops(self) -> float:
        """Total arithmetic work."""
        return sum(item.flops for item in self.items)

    def clone(self) -> "ScheduledOp":
        """Copy with fresh mutable containers (items are frozen)."""
        return replace(
            self,
            items=list(self.items),
            deps=list(self.deps),
            reads=list(self.reads),
            writes=list(self.writes),
            node_ids=list(self.node_ids),
        )


@dataclass
class MemoryPlan:
    """Liveness result over the schedule order."""

    #: bytes of persistent values (params + consts), live for the run
    persistent_bytes: int
    #: peak live bytes including activations
    peak_bytes: int
    #: schedule index after which each value id can be freed
    free_after: dict[int, int]

    def fits(self, capacity_bytes: int) -> bool:
        """Whether the plan fits the given HBM capacity."""
        return self.peak_bytes <= capacity_bytes


@dataclass
class Schedule:
    """The compiler's output: ops in program order plus bookkeeping."""

    graph: Graph
    ops: list[ScheduledOp]
    memory: MemoryPlan
    #: compiler statistics for reports
    stats: dict = field(default_factory=dict)

    def engine_queue(self, engine: EngineKind) -> list[ScheduledOp]:
        """This engine's ops in program (issue) order."""
        return [op for op in self.ops if op.engine is engine]

    def total_flops(self) -> float:
        """Arithmetic work across all ops."""
        return sum(op.flops for op in self.ops)

    def clone(self) -> "Schedule":
        """A cache-isolation copy: every mutable layer is duplicated.

        The graph is shared (compilation and execution treat it as
        immutable); ops, the memory plan, and stats are copied so a
        caller mutating one compile's output cannot poison another
        (the recipe cache relies on this).
        """
        return Schedule(
            graph=self.graph,
            ops=[op.clone() for op in self.ops],
            memory=MemoryPlan(
                persistent_bytes=self.memory.persistent_bytes,
                peak_bytes=self.memory.peak_bytes,
                free_after=dict(self.memory.free_after),
            ),
            stats=copy.deepcopy(self.stats),
        )

    def __len__(self) -> int:
        return len(self.ops)
