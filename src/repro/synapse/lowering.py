"""Lowering pass: expand composite ops into TPC primitives.

SynapseAI lowers framework-level ops into engine primitives; the one
that matters most to the paper is **softmax**, which becomes a
max-reduce, subtract, exponential, sum-reduce and divide — all on the
TPC (§2.4: "The softmax's computation can only be executed on TPC,
which degrades the overall training performance").

Lowered nodes keep ``src`` = the composite's op name, so the profiler
can attribute trace time back to "softmax" exactly the way the paper's
Figure 4 does.
"""

from __future__ import annotations

from typing import Callable

from ..util.errors import CompileError
from .graph import Graph, Node, TensorValue
from .ops import op


class _Rewriter:
    """Copies a graph while remapping value ids."""

    def __init__(self, old: Graph):
        self.old = old
        self.new = Graph(old.name)
        self.vmap: dict[int, int] = {}

    def map_value(self, old_vid: int) -> TensorValue:
        """New-graph value corresponding to ``old_vid`` (copied lazily)."""
        if old_vid not in self.vmap:
            v = self.old.value(old_vid)
            nv = self.new.add_value(v.shape, v.dtype, name=v.name, kind=v.kind)
            self.vmap[old_vid] = nv.vid
        return self.new.value(self.vmap[old_vid])

    def emit(
        self,
        op_name: str,
        inputs: list[TensorValue],
        *,
        attrs: dict | None = None,
        src: str,
        scope: str,
        name: str = "",
    ) -> TensorValue:
        """Append a primitive node, inferring its output shape."""
        attrs = dict(attrs or {})
        opdef = op(op_name)
        out_shape = opdef.infer_shape([v.shape for v in inputs], attrs)
        out = self.new.add_value(out_shape, inputs[0].dtype, name=name)
        self.new.add_node(
            op_name, [v.vid for v in inputs], out,
            attrs=attrs, src=src, scope=scope,
        )
        return out

    def copy_node(self, node: Node) -> None:
        """Copy a primitive node verbatim (ids remapped)."""
        inputs = [self.map_value(vid) for vid in node.inputs]
        out = self.map_value(node.output)
        self.new.add_node(
            node.op, [v.vid for v in inputs], out,
            attrs=node.attrs, src=node.src, scope=node.scope,
        )


LoweringFn = Callable[[_Rewriter, Node], TensorValue]


def _lower_softmax(rw: _Rewriter, node: Node) -> TensorValue:
    (x_vid,) = node.inputs
    x = rw.map_value(x_vid)
    axis = node.attrs.get("axis", -1)
    src, scope = node.op, node.scope
    red = {"axis": axis, "keepdims": True}
    m = rw.emit("max", [x], attrs=red, src=src, scope=scope)
    z = rw.emit("sub", [x, m], src=src, scope=scope)
    e = rw.emit("exp", [z], src=src, scope=scope)
    s = rw.emit("sum", [e], attrs=red, src=src, scope=scope)
    return rw.emit("div", [e, s], src=src, scope=scope)


def _lower_log_softmax(rw: _Rewriter, node: Node) -> TensorValue:
    (x_vid,) = node.inputs
    x = rw.map_value(x_vid)
    axis = node.attrs.get("axis", -1)
    src, scope = node.op, node.scope
    red = {"axis": axis, "keepdims": True}
    m = rw.emit("max", [x], attrs=red, src=src, scope=scope)
    z = rw.emit("sub", [x, m], src=src, scope=scope)
    e = rw.emit("exp", [z], src=src, scope=scope)
    s = rw.emit("sum", [e], attrs=red, src=src, scope=scope)
    logs = rw.emit("log", [s], src=src, scope=scope)
    return rw.emit("sub", [z, logs], src=src, scope=scope)


LOWERINGS: dict[str, LoweringFn] = {
    "softmax": _lower_softmax,
    "log_softmax": _lower_log_softmax,
}


def lower_graph(graph: Graph) -> Graph:
    """Return a new graph with every composite op expanded."""
    graph.validate()
    rw = _Rewriter(graph)
    #: composite output vid -> the new-graph vid range its lowering
    #: created (checkpoint droppable sets extend over the expansion)
    lowered_ranges: dict[int, tuple[int, int]] = {}
    for node in graph.nodes:
        opdef = op(node.op)
        if not opdef.composite:
            rw.copy_node(node)
            continue
        try:
            fn = LOWERINGS[node.op]
        except KeyError:
            raise CompileError(
                f"composite op {node.op!r} has no registered lowering"
            ) from None
        range_start = rw.new._next_vid
        out = fn(rw, node)
        old_out = graph.value(node.output)
        if out.shape != old_out.shape:
            raise CompileError(
                f"lowering of {node.op!r} changed output shape "
                f"{old_out.shape} -> {out.shape}"
            )
        # Downstream consumers of the composite's output now read the
        # lowered result.
        rw.vmap[node.output] = out.vid
        lowered_ranges[node.output] = (range_start, rw.new._next_vid)
    # Gradient marks survive the rewrite (remapped to the new ids);
    # a marked value that lowering dropped entirely has no producer
    # and nothing to all-reduce.
    for vid, param_name in graph.gradients():
        new_vid = rw.vmap.get(vid)
        if new_vid is not None:
            rw.new.mark_gradient(new_vid, param_name)
    # Checkpoint segments survive too; a droppable composite's lowered
    # intermediates are all droppable (recomputing the segment re-runs
    # the whole expansion anyway).
    for label, inputs, outputs, droppable in graph.checkpoints():
        new_inputs = [rw.vmap[v] for v in inputs if v in rw.vmap]
        new_outputs = [rw.vmap[v] for v in outputs if v in rw.vmap]
        new_droppable: list[int] = []
        for vid in droppable:
            new_vid = rw.vmap.get(vid)
            if new_vid is not None:
                new_droppable.append(new_vid)
            lo, hi = lowered_ranges.get(vid, (0, 0))
            new_droppable.extend(
                v for v in range(lo, hi)
                if rw.new.values[v].kind == "activation" and v != new_vid
            )
        rw.new.mark_checkpoint(
            label, new_inputs, new_outputs, sorted(set(new_droppable))
        )
    rw.new.validate()
    return rw.new
