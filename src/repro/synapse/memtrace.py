"""HBM occupancy over time: the memory-pressure view of an execution.

The compiler's :class:`~repro.synapse.schedule.MemoryPlan` gives the
peak; this module reconstructs the whole live-bytes curve over an
executed timeline — which op allocates the spike, when activations
saved for backward finally release, and how close the run sails to the
32 GB ceiling that capped the paper's batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.errors import ExecutionError
from ..util.units import fmt_bytes, fmt_time_us
from .liveness import compute_liveness
from .schedule import Schedule


@dataclass(frozen=True)
class MemorySample:
    """Live HBM bytes right after one op completes."""

    time_us: float
    live_bytes: int
    op_label: str
    delta_bytes: int


@dataclass
class MemoryTimeline:
    """The occupancy curve of one executed schedule."""

    samples: list[MemorySample] = field(default_factory=list)
    persistent_bytes: int = 0

    @property
    def peak_bytes(self) -> int:
        """Maximum live bytes over the run."""
        return max(
            (s.live_bytes for s in self.samples), default=self.persistent_bytes
        )

    def peak_sample(self) -> MemorySample | None:
        """The sample at which the peak occurs."""
        if not self.samples:
            return None
        return max(self.samples, key=lambda s: s.live_bytes)

    def utilization_of(self, capacity_bytes: int) -> float:
        """peak / capacity."""
        if capacity_bytes <= 0:
            raise ExecutionError("capacity must be positive")
        return self.peak_bytes / capacity_bytes

    def sparkline(self, *, width: int = 80, capacity_bytes: int | None = None) -> str:
        """ASCII occupancy curve: one column per time slice."""
        if not self.samples:
            return "(no samples)"
        t_end = self.samples[-1].time_us
        top = capacity_bytes or self.peak_bytes
        levels = " .:-=+*#%@"
        cols = [self.persistent_bytes] * width
        for s in self.samples:
            col = min(width - 1, int(s.time_us / max(t_end, 1e-9) * width))
            cols[col] = max(cols[col], s.live_bytes)
        # carry forward so gaps hold the last level
        for i in range(1, width):
            if cols[i] == self.persistent_bytes:
                cols[i] = max(cols[i], cols[i - 1])
        row = "".join(
            levels[min(len(levels) - 1,
                       int(c / max(top, 1) * (len(levels) - 1)))]
            for c in cols
        )
        peak = self.peak_sample()
        cap_note = (
            f" / cap {fmt_bytes(capacity_bytes)}" if capacity_bytes else ""
        )
        return (
            f"HBM |{row}| peak {fmt_bytes(self.peak_bytes)}{cap_note} "
            f"at {fmt_time_us(peak.time_us)} ({peak.op_label})"
        )


def memory_timeline(
    schedule: Schedule,
    completion_times_us: list[float] | None = None,
) -> MemoryTimeline:
    """Reconstruct the occupancy curve of ``schedule``.

    ``completion_times_us`` gives each scheduled op's end time (from an
    :class:`~repro.synapse.runtime.ExecutionResult`); without it, the
    curve is indexed by schedule position (one 'tick' per op).

    The reconstructed peak must equal the compiler's planned peak —
    tests enforce that cross-check.
    """
    graph = schedule.graph
    if completion_times_us is not None and len(completion_times_us) != len(
        schedule.ops
    ):
        raise ExecutionError(
            f"{len(completion_times_us)} completion times for "
            f"{len(schedule.ops)} ops"
        )
    live_info = compute_liveness(graph, schedule.ops)

    timeline = MemoryTimeline(persistent_bytes=live_info.persistent_bytes)
    live = live_info.persistent_bytes
    for pos, op in enumerate(schedule.ops):
        delta = 0
        for vid in live_info.allocs_at.get(pos, ()):
            delta += graph.value(vid).nbytes
        live += delta
        sample_live = live
        for vid in live_info.frees_at.get(pos, ()):
            live -= graph.value(vid).nbytes
            delta -= graph.value(vid).nbytes
        t = (
            completion_times_us[op.index]
            if completion_times_us is not None
            else float(op.index)
        )
        timeline.samples.append(
            MemorySample(t, sample_live, op.label, delta)
        )
    return timeline
