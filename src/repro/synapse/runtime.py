"""Runtime: execute a compiled schedule on a simulated device.

Three issue disciplines, selected by
:attr:`~repro.synapse.compiler.CompilerOptions.reorder` and
:attr:`~repro.synapse.compiler.CompilerOptions.scheduler`:

* **in-order** (default, what SynapseAI does): each engine issues its
  queue strictly in program order; an op starts when its engine is free
  AND its producers are done. Engines still overlap *across* queues —
  this is what produces both the good overlap of Fig 5 and the MME idle
  gaps of Figs 4/6/8/9.
* **reorder** (``--scheduler=reorder``): an engine may start any
  *ready* op, earliest-ready first (ties by program order) — a greedy
  list scheduler standing in for a compiler that "detect[s]
  independence" (§3.3's Performer discussion). Issue order is planned
  once from the uncontended durations (a lazy min-heap keyed on
  (earliest start, program order)), then executed under whichever
  memory model is active.
* **lookahead** (the default out-of-order policy): a critical-path
  list scheduler. Ops are prioritized by *bottom level* (the longest
  uncontended dependency chain hanging off them), with an
  MME-starvation tiebreak: while the MME sits idle with nothing ready,
  other engines prefer ops whose downstream consumers feed the MME.
  This is what lets independent TPC chains (Performer's
  ``q_prime``/``k_prime``) and the ``tpc_slicing`` pass's row slices
  genuinely overlap with pending MME work.

All planned orders are topological, so any of them replays deadlock-
free under both memory models below.

Two memory models, selected by
:attr:`~repro.synapse.compiler.CompilerOptions.hbm_contention`:

* **contended** (default): HBM bandwidth is one shared resource. Each
  op's cost decomposes (:func:`op_cost_parts`) into a compute floor
  that runs at full speed regardless of traffic, HBM bytes that drain
  through the device-wide :class:`~repro.hw.bandwidth.BandwidthArbiter`
  at whatever share the arbiter grants, and a serial launch/fixed
  tail. The op finishes at ``max(compute done, bytes drained) +
  serial``; overlapping memory-bound phases stretch each other exactly
  as co-executing engines do on silicon.
* **uncontended** (``hbm_contention=False``, the pre-contention model):
  every engine sees the full effective bandwidth; op durations are the
  closed-form :func:`op_duration_us` and the timeline is reproduced
  event for event.

Durations come from the device's calibrated cost models; fused chains
sum member compute time and pay HBM traffic only for chain-external
reads (all members') plus the final write.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from collections import deque
from dataclasses import dataclass, field

from ..hw.bandwidth import BandwidthArbiter, TwoTierFabric
from ..hw.costmodel import CostModel, CostParts, EngineKind, WorkItem
from ..hw.device import GaudiDevice, HLS1Device
from ..hw.interconnect import (
    CollectivePlan,
    collective_plan,
    hierarchical_collective_plan,
    p2p_plan,
    scale_plan,
)
from ..util.errors import ExecutionError
from .schedule import Schedule, ScheduledOp
from .trace import Timeline, TraceEvent, fast_trace_event

#: slack when deciding an event time has been reached (us)
_TIME_EPS_US = 1e-9

#: fluid-loop implementation used when the caller does not pick one;
#: "vector" is the production engine, "scalar" the per-event reference
DEFAULT_SIM_ENGINE = "vector"

#: the recognized fluid-loop implementations
SIM_ENGINES = ("vector", "scalar")


def _resolve_engine(engine: str | None) -> str:
    """Validate the fluid-engine name, defaulting to the fast one."""
    resolved = engine or DEFAULT_SIM_ENGINE
    if resolved not in SIM_ENGINES:
        raise ExecutionError(
            f"unknown sim engine {resolved!r} (expected one of {SIM_ENGINES})"
        )
    return resolved


def fused_chain_traffic_bytes(op: ScheduledOp) -> int:
    """HBM bytes a fused chain moves: all external reads + final write.

    Every member's chain-external reads count (the compiler records
    them in ``external_read_bytes``) — a middle op reading a graph
    input is real traffic even though its predecessor's output stayed
    on-chip. For chains built without that annotation, fall back to the
    first member's reads (the historical approximation).
    """
    reads = op.external_read_bytes
    if reads is None:
        reads = op.items[0].bytes_read
    return reads + op.items[-1].bytes_written


def op_duration_us(cost: CostModel, op: ScheduledOp) -> float:
    """Uncontended duration of a scheduled op (single or fused chain)."""
    if not op.items:
        raise ExecutionError(f"scheduled op {op.label!r} has no work items")
    if len(op.items) == 1:
        return cost.time_us(op.engine, op.items[0])
    return op_cost_parts(cost, op).uncontended_time_us(cost.mem_bandwidth)


def _fused_compute_us(cost: CostModel, op: ScheduledOp) -> float:
    """Summed on-chip compute of a fused chain's members, launch-free."""
    launch = cost.fused_launch_us
    compute = 0.0
    for item in op.items:
        bare = WorkItem(
            item.name, item.op_class, flops=item.flops, elements=item.elements,
            dtype=item.dtype, special_fn=item.special_fn,
        )
        compute += cost.time_us(op.engine, bare) - launch
    return compute


def op_cost_parts(cost: CostModel, op: ScheduledOp) -> CostParts:
    """Decomposed cost of a scheduled op, for the contended runtime.

    Mirrors :func:`op_duration_us`: recomposing these parts at the full
    effective bandwidth reproduces the uncontended duration. Fused
    chains compute back to back on-chip, pay external traffic only at
    the chain edges (all members' external reads + the final write) and
    one launch total; how that traffic composes is the cost model's
    ``fused_parts`` decision (Gaudi: the shared-HBM channel; WSE: the
    wafer-SRAM drain, off the arbiter).
    """
    if not op.items:
        raise ExecutionError(f"scheduled op {op.label!r} has no work items")
    if len(op.items) == 1:
        return cost.cost_parts(op.engine, op.items[0])
    fusion = cost.fusion_engine
    if op.engine is not fusion:
        raise ExecutionError(
            f"fused op {op.label!r} must be on {fusion.value}"
        )
    return cost.fused_parts(
        _fused_compute_us(cost, op),
        fused_chain_traffic_bytes(op),
        sum(item.fixed_time_us for item in op.items),
    )


@dataclass
class ExecutionResult:
    """Outcome of one schedule execution."""

    timeline: Timeline
    total_time_us: float
    start_offset_us: float
    schedule: Schedule
    peak_hbm_bytes: int = 0
    issue_order: list[int] = field(default_factory=list)
    #: time ops spent waiting on HBM beyond their uncontended drain
    #: (always 0.0 when executed with ``hbm_contention=False``)
    contention_stall_us: float = 0.0
    #: cards that executed the schedule (1 for a plain Runtime)
    num_cards: int = 1
    #: NIC busy time not hidden under MME/TPC compute on card 0 — the
    #: communication the step actually *waits* for
    exposed_comm_us: float = 0.0
    #: time the fabric arbiter had wire traffic draining
    fabric_busy_us: float = 0.0


class Runtime:
    """Executes compiled schedules on a :class:`GaudiDevice`."""

    def __init__(self, device: GaudiDevice | None = None):
        self.device = device or GaudiDevice()

    def execute(
        self,
        schedule: Schedule,
        *,
        reorder: bool = False,
        hbm_contention: bool = True,
        scheduler: str | None = None,
        engine: str | None = None,
    ) -> ExecutionResult:
        """Run ``schedule``; the device clock keeps advancing across calls.

        ``scheduler`` names the issue policy explicitly (``"inorder"``,
        ``"reorder"``, ``"lookahead"``) and wins over the ``reorder``
        boolean; when ``None`` the legacy mapping applies (``reorder``
        selects the greedy planner, otherwise program order).

        ``engine`` picks the fluid-loop implementation for contended
        runs: ``"vector"`` (the default) or ``"scalar"``, the per-event
        reference the vector loop is byte-identical to.
        """
        start_offset = self.device.now
        cost = self.device.cost_model
        # one cached cost walk serves both the planner and the fluid
        # loop: recomposing the parts at full bandwidth reproduces
        # :func:`op_duration_us` exactly (see :class:`CostParts`)
        prep = _schedule_prep(schedule, cost)
        durations = prep.durations
        order = self._plan_order(
            schedule, durations, start_offset,
            reorder=reorder, scheduler=scheduler,
        )
        if hbm_contention:
            events, stall_total = self._execute_contended(
                schedule, order, start_offset, engine=engine, prep=prep
            )
        else:
            events = self._replay(schedule, order, durations, start_offset)
            stall_total = 0.0
        timeline = Timeline(events, name=schedule.graph.name, validate=False)
        # every event ends exactly at its engine timeline's free_at, so
        # the device clock IS the makespan (no 3k-event scan)
        total = self.device.now if events else start_offset
        return ExecutionResult(
            timeline=timeline,
            total_time_us=total - start_offset,
            start_offset_us=start_offset,
            schedule=schedule,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            issue_order=order,
            contention_stall_us=stall_total,
        )

    # -- uncontended execution ------------------------------------------------

    def _record(
        self, op: ScheduledOp, ready: float, duration: float
    ) -> TraceEvent:
        interval = self.device.timeline(op.engine).reserve(
            ready, duration, op.label
        )
        return TraceEvent(
            name=op.label,
            engine=op.engine,
            start_us=interval.start,
            dur_us=duration,
            src=op.src,
            scope=op.scope,
            flops=op.flops,
        )

    def _replay(
        self,
        schedule: Schedule,
        order: list[int],
        durations: list[float],
        t0: float,
    ) -> list[TraceEvent]:
        """Issue ops in ``order`` with closed-form durations.

        With ``order`` equal to program order this is the in-order
        discipline; with a planned order it replays the reorder
        schedule. Either way each op starts at
        ``max(producers done, engine free)``.
        """
        finish: dict[int, float] = {}
        events: list[TraceEvent] = []
        for idx in order:
            op = schedule.ops[idx]
            ready = max((finish[d] for d in op.deps), default=t0)
            event = self._record(op, ready, durations[idx])
            finish[idx] = event.end_us
            events.append(event)
        return events

    # -- issue-order planning -------------------------------------------------

    def _plan_order(
        self,
        schedule: Schedule,
        durations: list[float],
        t0: float,
        *,
        reorder: bool,
        scheduler: str | None,
    ) -> list[int]:
        """Resolve the issue policy and plan the order it prescribes."""
        policy = scheduler
        if policy is None:
            policy = "reorder" if reorder else "inorder"
        if policy == "inorder":
            return [op.index for op in schedule.ops]
        if policy == "reorder":
            return self._plan_reorder(schedule, durations, t0)
        if policy == "lookahead":
            return self._plan_lookahead(schedule, durations, t0)
        raise ExecutionError(
            f"unknown scheduler {policy!r} "
            "(expected 'inorder', 'reorder' or 'lookahead')"
        )

    @staticmethod
    def _dep_graph(
        schedule: Schedule,
    ) -> tuple[list[list[int]], list[int]]:
        """(consumers per op, number of distinct deps per op)."""
        n = len(schedule.ops)
        consumers_of: list[list[int]] = [[] for _ in range(n)]
        blocked_by = [0] * n
        for op in schedule.ops:
            deps = set(op.deps)
            blocked_by[op.index] = len(deps)
            for dep in deps:
                consumers_of[dep].append(op.index)
        return consumers_of, blocked_by

    def _plan_reorder(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> list[int]:
        """Greedy earliest-start issue order (ties by program order).

        A lazy min-heap keyed on ``(earliest start, index)``: an entry's
        key is computed against its engine's free time at push, which
        only grows, so stored keys are lower bounds. Popping the min
        and re-pushing when stale selects exactly the op the former
        O(n²) ready-set scan selected, in O(n log n).
        """
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)
        free = {
            op.engine: self.device.timeline(op.engine).free_at
            for op in schedule.ops
        }
        finish: dict[int, float] = {}
        ready_time: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for i in range(n):
            if blocked_by[i] == 0:
                ready_time[i] = t0
                heapq.heappush(
                    heap, (max(t0, free[schedule.ops[i].engine]), i)
                )
        order: list[int] = []
        while len(order) < n:
            if not heap:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            start, idx = heapq.heappop(heap)
            op = schedule.ops[idx]
            current = max(ready_time[idx], free[op.engine])
            if current > start:
                # the engine moved on since this key was computed
                heapq.heappush(heap, (current, idx))
                continue
            ready_time.pop(idx)
            finish[idx] = current + durations[idx]
            free[op.engine] = finish[idx]
            order.append(idx)
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    r = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
                    ready_time[consumer] = r
                    eng = schedule.ops[consumer].engine
                    heapq.heappush(heap, (max(r, free[eng]), consumer))
        return order

    def _plan_reorder_scan(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> list[int]:
        """Reference O(n²) planner (the pre-heap implementation).

        Kept only so tests can assert the heap planner reproduces its
        selection byte for byte on benchmark workloads.
        """
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)
        free = {
            op.engine: self.device.timeline(op.engine).free_at
            for op in schedule.ops
        }
        finish: dict[int, float] = {}
        ready_time = {i: t0 for i in range(n) if blocked_by[i] == 0}
        order: list[int] = []
        while len(order) < n:
            best: tuple[float, int] | None = None
            for idx, r in ready_time.items():
                op = schedule.ops[idx]
                key = (max(r, free[op.engine]), idx)
                if best is None or key < best:
                    best = key
            if best is None:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            _, idx = best
            op = schedule.ops[idx]
            start = max(ready_time.pop(idx), free[op.engine])
            finish[idx] = start + durations[idx]
            free[op.engine] = finish[idx]
            order.append(idx)
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    ready_time[consumer] = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
        return order

    def _plan_lookahead(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> list[int]:
        """Critical-path list scheduler with an MME-starvation tiebreak.

        Priorities are *bottom levels* over the uncontended durations:
        ``bottom[i] = dur[i] + max(bottom[consumer])`` — the length of
        the longest chain still hanging off op ``i``. At each issue
        decision the planner takes the earliest instant any engine can
        start a ready op and, among the ops startable then, picks the
        largest bottom level — except under *MME starvation*: when no
        MME op is ready and the MME would run dry before a candidate
        finished, other engines boost ops that feed the MME, cheapest
        lead first. An op's *MME lead* is the minimum remaining
        non-MME work (its own duration plus the cheapest downstream
        path) before some MME op can start. The time-based lead
        matters: on a row-sliced softmax pipeline every scale, exp,
        and normalization slice transitively feeds the score@V
        matmuls, but finishing ``sum``+``div`` of the oldest slice
        (~4us of work) releases a matmul *now*, while another ``exp``
        slice is three ops away — pure bottom-level priority drains
        whole stages in lockstep and parks the MME for the duration.
        The emitted order is topological (an op is issued only after
        every producer), so it replays deadlock-free under both memory
        models.
        """
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)
        bottom = [0.0] * n
        # cheapest remaining non-MME work before op i's completion can
        # release some MME op (0.0 for MME work itself); inf marks
        # "never reaches one"
        no_path = math.inf
        mme_lead = [no_path] * n
        # schedule indices are topological, so one reverse sweep fills
        # both the bottom levels and the lead-to-the-MME closure
        for i in reversed(range(n)):
            tail = max((bottom[c] for c in consumers_of[i]), default=0.0)
            bottom[i] = durations[i] + tail
            if schedule.ops[i].engine is EngineKind.MME:
                mme_lead[i] = 0.0
            else:
                for c in consumers_of[i]:
                    d = (
                        0.0
                        if schedule.ops[c].engine is EngineKind.MME
                        else durations[c] + mme_lead[c]
                    )
                    if d < mme_lead[i]:
                        mme_lead[i] = d
        free = {
            op.engine: self.device.timeline(op.engine).free_at
            for op in schedule.ops
        }
        finish: dict[int, float] = {}
        ready: dict[int, float] = {
            i: t0 for i in range(n) if blocked_by[i] == 0
        }
        order: list[int] = []
        while len(order) < n:
            if not ready:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            t = min(
                max(r, free[schedule.ops[i].engine])
                for i, r in ready.items()
            )
            mme_free = free.get(EngineKind.MME, t0)
            no_ready_mme = not any(
                schedule.ops[i].engine is EngineKind.MME
                and r <= t + _TIME_EPS_US
                for i, r in ready.items()
            )
            best: int | None = None
            best_key: tuple[int, float, float, int] | None = None
            for i, r in ready.items():
                op = schedule.ops[i]
                if max(r, free[op.engine]) > t + _TIME_EPS_US:
                    continue
                # anticipatory starvation: boost when the MME would go
                # (or stay) dry before this candidate could finish
                boost = int(
                    no_ready_mme
                    and op.engine is not EngineKind.MME
                    and mme_lead[i] < no_path
                    and mme_free <= t + durations[i] + _TIME_EPS_US
                )
                key = (
                    boost,
                    -(durations[i] + mme_lead[i]) if boost else 0.0,
                    bottom[i],
                    -i,
                )
                if best_key is None or key > best_key:
                    best, best_key = i, key
            assert best is not None  # t came from the ready set
            op = schedule.ops[best]
            start = max(ready.pop(best), free[op.engine])
            finish[best] = start + durations[best]
            free[op.engine] = finish[best]
            order.append(best)
            for consumer in consumers_of[best]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    ready[consumer] = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
        return order

    # -- contended execution --------------------------------------------------

    def _execute_contended(
        self,
        schedule: Schedule,
        order: list[int],
        t0: float,
        *,
        shared: bool = True,
        engine: str | None = None,
        prep: "_SchedulePrep | None" = None,
    ) -> tuple[list[TraceEvent], float]:
        """Fluid discrete-event execution against the shared HBM.

        Single-card entry point: the shared fluid loop with one card
        and no fabric. ``shared=False`` grants every drainer its full
        uncontended rate — same event machinery, pre-contention timings
        (used by equivalence tests).
        """
        if _resolve_engine(engine) == "vector":
            return _fluid_execute_vector(
                [self.device], schedule, order, t0, shared=shared, prep=prep
            )
        return _fluid_execute(
            [self.device], schedule, order, t0, shared=shared,
            parts=prep.parts if prep is not None else None,
        )


class _SchedulePrep:
    """Per-(schedule, device config) derivations the runtime reuses.

    Everything here is a pure function of the compiled schedule and the
    frozen :class:`~repro.hw.config.GaudiConfig` — cost decompositions,
    uncontended durations, the dependency graph, and the flat per-op
    lists the vector loop indexes instead of walking ``ScheduledOp``
    attributes. Caching it on the schedule (keyed by config value) means
    repeated executes — profiler warm iterations, card-count sweeps,
    benchmark rounds — pay the cost walk once.
    """

    __slots__ = (
        "parts", "durations", "compute", "hbm", "serial", "nominal",
        "cap", "flops", "labels", "srcs", "scopes", "eng", "engines",
        "consumers_of", "blocked_proto", "protos",
    )

    def __init__(self, schedule: Schedule, cost: CostModel):
        bandwidth = cost.mem_bandwidth
        ops = schedule.ops
        parts = [op_cost_parts(cost, op) for op in ops]
        self.parts = parts
        self.durations = [p.uncontended_time_us(bandwidth) for p in parts]
        self.compute = [p.compute_us for p in parts]
        self.hbm = [p.hbm_bytes for p in parts]
        self.serial = [p.serial_us for p in parts]
        self.nominal = [
            max(p.compute_us, p.uncontended_mem_us(bandwidth)) for p in parts
        ]
        self.cap = [p.rate_cap for p in parts]
        self.flops = [op.flops for op in ops]
        self.labels = [op.label for op in ops]
        self.srcs = [op.src for op in ops]
        self.scopes = [op.scope for op in ops]
        # engine index in first-appearance order (matches the order the
        # scalar loop's queue dict preserves)
        engine_ids: dict[EngineKind, int] = {}
        self.eng = [
            engine_ids.setdefault(op.engine, len(engine_ids)) for op in ops
        ]
        self.engines = list(engine_ids)
        self.consumers_of, self.blocked_proto = Runtime._dep_graph(schedule)
        # per-op TraceEvent field template: the seven fields that never
        # change across executions, pre-inserted so the vector loop's
        # finish path is one dict copy + four setitems (the copies own
        # their storage — mutating one never touches the template)
        self.protos = [
            {
                "name": op.label, "engine": op.engine, "start_us": 0.0,
                "dur_us": 0.0, "src": op.src, "scope": op.scope,
                "flops": op.flops, "hbm_bytes": p.hbm_bytes,
                "hbm_gbps": 0.0, "contention_stall_us": 0.0, "card": 0,
            }
            for op, p in zip(ops, parts)
        ]


def _schedule_prep(schedule: Schedule, cost: CostModel) -> _SchedulePrep:
    """The (cached) runtime prep for ``schedule`` under ``cost``.

    Keyed by the config's canonical ``repr`` (the same value-form
    :func:`~repro.synapse.recipe.recipe_key` hashes), so two devices
    with equal calibration share one prep and a different calibration
    can never alias a stale one. Compiled schedules are immutable after
    compilation (the recipe cache clones to enforce it), which is what
    makes attaching derived state to them safe.
    """
    cache = schedule.__dict__.get("_runtime_prep")
    if cache is None:
        cache = {}
        schedule.__dict__["_runtime_prep"] = cache
    key = repr(cost.config)
    prep = cache.get(key)
    if prep is None:
        prep = _SchedulePrep(schedule, cost)
        cache[key] = prep
    return prep


def _fluid_execute(
    cards: list[GaudiDevice],
    schedule: Schedule,
    order: list[int],
    t0: float,
    *,
    shared: bool = True,
    fabric: BandwidthArbiter | None = None,
    plans: dict[int, CollectivePlan] | None = None,
    parts: list[CostParts] | None = None,
) -> tuple[list[TraceEvent], float]:
    """The fluid event loop, generalized to N cards + a shared fabric.

    Every card replays the same schedule in the same issue ``order`` on
    its own clock; per-card HBM traffic drains through that card's own
    arbiter. Ops with an entry in ``plans`` (non-empty step list) are
    collectives: each card *joins* when its NIC reaches the op, the
    collective starts when the last card joins, and its ring steps then
    replay as fabric events — per-step link latency followed by the
    step's aggregate wire bytes draining through the fabric arbiter at
    up to the plan's rate cap. All cards finish the collective at the
    same instant, which is what makes collectives cross-card
    synchronization points. With one card and no fabric this reduces
    exactly (float for float) to the single-card contended loop.
    """
    ncards = len(cards)
    cost = cards[0].cost_model
    bandwidth = cost.mem_bandwidth
    if parts is None:
        parts = [op_cost_parts(cost, op) for op in schedule.ops]
    arbiters = [BandwidthArbiter(bandwidth, shared=shared) for _ in cards]
    plans = plans or {}
    n = len(schedule.ops)
    consumers_of, blocked_by_proto = Runtime._dep_graph(schedule)
    blocked_by = [list(blocked_by_proto) for _ in cards]

    queues: dict[tuple[int, EngineKind], deque[int]] = {}
    for c in range(ncards):
        for idx in order:
            queues.setdefault(
                (c, schedule.ops[idx].engine), deque()
            ).append(idx)
    engine_busy = {key: False for key in queues}

    start_of: dict[tuple[int, int], float] = {}
    compute_end: dict[tuple[int, int], float] = {}
    bytes_end: dict[tuple[int, int], float] = {}
    finish: dict[tuple[int, int], float] = {}
    pending_finish: list[tuple[float, int, int]] = []
    #: collective idx -> card -> time the card's NIC joined
    coll_join: dict[int, dict[int, float]] = {}
    #: collective idx -> current ring-step number
    coll_step: dict[int, int] = {}
    #: (latency-expiry time, collective idx): the step's wire may drain
    timers: list[tuple[float, int]] = []
    events: list[TraceEvent] = []
    stall_total = 0.0
    done = 0
    now = t0

    def start(c: int, idx: int) -> None:
        op = schedule.ops[idx]
        plan = plans.get(idx)
        if plan is not None and plan.steps:
            engine_busy[(c, op.engine)] = True
            joined = coll_join.setdefault(idx, {})
            joined[c] = now
            if len(joined) == ncards:
                coll_step[idx] = 0
                heapq.heappush(
                    timers, (now + plan.steps[0].latency_us, idx)
                )
            return
        p = parts[idx]
        engine_busy[(c, op.engine)] = True
        start_of[(c, idx)] = now
        compute_end[(c, idx)] = now + p.compute_us
        if p.hbm_bytes > 0:
            arbiters[c].admit(idx, p.hbm_bytes, now, rate_cap=p.rate_cap)
        else:
            bytes_end[(c, idx)] = now
            heapq.heappush(
                pending_finish, (compute_end[(c, idx)] + p.serial_us, idx, c)
            )

    def finish_op(c: int, idx: int, t: float) -> None:
        nonlocal stall_total
        op = schedule.ops[idx]
        p = parts[idx]
        engine_busy[(c, op.engine)] = False
        finish[(c, idx)] = t
        for consumer in consumers_of[idx]:
            blocked_by[c][consumer] -= 1
        begun = start_of[(c, idx)]
        duration = t - begun
        active = max(compute_end[(c, idx)], bytes_end[(c, idx)]) - begun
        nominal = max(p.compute_us, p.uncontended_mem_us(bandwidth))
        stall = max(0.0, active - nominal)
        stall_total += stall
        achieved_gbps = 0.0
        if p.hbm_bytes > 0:
            span_us = bytes_end[(c, idx)] - begun
            if span_us > 0:
                achieved_gbps = p.hbm_bytes / (span_us * 1e-6) / 1e9
        interval = cards[c].timeline(op.engine).reserve(
            begun, duration, op.label
        )
        events.append(TraceEvent(
            name=op.label,
            engine=op.engine,
            start_us=interval.start,
            dur_us=duration,
            src=op.src,
            scope=op.scope,
            flops=op.flops,
            hbm_bytes=p.hbm_bytes,
            hbm_gbps=achieved_gbps,
            contention_stall_us=stall,
            card=c,
        ))

    def begin_drain(idx: int) -> None:
        """A step's link latency expired; put its wire on the fabric."""
        plan = plans[idx]
        step = plan.steps[coll_step[idx]]
        if step.wire_bytes > 0:
            assert fabric is not None, "collective steps need a fabric"
            if step.tier != "intra":
                # inter-box hops only exist in hierarchical plans, whose
                # runs always construct a TwoTierFabric
                fabric.admit(
                    idx, step.wire_bytes, now,
                    rate_cap=plan.inter_rate_cap, tier="inter",
                )
            else:
                fabric.admit(idx, step.wire_bytes, now, rate_cap=plan.rate_cap)
        else:
            step_complete(idx, now)

    def step_complete(idx: int, t: float) -> None:
        plan = plans[idx]
        coll_step[idx] += 1
        if coll_step[idx] < len(plan.steps):
            heapq.heappush(
                timers, (t + plan.steps[coll_step[idx]].latency_us, idx)
            )
        else:
            finish_collective(idx, t)

    def finish_collective(idx: int, t: float) -> None:
        nonlocal stall_total, done
        op = schedule.ops[idx]
        plan = plans[idx]
        started = max(coll_join[idx].values())
        stall = max(0.0, (t - started) - plan.analytic_time_us)
        stall_total += stall
        for c in range(ncards):
            engine_busy[(c, op.engine)] = False
            begun = coll_join[idx][c]
            cards[c].timeline(op.engine).reserve(begun, t - begun, op.label)
            events.append(TraceEvent(
                name=op.label,
                engine=op.engine,
                start_us=begun,
                dur_us=t - begun,
                src=op.src,
                scope=op.scope,
                contention_stall_us=stall if c == 0 else 0.0,
                card=c,
            ))
            finish[(c, idx)] = t
            for consumer in consumers_of[idx]:
                blocked_by[c][consumer] -= 1
            done += 1

    target = n * ncards
    while done < target:
        progress = True
        while progress:
            progress = False
            while (
                pending_finish
                and pending_finish[0][0] <= now + _TIME_EPS_US
            ):
                t, idx, c = heapq.heappop(pending_finish)
                finish_op(c, idx, t)
                done += 1
                progress = True
            while timers and timers[0][0] <= now + _TIME_EPS_US:
                _, idx = heapq.heappop(timers)
                begin_drain(idx)
                progress = True
            for (c, engine), queue in queues.items():
                if engine_busy[(c, engine)] or not queue:
                    continue
                if blocked_by[c][queue[0]] == 0:
                    start(c, queue.popleft())
                    progress = True
        if done == target:
            break
        candidates = []
        for arbiter in arbiters:
            next_drain = arbiter.next_completion_us()
            if next_drain is not None:
                candidates.append(next_drain)
        if fabric is not None:
            next_wire = fabric.next_completion_us()
            if next_wire is not None:
                candidates.append(next_wire)
        if pending_finish:
            candidates.append(pending_finish[0][0])
        if timers:
            candidates.append(timers[0][0])
        if not candidates:
            raise ExecutionError(
                "deadlock: no ready ops but schedule incomplete "
                "(cyclic dependencies?)"
            )
        now = max(now, min(candidates))
        for c, arbiter in enumerate(arbiters):
            for idx in sorted(arbiter.advance(now)):
                bytes_end[(c, idx)] = now
                heapq.heappush(
                    pending_finish,
                    (
                        max(compute_end[(c, idx)], now)
                        + parts[idx].serial_us,
                        idx,
                        c,
                    ),
                )
        if fabric is not None:
            for idx in sorted(fabric.advance(now)):
                step_complete(idx, now)
    return events, stall_total


def _fluid_execute_vector(
    cards: list[GaudiDevice],
    schedule: Schedule,
    order: list[int],
    t0: float,
    *,
    shared: bool = True,
    fabric: BandwidthArbiter | None = None,
    plans: dict[int, CollectivePlan] | None = None,
    prep: "_SchedulePrep | None" = None,
) -> tuple[list[TraceEvent], float]:
    """The fluid loop rewritten for throughput; byte-identical traces.

    Two observations make this fast without changing a single float:

    * **Cards are symmetric.** Every card replays the same schedule in
      the same order through an identical arbiter, all costs come from
      ``cards[0].cost_model``, and ``t0 = max(card.now)`` guarantees no
      engine timeline ever clamps a reservation. The per-card dynamics
      are therefore one deterministic trajectory repeated N times — so
      this engine simulates one representative card (collectives join
      all cards at once by symmetry) and replicates each emitted event
      across cards in the heap order ``(t, idx, c)`` the scalar loop
      pops them in. Stall accumulation repeats the same float additions
      in the same sequence.
    * **The event loop never needs to poll.** Per-op costs are hoisted
      into flat lists once (no ``CostParts`` attribute walks, no
      ``ScheduledOp.flops`` recomputation, no enum-keyed dicts in the
      hot path), queues are per-engine index lists with head cursors,
      and each epoch advances through
      :meth:`~repro.hw.bandwidth.BandwidthArbiter.drain_until` — the
      arbiter's closed-form array computation over its (remaining,
      rate) vectors — instead of per-event candidate scans.

    The phase structure (finishes, then timers, then starts, repeated
    to fixpoint before each clock advance) is kept identical to
    :func:`_fluid_execute`, which is what makes the integration
    boundaries — and hence every accumulated float — match the scalar
    reference exactly.
    """
    ncards = len(cards)
    cost = cards[0].cost_model
    bandwidth = cost.mem_bandwidth
    if prep is None:
        prep = _schedule_prep(schedule, cost)
    plans = plans or {}
    n = len(schedule.ops)
    consumers_of = prep.consumers_of
    blocked = list(prep.blocked_proto)

    # per-op constants, hoisted out of the loop (cached on the schedule)
    compute_l = prep.compute
    hbm_l = prep.hbm
    serial_l = prep.serial
    nominal_l = prep.nominal
    cap_l = prep.cap
    flops_l = prep.flops
    label_l = prep.labels
    src_l = prep.srcs
    scope_l = prep.scopes
    proto_l = prep.protos

    # per-engine issue queues for the representative card, scanned in
    # the same first-appearance order the scalar loop's dict preserves
    eng_l = prep.eng
    engine_of = prep.engines
    nengines = len(engine_of)
    queue_of: list[list[int]] = [[] for _ in range(nengines)]
    for idx in order:
        queue_of[eng_l[idx]].append(idx)
    scan = [e for e in range(nengines) if queue_of[e]]
    head = [0] * nengines
    busy = [False] * nengines
    card_timelines = [
        [card.timelines[engine] for engine in engine_of] for card in cards
    ]
    replicas = range(1, ncards)
    new_event = TraceEvent.__new__
    # twin cards replay card 0's reservation stream in bulk after the
    # loop (the loop itself never reads a twin timeline)
    rep_timelines = card_timelines[0]
    marks = [tl.interval_count for tl in rep_timelines]

    # the loop's own HBM arbiter is dropped when the run ends, so the
    # diagnostic rate log would never be read (the fabric arbiter,
    # whose log feeds fabric_busy_us, is constructed by the caller)
    arbiter = BandwidthArbiter(bandwidth, shared=shared, log_rates=False)
    start_of = [0.0] * n
    compute_end = [0.0] * n
    bytes_end = [0.0] * n
    pending_finish: list[tuple[float, int]] = []
    coll_join_at: dict[int, float] = {}
    coll_step: dict[int, int] = {}
    timers: list[tuple[float, int]] = []
    events: list[TraceEvent] = []
    stall_total = 0.0
    done = 0
    now = t0

    # per-op plan lookup as a flat list (None-heavy; dict.get per start
    # shows up at this call rate)
    plan_l = [plans.get(i) for i in range(n)] if plans else [None] * n

    def start(idx: int) -> None:
        e = eng_l[idx]
        busy[e] = True
        plan = plan_l[idx]
        if plan is not None and plan.steps:
            # all cards are at the same point, so the last join is now
            coll_join_at[idx] = now
            coll_step[idx] = 0
            heapq.heappush(timers, (now + plan.steps[0].latency_us, idx))
            return
        start_of[idx] = now
        end = now + compute_l[idx]
        compute_end[idx] = end
        if hbm_l[idx] > 0:
            # ``now`` is always an epoch boundary the arbiter has just
            # integrated to, so the cheap admission applies
            arbiter.admit_clocked(idx, hbm_l[idx], now, rate_cap=cap_l[idx])
        else:
            bytes_end[idx] = now
            heapq.heappush(pending_finish, (end + serial_l[idx], idx))

    def finish_op(idx: int, t: float) -> None:
        nonlocal stall_total
        e = eng_l[idx]
        busy[e] = False
        for consumer in consumers_of[idx]:
            blocked[consumer] -= 1
        begun = start_of[idx]
        duration = t - begun
        ce = compute_end[idx]
        be = bytes_end[idx]
        active = (ce if ce > be else be) - begun
        stall = active - nominal_l[idx]
        if stall < 0.0:
            stall = 0.0
        hbm = hbm_l[idx]
        achieved_gbps = 0.0
        if hbm > 0:
            span_us = bytes_end[idx] - begun
            if span_us > 0:
                achieved_gbps = hbm / (span_us * 1e-6) / 1e9
        interval = rep_timelines[e].reserve_started(
            begun, duration, label_l[idx]
        )
        # copy the op's prebuilt field template (the per-execution
        # fields overwrite in place); each event's (empty) ``__dict__``
        # then copies the copy, so bumping ``card`` between replicas is
        # safe and no per-replica kwargs dict is ever built
        proto = dict(proto_l[idx])
        proto["start_us"] = interval.start
        proto["dur_us"] = duration
        proto["hbm_gbps"] = achieved_gbps
        proto["contention_stall_us"] = stall
        ev0 = new_event(TraceEvent)
        ev0.__dict__.update(proto)
        stall_total += stall
        events.append(ev0)
        for c in replicas:
            # stall adds stay one-per-card, in card order, exactly as
            # the scalar loop's per-card finish_op calls accumulate them
            stall_total += stall
            proto["card"] = c
            ev = new_event(TraceEvent)
            ev.__dict__.update(proto)
            events.append(ev)

    def begin_drain(idx: int) -> None:
        plan = plans[idx]
        step = plan.steps[coll_step[idx]]
        if step.wire_bytes > 0:
            assert fabric is not None, "collective steps need a fabric"
            if step.tier != "intra":
                fabric.admit(
                    idx, step.wire_bytes, now,
                    rate_cap=plan.inter_rate_cap, tier="inter",
                )
            else:
                fabric.admit(idx, step.wire_bytes, now, rate_cap=plan.rate_cap)
        else:
            step_complete(idx, now)

    def step_complete(idx: int, t: float) -> None:
        plan = plans[idx]
        coll_step[idx] += 1
        if coll_step[idx] < len(plan.steps):
            heapq.heappush(
                timers, (t + plan.steps[coll_step[idx]].latency_us, idx)
            )
        else:
            finish_collective(idx, t)

    def finish_collective(idx: int, t: float) -> None:
        nonlocal stall_total, done
        plan = plans[idx]
        e = eng_l[idx]
        busy[e] = False
        begun = coll_join_at[idx]
        stall = max(0.0, (t - begun) - plan.analytic_time_us)
        stall_total += stall
        label = label_l[idx]
        interval = rep_timelines[e].reserve_started(begun, t - begun, label)
        ev0 = fast_trace_event(
            label, engine_of[e], begun, t - begun,
            src=src_l[idx], scope=scope_l[idx],
            contention_stall_us=stall, card=0,
        )
        events.append(ev0)
        # only card 0 carries the collective's stall attribution
        proto = dict(ev0.__dict__)
        proto["contention_stall_us"] = 0.0
        for c in replicas:
            proto["card"] = c
            ev = new_event(TraceEvent)
            ev.__dict__.update(proto)
            events.append(ev)
        for consumer in consumers_of[idx]:
            blocked[consumer] -= 1
        done += 1

    heappop = heapq.heappop
    heappush = heapq.heappush
    drain_until = arbiter.drain_until
    while done < n:
        # ``now`` is constant through the whole issue fixpoint, so the
        # event-time cutoff is too
        cut = now + _TIME_EPS_US
        progress = True
        while progress:
            progress = False
            while pending_finish and pending_finish[0][0] <= cut:
                t, idx = heappop(pending_finish)
                finish_op(idx, t)
                done += 1
                progress = True
            while timers and timers[0][0] <= cut:
                _, idx = heappop(timers)
                begin_drain(idx)
                progress = True
            for e in scan:
                if busy[e]:
                    continue
                q = queue_of[e]
                h = head[e]
                if h < len(q) and blocked[q[h]] == 0:
                    head[e] = h + 1
                    start(q[h])
                    progress = True
        if done == n:
            break
        ext = pending_finish[0][0] if pending_finish else None
        if timers:
            tt = timers[0][0]
            if ext is None or tt < ext:
                ext = tt
        # an idle fabric has no completion to offer and nothing to
        # integrate — its clock resyncs on the next admit
        fabric_live = fabric is not None and fabric.active
        if fabric_live:
            next_wire = fabric.next_completion_us()
            if next_wire is not None and (ext is None or next_wire < ext):
                ext = next_wire
        try:
            epoch_end, completed = drain_until(
                () if ext is None else (ext,)
            )
        except ExecutionError as exc:
            raise ExecutionError(
                "deadlock: no ready ops but schedule incomplete "
                "(cyclic dependencies?)"
            ) from exc
        if epoch_end > now:
            now = epoch_end
        if len(completed) > 1:
            completed = sorted(completed)
        for idx in completed:
            bytes_end[idx] = now
            ce = compute_end[idx]
            heappush(
                pending_finish,
                ((ce if ce > now else now) + serial_l[idx], idx),
            )
        if fabric_live:
            for idx in sorted(fabric.advance(now)):
                step_complete(idx, now)
    for e, tl0 in enumerate(rep_timelines):
        added = tl0.intervals_since(marks[e])
        if added:
            for c in replicas:
                card_timelines[c][e].mirror_many(added)
    return events, stall_total


#: NIC op kinds the runtime prices through fabric plans
_COLLECTIVE_SRCS = (
    "all_reduce", "all_gather", "broadcast", "reduce_scatter",
    "send", "recv",
)


def collective_plans(
    schedule: Schedule, num_cards: int, interconnect, *, boxes: int = 1
) -> dict[int, CollectivePlan]:
    """Fabric plans for every collective op in ``schedule``.

    Keyed by schedule index. The payload is the per-card buffer size
    the compiler recorded on the op's work item, so plans depend only
    on the schedule and the box — the schedule itself stays
    card-count independent (one recipe serves every population).

    ``num_cards`` is the *total* population. Ops scoped ``"tp"`` ring
    over their ``tp``-wide group; since every one of the
    ``num_cards // tp`` groups runs the same collective at the same
    schedule point, the concurrent copies are priced by scaling the
    group plan's wire bytes and rate caps together
    (:func:`~repro.hw.interconnect.scale_plan`). Data-parallel
    (``"ddp"``) collectives ring over one rank per TP group; with
    ``boxes > 1`` they take the two-tier hierarchical plan. Pipeline
    ``send``/``recv`` boundary ops become point-to-point hops, over
    Ethernet when stages land in different boxes. With ``boxes=1`` and
    no TP/PP ops the plans are exactly the flat single-box ones.
    """
    plans: dict[int, CollectivePlan] = {}
    tp = int(
        (schedule.stats.get("tensor_parallel") or {}).get("tp", 1) or 1
    )
    for op in schedule.ops:
        if op.engine is not EngineKind.NIC:
            continue
        if op.src not in _COLLECTIVE_SRCS:
            continue
        payload = int(op.items[0].bytes_read)
        if op.src in ("send", "recv"):
            plans[op.index] = p2p_plan(
                payload, interconnect, inter=boxes > 1
            )
            continue
        if op.scope == "tp" and tp > 1:
            group = collective_plan(
                op.src, min(tp, num_cards), payload, interconnect
            )
            plans[op.index] = scale_plan(group, max(1, num_cards // tp))
            continue
        group_cards = max(1, num_cards // tp)
        if boxes > 1:
            b_eff = min(boxes, group_cards)
            plan = hierarchical_collective_plan(
                op.src, b_eff, max(1, group_cards // b_eff), payload,
                interconnect,
            )
        else:
            plan = collective_plan(
                op.src, group_cards, payload, interconnect
            )
        plans[op.index] = scale_plan(plan, tp)
    return plans


class HLS1Runtime:
    """Executes one data-parallel schedule on every card of an HLS-1.

    Each card replays the same compiled schedule (same issue order) on
    its own clock and its own HBM arbiter; collective ops synchronize
    the cards through the shared fabric. With ``num_cards=1`` the run
    is byte-identical to :class:`Runtime` on a single
    :class:`~repro.hw.device.GaudiDevice` — every collective plan is
    empty, so the same code path executes the same arithmetic.
    """

    def __init__(self, system: HLS1Device | None = None):
        self.system = system or HLS1Device()

    def execute(
        self,
        schedule: Schedule,
        *,
        reorder: bool = False,
        hbm_contention: bool = True,
        scheduler: str | None = None,
        engine: str | None = None,
    ) -> ExecutionResult:
        """Run ``schedule`` on all cards; clocks keep advancing.

        ``scheduler`` and ``engine`` resolve exactly as in
        :meth:`Runtime.execute`.
        """
        pinfo = schedule.stats.get("pipeline")
        if pinfo and int(pinfo.get("pp", 1) or 1) > 1:
            return self._execute_pipelined(
                schedule, pinfo, reorder=reorder,
                hbm_contention=hbm_contention, scheduler=scheduler,
                engine=engine,
            )
        cards = self.system.cards
        boxes = self.system.boxes
        t0 = max(card.now for card in cards)
        cost = cards[0].cost_model
        plans = collective_plans(
            schedule, self.system.num_cards, self.system.interconnect,
            boxes=boxes,
        )
        prep = _schedule_prep(schedule, cost)
        durations = [
            plans[op.index].analytic_time_us
            if op.index in plans and plans[op.index].steps
            else prep.durations[op.index]
            for op in schedule.ops
        ]
        order = Runtime(cards[0])._plan_order(
            schedule, durations, t0, reorder=reorder, scheduler=scheduler
        )

        fabric_busy = 0.0
        if hbm_contention:
            if boxes > 1:
                # hierarchical plans route each step onto its tier; a
                # single-box run keeps the historical flat arbiter so
                # its traces stay byte-identical
                fabric = TwoTierFabric(
                    self.system.fabric_bandwidth,
                    self.system.inter_fabric_bandwidth,
                )
            else:
                fabric = BandwidthArbiter(
                    self.system.fabric_bandwidth, shared=True
                )
            if _resolve_engine(engine) == "vector":
                events, stall_total = _fluid_execute_vector(
                    cards, schedule, order, t0,
                    shared=True, fabric=fabric, plans=plans, prep=prep,
                )
            else:
                events, stall_total = _fluid_execute(
                    cards, schedule, order, t0,
                    shared=True, fabric=fabric, plans=plans,
                    parts=prep.parts,
                )
            if boxes > 1:
                fabric_busy = fabric.busy_us()
            else:
                fabric_busy = sum(
                    seg.end_us - seg.start_us
                    for seg in fabric.rate_log
                    if seg.total_rate > 0
                )
        else:
            # Uncontended reference: per-card closed-form replay with
            # collectives at their analytic duration. Cards are
            # symmetric (same schedule, same config), so independent
            # replays produce the synchronized timing directly.
            events = []
            stall_total = 0.0
            for c, card in enumerate(cards):
                replayed = Runtime(card)._replay(
                    schedule, order, durations, t0
                )
                events.extend(
                    dataclasses.replace(ev, card=c) for ev in replayed
                )
        timeline = Timeline(events, name=schedule.graph.name, validate=False)
        # card clocks advance exactly to the last event end (see
        # Runtime.execute); with no events they sit at t0
        total = max(card.now for card in cards)
        return ExecutionResult(
            timeline=timeline,
            total_time_us=total - t0,
            start_offset_us=t0,
            schedule=schedule,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            issue_order=order,
            contention_stall_us=stall_total,
            num_cards=self.system.num_cards,
            exposed_comm_us=timeline.exposed_comm_us(card=0),
            fabric_busy_us=fabric_busy,
        )

    def _stage_schedule(
        self,
        schedule: Schedule,
        stage_of: list[int],
        stage: int,
        *,
        drop_tail: bool = False,
    ) -> Schedule:
        """The reindexed sub-schedule of ``stage``'s ops.

        Cross-stage deps vanish (the fill/drain composition accounts
        for inter-stage waiting); with ``drop_tail`` the stage's DDP
        gradient collectives and their downstream closure (the
        optimizer slice) are removed too — that variant times one
        steady-state microbatch.
        """
        keep = [
            op for i, op in enumerate(schedule.ops) if stage_of[i] == stage
        ]
        if drop_tail:
            consumers: dict[int, list[int]] = {}
            for op in keep:
                for dep in op.deps:
                    consumers.setdefault(dep, []).append(op.index)
            tail: set[int] = set()
            frontier = [
                op.index for op in keep
                if op.engine is EngineKind.NIC and op.scope == "ddp"
            ]
            while frontier:
                idx = frontier.pop()
                if idx in tail:
                    continue
                tail.add(idx)
                frontier.extend(consumers.get(idx, ()))
            keep = [op for op in keep if op.index not in tail]
        remap = {op.index: i for i, op in enumerate(keep)}
        ops = []
        for op in keep:
            clone = op.clone()
            clone.index = remap[op.index]
            clone.deps = sorted(
                remap[d] for d in op.deps if d in remap
            )
            ops.append(clone)
        stats = {
            k: v for k, v in schedule.stats.items() if k != "pipeline"
        }
        return Schedule(
            graph=schedule.graph, ops=ops, memory=schedule.memory,
            stats=stats,
        )

    def _execute_pipelined(
        self,
        schedule: Schedule,
        pinfo: dict,
        *,
        reorder: bool,
        hbm_contention: bool,
        scheduler: str | None,
        engine: str | None,
    ) -> ExecutionResult:
        """GPipe fill/drain composition of the per-stage sub-schedules.

        The card pool splits evenly over the ``pp`` stages; each stage's
        sub-schedule is re-timed on a fresh device slice of its own
        size (multi-box slices keep the two-tier fabric). One
        microbatch costs the tail-free stage time; the pipeline runs
        ``microbatches + pp - 1`` slots of the slowest stage, then pays
        the slowest per-stage gradient/optimizer tail once:

        ``total = (m + pp - 1) * max_s T_mb(s) + max_s tail(s)``

        The returned timeline holds one microbatch per stage, stage
        ``s``'s events shifted onto cards ``[s * stage_cards, ...)``.
        """
        pp = int(pinfo["pp"])
        microbatches = int(pinfo.get("microbatches", pp) or pp)
        stage_of = list(pinfo["stage_of"])
        if len(stage_of) != len(schedule.ops):
            raise ExecutionError(
                "pipeline stage map does not match the schedule "
                f"({len(stage_of)} stages for {len(schedule.ops)} ops)"
            )
        total_cards = self.system.num_cards
        if total_cards % pp:
            raise ExecutionError(
                f"{total_cards} cards do not split over {pp} pipeline "
                "stages"
            )
        stage_cards = total_cards // pp
        cards_per_box = self.system.cards_per_box
        if stage_cards >= cards_per_box:
            stage_config = dataclasses.replace(
                self.system.config,
                boxes=stage_cards // cards_per_box,
            )
        else:
            stage_config = dataclasses.replace(
                self.system.config, num_cards=stage_cards, boxes=1
            )

        events: list[TraceEvent] = []
        mb_times: list[float] = []
        tail_times: list[float] = []
        stall_total = 0.0
        fabric_busy = 0.0
        exposed = 0.0
        kwargs = dict(
            reorder=reorder, hbm_contention=hbm_contention,
            scheduler=scheduler, engine=engine,
        )
        for stage in range(pp):
            full = self._stage_schedule(schedule, stage_of, stage)
            body = self._stage_schedule(
                schedule, stage_of, stage, drop_tail=True
            )
            # each run starts a fresh device slice at t=0, so the full
            # stage time minus the tail-free time isolates the tail
            t_mb = 0.0
            if body.ops:
                t_mb = HLS1Runtime(HLS1Device(stage_config)).execute(
                    body, **kwargs
                ).total_time_us
            t_full = t_mb
            if full.ops:
                result = HLS1Runtime(HLS1Device(stage_config)).execute(
                    full, **kwargs
                )
                t_full = result.total_time_us
                stall_total += result.contention_stall_us
                fabric_busy += result.fabric_busy_us
                exposed = max(exposed, result.exposed_comm_us)
                for ev in result.timeline.events:
                    events.append(
                        dataclasses.replace(
                            ev, card=ev.card + stage * stage_cards
                        )
                    )
            mb_times.append(t_mb)
            tail_times.append(max(0.0, t_full - t_mb))
        slot = max(mb_times) if mb_times else 0.0
        total = (microbatches + pp - 1) * slot + (
            max(tail_times) if tail_times else 0.0
        )
        timeline = Timeline(
            events, name=schedule.graph.name, validate=False
        )
        return ExecutionResult(
            timeline=timeline,
            total_time_us=total,
            start_offset_us=0.0,
            schedule=schedule,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            contention_stall_us=stall_total,
            num_cards=total_cards,
            exposed_comm_us=exposed,
            fabric_busy_us=fabric_busy,
        )
