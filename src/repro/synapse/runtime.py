"""Runtime: execute a compiled schedule on a simulated device.

Two issue disciplines, selected by
:attr:`~repro.synapse.compiler.CompilerOptions.reorder`:

* **in-order** (default, what SynapseAI does): each engine issues its
  queue strictly in program order; an op starts when its engine is free
  AND its producers are done. Engines still overlap *across* queues —
  this is what produces both the good overlap of Fig 5 and the MME idle
  gaps of Figs 4/6/8/9.
* **reorder** (the ablation): an engine may start any *ready* op,
  earliest-ready first (ties by program order) — a greedy list
  scheduler standing in for a compiler that "detect[s] independence"
  (§3.3's Performer discussion). Issue order is planned once from the
  uncontended durations (a lazy min-heap keyed on (earliest start,
  program order)), then executed under whichever memory model is
  active.

Two memory models, selected by
:attr:`~repro.synapse.compiler.CompilerOptions.hbm_contention`:

* **contended** (default): HBM bandwidth is one shared resource. Each
  op's cost decomposes (:func:`op_cost_parts`) into a compute floor
  that runs at full speed regardless of traffic, HBM bytes that drain
  through the device-wide :class:`~repro.hw.bandwidth.BandwidthArbiter`
  at whatever share the arbiter grants, and a serial launch/fixed
  tail. The op finishes at ``max(compute done, bytes drained) +
  serial``; overlapping memory-bound phases stretch each other exactly
  as co-executing engines do on silicon.
* **uncontended** (``hbm_contention=False``, the pre-contention model):
  every engine sees the full effective bandwidth; op durations are the
  closed-form :func:`op_duration_us` and the timeline is reproduced
  event for event.

Durations come from the device's calibrated cost models; fused chains
sum member compute time and pay HBM traffic only for chain-external
reads (all members') plus the final write.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..hw.bandwidth import BandwidthArbiter
from ..hw.costmodel import CostModel, CostParts, EngineKind, WorkItem
from ..hw.device import GaudiDevice
from ..util.errors import ExecutionError
from ..util.units import s_to_us
from .schedule import Schedule, ScheduledOp
from .trace import Timeline, TraceEvent

#: slack when deciding an event time has been reached (us)
_TIME_EPS_US = 1e-9


def fused_chain_traffic_bytes(op: ScheduledOp) -> int:
    """HBM bytes a fused chain moves: all external reads + final write.

    Every member's chain-external reads count (the compiler records
    them in ``external_read_bytes``) — a middle op reading a graph
    input is real traffic even though its predecessor's output stayed
    on-chip. For chains built without that annotation, fall back to the
    first member's reads (the historical approximation).
    """
    reads = op.external_read_bytes
    if reads is None:
        reads = op.items[0].bytes_read
    return reads + op.items[-1].bytes_written


def op_duration_us(cost: CostModel, op: ScheduledOp) -> float:
    """Uncontended duration of a scheduled op (single or fused chain)."""
    if not op.items:
        raise ExecutionError(f"scheduled op {op.label!r} has no work items")
    if len(op.items) == 1:
        return cost.time_us(op.engine, op.items[0])
    # Fused chain: members compute back to back on-chip; HBM traffic is
    # only the chain's external reads + final write; one launch total.
    if op.engine is not EngineKind.TPC:
        raise ExecutionError(f"fused op {op.label!r} must be on TPC")
    launch = cost.config.tpc.launch_overhead_us
    compute = 0.0
    for item in op.items:
        bare = WorkItem(
            item.name, item.op_class, flops=item.flops, elements=item.elements,
            dtype=item.dtype, special_fn=item.special_fn,
        )
        compute += cost.time_us(op.engine, bare) - launch
    traffic = fused_chain_traffic_bytes(op)
    mem = s_to_us(traffic / cost.config.hbm.effective_bandwidth)
    fixed = sum(item.fixed_time_us for item in op.items)
    return max(compute, mem) + launch + fixed


def op_cost_parts(cost: CostModel, op: ScheduledOp) -> CostParts:
    """Decomposed cost of a scheduled op, for the contended runtime.

    Mirrors :func:`op_duration_us`: recomposing these parts at the full
    effective bandwidth reproduces the uncontended duration.
    """
    if not op.items:
        raise ExecutionError(f"scheduled op {op.label!r} has no work items")
    if len(op.items) == 1:
        return cost.cost_parts(op.engine, op.items[0])
    if op.engine is not EngineKind.TPC:
        raise ExecutionError(f"fused op {op.label!r} must be on TPC")
    launch = cost.config.tpc.launch_overhead_us
    compute = 0.0
    for item in op.items:
        bare = WorkItem(
            item.name, item.op_class, flops=item.flops, elements=item.elements,
            dtype=item.dtype, special_fn=item.special_fn,
        )
        compute += cost.time_us(op.engine, bare) - launch
    return CostParts(
        compute_us=compute,
        hbm_bytes=float(fused_chain_traffic_bytes(op)),
        launch_us=launch,
        fixed_us=sum(item.fixed_time_us for item in op.items),
    )


@dataclass
class ExecutionResult:
    """Outcome of one schedule execution."""

    timeline: Timeline
    total_time_us: float
    start_offset_us: float
    schedule: Schedule
    peak_hbm_bytes: int = 0
    issue_order: list[int] = field(default_factory=list)
    #: time ops spent waiting on HBM beyond their uncontended drain
    #: (always 0.0 when executed with ``hbm_contention=False``)
    contention_stall_us: float = 0.0


class Runtime:
    """Executes compiled schedules on a :class:`GaudiDevice`."""

    def __init__(self, device: GaudiDevice | None = None):
        self.device = device or GaudiDevice()

    def execute(
        self,
        schedule: Schedule,
        *,
        reorder: bool = False,
        hbm_contention: bool = True,
    ) -> ExecutionResult:
        """Run ``schedule``; the device clock keeps advancing across calls."""
        start_offset = self.device.now
        cost = self.device.cost_model
        durations = [op_duration_us(cost, op) for op in schedule.ops]
        if reorder:
            order = self._plan_reorder(schedule, durations, start_offset)
        else:
            order = [op.index for op in schedule.ops]
        if hbm_contention:
            events, stall_total = self._execute_contended(
                schedule, order, start_offset
            )
        else:
            events = self._replay(schedule, order, durations, start_offset)
            stall_total = 0.0
        timeline = Timeline(events, name=schedule.graph.name)
        total = max((ev.end_us for ev in events), default=start_offset)
        return ExecutionResult(
            timeline=timeline,
            total_time_us=total - start_offset,
            start_offset_us=start_offset,
            schedule=schedule,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            issue_order=order,
            contention_stall_us=stall_total,
        )

    # -- uncontended execution ------------------------------------------------

    def _record(
        self, op: ScheduledOp, ready: float, duration: float
    ) -> TraceEvent:
        interval = self.device.timeline(op.engine).reserve(
            ready, duration, op.label
        )
        return TraceEvent(
            name=op.label,
            engine=op.engine,
            start_us=interval.start,
            dur_us=duration,
            src=op.src,
            scope=op.scope,
            flops=op.flops,
        )

    def _replay(
        self,
        schedule: Schedule,
        order: list[int],
        durations: list[float],
        t0: float,
    ) -> list[TraceEvent]:
        """Issue ops in ``order`` with closed-form durations.

        With ``order`` equal to program order this is the in-order
        discipline; with a planned order it replays the reorder
        schedule. Either way each op starts at
        ``max(producers done, engine free)``.
        """
        finish: dict[int, float] = {}
        events: list[TraceEvent] = []
        for idx in order:
            op = schedule.ops[idx]
            ready = max((finish[d] for d in op.deps), default=t0)
            event = self._record(op, ready, durations[idx])
            finish[idx] = event.end_us
            events.append(event)
        return events

    # -- reorder planning -----------------------------------------------------

    @staticmethod
    def _dep_graph(
        schedule: Schedule,
    ) -> tuple[list[list[int]], list[int]]:
        """(consumers per op, number of distinct deps per op)."""
        n = len(schedule.ops)
        consumers_of: list[list[int]] = [[] for _ in range(n)]
        blocked_by = [0] * n
        for op in schedule.ops:
            deps = set(op.deps)
            blocked_by[op.index] = len(deps)
            for dep in deps:
                consumers_of[dep].append(op.index)
        return consumers_of, blocked_by

    def _plan_reorder(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> list[int]:
        """Greedy earliest-start issue order (ties by program order).

        A lazy min-heap keyed on ``(earliest start, index)``: an entry's
        key is computed against its engine's free time at push, which
        only grows, so stored keys are lower bounds. Popping the min
        and re-pushing when stale selects exactly the op the former
        O(n²) ready-set scan selected, in O(n log n).
        """
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)
        free = {
            op.engine: self.device.timeline(op.engine).free_at
            for op in schedule.ops
        }
        finish: dict[int, float] = {}
        ready_time: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for i in range(n):
            if blocked_by[i] == 0:
                ready_time[i] = t0
                heapq.heappush(
                    heap, (max(t0, free[schedule.ops[i].engine]), i)
                )
        order: list[int] = []
        while len(order) < n:
            if not heap:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            start, idx = heapq.heappop(heap)
            op = schedule.ops[idx]
            current = max(ready_time[idx], free[op.engine])
            if current > start:
                # the engine moved on since this key was computed
                heapq.heappush(heap, (current, idx))
                continue
            ready_time.pop(idx)
            finish[idx] = current + durations[idx]
            free[op.engine] = finish[idx]
            order.append(idx)
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    r = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
                    ready_time[consumer] = r
                    eng = schedule.ops[consumer].engine
                    heapq.heappush(heap, (max(r, free[eng]), consumer))
        return order

    def _plan_reorder_scan(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> list[int]:
        """Reference O(n²) planner (the pre-heap implementation).

        Kept only so tests can assert the heap planner reproduces its
        selection byte for byte on benchmark workloads.
        """
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)
        free = {
            op.engine: self.device.timeline(op.engine).free_at
            for op in schedule.ops
        }
        finish: dict[int, float] = {}
        ready_time = {i: t0 for i in range(n) if blocked_by[i] == 0}
        order: list[int] = []
        while len(order) < n:
            best: tuple[float, int] | None = None
            for idx, r in ready_time.items():
                op = schedule.ops[idx]
                key = (max(r, free[op.engine]), idx)
                if best is None or key < best:
                    best = key
            if best is None:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            _, idx = best
            op = schedule.ops[idx]
            start = max(ready_time.pop(idx), free[op.engine])
            finish[idx] = start + durations[idx]
            free[op.engine] = finish[idx]
            order.append(idx)
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    ready_time[consumer] = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
        return order

    # -- contended execution --------------------------------------------------

    def _execute_contended(
        self,
        schedule: Schedule,
        order: list[int],
        t0: float,
        *,
        shared: bool = True,
    ) -> tuple[list[TraceEvent], float]:
        """Fluid discrete-event execution against the shared HBM.

        Per-engine queues issue in ``order``; a running op's traffic
        drains through the arbiter at its granted share while its
        compute floor runs in parallel; the op occupies its engine
        until ``max(compute, drain) + serial tail``. ``shared=False``
        grants every drainer its full uncontended rate — same event
        machinery, pre-contention timings (used by equivalence tests).
        """
        cost = self.device.cost_model
        bandwidth = cost.config.hbm.effective_bandwidth
        parts = [op_cost_parts(cost, op) for op in schedule.ops]
        arbiter = BandwidthArbiter(bandwidth, shared=shared)
        n = len(schedule.ops)
        consumers_of, blocked_by = self._dep_graph(schedule)

        queues: dict[EngineKind, deque[int]] = {}
        for idx in order:
            queues.setdefault(schedule.ops[idx].engine, deque()).append(idx)
        engine_busy = {engine: False for engine in queues}

        start_of: dict[int, float] = {}
        compute_end: dict[int, float] = {}
        bytes_end: dict[int, float] = {}
        finish: dict[int, float] = {}
        pending_finish: list[tuple[float, int]] = []
        events: list[TraceEvent] = []
        stall_total = 0.0
        now = t0

        def start(idx: int) -> None:
            op = schedule.ops[idx]
            p = parts[idx]
            engine_busy[op.engine] = True
            start_of[idx] = now
            compute_end[idx] = now + p.compute_us
            if p.hbm_bytes > 0:
                arbiter.admit(idx, p.hbm_bytes, now, rate_cap=p.rate_cap)
            else:
                bytes_end[idx] = now
                heapq.heappush(
                    pending_finish, (compute_end[idx] + p.serial_us, idx)
                )

        def finish_op(idx: int, t: float) -> None:
            nonlocal stall_total
            op = schedule.ops[idx]
            p = parts[idx]
            engine_busy[op.engine] = False
            finish[idx] = t
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
            begun = start_of[idx]
            duration = t - begun
            active = max(compute_end[idx], bytes_end[idx]) - begun
            nominal = max(p.compute_us, p.uncontended_mem_us(bandwidth))
            stall = max(0.0, active - nominal)
            stall_total += stall
            achieved_gbps = 0.0
            if p.hbm_bytes > 0:
                span_us = bytes_end[idx] - begun
                if span_us > 0:
                    achieved_gbps = p.hbm_bytes / (span_us * 1e-6) / 1e9
            interval = self.device.timeline(op.engine).reserve(
                begun, duration, op.label
            )
            events.append(TraceEvent(
                name=op.label,
                engine=op.engine,
                start_us=interval.start,
                dur_us=duration,
                src=op.src,
                scope=op.scope,
                flops=op.flops,
                hbm_bytes=p.hbm_bytes,
                hbm_gbps=achieved_gbps,
                contention_stall_us=stall,
            ))

        done = 0
        while done < n:
            progress = True
            while progress:
                progress = False
                while (
                    pending_finish
                    and pending_finish[0][0] <= now + _TIME_EPS_US
                ):
                    t, idx = heapq.heappop(pending_finish)
                    finish_op(idx, t)
                    done += 1
                    progress = True
                for engine, queue in queues.items():
                    if engine_busy[engine] or not queue:
                        continue
                    if blocked_by[queue[0]] == 0:
                        start(queue.popleft())
                        progress = True
            if done == n:
                break
            candidates = []
            next_drain = arbiter.next_completion_us()
            if next_drain is not None:
                candidates.append(next_drain)
            if pending_finish:
                candidates.append(pending_finish[0][0])
            if not candidates:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            now = max(now, min(candidates))
            for idx in sorted(arbiter.advance(now)):
                bytes_end[idx] = now
                heapq.heappush(
                    pending_finish,
                    (max(compute_end[idx], now) + parts[idx].serial_us, idx),
                )
        return events, stall_total
