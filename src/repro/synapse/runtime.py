"""Runtime: execute a compiled schedule on a simulated device.

Two issue disciplines, selected by
:attr:`~repro.synapse.compiler.CompilerOptions.reorder`:

* **in-order** (default, what SynapseAI does): each engine issues its
  queue strictly in program order; an op starts when its engine is free
  AND its producers are done. Engines still overlap *across* queues —
  this is what produces both the good overlap of Fig 5 and the MME idle
  gaps of Figs 4/6/8/9.
* **reorder** (the ablation): an engine may start any *ready* op,
  earliest-ready first (ties by program order) — a greedy list
  scheduler standing in for a compiler that "detect[s] independence"
  (§3.3's Performer discussion).

Durations come from the device's calibrated cost models; fused chains
sum member compute time and pay HBM traffic only at the chain edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.costmodel import CostModel, EngineKind, WorkItem
from ..hw.device import GaudiDevice
from ..util.errors import ExecutionError
from ..util.units import s_to_us
from .schedule import Schedule, ScheduledOp
from .trace import Timeline, TraceEvent


def op_duration_us(cost: CostModel, op: ScheduledOp) -> float:
    """Duration of a scheduled op (single or fused chain)."""
    if not op.items:
        raise ExecutionError(f"scheduled op {op.label!r} has no work items")
    if len(op.items) == 1:
        return cost.time_us(op.engine, op.items[0])
    # Fused chain: members compute back to back on-chip; HBM traffic is
    # only the chain's external reads + final write; one launch total.
    if op.engine is not EngineKind.TPC:
        raise ExecutionError(f"fused op {op.label!r} must be on TPC")
    launch = cost.config.tpc.launch_overhead_us
    compute = 0.0
    for item in op.items:
        bare = WorkItem(
            item.name, item.op_class, flops=item.flops, elements=item.elements,
            dtype=item.dtype, special_fn=item.special_fn,
        )
        compute += cost.time_us(op.engine, bare) - launch
    first, last = op.items[0], op.items[-1]
    traffic = first.bytes_read + last.bytes_written
    mem = s_to_us(traffic / cost.config.hbm.effective_bandwidth)
    fixed = sum(item.fixed_time_us for item in op.items)
    return max(compute, mem) + launch + fixed


@dataclass
class ExecutionResult:
    """Outcome of one schedule execution."""

    timeline: Timeline
    total_time_us: float
    start_offset_us: float
    schedule: Schedule
    peak_hbm_bytes: int = 0
    issue_order: list[int] = field(default_factory=list)


class Runtime:
    """Executes compiled schedules on a :class:`GaudiDevice`."""

    def __init__(self, device: GaudiDevice | None = None):
        self.device = device or GaudiDevice()

    def execute(
        self, schedule: Schedule, *, reorder: bool = False
    ) -> ExecutionResult:
        """Run ``schedule``; the device clock keeps advancing across calls."""
        start_offset = self.device.now
        cost = self.device.cost_model
        durations = [op_duration_us(cost, op) for op in schedule.ops]
        if reorder:
            events, order = self._execute_reorder(schedule, durations, start_offset)
        else:
            events, order = self._execute_in_order(schedule, durations, start_offset)
        timeline = Timeline(events, name=schedule.graph.name)
        total = max((ev.end_us for ev in events), default=start_offset)
        return ExecutionResult(
            timeline=timeline,
            total_time_us=total - start_offset,
            start_offset_us=start_offset,
            schedule=schedule,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            issue_order=order,
        )

    # -- helpers -------------------------------------------------------------

    def _record(
        self, op: ScheduledOp, ready: float, duration: float
    ) -> TraceEvent:
        interval = self.device.timeline(op.engine).reserve(
            ready, duration, op.label
        )
        return TraceEvent(
            name=op.label,
            engine=op.engine,
            start_us=interval.start,
            dur_us=duration,
            src=op.src,
            scope=op.scope,
            flops=op.flops,
        )

    def _execute_in_order(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> tuple[list[TraceEvent], list[int]]:
        finish: dict[int, float] = {}
        events: list[TraceEvent] = []
        for op in schedule.ops:
            ready = max((finish[d] for d in op.deps), default=t0)
            event = self._record(op, ready, durations[op.index])
            finish[op.index] = event.end_us
            events.append(event)
        return events, [op.index for op in schedule.ops]

    def _execute_reorder(
        self, schedule: Schedule, durations: list[float], t0: float
    ) -> tuple[list[TraceEvent], list[int]]:
        n = len(schedule.ops)
        finish: dict[int, float] = {}
        # Consumer index: completing op i only touches the ops that
        # actually depend on i, instead of scanning every remaining op.
        consumers_of: list[list[int]] = [[] for _ in range(n)]
        blocked_by = [0] * n
        for op in schedule.ops:
            deps = set(op.deps)
            blocked_by[op.index] = len(deps)
            for dep in deps:
                consumers_of[dep].append(op.index)
        ready_time = {i: t0 for i in range(n) if blocked_by[i] == 0}
        events: list[TraceEvent] = []
        order: list[int] = []
        while len(order) < n:
            # Among ready ops, greedily pick the one that can *start*
            # earliest on its engine; break ties by program order.
            best: tuple[float, int] | None = None
            for idx, r in ready_time.items():
                op = schedule.ops[idx]
                start = max(r, self.device.timeline(op.engine).free_at)
                key = (start, idx)
                if best is None or key < best:
                    best = key
            if best is None:
                raise ExecutionError(
                    "deadlock: no ready ops but schedule incomplete "
                    "(cyclic dependencies?)"
                )
            _, idx = best
            op = schedule.ops[idx]
            event = self._record(op, ready_time.pop(idx), durations[idx])
            finish[idx] = event.end_us
            events.append(event)
            order.append(idx)
            for consumer in consumers_of[idx]:
                blocked_by[consumer] -= 1
                if blocked_by[consumer] == 0:
                    ready_time[consumer] = max(
                        (finish[d] for d in schedule.ops[consumer].deps),
                        default=t0,
                    )
        return events, order
