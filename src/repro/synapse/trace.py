"""Hardware trace events and timeline analysis.

The SynapseAI profiler "generate[s] hardware trace events and
accurately measure[s] the execution time of each operation" (§3.2);
every figure in the paper is a rendering of such a trace. This module
is the data model: :class:`TraceEvent` per executed op and
:class:`Timeline` for the queries the paper performs on them — MME idle
gaps (Figs 4/6/8/9), softmax's share of TPC busy time (Fig 4), total
run time per attention variant (Figs 5/6/7).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..hw.costmodel import EngineKind
from ..hw.des import Interval
from ..util.errors import ExecutionError


@dataclass(frozen=True)
class TraceEvent:
    """One op execution on one engine."""

    name: str
    engine: EngineKind
    start_us: float
    dur_us: float
    src: str = ""
    scope: str = ""
    flops: float = 0.0
    #: HBM traffic the op drained (bytes); populated by the contended
    #: runtime, 0.0 under ``hbm_contention=False``
    hbm_bytes: float = 0.0
    #: mean achieved HBM bandwidth over the op's drain phase (GB/s)
    hbm_gbps: float = 0.0
    #: active time beyond the uncontended ``max(compute, traffic/bw)``
    #: — what sharing the HBM with concurrent ops cost this op
    contention_stall_us: float = 0.0
    #: HLS-1 card the event executed on (0 on a single-card run); maps
    #: to the Chrome-trace pid so Perfetto shows one row per card
    card: int = 0

    @property
    def end_us(self) -> float:
        """Completion time."""
        return self.start_us + self.dur_us


def fast_trace_event(
    name: str,
    engine: EngineKind,
    start_us: float,
    dur_us: float,
    src: str = "",
    scope: str = "",
    flops: float = 0.0,
    hbm_bytes: float = 0.0,
    hbm_gbps: float = 0.0,
    contention_stall_us: float = 0.0,
    card: int = 0,
) -> TraceEvent:
    """Construct a :class:`TraceEvent` without the frozen-init tax.

    A frozen dataclass assigns every field through
    ``object.__setattr__``, which dominates when the vector engine
    emits tens of thousands of events per second. This helper fills the
    instance ``__dict__`` directly — field for field identical to the
    generated ``__init__`` (same names, same order, same defaults), so
    equality, hashing, ``repr`` and ``dataclasses.replace`` behave
    exactly the same.
    """
    ev = TraceEvent.__new__(TraceEvent)
    ev.__dict__.update(
        name=name, engine=engine, start_us=start_us, dur_us=dur_us,
        src=src, scope=scope, flops=flops, hbm_bytes=hbm_bytes,
        hbm_gbps=hbm_gbps, contention_stall_us=contention_stall_us,
        card=card,
    )
    return ev


class Timeline:
    """An executed trace: events + derived occupancy queries."""

    def __init__(
        self,
        events: list[TraceEvent] | None = None,
        name: str = "trace",
        *,
        validate: bool = True,
    ):
        """``validate=False`` skips the negative-duration scan — for
        callers whose events come from engine-timeline reservations,
        which already reject negative durations at reserve time."""
        self.name = name
        self.events: list[TraceEvent] = []
        if events:
            if validate:
                for ev in events:
                    if ev.dur_us < 0:
                        raise ExecutionError(
                            f"negative duration for event {ev.name!r}"
                        )
            self.events.extend(events)

    def add(self, event: TraceEvent) -> None:
        """Append an event (negative durations are runtime bugs)."""
        if event.dur_us < 0:
            raise ExecutionError(f"negative duration for event {event.name!r}")
        self.events.append(event)

    # -- global queries -----------------------------------------------------

    @property
    def total_time_us(self) -> float:
        """Makespan: last completion time (0 for an empty trace)."""
        return max((ev.end_us for ev in self.events), default=0.0)

    def engine_events(
        self, engine: EngineKind, *, card: int | None = None
    ) -> list[TraceEvent]:
        """Events of one engine (optionally one card), by start time."""
        return sorted(
            (
                ev for ev in self.events
                if ev.engine is engine and (card is None or ev.card == card)
            ),
            key=lambda ev: (ev.start_us, ev.end_us),
        )

    def busy_time_us(self, engine: EngineKind) -> float:
        """Total busy microseconds of ``engine`` (events never overlap
        on one engine *of one card*, so a plain sum is exact; on a
        multi-card trace this aggregates across cards)."""
        return sum(ev.dur_us for ev in self.events if ev.engine is engine)

    def cards(self) -> list[int]:
        """Distinct card ids present in the trace, sorted."""
        return sorted({ev.card for ev in self.events})

    def exposed_comm_us(self, *, card: int = 0) -> float:
        """NIC busy time on ``card`` not hidden under MME/TPC compute.

        The communication the training step actually waits for: union
        of the card's NIC intervals minus its compute-engine busy
        union. Perfect overlap drives this to ~0 even when collectives
        move gigabytes.
        """
        nic_raw: list[tuple[float, float]] = []
        compute_raw: list[tuple[float, float]] = []
        mme, tpc, nic_kind = EngineKind.MME, EngineKind.TPC, EngineKind.NIC
        for ev in self.events:
            if ev.card != card:
                continue
            engine = ev.engine
            if engine is nic_kind:
                nic_raw.append((ev.start_us, ev.start_us + ev.dur_us))
            elif engine is mme or engine is tpc:
                compute_raw.append((ev.start_us, ev.start_us + ev.dur_us))
        nic = _merge_intervals(nic_raw)
        compute = _merge_intervals(compute_raw)
        total = sum(hi - lo for lo, hi in nic)
        return total - _overlap_us(nic, compute)

    def utilization(self, engine: EngineKind) -> float:
        """busy / makespan for ``engine``."""
        total = self.total_time_us
        if total <= 0:
            return 0.0
        return self.busy_time_us(engine) / total

    def last_compute_end_us(self) -> float:
        """Completion time of the last MME/TPC event.

        The natural horizon for overlap metrics: after the final
        compute op only the DMA drain (and collectives) remain, so
        idle measured against the full makespan dilutes the numbers
        with time no scheduler could possibly fill. Falls back to the
        makespan when the trace has no compute events.
        """
        end = max(
            (ev.end_us for ev in self.events
             if ev.engine in (EngineKind.MME, EngineKind.TPC)),
            default=0.0,
        )
        return end if end > 0 else self.total_time_us

    def _horizon_us(self, until: str) -> float:
        if until == "makespan":
            return self.total_time_us
        if until == "last_compute":
            return self.last_compute_end_us()
        raise ExecutionError(
            f"unknown idle horizon {until!r} "
            "(expected 'makespan' or 'last_compute')"
        )

    def idle_us(self, engine: EngineKind, *, until: str = "makespan") -> float:
        """Idle microseconds of ``engine`` within [0, horizon).

        ``until="last_compute"`` stops the clock at the final MME/TPC
        completion instead of the trailing DMA drain — the horizon the
        overlap scheduler can actually influence. Busy time is clipped
        to the horizon, so the result is never negative.
        """
        horizon = self._horizon_us(until)
        if horizon <= 0:
            return 0.0
        busy = sum(
            min(ev.end_us, horizon) - min(ev.start_us, horizon)
            for ev in self.events
            if ev.engine is engine
        )
        return max(0.0, horizon - busy)

    def idle_fraction(
        self, engine: EngineKind, *, until: str = "makespan"
    ) -> float:
        """1 - utilization: the paper's 'blank areas' metric.

        By default measured over the full makespan (what the paper's
        figures show); ``until="last_compute"`` measures against the
        last compute finish so the trailing DMA drain does not dilute
        overlap comparisons.
        """
        horizon = self._horizon_us(until)
        if horizon <= 0:
            return 1.0 - self.utilization(engine)
        return self.idle_us(engine, until=until) / horizon

    def gaps(self, engine: EngineKind, *, min_dur_us: float = 0.0) -> list[Interval]:
        """Idle intervals of ``engine`` within [0, makespan)."""
        horizon = self.total_time_us
        events = self.engine_events(engine)
        out: list[Interval] = []
        cursor = 0.0
        for ev in events:
            if ev.start_us > cursor:
                out.append(Interval(cursor, ev.start_us, "idle"))
            cursor = max(cursor, ev.end_us)
        if cursor < horizon:
            out.append(Interval(cursor, horizon, "idle"))
        return [g for g in out if g.duration > min_dur_us]

    # -- attribution ---------------------------------------------------------

    def busy_by_src(self, engine: EngineKind | None = None) -> dict[str, float]:
        """Busy microseconds grouped by source op (e.g. 'softmax')."""
        out: dict[str, float] = {}
        for ev in self.events:
            if engine is not None and ev.engine is not engine:
                continue
            out[ev.src or ev.name] = out.get(ev.src or ev.name, 0.0) + ev.dur_us
        return out

    def src_share(self, src: str, engine: EngineKind) -> float:
        """Fraction of ``engine`` busy time attributed to ``src``.

        ``src_share('softmax', TPC)`` is the Fig 4 headline number
        ("the running time of softmax exceeds 80% of the total running
        time" of the TPC).
        """
        busy = self.busy_time_us(engine)
        if busy <= 0:
            return 0.0
        attributed = sum(
            ev.dur_us
            for ev in self.events
            if ev.engine is engine and ev.src == src
        )
        return attributed / busy

    def top_events(self, n: int = 10) -> list[TraceEvent]:
        """The ``n`` longest events."""
        return sorted(self.events, key=lambda ev: ev.dur_us, reverse=True)[:n]

    # -- composition / export -------------------------------------------------

    def window(self, t0_us: float, t1_us: float) -> "Timeline":
        """Events clipped to [t0, t1): per-region analysis (e.g. 'the
        transformer-layer stretch of an end-to-end trace')."""
        if t1_us < t0_us:
            raise ExecutionError(f"bad window [{t0_us}, {t1_us})")
        out = Timeline(name=f"{self.name}[{t0_us:.0f}:{t1_us:.0f}]")
        for ev in self.events:
            lo = max(ev.start_us, t0_us)
            hi = min(ev.end_us, t1_us)
            if hi > lo:
                out.add(TraceEvent(ev.name, ev.engine, lo, hi - lo,
                                   ev.src, ev.scope, ev.flops,
                                   ev.hbm_bytes, ev.hbm_gbps,
                                   ev.contention_stall_us, ev.card))
        return out

    def filter(
        self,
        *,
        scope_prefix: str | None = None,
        src: str | None = None,
        engine: EngineKind | None = None,
    ) -> "Timeline":
        """A sub-trace matching all the given predicates."""
        out = Timeline(name=f"{self.name}|filtered")
        for ev in self.events:
            if scope_prefix is not None and not ev.scope.startswith(
                scope_prefix
            ):
                continue
            if src is not None and ev.src != src:
                continue
            if engine is not None and ev.engine is not engine:
                continue
            out.add(ev)
        return out

    def scope_span(self, scope_prefix: str) -> tuple[float, float]:
        """[first start, last end) of events under ``scope_prefix``;
        (0, 0) when nothing matches."""
        matching = [
            ev for ev in self.events if ev.scope.startswith(scope_prefix)
        ]
        if not matching:
            return (0.0, 0.0)
        return (min(ev.start_us for ev in matching),
                max(ev.end_us for ev in matching))

    def shifted(self, offset_us: float) -> "Timeline":
        """A copy with every event moved later by ``offset_us``."""
        return Timeline(
            [
                TraceEvent(
                    ev.name, ev.engine, ev.start_us + offset_us, ev.dur_us,
                    ev.src, ev.scope, ev.flops,
                    ev.hbm_bytes, ev.hbm_gbps, ev.contention_stall_us,
                    ev.card,
                )
                for ev in self.events
            ],
            name=self.name,
        )

    def to_chrome_trace(self) -> str:
        """Export as a chrome://tracing / Perfetto JSON string."""
        rows = [
            {
                "name": ev.name,
                "cat": ev.src or ev.name,
                "ph": "X",
                "ts": ev.start_us,
                "dur": ev.dur_us,
                "pid": ev.card,
                "tid": ev.engine.value,
                "args": {
                    "scope": ev.scope,
                    "flops": ev.flops,
                    "hbm_bytes": ev.hbm_bytes,
                    "hbm_gbps": ev.hbm_gbps,
                    "contention_stall_us": ev.contention_stall_us,
                },
            }
            for ev in self.events
        ]
        return json.dumps({"traceEvents": rows, "displayTimeUnit": "ms"})

    def __len__(self) -> int:
        return len(self.events)


def _merge_intervals(
    pairs: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Sorted union of half-open intervals."""
    out: list[tuple[float, float]] = []
    for lo, hi in sorted(pairs):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _overlap_us(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> float:
    """Total intersection length of two sorted disjoint interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def validate_no_engine_overlap(timeline: Timeline) -> None:
    """Assert the hardware invariant: one op at a time per engine.

    Checked per (card, engine) — on a multi-card trace the same engine
    legitimately runs concurrently on different cards. Raises
    :class:`ExecutionError` on violation — used by tests and by the
    runtime's self-check mode.
    """
    for card in timeline.cards():
        for engine in EngineKind:
            events = timeline.engine_events(engine, card=card)
            for prev, nxt in zip(events, events[1:]):
                if nxt.start_us < prev.end_us - 1e-9:
                    raise ExecutionError(
                        f"card {card} {engine.value}: events {prev.name!r} "
                        f"and {nxt.name!r} overlap "
                        f"({prev.end_us} > {nxt.start_us})"
                    )
