"""ServingRuntime: a memoized step-cost oracle for serving loops.

A request-level serving simulator (see :mod:`repro.core.serving`)
executes millions of prefill/decode steps, but only ever sees a small
set of *quantized geometries* — (batch bucket, context bucket) pairs.
This layer turns the per-step question "how long does this step take,
and does its plan fit HBM?" into a dictionary lookup:

* the first time a geometry key appears, its graph is recorded (the
  caller supplies a factory), compiled through the shared
  :class:`~repro.synapse.recipe.RecipeCache` (incremental
  recompilation replays the structural passes across geometries of the
  same step type), and executed once on a fresh device with the
  configured fluid engine — the event-driven runtime is deterministic,
  so one execution *is* the steady-state step latency;
* every subsequent step at that geometry replays the memoized
  :class:`StepCost` — per-step compile and simulation cost is near
  zero, the way SynapseAI replays a cached recipe per iteration;
* geometries whose memory plan exceeds the HBM budget memoize their
  :class:`~repro.util.errors.DeviceMemoryError` — the planner's
  verdict is what bounds the admissible batch, and re-asking is free.

The layer is model-agnostic: graph factories come from the caller, so
``synapse`` never imports ``models``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable

from ..hw.config import GaudiConfig
from ..hw.device import GaudiDevice
from ..util.errors import DeviceMemoryError
from .compiler import CompilerOptions, GraphCompiler, default_compiler_options
from .graph import Graph
from .recipe import RecipeCache
from .runtime import Runtime


@dataclass(frozen=True)
class StepCost:
    """The measured cost of one serving step at one geometry."""

    #: the caller's geometry key, echoed back
    key: Hashable
    #: steady-state step latency on the simulated device
    time_us: float
    #: the memory plan's peak live footprint for the step
    peak_hbm_bytes: int
    #: persistent (input/weight/cache) bytes of the plan
    persistent_bytes: int
    #: whether this geometry's compile missed every recipe tier
    compiled_cold: bool


class ServingRuntime:
    """Compile-execute-memoize layer between a serving loop and the
    simulator.

    ``hbm_budget`` (bytes) tightens the memory planner's enforcement
    below the device capacity: :meth:`step_cost` then raises
    :class:`~repro.util.errors.DeviceMemoryError` for geometries whose
    planned peak exceeds it, which is how cache memory pressure bounds
    the admissible batch. ``recipe_dir`` shares compiled recipes
    across processes (the sweep fan-out path).
    """

    def __init__(
        self,
        config: GaudiConfig | None = None,
        *,
        options: CompilerOptions | None = None,
        hbm_budget: int | None = None,
        recipe_dir: "str | Path | None" = None,
    ):
        self.config = config or GaudiConfig()
        base = options or default_compiler_options()
        if hbm_budget is not None:
            base = dataclasses.replace(
                base, hbm_budget=hbm_budget, enforce_memory=True
            )
        self.options = base
        self.recipes = RecipeCache(maxsize=256, save_dir=recipe_dir)
        self.compiler = GraphCompiler(self.config, base, cache=self.recipes)
        #: geometry key -> StepCost, or the DeviceMemoryError to re-raise
        self._memo: dict[Hashable, StepCost | DeviceMemoryError] = {}
        #: total step_cost calls (one per simulated step)
        self.lookups = 0
        #: calls that had to record + compile + execute a new geometry
        self.measured = 0
        #: measured geometries whose compile missed every recipe tier
        self.cold_compiles = 0
        #: geometries the memory planner rejected
        self.infeasible = 0

    @property
    def hbm_budget(self) -> int:
        """The effective budget: the option, else device capacity."""
        return self.options.hbm_budget or self.config.hbm.capacity_bytes

    def step_cost(
        self, key: Hashable, graph_factory: Callable[[], Graph]
    ) -> StepCost:
        """The cost of one step at geometry ``key`` (memoized).

        ``graph_factory`` records the step's graph; it is only invoked
        the first time ``key`` is seen. Raises
        :class:`~repro.util.errors.DeviceMemoryError` (memoized too)
        when the step's memory plan exceeds the HBM budget.
        """
        self.lookups += 1
        hit = self._memo.get(key)
        if hit is not None:
            if isinstance(hit, DeviceMemoryError):
                raise hit
            return hit
        self.measured += 1
        try:
            schedule = self.compiler.compile(graph_factory())
        except DeviceMemoryError as err:
            self.infeasible += 1
            self._memo[key] = err
            raise
        cold = not self.compiler.last_cache_hit
        if cold:
            self.cold_compiles += 1
        result = Runtime(GaudiDevice(self.config)).execute(
            schedule,
            reorder=self.options.reorder,
            hbm_contention=self.options.hbm_contention,
            scheduler=(
                self.options.scheduler if self.options.reorder else None
            ),
            engine=self.options.sim_engine,
        )
        cost = StepCost(
            key=key,
            time_us=result.total_time_us,
            peak_hbm_bytes=schedule.memory.peak_bytes,
            persistent_bytes=schedule.memory.persistent_bytes,
            compiled_cold=cold,
        )
        self._memo[key] = cost
        return cost

    def feasible(
        self, key: Hashable, graph_factory: Callable[[], Graph]
    ) -> bool:
        """Whether the step at ``key`` fits the HBM budget (memoized)."""
        try:
            self.step_cost(key, graph_factory)
        except DeviceMemoryError:
            return False
        return True

    @property
    def replay_fraction(self) -> float:
        """Share of lookups served from the geometry memo — the
        "per-step compile cost is near zero" claim, measured."""
        if self.lookups <= 0:
            return 0.0
        return 1.0 - (self.measured / self.lookups)

    def info(self) -> dict:
        """Counters snapshot for reports and tests."""
        return {
            "lookups": self.lookups,
            "measured": self.measured,
            "cold_compiles": self.cold_compiles,
            "infeasible": self.infeasible,
            "replay_fraction": self.replay_fraction,
            "recipe": self.recipes.info(),
        }
