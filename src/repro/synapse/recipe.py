"""Recipe cache: compiled schedules keyed by canonical graph signatures.

SynapseAI compiles a graph into a *recipe* once and replays it on
every subsequent iteration — which is why the paper's training loops
pay a first-iteration compilation penalty and then run steady-state.
This module is that mechanism's analog: a canonical signature over
everything compilation reads (op kinds, shapes, dtypes, attrs,
provenance, device config, compiler options) keys an LRU cache of
:class:`~repro.synapse.schedule.Schedule` objects, so recompiling an
identical workload returns the cached recipe instead of re-running the
pass pipeline. First-compile vs. cached-iteration becomes a measured
phenomenon rather than a modeled constant.

Runtime-only options (``reorder``, ``hbm_contention``,
``use_recipe_cache``) are excluded from the key: they do not change
the compiled schedule.

The cache clones on both put and get, so hits are isolated: a caller
mutating a returned schedule (its ``stats``, ``memory`` plan, or ops)
cannot poison later hits, and the compiler mutating the schedule it
just stored cannot either.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING

from .graph import Graph
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..hw.config import GaudiConfig
    from .compiler import CompilerOptions

#: CompilerOptions fields that do not affect the compiled schedule
_RUNTIME_ONLY_OPTIONS = ("reorder", "hbm_contention", "use_recipe_cache")


def graph_signature(graph: Graph) -> str:
    """Canonical content hash of a graph (structure, shapes, dtypes).

    Two graphs built by identical frontend programs — e.g. the same
    training step re-recorded every iteration — produce the same
    signature; any change to an op kind, shape, dtype, attribute,
    value kind, or provenance changes it.
    """
    h = hashlib.sha256()
    h.update(f"graph:{graph.name}\n".encode())
    for vid, v in sorted(graph.values.items()):
        h.update(
            f"v:{vid}:{v.shape}:{v.dtype.value}:{v.kind}:{v.name}\n".encode()
        )
    for n in graph.nodes:
        attrs = repr(sorted(n.attrs.items()))
        h.update(
            f"n:{n.nid}:{n.op}:{n.inputs}:{n.output}:{attrs}:"
            f"{n.src}:{n.scope}\n".encode()
        )
    if graph.metadata:
        # Gradient markings (and any future annotations) feed compiler
        # passes — collective_injection buckets by them — so they are
        # part of what compilation reads.
        h.update(f"m:{sorted(graph.metadata.items())!r}\n".encode())
    return h.hexdigest()


def options_signature(options: "CompilerOptions") -> str:
    """Stable signature of the compile-relevant option fields."""
    fields = {
        k: v for k, v in dataclasses.asdict(options).items()
        if k not in _RUNTIME_ONLY_OPTIONS
    }
    return repr(sorted(fields.items()))


def recipe_key(
    graph: Graph, config: "GaudiConfig", options: "CompilerOptions"
) -> str:
    """Full cache key: graph signature x device config x options."""
    h = hashlib.sha256()
    h.update(graph_signature(graph).encode())
    h.update(repr(config).encode())
    h.update(options_signature(options).encode())
    return h.hexdigest()


class RecipeCache:
    """A bounded LRU cache of compiled schedules with hit/miss counters."""

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, Schedule]" = OrderedDict()

    def get(self, key: str) -> Schedule | None:
        """A private copy of the cached schedule, or None.

        Returns a clone so callers can mutate their schedule without
        corrupting the cached recipe (counts hit/miss).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.clone()

    def put(self, key: str, schedule: Schedule) -> None:
        """Insert a compiled schedule, evicting the LRU entry if full.

        Stores a clone: the caller keeps exclusive ownership of the
        object it passed in.
        """
        self._entries[key] = schedule.clone()
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> dict:
        """Counters snapshot: hits, misses, current size, capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
