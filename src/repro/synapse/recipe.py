"""Recipe cache: compiled schedules keyed by canonical graph signatures.

SynapseAI compiles a graph into a *recipe* once and replays it on
every subsequent iteration — which is why the paper's training loops
pay a first-iteration compilation penalty and then run steady-state.
This module is that mechanism's analog: a canonical signature over
everything compilation reads (op kinds, shapes, dtypes, attrs,
provenance, device config, compiler options) keys an LRU cache of
:class:`~repro.synapse.schedule.Schedule` objects, so recompiling an
identical workload returns the cached recipe instead of re-running the
pass pipeline. First-compile vs. cached-iteration becomes a measured
phenomenon rather than a modeled constant.

Runtime-only options (``reorder``, ``scheduler``, ``hbm_contention``,
``use_recipe_cache``) are excluded from the key: they do not change
the compiled schedule.

The cache can also persist recipes to disk (``save_dir`` /
``--recipe-cache-dir``): every put writes a signature-keyed JSON blob,
and a memory miss falls back to loading the blob — so repeated study
or CLI invocations skip recompilation across processes, the way
SynapseAI's on-disk recipe store does. Corrupt or unreadable blobs
degrade to a plain miss.

The cache clones on both put and get, so hits are isolated: a caller
mutating a returned schedule (its ``stats``, ``memory`` plan, or ops)
cannot poison later hits, and the compiler mutating the schedule it
just stored cannot either.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING

from ..util.errors import GraphError
from .graph import Graph
from .schedule import Schedule
from .serialize import schedule_from_json, schedule_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..hw.config import GaudiConfig
    from .compiler import CompilerOptions

#: CompilerOptions fields that do not affect the compiled schedule
#: (``incremental`` only changes how fast compilation runs — replayed
#: pass results are byte-identical to recomputed ones)
_RUNTIME_ONLY_OPTIONS = (
    "reorder", "scheduler", "sim_engine", "hbm_contention",
    "use_recipe_cache", "incremental",
)

#: default on-disk recipe directory when persistence is requested
#: without an explicit path (``--recipe-cache-dir`` with no argument)
DEFAULT_RECIPE_CACHE_DIR = "~/.cache/repro-recipes"

#: process-wide default save dir; ``None`` keeps caches memory-only
_default_save_dir: Path | None = None

#: process-wide counters across every RecipeCache instance — the
#: ``study`` report's hit/miss line aggregates these
_global_stats = {"hits": 0, "misses": 0, "disk_hits": 0}


def set_default_recipe_cache_dir(path: "str | Path | None") -> None:
    """Set (or clear, with ``None``) the process-wide recipe directory.

    Caches constructed without an explicit ``save_dir`` persist here;
    the CLI's ``--recipe-cache-dir`` flag routes through this.
    """
    global _default_save_dir
    _default_save_dir = Path(path).expanduser() if path else None


def default_recipe_cache_dir() -> Path | None:
    """The process-wide recipe directory (None = memory-only)."""
    return _default_save_dir


def recipe_cache_stats() -> dict:
    """Process-wide hit/miss/disk-hit counters across every cache."""
    return dict(_global_stats)


def reset_recipe_cache_stats() -> None:
    """Zero the process-wide counters (test isolation)."""
    for key in _global_stats:
        _global_stats[key] = 0


def graph_signature(graph: Graph) -> str:
    """Canonical content hash of a graph (structure, shapes, dtypes).

    Two graphs built by identical frontend programs — e.g. the same
    training step re-recorded every iteration — produce the same
    signature; any change to an op kind, shape, dtype, attribute,
    value kind, or provenance changes it.
    """
    h = hashlib.sha256()
    h.update(f"graph:{graph.name}\n".encode())
    for vid, v in sorted(graph.values.items()):
        h.update(
            f"v:{vid}:{v.shape}:{v.dtype.value}:{v.kind}:{v.name}\n".encode()
        )
    for n in graph.nodes:
        attrs = repr(sorted(n.attrs.items()))
        h.update(
            f"n:{n.nid}:{n.op}:{n.inputs}:{n.output}:{attrs}:"
            f"{n.src}:{n.scope}\n".encode()
        )
    if graph.metadata:
        # Gradient markings (and any future annotations) feed compiler
        # passes — collective_injection buckets by them — so they are
        # part of what compilation reads.
        h.update(f"m:{sorted(graph.metadata.items())!r}\n".encode())
    return h.hexdigest()


def structure_signature(graph: Graph) -> str:
    """Hash of everything about a graph *except* its geometry.

    Op kinds, connectivity, dtypes, value kinds/names, provenance, and
    gradient markings — the inputs the structural compiler passes
    (validation, view elision, fusion grouping, recompile marking, DMA
    staging) actually read for their decisions. Two sweep points of
    the same model that differ only in batch/sequence sizes share a
    structure signature, which is what lets the incremental pass cache
    replay those passes' decisions instead of re-deriving them (see
    :mod:`repro.synapse.passes.incremental`).

    Node attributes are deliberately *geometry*: they routinely embed
    concrete extents — reshape/broadcast targets, slice windows, and
    derived scalars like ``mean_bwd``'s ``alpha = 1/numel`` — so any
    attribute-reading pass must declare geometry dependence (the
    ``lint_passes`` rule polices this).
    """
    h = hashlib.sha256()
    h.update(f"structure:{graph.name}\n".encode())
    for vid, v in sorted(graph.values.items()):
        h.update(f"v:{vid}:{v.dtype.value}:{v.kind}:{v.name}\n".encode())
    for n in graph.nodes:
        h.update(
            f"n:{n.nid}:{n.op}:{n.inputs}:{n.output}:"
            f"{n.src}:{n.scope}\n".encode()
        )
    if graph.metadata:
        h.update(f"m:{sorted(graph.metadata.items())!r}\n".encode())
    return h.hexdigest()


def geometry_signature(graph: Graph) -> str:
    """Hash of a graph's geometry: value shapes + node attributes.

    The complement of :func:`structure_signature` — together they
    cover everything :func:`graph_signature` covers. Passes whose
    decisions depend on concrete extents (lowering's rewritten shapes,
    TPC slicing, memory planning) declare this component and re-run
    whenever it changes.
    """
    h = hashlib.sha256()
    h.update(b"geometry\n")
    for vid, v in sorted(graph.values.items()):
        h.update(f"v:{vid}:{v.shape}\n".encode())
    for n in graph.nodes:
        attrs = repr(sorted(n.attrs.items()))
        h.update(f"n:{n.nid}:{attrs}\n".encode())
    return h.hexdigest()


def options_signature(options: "CompilerOptions") -> str:
    """Stable signature of the compile-relevant option fields."""
    fields = {
        k: v for k, v in dataclasses.asdict(options).items()
        if k not in _RUNTIME_ONLY_OPTIONS
    }
    return repr(sorted(fields.items()))


def recipe_key(
    graph: Graph, config: "GaudiConfig", options: "CompilerOptions"
) -> str:
    """Full cache key: graph signature x device config x options."""
    h = hashlib.sha256()
    h.update(graph_signature(graph).encode())
    h.update(repr(config).encode())
    h.update(options_signature(options).encode())
    return h.hexdigest()


class RecipeCache:
    """A bounded LRU cache of compiled schedules with hit/miss counters.

    With a ``save_dir`` (explicit, or the process default set through
    :func:`set_default_recipe_cache_dir`), every put also writes a
    signature-keyed JSON blob and a memory miss falls back to loading
    it — recipes survive across processes. Disk I/O is best-effort:
    unreadable or corrupt blobs degrade to a plain miss, and write
    failures leave the in-memory cache intact.
    """

    def __init__(
        self, maxsize: int = 32, save_dir: "str | Path | None" = None
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self._explicit_save_dir = (
            Path(save_dir).expanduser() if save_dir else None
        )
        self._entries: "OrderedDict[str, Schedule]" = OrderedDict()

    @property
    def save_dir(self) -> Path | None:
        """Effective persistence directory (explicit beats process
        default; resolved per access so the CLI can set the default
        after caches exist)."""
        return self._explicit_save_dir or _default_save_dir

    def _blob_path(self, key: str) -> Path:
        return self.save_dir / f"{key}.json"

    def _load_from_disk(self, key: str) -> Schedule | None:
        if self.save_dir is None:
            return None
        path = self._blob_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return schedule_from_json(text)
        except GraphError:
            # corrupt blob -> plain miss; drop it so the put that
            # follows the recompile can publish a good copy (an
            # existing blob otherwise suppresses republication)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _save_to_disk(self, key: str, schedule: Schedule) -> None:
        if self.save_dir is None:
            return
        try:
            self.save_dir.mkdir(parents=True, exist_ok=True)
            path = self._blob_path(key)
            if path.exists():
                # The key hashes everything compilation reads, so an
                # existing blob was published by an identical writer —
                # a sweep worker racing this one on the same recipe.
                # Rewriting the same bytes is wasted I/O at best and a
                # reader-visible window at worst; tolerate the race by
                # leaving the first publication in place.
                return
            # atomic publish: write a process-private temp file, then
            # rename onto the final name. Concurrent identical writers
            # each rename a complete blob — whichever lands last wins,
            # and readers only ever see complete content.
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            try:
                tmp.write_text(schedule_to_json(schedule))
                tmp.replace(path)
            except OSError:
                # never leave a stale temp behind a failed publish
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
        except OSError:
            pass  # persistence is best-effort

    def get(self, key: str) -> Schedule | None:
        """A private copy of the cached schedule, or None.

        Returns a clone so callers can mutate their schedule without
        corrupting the cached recipe (counts hit/miss). A memory miss
        checks the on-disk store (when configured) before giving up;
        a disk hit repopulates the memory tier.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = self._load_from_disk(key)
            if entry is None:
                self.misses += 1
                _global_stats["misses"] += 1
                return None
            self.disk_hits += 1
            _global_stats["disk_hits"] += 1
            self._entries[key] = entry
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        self._entries.move_to_end(key)
        self.hits += 1
        _global_stats["hits"] += 1
        return entry.clone()

    def put(self, key: str, schedule: Schedule) -> None:
        """Insert a compiled schedule, evicting the LRU entry if full.

        Stores a clone: the caller keeps exclusive ownership of the
        object it passed in. With persistence on, also writes the
        signature-keyed blob (atomically: write-temp + rename).
        """
        self._entries[key] = schedule.clone()
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        self._save_to_disk(key, schedule)

    def clear(self) -> None:
        """Drop every in-memory entry and reset the counters (the
        on-disk store, if any, is left in place)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def info(self) -> dict:
        """Counters snapshot: hits, misses, current size, capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "save_dir": str(self.save_dir) if self.save_dir else None,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
