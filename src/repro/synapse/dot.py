"""Graphviz DOT export of op graphs and compiled schedules.

Debugging/teaching aid: render what the frontend recorded and what the
compiler made of it. Nodes are colored by engine (the Table 1 mapping
becomes visible at a glance), fused chains collapse into single boxes,
and DMA/host events show as the diamonds between engines.
"""

from __future__ import annotations

from ..hw.costmodel import EngineKind
from .graph import Graph
from .ops import op as op_def
from .schedule import Schedule

_ENGINE_COLORS = {
    EngineKind.MME: "#8ecae6",   # blue: the matmul engine
    EngineKind.TPC: "#ffb703",   # amber: everything else
    EngineKind.DMA: "#cdeac0",
    EngineKind.NIC: "#bdb2ff",   # violet: the RoCE collective engine
    EngineKind.HOST: "#ffafcc",
}


def _esc(text: str) -> str:
    return text.replace('"', r"\"")


def graph_to_dot(graph: Graph, *, max_nodes: int = 400) -> str:
    """DOT for a recorded (pre-compilation) graph."""
    lines = [
        f'digraph "{_esc(graph.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="monospace"];',
    ]
    nodes = graph.nodes[:max_nodes]
    for node in nodes:
        engine = op_def(node.op).engine
        color = _ENGINE_COLORS[engine]
        label = node.label()
        lines.append(
            f'  n{node.nid} [label="{_esc(label)}", fillcolor="{color}"];'
        )
    producers = {n.output: n.nid for n in nodes}
    for node in nodes:
        for vid in node.inputs:
            if vid in producers:
                lines.append(f"  n{producers[vid]} -> n{node.nid};")
            else:
                value = graph.value(vid)
                if value.kind in ("input", "param"):
                    iv = f"v{vid}"
                    shape_str = "x".join(map(str, value.shape)) or "scalar"
                    lines.append(
                        f'  {iv} [label="{_esc(value.name or iv)}\\n'
                        f'{shape_str}", shape=ellipse, '
                        f'fillcolor="#e9ecef"];'
                    )
                    lines.append(f"  {iv} -> n{node.nid};")
    if len(graph.nodes) > max_nodes:
        lines.append(
            f'  truncated [label="... {len(graph.nodes) - max_nodes} more '
            f'nodes", shape=plaintext];'
        )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule, *, max_ops: int = 400) -> str:
    """DOT for a compiled schedule (deps as edges, engines as colors)."""
    lines = [
        f'digraph "{_esc(schedule.graph.name)}_schedule" {{',
        "  rankdir=TB;",
        '  node [style=filled, fontname="monospace"];',
    ]
    ops = schedule.ops[:max_ops]
    shown = {op.index for op in ops}
    for op in ops:
        color = _ENGINE_COLORS[op.engine]
        shape = "diamond" if op.engine in (EngineKind.DMA, EngineKind.HOST) \
            else "box"
        lines.append(
            f'  s{op.index} [label="{_esc(op.label)}", '
            f'fillcolor="{color}", shape={shape}];'
        )
        for dep in op.deps:
            if dep in shown:
                lines.append(f"  s{dep} -> s{op.index};")
    if len(schedule.ops) > max_ops:
        lines.append(
            f'  truncated [label="... {len(schedule.ops) - max_ops} more '
            f'ops", shape=plaintext];'
        )
    lines.append("}")
    return "\n".join(lines)
