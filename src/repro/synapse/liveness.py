"""Shared liveness analysis over a scheduled op list.

One implementation of the HBM-footprint computation, used by both the
compiler's :class:`~repro.synapse.passes.memory.MemoryPlanningPass`
(to plan and enforce the budget) and the post-execution
:func:`~repro.synapse.memtrace.memory_timeline` view (to reconstruct
the occupancy curve) — the two must agree on every byte, and tests
cross-check them on the paper-scale graphs.

Liveness is *interval based*: a value id may be written more than once
in a planned schedule (a ``spill_in`` restores it, a recompute clone
re-materializes it), so each vid owns a list of live intervals over
schedule positions. For the common single-writer schedule this reduces
exactly to the historical "alloc at the write, free after the last
read" rule:

* a value read at least once frees right after its last read in the
  current write window;
* a terminal value (never read after its final write) stays live to
  the end of the run — it is an output;
* a *dropped* value (re-written later with no read in between, the
  checkpointing case) frees immediately at its write;
* graph inputs (params, consts, step inputs) are persistent;
* values internal to fused elementwise chains never reach HBM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Graph
from .schedule import ScheduledOp


@dataclass(frozen=True)
class LiveInterval:
    """One live span of a value: write position to free position.

    ``end`` is the schedule position *after which* the value frees
    (its last read in the window); ``None`` means the value never
    frees — it is live to the end of the run.
    """

    vid: int
    start: int
    end: int | None

    def covers(self, pos: int) -> bool:
        """Whether the value is live at schedule position ``pos``."""
        return self.start <= pos and (self.end is None or pos <= self.end)


@dataclass
class LivenessResult:
    """Footprint of one scheduled op list, by schedule position."""

    persistent_bytes: int
    peak_bytes: int
    #: schedule position at which the peak is sampled (-1: the peak is
    #: the persistent set alone, before any op runs)
    peak_index: int
    #: per-vid live intervals, in increasing ``start`` order
    intervals: dict[int, list[LiveInterval]] = field(default_factory=dict)
    #: live bytes sampled right after each op's writes land
    live_at: list[int] = field(default_factory=list)
    #: position -> vids allocated there (counted before the sample)
    allocs_at: dict[int, list[int]] = field(default_factory=dict)
    #: position -> vids freed there (released after the sample)
    frees_at: dict[int, list[int]] = field(default_factory=dict)
    #: vid -> position after which it finally frees (the last
    #: interval's end; vids that never free are absent) — the compact
    #: map :class:`~repro.synapse.schedule.MemoryPlan` carries
    free_after: dict[int, int] = field(default_factory=dict)
    #: values internal to fused chains (never materialized in HBM)
    fused_internal: set[int] = field(default_factory=set)

    def live_vids_at(self, pos: int) -> set[int]:
        """Value ids live at schedule position ``pos``."""
        return {
            vid
            for vid, spans in self.intervals.items()
            if any(s.covers(pos) for s in spans)
        }


def fused_internal_values(graph: Graph, ops: list[ScheduledOp]) -> set[int]:
    """Values produced and consumed inside one fused chain.

    All but the final output of a multi-node op stay in TPC-local
    memory and never occupy HBM.
    """
    node_by_id = {n.nid: n for n in graph.nodes}
    internal: set[int] = set()
    for op in ops:
        if len(op.node_ids) > 1:
            outs = [node_by_id[nid].output for nid in op.node_ids]
            internal.update(outs[:-1])
    return internal


def compute_liveness(graph: Graph, ops: list[ScheduledOp]) -> LivenessResult:
    """Interval liveness + peak walk over ``ops`` in list order."""
    persistent = sum(v.nbytes for v in graph.graph_inputs())
    graph_input_ids = {v.vid for v in graph.graph_inputs()}
    internal = fused_internal_values(graph, ops)

    writes_of: dict[int, list[int]] = {}
    reads_of: dict[int, list[int]] = {}
    for pos, op in enumerate(ops):
        for vid in op.reads:
            reads_of.setdefault(vid, []).append(pos)
        for vid in op.writes:
            writes_of.setdefault(vid, []).append(pos)

    result = LivenessResult(
        persistent_bytes=persistent, peak_bytes=persistent, peak_index=-1,
        fused_internal=internal,
    )
    for vid, wpos in writes_of.items():
        if vid in graph_input_ids or vid in internal:
            continue
        rpos = sorted(reads_of.get(vid, []))
        spans: list[LiveInterval] = []
        for i, w in enumerate(wpos):
            nxt = wpos[i + 1] if i + 1 < len(wpos) else None
            window = [r for r in rpos if r >= w and (nxt is None or r < nxt)]
            if window:
                end: int | None = max(window)
            elif nxt is None:
                end = None  # terminal value: an output, never freed
            else:
                end = w  # dropped: re-written later, frees immediately
            spans.append(LiveInterval(vid, w, end))
        result.intervals[vid] = spans
        for span in spans:
            result.allocs_at.setdefault(span.start, []).append(vid)
            if span.end is not None:
                result.frees_at.setdefault(span.end, []).append(vid)
        if spans[-1].end is not None:
            result.free_after[vid] = spans[-1].end

    live = persistent
    peak = persistent
    peak_index = -1
    for pos in range(len(ops)):
        for vid in result.allocs_at.get(pos, ()):
            live += graph.value(vid).nbytes
        if live > peak:
            peak = live
            peak_index = pos
        result.live_at.append(live)
        for vid in result.frees_at.get(pos, ()):
            live -= graph.value(vid).nbytes
    result.peak_bytes = peak
    result.peak_index = peak_index
    return result
