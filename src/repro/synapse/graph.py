"""Graph IR: the program representation SynapseAI compiles.

A :class:`Graph` is a list of single-output :class:`Node` ops over
:class:`TensorValue` operands, kept in *program order* — the order the
frontend emitted them, which is also a topological order (an op can
only consume already-created values). Program order matters: the paper
attributes its MME idle gaps to the GraphCompiler issuing work
in-order per engine (§3.3), so the IR must preserve it.

Values are symbolic (shape + dtype); functional data lives in the
frontend (:mod:`repro.ht`), keeping paper-scale graphs cheap to build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.dtypes import DType, itemsize
from ..util.errors import GraphError
from ..util.validation import check_shape

Shape = tuple[int, ...]


@dataclass(frozen=True)
class TensorValue:
    """A symbolic tensor in the graph."""

    vid: int
    shape: Shape
    dtype: DType
    name: str = ""
    #: graph inputs: "input" (activations fed per step), "param"
    #: (persistent weights), "const"; producer outputs: "activation"
    kind: str = "activation"

    @property
    def numel(self) -> int:
        """Number of elements."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Device bytes of this value."""
        return self.numel * itemsize(self.dtype)


@dataclass
class Node:
    """One op in program order. Single output, n inputs."""

    nid: int
    op: str
    inputs: tuple[int, ...]
    output: int
    attrs: dict = field(default_factory=dict)
    #: provenance of lowered ops ("softmax", "layernorm", ...) or the
    #: composite op's own name; used by trace analysis.
    src: str = ""
    #: frontend scope, e.g. "encoder0.attn"
    scope: str = ""

    def label(self) -> str:
        """Human-readable op label for traces."""
        base = f"{self.scope}.{self.op}" if self.scope else self.op
        return base


class Graph:
    """An op graph in program order."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.values: dict[int, TensorValue] = {}
        self.nodes: list[Node] = []
        self._next_vid = 0
        self._next_nid = 0
        #: value ids some node already produces (O(1) SSA checking)
        self._produced: set[int] = set()
        #: structured side-channel annotations that survive compilation,
        #: e.g. ``metadata["gradients"]``: ordered (vid, param_name)
        #: pairs the optimizer marked for data-parallel all-reduce.
        self.metadata: dict = {}

    # -- construction ----------------------------------------------------

    def add_value(
        self,
        shape: Shape,
        dtype: DType,
        *,
        name: str = "",
        kind: str = "activation",
    ) -> TensorValue:
        """Create a new value (graph input if no node produces it)."""
        shape = check_shape(name or "value", shape)
        if kind not in ("activation", "input", "param", "const"):
            raise GraphError(f"unknown value kind {kind!r}")
        value = TensorValue(self._next_vid, shape, dtype, name=name, kind=kind)
        self.values[value.vid] = value
        self._next_vid += 1
        return value

    def add_node(
        self,
        op: str,
        inputs: tuple[int, ...] | list[int],
        output: TensorValue,
        *,
        attrs: dict | None = None,
        src: str = "",
        scope: str = "",
    ) -> Node:
        """Append an op; inputs must be existing value ids."""
        inputs = tuple(inputs)
        for vid in inputs:
            if vid not in self.values:
                raise GraphError(f"node {op!r} consumes unknown value {vid}")
        if output.vid not in self.values:
            raise GraphError(f"node {op!r} produces unregistered value")
        if output.vid in self._produced:
            raise GraphError(
                f"value {output.vid} already has a producer (single "
                f"static assignment violated by {op!r})"
            )
        node = Node(
            self._next_nid, op, inputs, output.vid,
            attrs=dict(attrs or {}), src=src or op, scope=scope,
        )
        self._next_nid += 1
        self.nodes.append(node)
        self._produced.add(output.vid)
        return node

    def mark_gradient(self, vid: int, param_name: str = "") -> None:
        """Tag ``vid`` as a parameter gradient (DDP-style marking).

        The optimizer calls this for every ``p.grad`` it consumes; the
        ``collective_injection`` pass buckets the marked values and
        emits all-reduce ops over them. Re-marking a vid is a no-op.
        """
        if vid not in self.values:
            raise GraphError(f"mark_gradient: unknown value id {vid}")
        grads: list = self.metadata.setdefault("gradients", [])
        if all(existing != vid for existing, _ in grads):
            grads.append((vid, param_name))

    def gradients(self) -> list[tuple[int, str]]:
        """Marked (gradient vid, param name) pairs, in marking order."""
        return list(self.metadata.get("gradients", []))

    def mark_checkpoint(
        self,
        label: str,
        input_vids: "tuple[int, ...] | list[int]",
        output_vids: "tuple[int, ...] | list[int]",
        droppable_vids: "tuple[int, ...] | list[int]",
    ) -> None:
        """Record a checkpoint segment (activation-recompute region).

        ``droppable_vids`` are the values produced inside the segment
        that the memory planner may drop and re-materialize from the
        segment's inputs; ``input_vids``/``output_vids`` bound the
        region and are always kept. Like gradient marks, checkpoint
        segments live in ``metadata`` and survive lowering, slicing,
        serialization, and the recipe signature.
        """
        for vid in (*input_vids, *output_vids, *droppable_vids):
            if vid not in self.values:
                raise GraphError(f"mark_checkpoint: unknown value id {vid}")
        segments: list = self.metadata.setdefault("checkpoints", [])
        segments.append((
            label, tuple(input_vids), tuple(output_vids),
            tuple(droppable_vids),
        ))

    def checkpoints(self) -> list[tuple[str, tuple, tuple, tuple]]:
        """Recorded (label, inputs, outputs, droppable) segments."""
        return list(self.metadata.get("checkpoints", []))

    def checkpoint_droppable(self) -> set[int]:
        """Value ids the memory planner may recompute instead of keep.

        The union of every segment's droppable set, minus any value
        some segment declares as a boundary (input or output) — the
        boundaries are what recompute starts from and feeds into.
        """
        drops: set[int] = set()
        keep: set[int] = set()
        for _, inputs, outputs, droppable in self.checkpoints():
            drops.update(droppable)
            keep.update(inputs)
            keep.update(outputs)
        return drops - keep

    # -- queries -----------------------------------------------------------

    def value(self, vid: int) -> TensorValue:
        """Look up a value by id."""
        try:
            return self.values[vid]
        except KeyError:
            raise GraphError(f"unknown value id {vid}") from None

    def producer(self, vid: int) -> Node | None:
        """The node producing ``vid`` (None for graph inputs)."""
        for node in self.nodes:
            if node.output == vid:
                return node
        return None

    def producers(self) -> dict[int, Node]:
        """Map of value id -> producing node for all produced values."""
        return {node.output: node for node in self.nodes}

    def consumers(self) -> dict[int, list[Node]]:
        """Map of value id -> consuming nodes (program order)."""
        out: dict[int, list[Node]] = {vid: [] for vid in self.values}
        for node in self.nodes:
            for vid in node.inputs:
                out[vid].append(node)
        return out

    def graph_inputs(self) -> list[TensorValue]:
        """Values with no producer (inputs, params, consts)."""
        produced = {node.output for node in self.nodes}
        return [v for vid, v in sorted(self.values.items()) if vid not in produced]

    def parameters(self) -> list[TensorValue]:
        """Graph inputs marked as parameters."""
        return [v for v in self.graph_inputs() if v.kind == "param"]

    def total_flops_hint(self) -> int:
        """Number of nodes (quick size probe for logs)."""
        return len(self.nodes)

    def validate(self) -> None:
        """Check SSA + program-order (topological) invariants."""
        produced: set[int] = set()
        for node in self.nodes:
            for vid in node.inputs:
                if vid not in self.values:
                    raise GraphError(f"node {node.nid} reads unknown value {vid}")
                producer_seen = vid in produced
                is_graph_input = self.values[vid].kind in ("input", "param", "const")
                if not producer_seen and not is_graph_input:
                    raise GraphError(
                        f"node {node.nid} ({node.op}) reads value {vid} "
                        "before it is produced — graph is not in program order"
                    )
            if node.output in produced:
                raise GraphError(f"value {node.output} produced twice")
            produced.add(node.output)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name!r}, {len(self.nodes)} nodes, {len(self.values)} values)"
