"""The GraphCompiler: an ordered pass pipeline with a recipe cache.

This is the stand-in for SynapseAI's Graph Compiler, whose behaviour
drives most of the paper's findings. Compilation is an explicit
sequence of named passes (see :mod:`repro.synapse.passes`) over a
shared :class:`~repro.synapse.passes.state.CompilationState`:

* ``validate`` — structural graph checks.
* ``attention_lowering`` — the kernel-pack choice: softmax/attention
  cones rewritten per ``attention_lowering`` (naive is the identity).
* ``lower_composites`` — composite ops (softmax, layernorm, ...)
  rewritten into primitives.
* ``view_elision`` — pure-view ops (reshape, broadcast, contiguous
  row slices) become aliases instead of engine slots.
* ``elementwise_fusion`` — same-source TPC chains merge so
  intermediates stay on-chip (toggleable for the fusion ablation).
* ``recompile_injection`` — unsupported ops (GLU, §3.3) get a host
  recompilation event that stalls everything behind it.
* ``dma_staging`` — values crossing the MME/TPC boundary transfer
  through shared memory (mostly pipelined; see
  :class:`~repro.hw.config.DMAConfig`).
* ``emit`` — assemble ScheduledOps; engine mapping follows Table 1
  via the op registry (matmul to the MME, everything else to the TPC)
  and per-engine issue preserves program order, which is what turns a
  serial matmul->softmax->matmul chain into MME idle gaps (Fig. 4).
  The ``reorder`` option gives the runtime license to pick any ready
  op (the ablation the paper wishes for).
* ``tensor_parallel`` — weight matmuls shard over the TP group with
  all-gather/all-reduce NIC ops on the marked weight dims (off at
  ``tp=1``).
* ``collective_injection`` — marked parameter gradients are bucketed
  into all-reduce NIC ops anchored to their producing backward ops
  (the multi-card DDP path; off by default).
* ``pipeline_partition`` — the schedule splits into ``pp``
  duration-balanced stages with point-to-point send/recv boundary
  ops; the multi-card runtime interleaves ``microbatches`` of the
  per-stage sub-schedules (off at ``pp=1``).
* ``memory_planning`` — peak HBM footprint by interval liveness; with
  ``memory_policy="none"`` schedules over the budget are rejected —
  the constraint that pushed the paper's end-to-end batch size down
  to 8. The other policies actively plan: checkpointed activations
  recompute and long-lived values spill through paired DMA ops until
  the peak fits ``hbm_budget``.

Each pass reports nodes in/out, wall-clock, and transform counts into
``Schedule.stats["passes"]``. Compiled schedules are memoized in a
per-compiler :class:`~repro.synapse.recipe.RecipeCache` keyed by the
canonical graph/config/options signature — SynapseAI's recipe
mechanism, which is why iteration 1 of a training loop pays a
compilation penalty and steady-state iterations do not.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..hw.backend import get_backend
from ..hw.config import GaudiConfig
from .graph import Graph
from .passes import PASS_OPTION_FLAGS, PassManager, default_passes
from .recipe import RecipeCache, recipe_key
from .schedule import Schedule


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the graph compiler (defaults mimic SynapseAI).

    Every boolean toggle maps onto one pipeline pass (see
    :data:`~repro.synapse.passes.PASS_OPTION_FLAGS`); use
    :func:`disable_passes` to turn passes off by name.
    """

    lower_composites: bool = True
    fuse_elementwise: bool = True
    insert_dma: bool = True
    #: alias pure-view ops (reshape, broadcast, contiguous row slices)
    #: instead of scheduling them — a zero-cost view must not occupy an
    #: in-order engine slot (it would serialize software pipelines)
    elide_views: bool = True
    #: let the runtime pick any ready op instead of per-engine program
    #: order — the "what if the compiler detected independence" ablation
    reorder: bool = False
    #: model HBM bandwidth as one shared, arbitrated resource: ops with
    #: overlapping execution split the effective bandwidth (processor
    #: sharing), stretching memory-bound phases that co-execute. Off,
    #: every engine sees the full bandwidth — the pre-contention model
    #: (``--no-hbm-contention``). Runtime-only: does not change the
    #: compiled schedule, only how the runtime times it.
    hbm_contention: bool = True
    #: host recompilation penalty for poorly supported ops (GLU)
    recompile_penalty_us: float = 2500.0
    #: charge the penalty only on the first occurrence of each op kind
    recompile_once: bool = True
    #: reject schedules whose peak footprint exceeds HBM capacity
    enforce_memory: bool = True
    #: run structural graph validation before compiling
    validate_graph: bool = True
    #: emit host recompilation stalls for unsupported ops
    inject_recompiles: bool = True
    #: compute the liveness/footprint plan (enforcement still gated by
    #: ``enforce_memory``)
    plan_memory: bool = True
    #: memoize compiled schedules by graph/config/options signature
    use_recipe_cache: bool = True
    #: incremental recompilation: cache pass results by the
    #: sub-signature of the inputs each pass actually reads, so recipe
    #: misses that change only geometry (batch/seq) or downstream
    #: options replay the structural decisions (validate, view
    #: elision, fusion grouping, recompile marks, DMA staging) and
    #: re-run only shape-dependent stages. Replayed compiles are
    #: byte-identical to cold ones; per-pass hit/miss lands in
    #: ``Schedule.stats["passes"]`` (``--no-incremental``)
    incremental: bool = True
    #: bucket marked parameter gradients into all-reduce NIC ops (the
    #: multi-card DDP path; harmless but off by default for single-card
    #: experiments)
    inject_collectives: bool = False
    #: gradient-bucket size for collective injection (``--bucket-mb``)
    bucket_mb: float = 25.0
    #: overlap gradient all-reduce with backward compute by bucketing;
    #: off = one monolithic all-reduce after the last gradient
    #: (``--no-comm-overlap``)
    comm_overlap: bool = True
    #: out-of-order issue policy used when ``reorder`` is on:
    #: ``"lookahead"`` (critical-path list scheduler with an
    #: MME-starvation tiebreak, the default) or ``"reorder"`` (the
    #: legacy greedy earliest-ready scheduler, ``--scheduler=reorder``).
    #: Runtime-only: selects how the runtime orders ready ops.
    scheduler: str = "lookahead"
    #: fluid-loop implementation: ``"vector"`` (the production engine)
    #: or ``"scalar"`` (the per-event reference it is byte-identical
    #: to). Runtime-only: never changes timings, only how fast the
    #: simulator computes them (``--sim-engine``).
    sim_engine: str = "vector"
    #: split large batch-parallel TPC ops (softmax, feature-map exp,
    #: activations) into row slices that pipeline against pending MME
    #: work (the ``tpc_slicing`` pass; off by default — it changes the
    #: schedule shape, so every default-behaviour figure stays intact)
    tpc_slice_ops: bool = False
    #: minimum estimated TPC time (us) of a chain's anchor op before
    #: the slicing pass will split it; small ops aren't worth the
    #: per-slice launch overhead
    tpc_slice_min_us: float = 200.0
    #: HBM budget in bytes the memory planner targets/enforces; None
    #: means the device's full capacity (``--hbm-budget``)
    hbm_budget: int | None = None
    #: what ``memory_planning`` may do when the peak exceeds the
    #: budget: ``"none"`` (reject only, the historical behaviour),
    #: ``"recompute"`` (re-emit checkpointed forward segments),
    #: ``"spill"`` (paired DMA offload/prefetch), or ``"auto"``
    #: (cost-model pick per over-budget value) — ``--memory-policy``
    memory_policy: str = "none"
    #: tensor-parallel group width: shard weight matmuls over ``tp``
    #: cards and inject the TP all-gather/all-reduce collectives (the
    #: ``tensor_parallel`` pass; 1 = off, ``--tp``)
    tp: int = 1
    #: pipeline-parallel stage count: partition the schedule into
    #: ``pp`` duration-balanced stages with send/recv boundary ops (the
    #: ``pipeline_partition`` pass; 1 = off, ``--pp``)
    pp: int = 1
    #: microbatches per step the pipeline runtime interleaves
    #: (``--microbatches``); the compiled graph is one microbatch
    microbatches: int = 1
    #: attention/softmax kernel choice for the ``attention_lowering``
    #: pass: ``"naive"`` (the identity — byte-identical to historical
    #: compiles), ``"fused"`` (softmax with MME exp-as-matmul offload),
    #: ``"windowed"`` (banded sliding-window attention on the TPC) or
    #: ``"flash"`` (tiled online-softmax attention on the MME; the
    #: score matrix never reaches HBM). Recipe-keyed like any
    #: non-runtime option (``--attention-kernel``)
    attention_lowering: str = "naive"
    #: sliding-window width (keys per query) of the ``"windowed"``
    #: attention lowering
    attention_window: int = 512
    #: target accelerator model: a name from
    #: :func:`repro.hw.backend.backend_names` (``"gaudi"`` — the
    #: paper's device and the default — or ``"wse"``). Selects the
    #: engine-placement table, memory hierarchy, and cost model every
    #: pass and the runtime consult; keys both recipe-cache tiers like
    #: any compile-time option (``--backend``)
    backend: str = "gaudi"


def disable_passes(
    options: CompilerOptions, *names: str
) -> CompilerOptions:
    """A copy of ``options`` with the named pipeline passes turned off.

    Names are pass names (``"elementwise_fusion"``, ``"dma_staging"``,
    ...); see :data:`~repro.synapse.passes.PASS_OPTION_FLAGS`.
    """
    flags = {}
    for name in names:
        flag = PASS_OPTION_FLAGS.get(name)
        if flag is None:
            known = ", ".join(sorted(PASS_OPTION_FLAGS))
            raise ValueError(
                f"unknown or non-disableable pass {name!r} (known: {known})"
            )
        flags[flag] = False
    return dataclasses.replace(options, **flags)


#: process-wide default options; overridable by the CLI flags
_DEFAULT_OPTIONS = CompilerOptions()


def default_compiler_options() -> CompilerOptions:
    """The options used when a compiler/profiler is built without any."""
    return _DEFAULT_OPTIONS


def set_default_compiler_options(options: CompilerOptions) -> None:
    """Override the process-wide default options (CLI ``--disable-pass``)."""
    global _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = options


class GraphCompiler:
    """Compiles a :class:`~repro.synapse.graph.Graph` to a :class:`Schedule`."""

    def __init__(
        self,
        config: GaudiConfig | None = None,
        options: CompilerOptions | None = None,
        *,
        cache: RecipeCache | None = None,
    ):
        self.options = options or default_compiler_options()
        #: the accelerator model compilation targets; ``config`` is
        #: coerced so legacy call sites passing a ``GaudiConfig`` can
        #: retarget with ``options.backend`` alone
        self.backend = get_backend(self.options.backend)
        self.config = self.backend.coerce_config(config)
        self.passes = default_passes()
        self.cache = cache if cache is not None else RecipeCache()
        #: whether the most recent :meth:`compile` hit the recipe cache
        self.last_cache_hit = False

    # -- public ------------------------------------------------------------

    def compile(self, graph: Graph) -> Schedule:
        """Run the pass pipeline; raises on invalid graphs / OOM.

        With ``use_recipe_cache`` (the default) an identical
        graph/config/options triple returns the cached schedule without
        re-running the pipeline; ``last_cache_hit`` records which case
        this call was.
        """
        self.last_cache_hit = False
        key = None
        if self.options.use_recipe_cache:
            key = recipe_key(graph, self.config, self.options)
            cached = self.cache.get(key)
            if cached is not None:
                self.last_cache_hit = True
                return cached
        schedule = PassManager(self.config, self.options, self.passes).run(
            graph
        )
        if key is not None:
            self.cache.put(key, schedule)
        return schedule
