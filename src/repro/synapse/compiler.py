"""The GraphCompiler: lower, fuse, map, stage, and plan memory.

This is the stand-in for SynapseAI's Graph Compiler, whose behaviour
drives most of the paper's findings:

* **Engine mapping** follows Table 1 via the op registry — matmul to
  the MME, everything else to the TPC.
* **Per-engine in-order issue**: the schedule preserves program order
  inside each engine queue, which is what turns a serial
  matmul->softmax->matmul chain into MME idle gaps (Fig. 4) and the
  FAVOR q'/k' exponentials into a serialized TPC stretch with a blank
  MME (Fig. 6 — "Graph Compiler does not detect this independence").
  The ``reorder`` option gives the runtime license to pick any ready op
  (the ablation the paper wishes for).
* **Elementwise fusion** merges same-source TPC chains so intermediates
  stay on-chip (toggleable for the fusion ablation).
* **Unsupported ops** (GLU, §3.3) insert a host recompilation event
  that stalls everything behind it.
* **DMA staging** transfers values crossing the MME/TPC boundary
  through shared memory (mostly pipelined; see
  :class:`~repro.hw.config.DMAConfig`).
* **Memory planning** computes the peak HBM footprint by liveness over
  the schedule and rejects graphs that exceed the 32 GB budget — the
  constraint that pushed the paper's end-to-end batch size down to 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind, OpClass, WorkItem
from ..util.errors import CompileError, DeviceMemoryError
from ..util.units import fmt_bytes
from .graph import Graph, Node
from .lowering import lower_graph
from .ops import op as op_def
from .ops import work_item_for
from .schedule import MemoryPlan, Schedule, ScheduledOp

#: op classes eligible for elementwise fusion
_FUSABLE = (OpClass.ELEMENTWISE, OpClass.SPECIAL)


@dataclass(frozen=True)
class CompilerOptions:
    """Knobs of the graph compiler (defaults mimic SynapseAI)."""

    lower_composites: bool = True
    fuse_elementwise: bool = True
    insert_dma: bool = True
    #: alias pure-view ops (reshape, broadcast, contiguous row slices)
    #: instead of scheduling them — a zero-cost view must not occupy an
    #: in-order engine slot (it would serialize software pipelines)
    elide_views: bool = True
    #: let the runtime pick any ready op instead of per-engine program
    #: order — the "what if the compiler detected independence" ablation
    reorder: bool = False
    #: host recompilation penalty for poorly supported ops (GLU)
    recompile_penalty_us: float = 2500.0
    #: charge the penalty only on the first occurrence of each op kind
    recompile_once: bool = True
    #: reject schedules whose peak footprint exceeds HBM capacity
    enforce_memory: bool = True


@dataclass
class _PendingOp:
    """A compute op being assembled (possibly absorbing fused nodes)."""

    nodes: list[Node]
    engine: EngineKind
    items: list[WorkItem]
    reads: set[int] = field(default_factory=set)
    internal: set[int] = field(default_factory=set)

    @property
    def output_vid(self) -> int:
        return self.nodes[-1].output


class GraphCompiler:
    """Compiles a :class:`~repro.synapse.graph.Graph` to a :class:`Schedule`."""

    def __init__(
        self,
        config: GaudiConfig | None = None,
        options: CompilerOptions | None = None,
    ):
        self.config = config or GaudiConfig()
        self.options = options or CompilerOptions()

    # -- public ------------------------------------------------------------

    def compile(self, graph: Graph) -> Schedule:
        """Run the full pipeline; raises on invalid graphs / OOM."""
        graph.validate()
        if self.options.lower_composites:
            graph = lower_graph(graph)
        else:
            for node in graph.nodes:
                if op_def(node.op).composite:
                    raise CompileError(
                        f"composite op {node.op!r} present but lowering "
                        "is disabled"
                    )
        pendings = self._fuse(graph)
        schedule = self._emit(graph, pendings)
        schedule.memory = self._plan_memory(graph, schedule)
        if self.options.enforce_memory and not schedule.memory.fits(
            self.config.hbm.capacity_bytes
        ):
            raise DeviceMemoryError(
                schedule.memory.peak_bytes,
                self.config.hbm.capacity_bytes,
                detail=f"graph {graph.name!r} peak "
                f"{fmt_bytes(schedule.memory.peak_bytes)}",
            )
        return schedule

    # -- fusion ------------------------------------------------------------

    def _node_item(self, graph: Graph, node: Node) -> WorkItem:
        in_shapes = [graph.value(v).shape for v in node.inputs]
        out = graph.value(node.output)
        return work_item_for(
            node.op, in_shapes, out.shape, out.dtype, node.attrs,
            label=node.label(),
        )

    def _fuse(self, graph: Graph) -> list[_PendingOp]:
        consumers = graph.consumers()
        pendings: list[_PendingOp] = []
        open_chain: _PendingOp | None = None
        #: view-output vid -> the underlying storage's vid
        alias: dict[int, int] = {}

        def close() -> None:
            nonlocal open_chain
            if open_chain is not None:
                pendings.append(open_chain)
                open_chain = None

        for node in graph.nodes:
            opdef = op_def(node.op)
            engine = opdef.engine
            if (
                self.options.elide_views
                and opdef.op_class is OpClass.DATA_MOVE
                and not opdef.reads_inputs
                and not opdef.writes_output
            ):
                src_vid = node.inputs[0]
                alias[node.output] = alias.get(src_vid, src_vid)
                continue
            # dependencies point at real storage producers; the work
            # item keeps the node's declared (view-level) shapes
            resolved = tuple(alias.get(v, v) for v in node.inputs)
            item = self._node_item(graph, node)
            fusable = (
                self.options.fuse_elementwise
                and engine is EngineKind.TPC
                and opdef.op_class in _FUSABLE
                and opdef.supported
            )
            last = open_chain.nodes[-1] if open_chain is not None else None
            # Fuse within one lowered composite (same src, e.g. the
            # sub+exp of a softmax) or across plain elementwise ops;
            # never across composites — attribution stays truthful.
            src_compatible = last is not None and (
                node.src == last.src
                or (node.src == node.op and last.src == last.op)
            )
            if (
                fusable
                and open_chain is not None
                and open_chain.output_vid in resolved
                and len(consumers[open_chain.output_vid]) == 1
                and src_compatible
                and node.scope == last.scope
            ):
                open_chain.internal.add(open_chain.output_vid)
                open_chain.reads.update(
                    v for v in resolved if v not in open_chain.internal
                )
                open_chain.nodes.append(node)
                open_chain.items.append(item)
                continue
            close()
            pending = _PendingOp(
                [node], engine, [item], reads=set(resolved)
            )
            if fusable:
                open_chain = pending
            else:
                pendings.append(pending)
        close()
        pendings.sort(key=lambda p: p.nodes[0].nid)
        return pendings

    # -- emission ----------------------------------------------------------

    def _emit(self, graph: Graph, pendings: list[_PendingOp]) -> Schedule:
        ops: list[ScheduledOp] = []
        producer_of: dict[int, int] = {}  # value id -> schedule index
        dma_cache: dict[tuple[int, EngineKind], int] = {}
        recompiled: set[str] = set()
        n_dma = 0
        n_recompile = 0

        for pending in pendings:
            first = pending.nodes[0]
            deps: list[int] = []

            # Host recompilation for poorly supported ops (GLU, §3.3).
            if not op_def(first.op).supported and (
                first.op not in recompiled or not self.options.recompile_once
            ):
                recompiled.add(first.op)
                host = ScheduledOp(
                    index=len(ops),
                    label=f"recompile:{first.op}",
                    engine=EngineKind.HOST,
                    items=[WorkItem(
                        f"recompile:{first.op}", OpClass.HOST,
                        fixed_time_us=self.options.recompile_penalty_us,
                    )],
                    deps=[],
                    src=first.src, scope=first.scope,
                )
                ops.append(host)
                deps.append(host.index)
                n_recompile += 1

            # DMA staging for values crossing the engine boundary.
            for vid in sorted(pending.reads):
                prod_idx = producer_of.get(vid)
                if prod_idx is None:
                    continue  # graph input: already resident in HBM
                prod_engine = ops[prod_idx].engine
                if (
                    not self.options.insert_dma
                    or prod_engine is pending.engine
                    or prod_engine in (EngineKind.DMA, EngineKind.HOST)
                    or pending.engine in (EngineKind.DMA, EngineKind.HOST)
                ):
                    deps.append(prod_idx)
                    continue
                key = (vid, pending.engine)
                if key not in dma_cache:
                    value = graph.value(vid)
                    dma = ScheduledOp(
                        index=len(ops),
                        label=f"dma:{value.name or vid}",
                        engine=EngineKind.DMA,
                        items=[WorkItem(
                            f"dma:{vid}", OpClass.DATA_MOVE,
                            bytes_read=value.nbytes, pipelined=True,
                        )],
                        deps=[prod_idx],
                        src="dma", scope=pending.nodes[0].scope,
                        reads=[vid],
                    )
                    ops.append(dma)
                    dma_cache[key] = dma.index
                    n_dma += 1
                deps.append(dma_cache[key])

            sched = ScheduledOp(
                index=len(ops),
                label=pending.nodes[-1].label()
                if len(pending.nodes) == 1
                else f"fused[{'+'.join(n.op for n in pending.nodes)}]",
                engine=pending.engine,
                items=pending.items,
                deps=sorted(set(deps)),
                src=pending.nodes[0].src,
                scope=pending.nodes[0].scope,
                reads=sorted(pending.reads),
                writes=[pending.output_vid],
                node_ids=[n.nid for n in pending.nodes],
            )
            ops.append(sched)
            producer_of[pending.output_vid] = sched.index

        stats = {
            "nodes": len(graph.nodes),
            "scheduled_ops": len(ops),
            "fused_chains": sum(1 for o in ops if o.is_fused),
            "dma_transfers": n_dma,
            "recompilations": n_recompile,
        }
        return Schedule(graph=graph, ops=ops,
                        memory=MemoryPlan(0, 0, {}), stats=stats)

    # -- memory ------------------------------------------------------------

    def _plan_memory(self, graph: Graph, schedule: Schedule) -> MemoryPlan:
        persistent = sum(v.nbytes for v in graph.graph_inputs())
        # Values internal to fused chains never materialize in HBM.
        internal = self._fused_internal_values(graph, schedule)

        last_use: dict[int, int] = {}
        alloc_at: dict[int, int] = {}
        for sched in schedule.ops:
            for vid in sched.reads:
                last_use[vid] = sched.index
            for vid in sched.writes:
                alloc_at[vid] = sched.index

        graph_input_ids = {v.vid for v in graph.graph_inputs()}
        live = persistent
        peak = persistent
        free_after: dict[int, int] = {}
        frees_at: dict[int, list[int]] = {}
        for vid, idx in last_use.items():
            if vid in graph_input_ids or vid in internal:
                continue
            if vid in alloc_at:
                free_after[vid] = idx
                frees_at.setdefault(idx, []).append(vid)
        for sched in schedule.ops:
            for vid in sched.writes:
                if vid in internal or vid in graph_input_ids:
                    continue
                live += graph.value(vid).nbytes
            peak = max(peak, live)
            for vid in frees_at.get(sched.index, ()):
                live -= graph.value(vid).nbytes
        return MemoryPlan(
            persistent_bytes=persistent, peak_bytes=peak, free_after=free_after
        )

    @staticmethod
    def _fused_internal_values(graph: Graph, schedule: Schedule) -> set[int]:
        node_by_id = {n.nid: n for n in graph.nodes}
        internal: set[int] = set()
        for sched in schedule.ops:
            if not sched.is_fused:
                continue
            outs = [node_by_id[nid].output for nid in sched.node_ids]
            internal.update(outs[:-1])  # all but the chain's final output
        return internal
