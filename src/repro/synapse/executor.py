"""Functional graph executor: run a graph's ops on numpy values.

The frontend computes eagerly, but the GraphCompiler *rewrites* the
graph (lowering, fusion); this interpreter executes any graph — raw,
lowered, or a compiled :class:`~repro.synapse.schedule.Schedule` — on
concrete inputs, so tests can prove the compiler pipeline preserves
semantics: ``execute(lower(g)) == execute(g)`` and the fused schedule
computes exactly what the unfused one does.

It is also the reference "device" for users who want to sanity-check a
recorded graph's outputs without re-running the frontend.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import ExecutionError
from .graph import Graph
from .ops import op as op_def
from .schedule import Schedule


def execute_graph(
    graph: Graph,
    inputs: dict[str, np.ndarray] | dict[int, np.ndarray],
) -> dict[int, np.ndarray]:
    """Evaluate every node; returns value-id -> array for all values.

    ``inputs`` binds graph inputs either by value *name* (str keys) or
    by value id (int keys). Missing bindings and shape mismatches are
    errors.
    """
    env: dict[int, np.ndarray] = {}
    by_name = {v.name: v for v in graph.graph_inputs() if v.name}
    for key, arr in inputs.items():
        if isinstance(key, str):
            if key not in by_name:
                raise ExecutionError(
                    f"no graph input named {key!r}; available: "
                    f"{sorted(by_name)}"
                )
            value = by_name[key]
        else:
            value = graph.value(key)
        arr = np.asarray(arr)
        if tuple(arr.shape) != value.shape:
            raise ExecutionError(
                f"input {value.name or value.vid}: shape {arr.shape} != "
                f"declared {value.shape}"
            )
        env[value.vid] = arr

    missing = [
        v.name or str(v.vid)
        for v in graph.graph_inputs()
        if v.vid not in env
    ]
    if missing:
        raise ExecutionError(f"unbound graph inputs: {missing}")

    for node in graph.nodes:
        opdef = op_def(node.op)
        args = [env[vid] for vid in node.inputs]
        out = opdef.compute(args, node.attrs)
        expected = graph.value(node.output).shape
        if tuple(np.shape(out)) != expected:
            raise ExecutionError(
                f"node {node.nid} ({node.op}): produced shape "
                f"{np.shape(out)}, declared {expected}"
            )
        env[node.output] = np.asarray(out)
    return env


def execute_outputs(
    graph: Graph,
    inputs: dict[str, np.ndarray] | dict[int, np.ndarray],
) -> dict[int, np.ndarray]:
    """Evaluate the graph and return only its terminal values
    (values no node consumes)."""
    env = execute_graph(graph, inputs)
    consumed = {vid for node in graph.nodes for vid in node.inputs}
    produced = {node.output for node in graph.nodes}
    return {vid: env[vid] for vid in produced - consumed}


def execute_schedule(
    schedule: Schedule,
    inputs: dict[str, np.ndarray] | dict[int, np.ndarray],
) -> dict[int, np.ndarray]:
    """Evaluate a compiled schedule functionally.

    DMA and host ops are value-transparent; compute ops (fused or not)
    replay their member nodes. The result must match
    :func:`execute_graph` on the schedule's (lowered) graph — that
    equivalence is the compiler's semantic contract, enforced by tests.
    """
    graph = schedule.graph
    env = execute_graph(graph, inputs)  # graph-level reference
    # Re-derive every scheduled op's outputs from its member nodes and
    # check them against the reference environment: catches fusion
    # bookkeeping bugs (wrong member order, dropped nodes).
    node_by_id = {n.nid: n for n in graph.nodes}
    replay: dict[int, np.ndarray] = dict(
        (vid, env[vid])
        for vid in (v.vid for v in graph.graph_inputs())
    )
    for sched in schedule.ops:
        if not sched.node_ids:
            continue  # DMA / host events move no values
        for nid in sched.node_ids:
            node = node_by_id[nid]
            opdef = op_def(node.op)
            # elided view nodes (reshape/slice aliases) are not part of
            # any scheduled op; their outputs come from the reference
            args = [
                replay[vid] if vid in replay else env[vid]
                for vid in node.inputs
            ]
            replay[node.output] = np.asarray(
                opdef.compute(args, node.attrs)
            )
        out_vid = sched.writes[0]
        if not np.allclose(
            replay[out_vid], env[out_vid], rtol=1e-5, atol=1e-6,
            equal_nan=True,
        ):
            raise ExecutionError(
                f"scheduled op {sched.label!r} diverges from the graph "
                "reference — fusion broke semantics"
            )
    return replay
