"""Batch construction for MLM (BERT) and CLM (GPT) training.

Produces the exact input tensors the §3.4 experiments feed the models:
fixed-length token-id blocks plus one-hot targets. For BERT the batcher
applies 15% BERT-style masking and zeroes the one-hot rows of unmasked
positions (so they contribute no loss); for GPT the targets are the
inputs shifted left by one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import DataError
from ..util.rng import make_rng
from .tokenizer import WordTokenizer


def pack_blocks(token_ids: list[int], seq_len: int, batch_size: int,
                *, pad_id: int = 0) -> np.ndarray:
    """Pack a flat id stream into (batch, seq_len) blocks, cycling the
    stream if it is too short and padding the tail."""
    if seq_len < 1 or batch_size < 1:
        raise DataError("seq_len and batch_size must be positive")
    if not token_ids:
        raise DataError("empty token stream")
    needed = seq_len * batch_size
    ids = list(token_ids)
    while len(ids) < needed:
        ids.extend(token_ids)
    return np.asarray(ids[:needed], dtype=np.int64).reshape(batch_size, seq_len)


@dataclass(frozen=True)
class MLMBatch:
    """A masked-LM batch: corrupted inputs + one-hot targets + mask."""

    input_ids: np.ndarray       # (B, N) with [MASK]/random corruptions
    target_onehot: np.ndarray   # (B, N, V); zero rows where not masked
    masked_positions: np.ndarray  # (B, N) bool


def make_mlm_batch(
    blocks: np.ndarray,
    tokenizer: WordTokenizer,
    *,
    mask_prob: float = 0.15,
    rng: np.random.Generator | None = None,
) -> MLMBatch:
    """BERT-style masking: of selected positions, 80% -> [MASK],
    10% -> random token, 10% kept."""
    if not 0.0 < mask_prob < 1.0:
        raise DataError(f"mask_prob must be in (0, 1), got {mask_prob}")
    rng = rng or make_rng()
    b, n = blocks.shape
    v = tokenizer.vocab_size
    selected = rng.random((b, n)) < mask_prob
    if not selected.any():
        selected[0, 0] = True  # guarantee at least one target
    roll = rng.random((b, n))
    input_ids = blocks.copy()
    input_ids[selected & (roll < 0.8)] = tokenizer.mask_id
    randomized = selected & (roll >= 0.8) & (roll < 0.9)
    input_ids[randomized] = rng.integers(0, v, size=int(randomized.sum()))
    onehot = np.zeros((b, n, v), dtype=np.float32)
    rows, cols = np.nonzero(selected)
    onehot[rows, cols, blocks[rows, cols]] = 1.0
    return MLMBatch(input_ids, onehot, selected)


def batch_iterator(
    token_ids: list[int],
    tokenizer: WordTokenizer,
    *,
    kind: str,
    batch_size: int,
    seq_len: int,
    epochs: int = 1,
    rng: np.random.Generator | None = None,
):
    """Yield training batches over the stream, epoch by epoch.

    ``kind`` selects ``"mlm"`` (BERT-style masking) or ``"clm"``
    (shifted next-token targets). Each epoch walks the stream in
    ``batch_size x seq_len`` windows from a random phase, so batches
    differ across epochs while staying reproducible under ``rng``.
    """
    if kind not in ("mlm", "clm"):
        raise DataError(f"kind must be 'mlm' or 'clm', got {kind!r}")
    if epochs < 1:
        raise DataError(f"epochs must be >= 1, got {epochs}")
    rng = rng or make_rng()
    window = batch_size * seq_len
    if not token_ids:
        raise DataError("empty token stream")
    for _ in range(epochs):
        phase = int(rng.integers(0, max(1, len(token_ids))))
        rotated = token_ids[phase:] + token_ids[:phase]
        n_batches = max(1, len(rotated) // window)
        for b in range(n_batches):
            blocks = pack_blocks(
                rotated[b * window:], seq_len, batch_size,
                pad_id=tokenizer.pad_id,
            )
            if kind == "mlm":
                yield make_mlm_batch(blocks, tokenizer, rng=rng)
            else:
                yield make_clm_batch(blocks, tokenizer.vocab_size)


@dataclass(frozen=True)
class CLMBatch:
    """A causal-LM batch: inputs + next-token one-hot targets."""

    input_ids: np.ndarray      # (B, N)
    target_onehot: np.ndarray  # (B, N, V), shifted left by one


def make_clm_batch(blocks: np.ndarray, vocab_size: int) -> CLMBatch:
    """Next-token prediction targets: position t predicts token t+1;
    the final position gets a zero target row (no loss)."""
    if blocks.ndim != 2:
        raise DataError(f"blocks must be (B, N), got shape {blocks.shape}")
    if blocks.max() >= vocab_size or blocks.min() < 0:
        raise DataError("token ids out of vocabulary range")
    b, n = blocks.shape
    onehot = np.zeros((b, n, vocab_size), dtype=np.float32)
    targets = blocks[:, 1:]
    rows, cols = np.indices(targets.shape)
    onehot[rows, cols, targets] = 1.0  # position t gets token t+1
    return CLMBatch(blocks.copy(), onehot)
