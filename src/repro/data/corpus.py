"""Synthetic BookCorpus substitute.

The paper trains on BookCorpus (§3.4). The dataset only determines the
token-id streams fed to the models — execution time depends on tensor
shapes, which we match exactly — so we substitute a deterministic
synthetic corpus: a Zipf-distributed vocabulary of pronounceable
pseudo-words arranged into sentences and paragraphs ("books"). The
substitution is documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import DataError
from ..util.rng import derive, make_rng

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _pseudo_word(rng: np.random.Generator) -> str:
    syllables = int(rng.integers(1, 4))
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(list(_CONSONANTS)))
        parts.append(rng.choice(list(_VOWELS)))
        if rng.random() < 0.3:
            parts.append(rng.choice(list(_CONSONANTS)))
    return "".join(parts)


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic corpus."""

    vocab_words: int = 5000
    num_books: int = 4
    sentences_per_book: int = 200
    words_per_sentence_mean: float = 12.0
    zipf_exponent: float = 1.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.vocab_words < 10:
            raise DataError("vocab_words must be >= 10")
        if self.num_books < 1 or self.sentences_per_book < 1:
            raise DataError("corpus must contain at least one sentence")
        if self.zipf_exponent <= 1.0:
            raise DataError("zipf_exponent must be > 1.0")


class SyntheticBookCorpus:
    """Deterministic generator of book-like text."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()
        root = make_rng(self.config.seed)
        word_rng = derive(root, "words")
        # distinct pseudo-words, most frequent first (Zipf rank order)
        seen: set[str] = set()
        self.lexicon: list[str] = []
        while len(self.lexicon) < self.config.vocab_words:
            w = _pseudo_word(word_rng)
            if w not in seen:
                seen.add(w)
                self.lexicon.append(w)
        self._text_rng = derive(root, "text")

    def _sample_word(self, rng: np.random.Generator) -> str:
        # bounded Zipf draw over lexicon ranks
        while True:
            rank = rng.zipf(self.config.zipf_exponent)
            if rank <= len(self.lexicon):
                return self.lexicon[rank - 1]

    def sentence(self, rng: np.random.Generator | None = None) -> str:
        """One synthetic sentence."""
        rng = rng or self._text_rng
        n = max(3, int(rng.poisson(self.config.words_per_sentence_mean)))
        return " ".join(self._sample_word(rng) for _ in range(n)) + " ."

    def books(self) -> list[list[str]]:
        """All books, each a list of sentences (deterministic)."""
        root = make_rng(self.config.seed)
        out = []
        for b in range(self.config.num_books):
            rng = derive(root, "book", str(b))
            out.append(
                [self.sentence(rng) for _ in range(self.config.sentences_per_book)]
            )
        return out

    def token_stream(self) -> list[str]:
        """The whole corpus as one flat word stream."""
        stream: list[str] = []
        for book in self.books():
            for sentence in book:
                stream.extend(sentence.split())
        return stream

    def __iter__(self):
        for book in self.books():
            yield from book
