"""Synthetic corpus, tokenizer, and batchers (BookCorpus substitute)."""

from .batching import (
    CLMBatch,
    batch_iterator,
    MLMBatch,
    make_clm_batch,
    make_mlm_batch,
    pack_blocks,
)
from .corpus import CorpusConfig, SyntheticBookCorpus
from .tokenizer import (
    CLS,
    MASK,
    PAD,
    SEP,
    SPECIAL_TOKENS,
    UNK,
    WordTokenizer,
)

__all__ = [
    "CLMBatch",
    "batch_iterator",
    "MLMBatch",
    "make_clm_batch",
    "make_mlm_batch",
    "pack_blocks",
    "CorpusConfig",
    "SyntheticBookCorpus",
    "CLS",
    "MASK",
    "PAD",
    "SEP",
    "SPECIAL_TOKENS",
    "UNK",
    "WordTokenizer",
]
