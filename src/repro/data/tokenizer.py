"""Word-level tokenizer with BERT-style special tokens."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from ..util.errors import DataError

PAD, UNK, CLS, SEP, MASK = "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP, MASK)


class WordTokenizer:
    """Frequency-ordered word vocabulary + encode/decode."""

    def __init__(self, vocab: list[str]):
        for tok in SPECIAL_TOKENS:
            if tok not in vocab:
                raise DataError(f"vocabulary missing special token {tok}")
        self.id_to_token = list(vocab)
        self.token_to_id = {t: i for i, t in enumerate(vocab)}
        if len(self.token_to_id) != len(vocab):
            raise DataError("vocabulary contains duplicates")

    # -- construction -------------------------------------------------------

    @classmethod
    def train(
        cls,
        sentences: Iterable[str],
        *,
        max_vocab: int = 30000,
        min_freq: int = 1,
    ) -> "WordTokenizer":
        """Build a vocabulary from whitespace-split sentences."""
        if max_vocab <= len(SPECIAL_TOKENS):
            raise DataError(
                f"max_vocab must exceed {len(SPECIAL_TOKENS)} specials"
            )
        counts: Counter[str] = Counter()
        for sentence in sentences:
            counts.update(sentence.split())
        words = [
            w for w, c in counts.most_common()
            if c >= min_freq and w not in SPECIAL_TOKENS
        ]
        vocab = list(SPECIAL_TOKENS) + words[: max_vocab - len(SPECIAL_TOKENS)]
        return cls(vocab)

    # -- persistence -----------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Write the vocabulary as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"version": 1, "vocab": self.id_to_token}, indent=0,
        ))
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "WordTokenizer":
        """Load a tokenizer saved by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(f"cannot load tokenizer from {path}: {exc}") from exc
        if not isinstance(data, dict) or "vocab" not in data:
            raise DataError(f"{path} is not a saved tokenizer")
        return cls(list(data["vocab"]))

    # -- ids ------------------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        """Total vocabulary size including specials."""
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    @property
    def mask_id(self) -> int:
        return self.token_to_id[MASK]

    @property
    def cls_id(self) -> int:
        return self.token_to_id[CLS]

    @property
    def sep_id(self) -> int:
        return self.token_to_id[SEP]

    # -- encode/decode -----------------------------------------------------------

    def encode(self, text: str, *, add_specials: bool = False) -> list[int]:
        """Text -> token ids (unknown words -> [UNK])."""
        ids = [self.token_to_id.get(w, self.unk_id) for w in text.split()]
        if add_specials:
            ids = [self.cls_id] + ids + [self.sep_id]
        return ids

    def decode(self, ids: Iterable[int], *, skip_specials: bool = True) -> str:
        """Token ids -> text."""
        words = []
        specials = set(SPECIAL_TOKENS)
        for i in ids:
            if not 0 <= i < self.vocab_size:
                raise DataError(f"token id {i} out of range")
            tok = self.id_to_token[i]
            if skip_specials and tok in specials:
                continue
            words.append(tok)
        return " ".join(words)
