"""Transformer models: the workloads the paper profiles.

Attention variants (softmax / linear / Performer-FAVOR / chunked),
feed-forward with the Fig 7 activation set, layer/stack composition,
and the two §3.4 end-to-end models (BERT-MLM and GPT-2-LM analogs).
"""

from .attention import (
    ChunkedAttention,
    LinearAttention,
    PerformerAttention,
    SoftmaxAttention,
    build_attention,
    reference_softmax_attention,
)
from .bert import BertForMaskedLM, MLMHead
from .config import (
    ATTENTION_KINDS,
    AttentionConfig,
    FEATURE_MAPS,
    LayerConfig,
    LLMConfig,
    paper_bert_config,
    paper_gpt_config,
    paper_layer_config,
    scaled,
)
from .feedforward import FeedForward
from .generation import generate, perplexity
from .gpt import GPT2LMHeadModel, tiny_bert_config, tiny_gpt_config
from .kvcache import max_decode_context, record_decode_step
from .seq2seq import (
    CrossAttention,
    DecoderLayer,
    EncoderDecoderTransformer,
    tiny_seq2seq_config,
)
from .transformer import TransformerLayer, TransformerStack

__all__ = [
    "ChunkedAttention",
    "LinearAttention",
    "PerformerAttention",
    "SoftmaxAttention",
    "build_attention",
    "reference_softmax_attention",
    "BertForMaskedLM",
    "MLMHead",
    "ATTENTION_KINDS",
    "AttentionConfig",
    "FEATURE_MAPS",
    "LayerConfig",
    "LLMConfig",
    "paper_bert_config",
    "paper_gpt_config",
    "paper_layer_config",
    "scaled",
    "FeedForward",
    "generate",
    "perplexity",
    "GPT2LMHeadModel",
    "tiny_bert_config",
    "tiny_gpt_config",
    "max_decode_context",
    "record_decode_step",
    "CrossAttention",
    "DecoderLayer",
    "EncoderDecoderTransformer",
    "tiny_seq2seq_config",
    "TransformerLayer",
    "TransformerStack",
]
