"""Encoder-decoder Transformer — the paper's Figure 2 in full.

§2.3 describes the original architecture: encoder blocks, decoder
blocks with *cross*-attention over the encoder output, embeddings and
layer norms. BERT and GPT (§3.4) are its two halves; this module
provides the whole machine for translation-style workloads, reusing
the attention variants so a seq2seq model can also be linearized or
pipelined.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.errors import ShapeError
from ..util.rng import derive, make_rng
from .attention import _AttentionBase, _merge_heads, _split_heads, build_attention
from .config import AttentionConfig, LayerConfig, LLMConfig
from .feedforward import FeedForward


class CrossAttention(_AttentionBase):
    """Decoder queries attend over encoder memory (softmax form)."""

    def forward(self, x: Tensor, memory: Tensor) -> Tensor:  # type: ignore[override]
        cfg = self.config
        if memory.shape[-1] != cfg.d_model:
            raise ShapeError(
                f"cross-attention memory width {memory.shape} != "
                f"{cfg.d_model}"
            )
        q = _split_heads(self.wq(x), cfg.num_heads, cfg.head_dim)
        k = _split_heads(self.wk(memory), cfg.num_heads, cfg.head_dim)
        v = _split_heads(self.wv(memory), cfg.num_heads, cfg.head_dim)
        scores = F.mul_scalar(
            F.matmul(q, k, transpose_b=True), cfg.head_dim ** -0.5
        )
        probs = F.softmax(scores, axis=-1)
        return self.wo(_merge_heads(F.matmul(probs, v)))


class DecoderLayer(ht.Module):
    """Self-attention (causal) + cross-attention + FFN, pre-norm."""

    def __init__(
        self,
        config: LayerConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "declayer",
    ):
        super().__init__()
        self._name = name
        self.config = config
        rng = rng or make_rng()
        d = config.d_model
        self.self_attn = build_attention(
            config.attention, rng=derive(rng, name, "self"),
            materialize=materialize, name="self_attn",
        )
        cross_cfg = AttentionConfig(
            num_heads=config.attention.num_heads,
            head_dim=config.attention.head_dim,
            kind="softmax", causal=False,
        )
        self.cross_attn = CrossAttention(
            cross_cfg, rng=derive(rng, name, "cross"),
            materialize=materialize, name="cross_attn",
        )
        self.ln1 = ht.LayerNorm(d, materialize=materialize, name="ln1")
        self.ln2 = ht.LayerNorm(d, materialize=materialize, name="ln2")
        self.ln3 = ht.LayerNorm(d, materialize=materialize, name="ln3")
        self.ffn = FeedForward(
            d, ffn_mult=config.ffn_mult, activation=config.activation,
            rng=derive(rng, name, "ffn"), materialize=materialize,
        )

    def forward(self, x: Tensor, memory: Tensor) -> Tensor:
        x = F.add(x, self.self_attn(self.ln1(x)))
        x = F.add(x, self.cross_attn(self.ln2(x), memory))
        return F.add(x, self.ffn(self.ln3(x)))


class EncoderDecoderTransformer(ht.Module):
    """The full Figure 2 machine for sequence-to-sequence tasks."""

    def __init__(
        self,
        config: LLMConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "seq2seq",
    ):
        super().__init__()
        from .transformer import TransformerStack

        self._name = name
        self.config = config
        rng = rng or make_rng()
        d = config.d_model
        enc_layer = LayerConfig(
            attention=AttentionConfig(
                num_heads=config.layer.attention.num_heads,
                head_dim=config.layer.attention.head_dim,
                kind=config.layer.attention.kind, causal=False,
            ),
            ffn_mult=config.layer.ffn_mult,
            activation=config.layer.activation,
        )
        dec_layer = LayerConfig(
            attention=AttentionConfig(
                num_heads=config.layer.attention.num_heads,
                head_dim=config.layer.attention.head_dim,
                kind="softmax", causal=True,
            ),
            ffn_mult=config.layer.ffn_mult,
            activation=config.layer.activation,
        )
        self.src_embed = ht.Embedding(
            config.vocab_size, d, rng=derive(rng, name, "src"),
            materialize=materialize, name="src_embed",
        )
        self.tgt_embed = ht.Embedding(
            config.vocab_size, d, rng=derive(rng, name, "tgt"),
            materialize=materialize, name="tgt_embed",
        )
        self.pos_embed = ht.Embedding(
            config.max_seq_len, d, rng=derive(rng, name, "pos"),
            materialize=materialize, name="pos_embed",
        )
        self.encoder = TransformerStack(
            enc_layer, config.num_layers, rng=derive(rng, name, "enc"),
            materialize=materialize, name="encoder",
        )
        self.decoder_layers = [
            DecoderLayer(dec_layer, rng=derive(rng, name, f"dec{i}"),
                         materialize=materialize, name=f"dec{i}")
            for i in range(config.num_layers)
        ]
        self.ln_final = ht.LayerNorm(d, materialize=materialize, name="ln_f")
        self.out_proj = ht.Linear(
            d, config.vocab_size, bias=False,
            rng=derive(rng, name, "out"), materialize=materialize,
            name="out_proj",
        )

    def _positions(self, b: int, n: int) -> Tensor:
        return ht.tensor(
            np.broadcast_to(np.arange(n), (b, n)).copy(),
            name="positions", kind="const",
        )

    def encode(self, src_ids: Tensor) -> Tensor:
        """Source ids (B, S) -> encoder memory (B, S, D)."""
        b, n = src_ids.shape
        h = F.add(self.src_embed(src_ids),
                  self.pos_embed(self._positions(b, n)))
        return self.encoder(h)

    def forward(self, src_ids: Tensor, tgt_ids: Tensor) -> Tensor:
        """(B, S) source + (B, T) target -> logits (B, T, V)."""
        if len(src_ids.shape) != 2 or len(tgt_ids.shape) != 2:
            raise ShapeError("src_ids and tgt_ids must be (B, N)")
        memory = self.encode(src_ids)
        b, t = tgt_ids.shape
        h = F.add(self.tgt_embed(tgt_ids),
                  self.pos_embed(self._positions(b, t)))
        for layer in self.decoder_layers:
            h = layer(h, memory)
        return self.out_proj(self.ln_final(h))

    def loss(self, src_ids: Tensor, tgt_ids: Tensor,
             target_onehot: Tensor) -> Tensor:
        """Mean cross-entropy of next-token targets (B, T, V)."""
        logits = self(src_ids, tgt_ids)
        with ht.scope("loss"):
            return F.cross_entropy_with_logits(
                F.reshape(logits, (-1, self.config.vocab_size)),
                F.reshape(target_onehot, (-1, self.config.vocab_size)),
            )


def tiny_seq2seq_config(vocab_size: int = 37) -> LLMConfig:
    """Concrete-mode-sized encoder-decoder config."""
    return LLMConfig(
        vocab_size=vocab_size, max_seq_len=32, num_layers=2,
        layer=LayerConfig(
            attention=AttentionConfig(num_heads=2, head_dim=8, causal=True),
            ffn_mult=2, activation="gelu",
        ),
    )
