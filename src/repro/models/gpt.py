"""GPT2LMHeadModel analog — the §3.4 end-to-end decoder model.

"GPT2LMHeadModel is the GPT2 Model Transformer with a language modeling
head on top" (§3.4); during training only the decoder is used, with
causal self-attention and a tied-or-separate vocabulary projection.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.errors import ConfigError, ShapeError
from ..util.rng import derive, make_rng
from .config import LLMConfig
from .transformer import TransformerStack


class GPT2LMHeadModel(ht.Module):
    """Causal decoder with a language-modeling head."""

    def __init__(
        self,
        config: LLMConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "gpt2",
    ):
        super().__init__()
        if not config.layer.attention.causal:
            raise ConfigError(
                "GPT2LMHeadModel requires causal attention "
                "(set AttentionConfig.causal=True)"
            )
        self._name = name
        self.config = config
        rng = rng or make_rng()
        d = config.d_model
        self.tok_embed = ht.Embedding(
            config.vocab_size, d, rng=derive(rng, name, "tok"),
            materialize=materialize, name="wte",
        )
        self.pos_embed = ht.Embedding(
            config.max_seq_len, d, rng=derive(rng, name, "pos"),
            materialize=materialize, name="wpe",
        )
        self.decoder = TransformerStack(
            config.layer, config.num_layers, rng=derive(rng, name, "dec"),
            materialize=materialize, name="decoder",
        )
        self.ln_final = ht.LayerNorm(d, materialize=materialize, name="ln_f")
        self.lm_head = ht.Linear(
            d, config.vocab_size, bias=False, rng=derive(rng, name, "head"),
            materialize=materialize, name="lm_head",
        )

    def forward(self, input_ids: Tensor) -> Tensor:
        """input_ids (B, N) -> logits (B, N, V)."""
        if len(input_ids.shape) != 2:
            raise ShapeError(f"input_ids must be (B, N), got {input_ids.shape}")
        b, n = input_ids.shape
        if n > self.config.max_seq_len:
            raise ShapeError(
                f"sequence length {n} exceeds max {self.config.max_seq_len}"
            )
        positions = ht.tensor(
            np.broadcast_to(np.arange(n), (b, n)).copy(),
            name="positions", kind="const",
        )
        h = F.add(self.tok_embed(input_ids), self.pos_embed(positions))
        h = self.decoder(h)
        return self.lm_head(self.ln_final(h))

    def loss(self, input_ids: Tensor, target_onehot: Tensor) -> Tensor:
        """Mean next-token cross-entropy; targets pre-shifted by the
        batcher (``target_onehot`` is (B, N, V))."""
        logits = self(input_ids)
        with ht.scope("loss"):
            return F.cross_entropy_with_logits(
                F.reshape(logits, (-1, self.config.vocab_size)),
                F.reshape(target_onehot, (-1, self.config.vocab_size)),
            )


def tiny_gpt_config(vocab_size: int = 101) -> LLMConfig:
    """A concrete-mode-sized causal config for tests and examples."""
    from .config import AttentionConfig, LayerConfig

    return LLMConfig(
        vocab_size=vocab_size, max_seq_len=64, num_layers=2,
        layer=LayerConfig(
            attention=AttentionConfig(num_heads=2, head_dim=8, causal=True),
            ffn_mult=2, activation="gelu",
        ),
    )


def tiny_bert_config(vocab_size: int = 101) -> LLMConfig:
    """A concrete-mode-sized bidirectional config."""
    from .config import AttentionConfig, LayerConfig

    return LLMConfig(
        vocab_size=vocab_size, max_seq_len=64, num_layers=2,
        layer=LayerConfig(
            attention=AttentionConfig(num_heads=2, head_dim=8, causal=False),
            ffn_mult=2, activation="gelu",
        ),
    )
