"""Position-wise feed-forward network with configurable activation.

The FFN is where BERT/GPT spend their other matmuls; its activation is
a pure elementwise TPC op, "extremely suitable for SIMD architecture
like TPC" (§3.3) — except GLU, whose gate doubles the first projection
width and whose poor SynapseAI support costs a recompilation.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.errors import ConfigError
from ..util.rng import derive, make_rng


class FeedForward(ht.Module):
    """x -> act(x W1) W2 with a ``ffn_mult`` expansion."""

    def __init__(
        self,
        d_model: int,
        *,
        ffn_mult: int = 4,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "ffn",
    ):
        super().__init__()
        if activation not in ("relu", "leaky_relu", "gelu", "glu"):
            raise ConfigError(f"unsupported FFN activation {activation!r}")
        self._name = name
        self.activation = activation
        rng = rng or make_rng()
        hidden = d_model * ffn_mult
        # GLU consumes two gates worth of hidden width and halves it back.
        first_out = hidden * 2 if activation == "glu" else hidden
        self.w1 = ht.Linear(d_model, first_out, rng=derive(rng, name, "w1"),
                            materialize=materialize, name="w1")
        self.w2 = ht.Linear(hidden, d_model, rng=derive(rng, name, "w2"),
                            materialize=materialize, name="w2")

    def forward(self, x: Tensor) -> Tensor:
        h = self.w1(x)
        with ht.scope(self.activation):
            h = F.ACTIVATIONS[self.activation](h)
        return self.w2(h)
