"""KV-cached autoregressive decoding — the inference-side workload.

The paper profiles training; a user deploying the same models cares
about *decode*: one token at a time with cached keys/values. That
workload inverts the paper's balance analysis — every matmul becomes a
matvec (M = 1), covering 1/128 of the MME's rows, so the MME runs at
a tiny fraction of peak and the step is dominated by streaming the
weights — which this module lets the simulator demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.errors import ShapeError
from ..util.validation import check_positive_int
from .config import LLMConfig


@dataclass(frozen=True)
class DecodeShapes:
    """Shapes of one cached decode step."""

    batch: int
    context_len: int  # tokens already in the cache
    num_heads: int
    head_dim: int
    d_model: int
    vocab_size: int
    num_layers: int


def max_decode_context(config: LLMConfig) -> int:
    """The largest legal ``context_len`` for a decode step.

    A step with ``context_len == max_seq_len - 1`` is the *last* legal
    one: it appends the new token's key/value, so its output cache
    holds ``max_seq_len`` entries and no further step fits. Serving
    loops should finish (or evict) a request once its cache reaches
    this boundary rather than attempt another step.
    """
    return config.max_seq_len - 1


def decode_shapes(config: LLMConfig, batch: int, context_len: int) -> DecodeShapes:
    """Derive the step shapes from a model config.

    Contract: ``1 <= context_len <= max_seq_len - 1``
    (:func:`max_decode_context`). The step reads a cache of
    ``context_len`` entries and writes one of ``context_len + 1``, so
    equality with ``max_seq_len`` is already one past the last legal
    step — the cache it would need to read cannot exist.
    """
    check_positive_int("batch", batch)
    check_positive_int("context_len", context_len)
    if context_len >= config.max_seq_len:
        raise ShapeError(
            f"context {context_len} meets or exceeds max_seq_len "
            f"{config.max_seq_len}: the KV cache holds at most "
            f"max_seq_len - 1 = {config.max_seq_len - 1} entries before "
            "a step (the step appends one more); finish or evict the "
            "request at the cache-full boundary instead"
        )
    attn = config.layer.attention
    return DecodeShapes(
        batch=batch,
        context_len=context_len,
        num_heads=attn.num_heads,
        head_dim=attn.head_dim,
        d_model=config.d_model,
        vocab_size=config.vocab_size,
        num_layers=config.num_layers,
    )


def _decode_layer(
    x: Tensor,
    k_cache: Tensor,
    v_cache: Tensor,
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    w1: Tensor,
    w2: Tensor,
    shapes: DecodeShapes,
) -> Tensor:
    """One decoder layer's work for a single new token.

    ``x`` is (B, 1, D); the caches are (B, H, T, dh). Cache-append
    bookkeeping is a concat (DMA-class traffic); attention reduces to
    per-head matvecs against the cache.
    """
    b, h, dh = shapes.batch, shapes.num_heads, shapes.head_dim
    q = F.reshape(F.matmul(x, wq), (b, 1, h, dh))
    q = F.transpose(q, (0, 2, 1, 3))                    # (B,H,1,dh)
    k_new = F.transpose(F.reshape(F.matmul(x, wk), (b, 1, h, dh)),
                        (0, 2, 1, 3))
    v_new = F.transpose(F.reshape(F.matmul(x, wv), (b, 1, h, dh)),
                        (0, 2, 1, 3))
    k = F.concat_rows(k_cache, k_new)                    # (B,H,T+1,dh)
    v = F.concat_rows(v_cache, v_new)
    scores = F.mul_scalar(F.matmul(q, k, transpose_b=True), dh ** -0.5)
    probs = F.softmax(scores, axis=-1)                   # (B,H,1,T+1)
    ctx = F.matmul(probs, v)                             # (B,H,1,dh)
    ctx = F.reshape(F.transpose(ctx, (0, 2, 1, 3)), (b, 1, h * dh))
    attn_out = F.matmul(ctx, wo)
    x = F.add(x, attn_out)
    hmid = F.gelu(F.matmul(x, w1))
    return F.add(x, F.matmul(hmid, w2))


def record_decode_step(
    config: LLMConfig,
    *,
    batch: int = 1,
    context_len: int = 1024,
) -> "ht.Recorder":
    """Record one symbolic KV-cached decode step of a GPT-style model.

    Weights and caches enter as graph inputs (they are resident state
    during decoding); the recorded graph is the marginal per-token work.
    """
    shapes = decode_shapes(config, batch, context_len)
    d, h, dh = shapes.d_model, shapes.num_heads, shapes.head_dim
    ffn = d * config.layer.ffn_mult
    with ht.record(
        f"decode-b{batch}-t{context_len}", mode="symbolic"
    ) as rec:
        x = ht.input_tensor((batch, 1, d), name="token_embedding")
        for layer in range(shapes.num_layers):
            with ht.scope(f"layer{layer}"):
                k_cache = ht.input_tensor((batch, h, context_len, dh),
                                          name=f"k_cache{layer}")
                v_cache = ht.input_tensor((batch, h, context_len, dh),
                                          name=f"v_cache{layer}")
                weights = {
                    name: ht.input_tensor(shape, name=f"{name}{layer}")
                    for name, shape in (
                        ("wq", (d, d)), ("wk", (d, d)), ("wv", (d, d)),
                        ("wo", (d, d)), ("w1", (d, ffn)), ("w2", (ffn, d)),
                    )
                }
                x = _decode_layer(x, k_cache, v_cache,
                                  shapes=shapes, **weights)
        lm_head = ht.input_tensor((d, shapes.vocab_size), name="lm_head")
        with ht.scope("head"):
            F.matmul(x, lm_head)
    return rec
