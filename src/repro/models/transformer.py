"""Transformer layers and stacks.

A :class:`TransformerLayer` is the §3.3 unit of study: attention (any
variant) plus an optional FFN, with residual connections and layer
norms. :class:`TransformerStack` chains layers for the end-to-end
models.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.rng import derive, make_rng
from .attention import build_attention
from .config import LayerConfig
from .feedforward import FeedForward


class TransformerLayer(ht.Module):
    """Pre-/post-norm Transformer layer with pluggable attention."""

    def __init__(
        self,
        config: LayerConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "layer",
    ):
        super().__init__()
        self._name = name
        self.config = config
        rng = rng or make_rng()
        d = config.d_model
        self.attn = build_attention(
            config.attention, rng=derive(rng, name, "attn"),
            materialize=materialize, name="attn",
        )
        self.ln1 = ht.LayerNorm(d, materialize=materialize, name="ln1")
        self.ffn = (
            FeedForward(
                d, ffn_mult=config.ffn_mult, activation=config.activation,
                rng=derive(rng, name, "ffn"), materialize=materialize,
            )
            if config.include_ffn
            else None
        )
        self.ln2 = (
            ht.LayerNorm(d, materialize=materialize, name="ln2")
            if config.include_ffn
            else None
        )
        p = config.dropout_p
        self.drop_attn = ht.Dropout(p, training=p > 0, name="drop_attn")
        self.drop_ffn = ht.Dropout(p, training=p > 0, name="drop_ffn")

    def forward(self, x: Tensor) -> Tensor:
        if self.config.pre_norm:
            x = F.add(x, self.drop_attn(self.attn(self.ln1(x))))
            if self.ffn is not None:
                x = F.add(x, self.drop_ffn(self.ffn(self.ln2(x))))
        else:
            x = self.ln1(F.add(x, self.drop_attn(self.attn(x))))
            if self.ffn is not None:
                x = self.ln2(F.add(x, self.drop_ffn(self.ffn(x))))
        return x


class TransformerStack(ht.Module):
    """N identical layers."""

    def __init__(
        self,
        config: LayerConfig,
        num_layers: int,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "stack",
    ):
        super().__init__()
        self._name = name
        rng = rng or make_rng()
        #: when set, each layer records as a checkpoint segment: its
        #: internal activations become droppable and the memory
        #: planner may recompute them before backward instead of
        #: keeping them resident (see :func:`repro.ht.checkpoint`)
        self.checkpoint_activations = False
        self.layers = [
            TransformerLayer(
                config, rng=derive(rng, name, f"layer{i}"),
                materialize=materialize, name=f"layer{i}",
            )
            for i in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            if self.checkpoint_activations:
                x = ht.checkpoint(layer, x, label=layer._name)
            else:
                x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)
