"""Autoregressive text generation with the GPT analog (concrete mode).

A usability feature beyond the paper: once a tiny GPT has been trained
on the synthetic corpus, :func:`generate` produces continuations
greedily or with temperature sampling.

Decoding is KV-cached by default: the prompt is prefilled once (one
full forward that also captures every layer's keys/values), and each
subsequent token runs only its *marginal* work — embed one token,
attend against the cached K/V, append the new entries. Per-token cost
is O(context) instead of the O(context^2) full-window re-forward the
naive loop pays, so a T-token continuation costs O(T^2) total work
instead of O(T^3)-ish; ``examples/generate_text.py`` measures the
per-token speedup. ``use_cache=False`` (or a model the cached path
cannot serve exactly — non-softmax attention, live dropout) falls back
to the full re-forward loop, which is also what runs once the context
slides past ``max_seq_len`` and cached positions are no longer valid.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..util.errors import DataError
from ..util.rng import make_rng
from .attention import _NEG_INF
from .gpt import GPT2LMHeadModel


def _sample(logits: np.ndarray, temperature: float,
            rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    scaled = (logits - logits.max()) / temperature
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))


def _supports_cached_decode(model: GPT2LMHeadModel) -> bool:
    """Whether the incremental path reproduces the full forward exactly.

    The cached step computes the last position's attention row against
    stored K/V — identical math to causal softmax attention's final
    row. Other attention kinds (linear/Performer normalizers span the
    whole sequence) and live dropout (fresh mask per call) have no such
    per-position decomposition, so they take the full-forward path.
    """
    attn = model.config.layer.attention
    return (
        attn.kind == "softmax"
        and attn.causal
        and model.config.layer.dropout_p == 0.0
    )


def _attend(attn, x, k_cache: np.ndarray | None, v_cache: np.ndarray | None,
            mask) -> tuple:
    """Softmax attention over ``x`` plus any cached K/V.

    ``x`` is the (1, n, D) attention input (post-norm for pre-norm
    layers); the caches are (1, H, T, dh) numpy arrays or ``None``.
    Returns ``(attn_out, k_all, v_all)`` where the K/V cover cache +
    new positions — the caller's next cache state.
    """
    scale = attn.config.head_dim ** -0.5
    q, k_new, v_new = attn._project(x)
    k_all = k_new.numpy()
    v_all = v_new.numpy()
    if k_cache is not None:
        k_all = np.concatenate([k_cache, k_all], axis=2)
        v_all = np.concatenate([v_cache, v_all], axis=2)
    k_t = ht.tensor(k_all, name="k_cache", kind="const")
    v_t = ht.tensor(v_all, name="v_cache", kind="const")
    scores = F.mul_scalar(F.matmul(q, k_t, transpose_b=True), scale)
    if mask is not None:
        scores = F.add(scores, mask)
    probs = F.softmax(scores, axis=-1)
    out = attn._finish(F.matmul(probs, v_t))
    return out, k_all, v_all


def _forward_incremental(
    model: GPT2LMHeadModel,
    token_ids: list[int],
    first_position: int,
    caches: list[tuple[np.ndarray, np.ndarray]] | None,
) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """Run ``token_ids`` (at absolute positions starting at
    ``first_position``) through the model on top of ``caches``.

    One call serves both phases: prefill (``caches is None``, many
    tokens) and decode (one token against the populated caches). The
    layer walk mirrors :class:`~repro.models.transformer.TransformerLayer`
    op for op — same functional calls, so concrete values match the
    full forward exactly — while capturing each layer's K/V. Returns
    the last position's logits and the updated caches.
    """
    n = len(token_ids)
    with ht.record("generate-step-cached", mode="concrete"):
        ids_t = ht.tensor(np.asarray([token_ids]))
        positions = ht.tensor(
            np.arange(first_position, first_position + n).reshape(1, n),
            name="positions", kind="const",
        )
        h = F.add(model.tok_embed(ids_t), model.pos_embed(positions))
        # New positions may only attend to cache + earlier new tokens;
        # with a single new token the row is all-visible and needs no
        # mask (the full forward's mask row is all zeros there too).
        mask = None
        if n > 1:
            past = 0 if caches is None else caches[0][0].shape[2]
            full = np.full((1, 1, n, past + n), _NEG_INF, dtype=np.float32)
            mask = ht.tensor(
                np.triu(full, k=past + 1), name="causal_mask", kind="const",
            )
        new_caches: list[tuple[np.ndarray, np.ndarray]] = []
        for i, layer in enumerate(model.decoder.layers):
            k_cache, v_cache = (None, None) if caches is None else caches[i]
            if layer.config.pre_norm:
                attn_out, k_all, v_all = _attend(
                    layer.attn, layer.ln1(h), k_cache, v_cache, mask
                )
                h = F.add(h, attn_out)
                if layer.ffn is not None:
                    h = F.add(h, layer.ffn(layer.ln2(h)))
            else:
                attn_out, k_all, v_all = _attend(
                    layer.attn, h, k_cache, v_cache, mask
                )
                h = layer.ln1(F.add(h, attn_out))
                if layer.ffn is not None:
                    h = layer.ln2(F.add(h, layer.ffn(h)))
            new_caches.append((k_all, v_all))
        logits = model.lm_head(model.ln_final(h))
        last = logits.numpy()[0, -1]
    return last, new_caches


def _forward_full(model: GPT2LMHeadModel, context: list[int]) -> np.ndarray:
    """One full-window forward; returns the last position's logits."""
    with ht.record("generate-step", mode="concrete"):
        logits = model(ht.tensor(np.asarray([context])))
        return logits.numpy()[0, -1]


def generate(
    model: GPT2LMHeadModel,
    prompt_ids: list[int] | np.ndarray,
    *,
    max_new_tokens: int = 16,
    temperature: float = 0.0,
    rng: np.random.Generator | None = None,
    use_cache: bool = True,
) -> list[int]:
    """Continue ``prompt_ids`` by ``max_new_tokens`` tokens.

    ``temperature == 0`` decodes greedily; otherwise softmax sampling.
    The context window is the model's ``max_seq_len`` (older tokens
    slide out). Requires a materialized (concrete) model.

    ``use_cache`` (default) decodes through a per-layer KV cache —
    prefill once, then O(context) marginal work per token; the cached
    and uncached paths compute identical values. The cache only
    applies while absolute positions fit ``max_seq_len``; once the
    window slides, positions shift and every step re-forwards the
    window (the uncached behaviour).
    """
    if max_new_tokens < 0:
        raise DataError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
    if temperature < 0:
        raise DataError(f"temperature must be >= 0, got {temperature}")
    ids = [int(t) for t in np.asarray(prompt_ids).reshape(-1)]
    if not ids:
        raise DataError("prompt must contain at least one token")
    vocab = model.config.vocab_size
    if any(not 0 <= t < vocab for t in ids):
        raise DataError("prompt token id out of vocabulary range")
    rng = rng or make_rng()
    window = model.config.max_seq_len
    cached = use_cache and _supports_cached_decode(model)
    caches: list[tuple[np.ndarray, np.ndarray]] | None = None
    for _ in range(max_new_tokens):
        if not cached or len(ids) > window:
            # uncached, or the window slid: full re-forward (positions
            # of retained tokens changed, so the cache cannot continue)
            last = _forward_full(model, ids[-window:])
        elif caches is None:
            last, caches = _forward_incremental(model, ids, 0, caches)
        else:
            last, caches = _forward_incremental(
                model, ids[-1:], len(ids) - 1, caches
            )
        ids.append(_sample(last, temperature, rng))
    return ids


def perplexity(
    model: GPT2LMHeadModel, token_ids: np.ndarray
) -> float:
    """Per-token perplexity of ``token_ids`` (a (B, N) int array)."""
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 2 or token_ids.shape[1] < 2:
        raise DataError("token_ids must be (B, N >= 2)")
    with ht.record("perplexity", mode="concrete"):
        logits = model(ht.tensor(token_ids)).numpy()
    shifted_logits = logits[:, :-1]
    targets = token_ids[:, 1:]
    m = shifted_logits.max(-1, keepdims=True)
    logp = shifted_logits - m - np.log(
        np.exp(shifted_logits - m).sum(-1, keepdims=True)
    )
    rows, cols = np.indices(targets.shape)
    nll = -logp[rows, cols, targets].mean()
    return float(np.exp(nll))
