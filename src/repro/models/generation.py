"""Autoregressive text generation with the GPT analog (concrete mode).

A usability feature beyond the paper: once a tiny GPT has been trained
on the synthetic corpus, :func:`generate` produces continuations
greedily or with temperature sampling. Each decoding step records and
executes a full forward graph — so generation can also be *profiled*
per step, which is how the inference example inspects prefill-style
engine behaviour.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..util.errors import DataError
from ..util.rng import make_rng
from .gpt import GPT2LMHeadModel


def _sample(logits: np.ndarray, temperature: float,
            rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    scaled = (logits - logits.max()) / temperature
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))


def generate(
    model: GPT2LMHeadModel,
    prompt_ids: list[int] | np.ndarray,
    *,
    max_new_tokens: int = 16,
    temperature: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Continue ``prompt_ids`` by ``max_new_tokens`` tokens.

    ``temperature == 0`` decodes greedily; otherwise softmax sampling.
    The context window is the model's ``max_seq_len`` (older tokens
    slide out). Requires a materialized (concrete) model.
    """
    if max_new_tokens < 0:
        raise DataError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
    if temperature < 0:
        raise DataError(f"temperature must be >= 0, got {temperature}")
    ids = [int(t) for t in np.asarray(prompt_ids).reshape(-1)]
    if not ids:
        raise DataError("prompt must contain at least one token")
    vocab = model.config.vocab_size
    if any(not 0 <= t < vocab for t in ids):
        raise DataError("prompt token id out of vocabulary range")
    rng = rng or make_rng()
    window = model.config.max_seq_len
    for _ in range(max_new_tokens):
        context = ids[-window:]
        with ht.record("generate-step", mode="concrete"):
            logits = model(ht.tensor(np.asarray([context])))
            last = logits.numpy()[0, -1]
        ids.append(_sample(last, temperature, rng))
    return ids


def perplexity(
    model: GPT2LMHeadModel, token_ids: np.ndarray
) -> float:
    """Per-token perplexity of ``token_ids`` (a (B, N) int array)."""
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 2 or token_ids.shape[1] < 2:
        raise DataError("token_ids must be (B, N >= 2)")
    with ht.record("perplexity", mode="concrete"):
        logits = model(ht.tensor(token_ids)).numpy()
    shifted_logits = logits[:, :-1]
    targets = token_ids[:, 1:]
    m = shifted_logits.max(-1, keepdims=True)
    logp = shifted_logits - m - np.log(
        np.exp(shifted_logits - m).sum(-1, keepdims=True)
    )
    rows, cols = np.indices(targets.shape)
    nll = -logp[rows, cols, targets].mean()
    return float(np.exp(nll))
