"""Model configuration dataclasses.

Defaults encode the paper's experimental settings:

* layer studies (§3.3, Figs 4–7): seq 2048, batch 128, 6 heads,
  head dim 64;
* end-to-end LLMs (§3.4, Figs 8/9): seq 2048, batch 8, 2 layers,
  8 heads, head dim 64, BookCorpus vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..util.validation import check_in, check_positive_int

ATTENTION_KINDS = ("softmax", "linear", "performer", "chunked", "pipelined")
FEATURE_MAPS = ("elu1", "relu", "leaky_relu", "gelu", "glu")
ACTIVATIONS = ("relu", "leaky_relu", "gelu", "glu")


@dataclass(frozen=True)
class AttentionConfig:
    """One attention block."""

    num_heads: int = 6
    head_dim: int = 64
    kind: str = "softmax"
    #: linear attention's feature map (paper default: elu(x) + 1)
    feature_map: str = "elu1"
    #: Performer/FAVOR random-feature count
    performer_features: int = 256
    #: chunked (local) attention window
    chunk_size: int = 256
    causal: bool = False

    def __post_init__(self) -> None:
        check_positive_int("AttentionConfig.num_heads", self.num_heads)
        check_positive_int("AttentionConfig.head_dim", self.head_dim)
        check_in("AttentionConfig.kind", self.kind, ATTENTION_KINDS)
        check_in("AttentionConfig.feature_map", self.feature_map, FEATURE_MAPS)
        check_positive_int(
            "AttentionConfig.performer_features", self.performer_features
        )
        check_positive_int("AttentionConfig.chunk_size", self.chunk_size)

    @property
    def d_model(self) -> int:
        """Model width implied by heads x head_dim."""
        return self.num_heads * self.head_dim


@dataclass(frozen=True)
class LayerConfig:
    """One Transformer layer (attention + optional FFN)."""

    attention: AttentionConfig = field(default_factory=AttentionConfig)
    #: FFN expansion factor; the paper's layer studies profile the
    #: attention block itself, so the layer-study config disables the FFN
    ffn_mult: int = 4
    activation: str = "gelu"
    include_ffn: bool = True
    pre_norm: bool = True
    #: residual/embedding dropout probability; 0 (the profiling default)
    #: records no dropout ops, > 0 adds real TPC mask work per call
    dropout_p: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int("LayerConfig.ffn_mult", self.ffn_mult)
        check_in("LayerConfig.activation", self.activation, ACTIVATIONS)
        if not 0.0 <= self.dropout_p < 1.0:
            from ..util.errors import ConfigError

            raise ConfigError(
                f"LayerConfig.dropout_p must be in [0, 1), got {self.dropout_p}"
            )

    @property
    def d_model(self) -> int:
        """Model width."""
        return self.attention.d_model


@dataclass(frozen=True)
class LLMConfig:
    """A BERT/GPT-style language model."""

    vocab_size: int = 30522
    max_seq_len: int = 2048
    num_layers: int = 2
    layer: LayerConfig = field(default_factory=lambda: LayerConfig(
        attention=AttentionConfig(num_heads=8, head_dim=64)
    ))
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        check_positive_int("LLMConfig.vocab_size", self.vocab_size)
        check_positive_int("LLMConfig.max_seq_len", self.max_seq_len)
        check_positive_int("LLMConfig.num_layers", self.num_layers)

    @property
    def d_model(self) -> int:
        """Model width."""
        return self.layer.d_model


def paper_layer_config(
    kind: str = "softmax", *, feature_map: str = "elu1",
    include_ffn: bool = False, **attn_overrides,
) -> LayerConfig:
    """The §3.3 layer-study configuration (H=6, dh=64, seq 2048 x B 128).

    The study profiles the attention block itself, so the FFN is off by
    default; Figure 7's "activation" sweep varies the *feature map* of
    linear attention.
    """
    attn = AttentionConfig(
        num_heads=6, head_dim=64, kind=kind, feature_map=feature_map,
        **attn_overrides,
    )
    return LayerConfig(attention=attn, include_ffn=include_ffn)


def paper_bert_config() -> LLMConfig:
    """BertForMaskedLM analog with the §3.4 shape settings."""
    return LLMConfig(
        vocab_size=30522, max_seq_len=2048, num_layers=2,
        layer=LayerConfig(
            attention=AttentionConfig(num_heads=8, head_dim=64, causal=False),
            activation="gelu",
        ),
    )


def paper_gpt_config() -> LLMConfig:
    """GPT2LMHeadModel analog with the §3.4 shape settings."""
    return LLMConfig(
        vocab_size=50257, max_seq_len=2048, num_layers=2,
        layer=LayerConfig(
            attention=AttentionConfig(num_heads=8, head_dim=64, causal=True),
            activation="gelu",
        ),
    )


def scaled(config: LLMConfig, *, vocab_size: int | None = None,
           seq_len: int | None = None, num_layers: int | None = None) -> LLMConfig:
    """A smaller variant for concrete-mode tests and examples."""
    return replace(
        config,
        vocab_size=vocab_size or config.vocab_size,
        max_seq_len=seq_len or config.max_seq_len,
        num_layers=num_layers or config.num_layers,
    )
