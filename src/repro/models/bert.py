"""BertForMaskedLM analog — the §3.4 end-to-end encoder model.

Structure mirrors the HuggingFace module the paper profiles: token +
position embeddings, a bidirectional encoder stack, and an MLM head
(dense + GELU + LayerNorm + vocabulary decoder).
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Tensor
from ..util.errors import ShapeError
from ..util.rng import derive, make_rng
from .config import LLMConfig
from .transformer import TransformerStack


class MLMHead(ht.Module):
    """dense -> GELU -> LayerNorm -> vocab decoder (BERT's cls head)."""

    def __init__(self, d_model: int, vocab_size: int, *,
                 rng: np.random.Generator | None = None,
                 materialize: bool = True, name: str = "mlm_head"):
        super().__init__()
        self._name = name
        rng = rng or make_rng()
        self.dense = ht.Linear(d_model, d_model, rng=derive(rng, name, "dense"),
                               materialize=materialize, name="dense")
        self.ln = ht.LayerNorm(d_model, materialize=materialize, name="ln")
        self.decoder = ht.Linear(
            d_model, vocab_size, rng=derive(rng, name, "decoder"),
            materialize=materialize, name="decoder",
        )

    def forward(self, hidden: Tensor) -> Tensor:
        h = F.gelu(self.dense(hidden))
        return self.decoder(self.ln(h))


class BertForMaskedLM(ht.Module):
    """Bidirectional encoder with a masked-language-modeling head."""

    def __init__(
        self,
        config: LLMConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "bert",
    ):
        super().__init__()
        self._name = name
        self.config = config
        rng = rng or make_rng()
        d = config.d_model
        self.tok_embed = ht.Embedding(
            config.vocab_size, d, rng=derive(rng, name, "tok"),
            materialize=materialize, name="tok_embed",
        )
        self.pos_embed = ht.Embedding(
            config.max_seq_len, d, rng=derive(rng, name, "pos"),
            materialize=materialize, name="pos_embed",
        )
        self.encoder = TransformerStack(
            config.layer, config.num_layers, rng=derive(rng, name, "enc"),
            materialize=materialize, name="encoder",
        )
        self.ln_final = ht.LayerNorm(d, materialize=materialize, name="ln_f")
        self.head = MLMHead(
            d, config.vocab_size, rng=derive(rng, name, "head"),
            materialize=materialize,
        )

    def forward(self, input_ids: Tensor) -> Tensor:
        """input_ids (B, N) -> logits (B, N, V)."""
        if len(input_ids.shape) != 2:
            raise ShapeError(f"input_ids must be (B, N), got {input_ids.shape}")
        b, n = input_ids.shape
        if n > self.config.max_seq_len:
            raise ShapeError(
                f"sequence length {n} exceeds max {self.config.max_seq_len}"
            )
        positions = ht.tensor(
            np.broadcast_to(np.arange(n), (b, n)).copy(),
            name="positions", kind="const",
        )
        h = F.add(self.tok_embed(input_ids), self.pos_embed(positions))
        h = self.encoder(h)
        return self.head(self.ln_final(h))

    def loss(self, input_ids: Tensor, target_onehot: Tensor) -> Tensor:
        """Mean MLM cross-entropy over all positions.

        ``target_onehot`` is (B, N, V); the synthetic-corpus batcher
        produces it (masked positions carry the original token).
        """
        logits = self(input_ids)
        with ht.scope("loss"):
            return F.cross_entropy_with_logits(
                F.reshape(logits, (-1, self.config.vocab_size)),
                F.reshape(target_onehot, (-1, self.config.vocab_size)),
            )
