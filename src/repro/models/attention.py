"""Attention variants: the heart of the paper's layer studies.

* :class:`SoftmaxAttention` — the original Vaswani design; its softmax
  lowers entirely onto the TPC and becomes the bottleneck at long
  sequence lengths (Fig 4).
* :class:`LinearAttention` — Katharopoulos et al.'s linearized
  attention with the elu(x)+1 feature map (or the Fig 7 alternatives);
  the associativity trick ``(phi(Q) phi(K)^T) V = phi(Q) (phi(K)^T V)``
  turns almost all work into MME matmuls (~6x, Fig 5).
* :class:`PerformerAttention` — FAVOR random features, following the
  paper's Listing 1 line by line (including ``torch.ones_like`` for the
  normalizer); its exponentials serialize on the TPC (~2x, Fig 6).
* :class:`ChunkedAttention` — the §5 future-work direction: a
  Gaudi-tailored local attention whose softmax cost drops from O(N^2)
  to O(N * window).

All variants share the projection layout of the HuggingFace modules
the paper profiles: reshape to (B, H, N, dh) via view + transpose, so
the TPC pays the permute traffic a real PyTorch program pays.
"""

from __future__ import annotations

import numpy as np

from .. import ht
from ..ht import functional as F
from ..ht.tensor import Parameter, Tensor
from ..util.errors import ConfigError, ShapeError
from ..util.rng import derive, make_rng
from .config import AttentionConfig

_NEG_INF = -1.0e9


def _split_heads(x: Tensor, num_heads: int, head_dim: int) -> Tensor:
    """(B, N, H*dh) -> (B, H, N, dh) via view + physical transpose."""
    b, n, _ = x.shape
    x = F.reshape(x, (b, n, num_heads, head_dim))
    return F.transpose(x, (0, 2, 1, 3))


def _merge_heads(x: Tensor) -> Tensor:
    """(B, H, N, dh) -> (B, N, H*dh)."""
    b, h, n, dh = x.shape
    x = F.transpose(x, (0, 2, 1, 3))
    return F.reshape(x, (b, n, h * dh))


class _AttentionBase(ht.Module):
    """Shared projections + head bookkeeping."""

    def __init__(
        self,
        config: AttentionConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "attn",
    ):
        super().__init__()
        self._name = name
        self.config = config
        d = config.d_model
        rng = rng or make_rng()
        self.wq = ht.Linear(d, d, bias=False, rng=derive(rng, name, "wq"),
                            materialize=materialize, name="wq")
        self.wk = ht.Linear(d, d, bias=False, rng=derive(rng, name, "wk"),
                            materialize=materialize, name="wk")
        self.wv = ht.Linear(d, d, bias=False, rng=derive(rng, name, "wv"),
                            materialize=materialize, name="wv")
        self.wo = ht.Linear(d, d, bias=False, rng=derive(rng, name, "wo"),
                            materialize=materialize, name="wo")

    def _project(self, x: Tensor) -> tuple[Tensor, Tensor, Tensor]:
        if x.shape[-1] != self.config.d_model:
            raise ShapeError(
                f"{self._name}: expected width {self.config.d_model}, "
                f"got {x.shape}"
            )
        cfg = self.config
        q = _split_heads(self.wq(x), cfg.num_heads, cfg.head_dim)
        k = _split_heads(self.wk(x), cfg.num_heads, cfg.head_dim)
        v = _split_heads(self.wv(x), cfg.num_heads, cfg.head_dim)
        return q, k, v

    def _finish(self, ctx: Tensor) -> Tensor:
        return self.wo(_merge_heads(ctx))


class SoftmaxAttention(_AttentionBase):
    """softmax(Q K^T / sqrt(d)) V — quadratic in sequence length."""

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        q, k, v = self._project(x)
        scores = F.matmul(q, k, transpose_b=True)
        scores = F.mul_scalar(scores, cfg.head_dim ** -0.5)
        if cfg.causal:
            n = x.shape[1]
            mask = np.triu(np.full((1, 1, n, n), _NEG_INF, dtype=np.float32), k=1)
            scores = F.add(scores, ht.tensor(mask, name="causal_mask",
                                             kind="const"))
        probs = F.softmax(scores, axis=-1)
        return self._finish(F.matmul(probs, v))


def _apply_feature_map(x: Tensor, feature_map: str) -> Tensor:
    """Row-wise positive feature map phi for linearized attention."""
    if feature_map == "elu1":
        # Linear Transformer's choice: phi(x) = elu(x) + 1 (positive).
        return F.add_scalar(F.elu(x), 1.0)
    if feature_map == "relu":
        return F.relu(x)
    if feature_map == "leaky_relu":
        return F.leaky_relu(x)
    if feature_map == "gelu":
        return F.gelu(x)
    if feature_map == "glu":
        # Full-width gated map: glu([x, x]) = x * sigmoid(x), keeping the
        # feature dim (and thus the attention matmul sizes) equal to the
        # other variants, as in the paper's Fig 7 sweep. Still routes
        # through the poorly-supported GLU op -> host recompilation.
        return F.glu(F.concat_last(x, x))
    raise ConfigError(f"unknown feature map {feature_map!r}")


class LinearAttention(_AttentionBase):
    """phi(Q) (phi(K)^T V) — linear in sequence length, MME-dominated.

    The normalizer is computed with an explicit ``ones_like`` matmul
    (as in the paper's FAVOR listing) rather than a fused reduction:
    insight #2 of §4 — basic Torch ops map better than abstractions,
    and matmuls are exactly what the MME wants.
    """

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        if cfg.causal:
            raise ConfigError(
                "causal linear attention (RNN-style prefix sums) is not "
                "modeled; the paper profiles the bidirectional form"
            )
        q, k, v = self._project(x)
        with ht.scope("feature_map"):
            qp = _apply_feature_map(q, cfg.feature_map)
            kp = _apply_feature_map(k, cfg.feature_map)
        kv = F.matmul(kp, v, transpose_a=True)           # (B,H,dh',dh)
        raw = F.matmul(qp, kv)                           # (B,H,N,dh)
        ones = F.ones_like(v)
        norm = F.matmul(qp, F.matmul(kp, ones, transpose_a=True))
        # Epsilon guards the all-zero rows non-positive feature maps
        # (relu) can produce; elu+1 never needs it.
        return self._finish(F.div(raw, F.add_scalar(norm, 1e-6)))


class PerformerAttention(_AttentionBase):
    """FAVOR attention, transcribed from the paper's Listing 1."""

    def __init__(
        self,
        config: AttentionConfig,
        *,
        rng: np.random.Generator | None = None,
        materialize: bool = True,
        name: str = "performer",
    ):
        super().__init__(config, rng=rng, materialize=materialize, name=name)
        rng = rng or make_rng()
        m = config.performer_features
        dh = config.head_dim
        data = None
        if materialize:
            # orthogonal random features (Gram-Schmidt over gaussian draws)
            g = derive(rng, name, "features").normal(size=(dh, m))
            q_mat, _ = np.linalg.qr(g) if dh >= m else (g, None)
            data = (q_mat[:, :m] if dh >= m else g).astype(np.float32)
            data *= np.sqrt(dh)
        self.features = Parameter(
            data, shape=(dh, m), name=f"{name}.features", requires_grad=False,
        )
        self.pre_scale = config.head_dim ** -0.25
        self.offset = -1.0

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        if cfg.causal:
            raise ConfigError("causal FAVOR is not modeled (see Listing 1)")
        q, k, v = self._project(x)
        # --- Listing 1, line by line -------------------------------------
        with ht.scope("favor_q"):
            q_scaled = F.mul_scalar(q, self.pre_scale)
            q_scaled = F.matmul(q_scaled, self.features)
            q_prime = F.exp(F.add_scalar(q_scaled, self.offset))
        with ht.scope("favor_k"):
            k_scaled = F.mul_scalar(k, self.pre_scale)
            k_scaled = F.matmul(k_scaled, self.features)
            k_prime = F.exp(F.add_scalar(k_scaled, self.offset))
        with ht.scope("favor_attn"):
            ones = F.ones_like(v)
            att_norm = F.matmul(
                q_prime, F.matmul(k_prime, ones, transpose_a=True)
            )
            att_raw = F.matmul(q_prime, F.matmul(k_prime, v, transpose_a=True))
            out = F.div(att_raw, att_norm)
        return self._finish(out)


class ChunkedAttention(_AttentionBase):
    """Local (block-diagonal) softmax attention — the §5 extension.

    Queries attend only within their chunk of ``chunk_size`` positions:
    the TPC-bound softmax shrinks from O(N^2) to O(N * chunk) elements
    while the matmuls stay on the MME — a attention layout tailored to
    Gaudi's engine imbalance.
    """

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        b, n, _ = x.shape
        c = cfg.chunk_size
        if n % c != 0:
            raise ShapeError(
                f"sequence length {n} not divisible by chunk size {c}"
            )
        q, k, v = self._project(x)  # (B,H,N,dh)
        h, dh = cfg.num_heads, cfg.head_dim
        shape5 = (b, h, n // c, c, dh)
        q = F.reshape(q, shape5)
        k = F.reshape(k, shape5)
        v = F.reshape(v, shape5)
        scores = F.mul_scalar(
            F.matmul(q, k, transpose_b=True), dh ** -0.5
        )  # (B,H,chunks,c,c)
        if cfg.causal:
            mask = np.triu(
                np.full((1, 1, 1, c, c), _NEG_INF, dtype=np.float32), k=1
            )
            scores = F.add(scores, ht.tensor(mask, name="chunk_mask",
                                             kind="const"))
        probs = F.softmax(scores, axis=-1)
        ctx = F.reshape(F.matmul(probs, v), (b, h, n, dh))
        return self._finish(ctx)


class PipelinedSoftmaxAttention(_AttentionBase):
    """Query-chunked *exact* softmax attention — the overlap extension.

    Mathematically identical to :class:`SoftmaxAttention` (each query
    chunk still attends over ALL keys), but the computation is emitted
    as per-chunk node sequences: QK^T_i (MME) -> softmax_i (TPC) ->
    A_i V (MME). Under the runtime's in-order-per-engine issue, chunk
    i's softmax overlaps chunk i+1's QK^T — software pipelining that
    directly implements §4's insight #1 ("generate good mapping and
    schedule of MME and TPC") without approximating the attention.
    """

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        n = x.shape[1]
        c = cfg.chunk_size
        if n % c != 0:
            raise ShapeError(
                f"sequence length {n} not divisible by chunk size {c}"
            )
        q, k, v = self._project(x)  # (B,H,N,dh)
        mask = None
        if cfg.causal:
            full = np.triu(
                np.full((1, 1, n, n), _NEG_INF, dtype=np.float32), k=1
            )
            mask = ht.tensor(full, name="causal_mask", kind="const")

        def chunk_scores(lo: int) -> Tensor:
            q_i = F.slice_rows(q, lo, lo + c)
            s = F.mul_scalar(
                F.matmul(q_i, k, transpose_b=True), cfg.head_dim ** -0.5
            )
            if mask is not None:
                s = F.add(s, F.slice_rows(mask, lo, lo + c))
            return s

        # Software-pipelined emission order: the NEXT chunk's QK^T is
        # issued *before* this chunk's AV, so the in-order MME queue
        # reads QK0, QK1, AV0, QK2, AV1, ... and chunk i's softmax on
        # the TPC hides under chunk i+1's QK^T on the MME. This is the
        # source-level schedule §4's insight #1 asks the programmer to
        # provide.
        out_chunks: Tensor | None = None
        with ht.scope("chunk0"):
            scores = chunk_scores(0)
        for i, lo in enumerate(range(0, n, c)):
            with ht.scope(f"chunk{i}"):
                probs = F.softmax(scores, axis=-1)
            if lo + c < n:
                with ht.scope(f"chunk{i + 1}"):
                    scores = chunk_scores(lo + c)
            with ht.scope(f"chunk{i}"):
                ctx_i = F.matmul(probs, v)
            out_chunks = (
                ctx_i if out_chunks is None
                else F.concat_rows(out_chunks, ctx_i)
            )
        return self._finish(out_chunks)


def build_attention(
    config: AttentionConfig,
    *,
    rng: np.random.Generator | None = None,
    materialize: bool = True,
    name: str = "attn",
) -> _AttentionBase:
    """Factory selecting the variant from ``config.kind``."""
    cls = {
        "softmax": SoftmaxAttention,
        "linear": LinearAttention,
        "performer": PerformerAttention,
        "chunked": ChunkedAttention,
        "pipelined": PipelinedSoftmaxAttention,
    }[config.kind]
    return cls(config, rng=rng, materialize=materialize, name=name)


def reference_softmax_attention(
    x: np.ndarray, wq: np.ndarray, wk: np.ndarray, wv: np.ndarray,
    wo: np.ndarray, num_heads: int, *, causal: bool = False,
) -> np.ndarray:
    """Pure-numpy reference for correctness tests."""
    b, n, d = x.shape
    dh = d // num_heads

    def split(mat):
        return (x @ mat).reshape(b, n, num_heads, dh).transpose(0, 2, 1, 3)

    q, k, v = split(wq), split(wk), split(wv)
    scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(dh)
    if causal:
        scores = scores + np.triu(np.full((n, n), _NEG_INF), k=1)
    e = np.exp(scores - scores.max(-1, keepdims=True))
    probs = e / e.sum(-1, keepdims=True)
    ctx = (probs @ v).transpose(0, 2, 1, 3).reshape(b, n, d)
    return ctx @ wo
