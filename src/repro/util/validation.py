"""Small argument-validation helpers used across the library.

These raise :class:`~repro.util.errors.ConfigError` /
:class:`~repro.util.errors.ShapeError` with messages that name the
offending parameter, so configuration mistakes surface at construction
time instead of as NaNs deep inside a simulation.
"""

from __future__ import annotations

from collections.abc import Sequence

from .errors import ConfigError, ShapeError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integer strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigError(f"{name} must be a positive int, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in(name: str, value: object, allowed: Sequence[object]) -> object:
    """Require membership in ``allowed``."""
    if value not in allowed:
        raise ConfigError(f"{name} must be one of {list(allowed)!r}, got {value!r}")
    return value


def check_shape(name: str, shape: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalize a tensor shape.

    Gaudi's TPC accepts tensors of rank 1..5 (§2.2); we allow rank 0
    (scalars) as well since the frontend produces them for losses.
    """
    shape = tuple(shape)
    if len(shape) > 5:
        raise ShapeError(f"{name}: rank {len(shape)} exceeds Gaudi's max tensor rank 5")
    for dim in shape:
        if not isinstance(dim, (int,)) or isinstance(dim, bool) or dim < 0:
            raise ShapeError(f"{name}: dimensions must be non-negative ints, got {shape!r}")
    return shape


def same_shape(name: str, a: Sequence[int], b: Sequence[int]) -> tuple[int, ...]:
    """Require two shapes to match exactly; return the common shape."""
    ta, tb = tuple(a), tuple(b)
    if ta != tb:
        raise ShapeError(f"{name}: shapes differ, {ta} vs {tb}")
    return ta
