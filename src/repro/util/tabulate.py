"""Dependency-free text tables used by the benchmark harness.

The benchmark targets print paper-style tables (Table 1, Table 2) and
per-figure summary rows; this module renders them as aligned monospace
text with an optional markdown mode for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    markdown: bool = False,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are shown with two decimals; all other values via ``str``.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        joined = " | ".join(c.ljust(widths[j]) for j, c in enumerate(cells))
        return ("| " + joined + " |") if markdown else joined

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def render_kv(pairs: Sequence[tuple[str, object]], *, title: str | None = None) -> str:
    """Render key/value pairs as an aligned two-column block."""
    if not pairs:
        return title or ""
    width = max(len(k) for k, _ in pairs)
    lines = [title] if title else []
    for key, value in pairs:
        lines.append(f"{key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)
