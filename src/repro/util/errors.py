"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError`` etc. are still raised for caller bugs at the API
boundary where that is the clearer signal).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A hardware or compiler configuration value is invalid."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class GraphError(ReproError):
    """The operation graph is malformed (cycles, dangling inputs, ...)."""


class CompileError(ReproError):
    """The graph compiler could not produce a schedule."""


class ExecutionError(ReproError):
    """The runtime failed while executing a compiled schedule."""


class DeviceMemoryError(ReproError):
    """The workload does not fit in device (HBM) memory.

    Mirrors the out-of-memory condition that forced the paper to reduce
    the end-to-end batch size to 8 at sequence length 2048 (§3.4).
    """

    def __init__(self, required_bytes: int, capacity_bytes: int, detail: str = ""):
        self.required_bytes = int(required_bytes)
        self.capacity_bytes = int(capacity_bytes)
        msg = (
            f"device memory exhausted: peak live footprint {required_bytes} B "
            f"exceeds HBM capacity {capacity_bytes} B"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class KernelError(ReproError):
    """A TPC kernel was declared or invoked incorrectly."""


class AutogradError(ReproError):
    """Backward pass failure (non-differentiable op, detached graph, ...)."""


class DataError(ReproError):
    """Corpus/tokenizer/batching failure."""
