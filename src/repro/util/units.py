"""Unit helpers: the simulator's canonical units and human formatting.

Canonical units used throughout the simulator:

* time         — microseconds (float)
* memory/data  — bytes (int)
* compute      — FLOPs (float), rates in TFLOP/s
* bandwidth    — bytes per second (float)

Keeping a single canonical unit per quantity avoids the classic
simulation bug of mixing ns/us/ms mid-pipeline; conversion happens only
at the formatting boundary.
"""

from __future__ import annotations

US_PER_MS = 1_000.0
US_PER_S = 1_000_000.0

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

GB = 1_000_000_000  # decimal gigabyte, used for bandwidth specs
TERA = 1.0e12


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def s_to_us(s: float) -> float:
    """Convert seconds to microseconds."""
    return s * US_PER_S


def us_to_s(us: float) -> float:
    """Convert microseconds to seconds."""
    return us / US_PER_S


def tflops(flops: float, duration_us: float) -> float:
    """Achieved TFLOP/s for ``flops`` of work over ``duration_us``.

    Returns 0.0 for zero duration to keep degenerate (empty) measurements
    well-defined rather than raising in reporting code.
    """
    if duration_us <= 0.0:
        return 0.0
    return flops / us_to_s(duration_us) / TERA


def fmt_time_us(us: float) -> str:
    """Human-readable time from canonical microseconds."""
    if us < 0:
        return "-" + fmt_time_us(-us)
    if us < 1_000.0:
        return f"{us:.2f} us"
    if us < US_PER_S:
        return f"{us / US_PER_MS:.2f} ms"
    return f"{us / US_PER_S:.3f} s"


def fmt_bytes(n: float) -> str:
    """Human-readable size from canonical bytes."""
    n = float(n)
    if n < 0:
        return "-" + fmt_bytes(-n)
    for unit, div in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_flops(flops: float) -> str:
    """Human-readable FLOP count."""
    flops = float(flops)
    for unit, div in (("TFLOP", 1e12), ("GFLOP", 1e9), ("MFLOP", 1e6), ("kFLOP", 1e3)):
        if flops >= div:
            return f"{flops / div:.2f} {unit}"
    return f"{flops:.0f} FLOP"


def fmt_rate(tflops_value: float) -> str:
    """Human-readable compute rate given TFLOP/s."""
    return f"{tflops_value:.2f} TFLOPS"
