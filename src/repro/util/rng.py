"""Deterministic random-number management.

All stochastic components (Performer feature draws, synthetic corpus,
parameter init) take a :class:`numpy.random.Generator`; this module
provides the conventional way to derive independent, reproducible
streams from a single experiment seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x6A0D1  # "GAUDI" homage; any fixed value works


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a generator from ``seed`` (library default if ``None``)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive(rng: np.random.Generator, *tags: str) -> np.random.Generator:
    """Derive an independent child stream identified by string ``tags``.

    Uses ``spawn``-like key folding so the child is stable regardless of
    how many draws the parent has made — components get the same stream
    whether or not unrelated code consumed randomness first.
    """
    key = np.frombuffer(("/".join(tags)).encode("utf-8"), dtype=np.uint8)
    parent_seq = rng.bit_generator.seed_seq
    # Append to the parent's spawn key so nested derivations stay
    # independent: derive(derive(r, "a"), "x") != derive(derive(r, "b"), "x").
    seed_seq = np.random.SeedSequence(
        entropy=int(parent_seq.entropy or DEFAULT_SEED),
        spawn_key=tuple(parent_seq.spawn_key) + tuple(int(b) for b in key),
    )
    return np.random.default_rng(seed_seq)
