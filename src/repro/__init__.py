"""repro — a simulation-based reproduction of
"Benchmarking and In-depth Performance Study of Large Language Models
on Habana Gaudi Processors" (Zhang et al., SC-W 2023).

Subpackages
-----------
hw        simulated Gaudi hardware (MME, TPC cluster, DMA, HBM, RoCE)
tpc       the TPC programming model: VLIW ISA, kernels, simulator
synapse   the SynapseAI analog: graph IR, compiler, runtime, profiler
ht        "Habana torch": eager-with-recording tensors + autograd
models    attention variants, Transformer layers, BERT/GPT analogs
data      synthetic BookCorpus, tokenizer, batchers
core      the paper's experiments: Tables 1-2, Figures 4-9, ablations

Quickstart
----------
>>> from repro import ht
>>> from repro.models import TransformerLayer, paper_layer_config
>>> from repro.synapse import SynapseProfiler
>>> layer = TransformerLayer(paper_layer_config("softmax"),
...                          materialize=False)
>>> with ht.record("layer", mode="symbolic") as rec:
...     _ = layer(ht.input_tensor((128, 2048, 384)))
>>> profile = SynapseProfiler().profile(rec.graph)
>>> profile.softmax_tpc_share > 0.8
True
"""

from . import core, data, hw, ht, models, synapse, tpc, util

__version__ = "1.0.0"

__all__ = ["core", "data", "hw", "ht", "models", "synapse", "tpc", "util",
           "__version__"]
