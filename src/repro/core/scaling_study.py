"""Extension A4: multi-card HLS-1 scaling of LLM training.

§2.1 advertises "exceptional scalability in both expanding and
multiplying setups" over the on-chip RoCE fabric; the paper itself
profiles a single card. This extension models weak-scaling
data-parallel training across 1..8 Gaudis of an HLS-1: each card runs
the profiled per-card step, then ring-all-reduces the gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import HLS1Config
from ..hw.dtypes import itemsize
from ..hw.interconnect import RingAllReduce, data_parallel_step_time_us
from ..models import paper_bert_config, paper_gpt_config
from ..synapse import SynapseProfiler
from ..util.tabulate import render_table
from ..util.units import us_to_ms
from .e2e_llm import MODEL_BUILDERS, record_training_step
from .reference import ShapeCheck, threshold_check


@dataclass(frozen=True)
class ScalingRow:
    """One card count in the weak-scaling sweep."""

    num_cards: int
    step_time_ms: float
    allreduce_ms: float
    efficiency: float
    aggregate_samples_per_s: float


@dataclass
class ScalingStudyResult:
    """Weak scaling of one model across an HLS-1."""

    model_name: str
    per_card_batch: int
    gradient_bytes: int
    rows: list[ScalingRow] = field(default_factory=list)

    def checks(self) -> list[ShapeCheck]:
        """Scaling sanity claims for the extension."""
        eff8 = next(r.efficiency for r in self.rows if r.num_cards == 8)
        thr = [r.aggregate_samples_per_s for r in self.rows]
        return [
            threshold_check(
                f"scaling [{self.model_name}]: 8-card weak-scaling efficiency",
                eff8, 0.80,
            ),
            ShapeCheck(
                f"scaling [{self.model_name}]: throughput grows with cards",
                thr == sorted(thr),
                "monotone" if thr == sorted(thr) else "non-monotone",
                "monotone",
            ),
        ]

    def render(self) -> str:
        """Scaling table."""
        return render_table(
            ["Cards", "Step (ms)", "All-reduce (ms)", "Efficiency",
             "Samples/s"],
            [(r.num_cards, r.step_time_ms, r.allreduce_ms,
              f"{r.efficiency:.1%}", r.aggregate_samples_per_s)
             for r in self.rows],
            title=f"HLS-1 weak scaling, {self.model_name} "
                  f"(per-card batch {self.per_card_batch})",
        )


def run_scaling_study(
    model_name: str = "gpt",
    *,
    hls1: HLS1Config | None = None,
    card_counts: tuple[int, ...] = (1, 2, 4, 8),
    overlap_fraction: float = 0.5,
) -> ScalingStudyResult:
    """Weak-scale a training step across the box."""
    hls1 = hls1 or HLS1Config()
    rec = record_training_step(model_name)
    profile = SynapseProfiler(hls1.card).profile(rec.graph)
    compute_us = profile.total_time_us

    model_cls, config_fn = MODEL_BUILDERS[model_name]
    cfg = config_fn()
    model = model_cls(cfg, materialize=False)
    grad_bytes = sum(
        p.numel * itemsize(p.dtype) for p in model.parameters()
    )
    batch = 8
    result = ScalingStudyResult(model_name, batch, grad_bytes)
    ar = RingAllReduce(hls1.interconnect)
    for p in card_counts:
        step_us = data_parallel_step_time_us(
            compute_us, grad_bytes, p, hls1.interconnect,
            overlap_fraction=overlap_fraction,
        )
        result.rows.append(ScalingRow(
            num_cards=p,
            step_time_ms=us_to_ms(step_us),
            allreduce_ms=us_to_ms(ar.cost(p, grad_bytes).time_us),
            efficiency=compute_us / step_us,
            aggregate_samples_per_s=p * batch / (step_us / 1e6),
        ))
    return result
