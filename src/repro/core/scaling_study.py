"""Extensions A4 + A12: multi-card HLS-1 scaling of LLM training.

§2.1 advertises "exceptional scalability in both expanding and
multiplying setups" over the on-chip RoCE fabric; the paper itself
profiles a single card. Extension A4 weak-scales a data-parallel
training step across 1..8 Gaudis of an HLS-1 on the *event-driven*
multi-card runtime: one compiled recipe (card-count independent, so
the sweep keeps hitting the recipe cache) replayed per card with
bucketed gradient all-reduce draining through the shared fabric. The
closed-form :func:`~repro.hw.interconnect.data_parallel_step_time_us`
is retained as an analytic cross-check column — see its docstring for
why the two diverge.

Extension A12 holds the box at 8 cards and sweeps the communication
schedule itself: overlap off (one monolithic all-reduce behind the
last gradient) versus bucketed overlap at decreasing bucket sizes.
The headline is the exposed-communication time — NIC busy microseconds
not hidden under backward compute — collapsing as buckets shrink.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..hw.config import HLS1Config
from ..hw.device import HLS1Device
from ..hw.interconnect import RingAllReduce, data_parallel_step_time_us
from ..synapse import (
    GraphCompiler,
    default_compiler_options,
    schedule_from_json,
    schedule_to_json,
)
from ..synapse.runtime import HLS1Runtime
from ..util.tabulate import render_table
from ..util.units import us_to_ms
from .e2e_llm import E2E_SHAPES, record_training_step
from .reference import ShapeCheck, threshold_check


def _exec_schedule(
    schedule, hls1: HLS1Config, num_cards: int
) -> tuple[float, float, float]:
    """Execute one compiled schedule on an HLS-1 population; returns
    (total_time_us, exposed_comm_us, fabric_busy_us)."""
    system = HLS1Device(dataclasses.replace(hls1, num_cards=num_cards))
    res = HLS1Runtime(system).execute(schedule)
    return res.total_time_us, res.exposed_comm_us, res.fabric_busy_us


def _exec_payload(payload) -> tuple[float, float, float]:
    """Worker for ``--jobs`` parallelism: module-level so
    :class:`~concurrent.futures.ProcessPoolExecutor` can pickle it. The
    schedule crosses the process boundary as its recipe JSON (the same
    format the on-disk recipe store uses), so workers never re-run the
    compiler. The event-driven runtime is deterministic, so results are
    byte-identical to the serial path regardless of worker count."""
    schedule_text, hls1, num_cards = payload
    return _exec_schedule(schedule_from_json(schedule_text), hls1, num_cards)


@dataclass(frozen=True)
class ScalingRow:
    """One card count in the weak-scaling sweep."""

    num_cards: int
    step_time_ms: float
    allreduce_ms: float
    efficiency: float
    aggregate_samples_per_s: float
    #: NIC time not hidden under compute (card 0), from the trace
    exposed_comm_ms: float = 0.0
    #: the closed-form analytic reference for the same step
    analytic_step_ms: float = 0.0


@dataclass
class ScalingStudyResult:
    """Weak scaling of one model across an HLS-1."""

    model_name: str
    per_card_batch: int
    gradient_bytes: int
    rows: list[ScalingRow] = field(default_factory=list)

    def checks(self) -> list[ShapeCheck]:
        """Scaling sanity claims for the extension."""
        top = max(self.rows, key=lambda r: r.num_cards)
        thr = [r.aggregate_samples_per_s for r in self.rows]
        multi = [r for r in self.rows if r.num_cards > 1]
        # The bucketed-overlap simulation must never be slower than
        # serializing compute then the whole all-reduce (the analytic
        # worst case); small slack for per-bucket latency terms.
        bounded = all(
            r.step_time_ms
            <= 1.05 * (self.rows[0].step_time_ms + r.allreduce_ms)
            for r in multi
        )
        return [
            threshold_check(
                f"scaling [{self.model_name}]: {top.num_cards}-card "
                "weak-scaling efficiency",
                top.efficiency, 0.80,
            ),
            ShapeCheck(
                f"scaling [{self.model_name}]: throughput grows with cards",
                thr == sorted(thr),
                "monotone" if thr == sorted(thr) else "non-monotone",
                "monotone",
            ),
            ShapeCheck(
                f"scaling [{self.model_name}]: simulated step bounded by "
                "compute + serial all-reduce",
                bounded,
                "bounded" if bounded else "exceeds serial analytic",
                "bounded",
            ),
        ]

    def render(self) -> str:
        """Scaling table (simulated next to the analytic reference)."""
        return render_table(
            ["Cards", "Step (ms)", "Analytic (ms)", "All-reduce (ms)",
             "Exposed comm (ms)", "Efficiency", "Samples/s"],
            [(r.num_cards, r.step_time_ms, r.analytic_step_ms,
              r.allreduce_ms, r.exposed_comm_ms,
              f"{r.efficiency:.1%}", r.aggregate_samples_per_s)
             for r in self.rows],
            title=f"HLS-1 weak scaling, {self.model_name} "
                  f"(per-card batch {self.per_card_batch}, event-driven)",
        )


def run_scaling_study(
    model_name: str = "gpt",
    *,
    hls1: HLS1Config | None = None,
    card_counts: tuple[int, ...] = (1, 2, 4, 8),
    overlap_fraction: float = 0.5,
    jobs: int = 1,
) -> ScalingStudyResult:
    """Weak-scale a training step across the box, event-driven.

    One graph is recorded and compiled once (collective injection on);
    the same schedule then executes on an :class:`HLS1Runtime` per card
    count. ``overlap_fraction`` only parameterizes the analytic
    reference column. ``jobs > 1`` fans the per-card-count executions
    out over a process pool (the compile stays in this process); the
    simulation is deterministic, so the rows are identical either way.
    """
    hls1 = hls1 or HLS1Config()
    rec = record_training_step(model_name)
    options = dataclasses.replace(
        default_compiler_options(), inject_collectives=True
    )
    compiler = GraphCompiler(hls1.card, options)
    schedule = compiler.compile(rec.graph)
    grad_bytes = int(schedule.stats.get("gradient_bytes", 0))

    batch = E2E_SHAPES["batch"]
    result = ScalingStudyResult(model_name, batch, grad_bytes)
    ar = RingAllReduce(hls1.interconnect)

    counts = list(dict.fromkeys((1, *card_counts)))
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        text = schedule_to_json(schedule)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            timings = dict(zip(counts, pool.map(
                _exec_payload, [(text, hls1, p) for p in counts]
            )))
    else:
        timings = {p: _exec_schedule(schedule, hls1, p) for p in counts}

    base_us = timings[1][0]
    for p in card_counts:
        step_us, exposed_us, _ = timings[p]
        result.rows.append(ScalingRow(
            num_cards=p,
            step_time_ms=us_to_ms(step_us),
            allreduce_ms=us_to_ms(ar.cost(p, grad_bytes).time_us),
            efficiency=base_us / step_us,
            aggregate_samples_per_s=p * batch / (step_us / 1e6),
            exposed_comm_ms=us_to_ms(exposed_us),
            analytic_step_ms=us_to_ms(data_parallel_step_time_us(
                base_us, grad_bytes, p, hls1.interconnect,
                overlap_fraction=overlap_fraction,
            )),
        ))
    return result


# -- A12: communication-overlap ablation ------------------------------------


@dataclass(frozen=True)
class OverlapRow:
    """One communication schedule at a fixed card count."""

    label: str
    comm_overlap: bool
    bucket_mb: float
    num_buckets: int
    step_time_ms: float
    efficiency: float
    exposed_comm_ms: float
    fabric_utilization: float


@dataclass
class CommOverlapAblationResult:
    """A12: overlap on/off x bucket size on a fixed HLS-1 population."""

    model_name: str
    num_cards: int
    gradient_bytes: int
    base_step_ms: float
    rows: list[OverlapRow] = field(default_factory=list)

    def checks(self) -> list[ShapeCheck]:
        """Overlap claims: monotone improvement, shrinking exposure."""
        effs = [r.efficiency for r in self.rows]
        monotone = all(b >= a - 1e-9 for a, b in zip(effs, effs[1:]))
        improved = self.rows[-1].efficiency > self.rows[0].efficiency
        exposed_drops = (
            self.rows[-1].exposed_comm_ms < self.rows[0].exposed_comm_ms
        )
        return [
            ShapeCheck(
                f"overlap [{self.model_name}]: efficiency improves "
                "monotonically along the sweep",
                monotone,
                "monotone" if monotone else f"non-monotone {effs}",
                "monotone",
            ),
            ShapeCheck(
                f"overlap [{self.model_name}]: bucketed overlap beats "
                "the monolithic all-reduce",
                improved,
                f"{self.rows[0].efficiency:.1%} -> "
                f"{self.rows[-1].efficiency:.1%}",
                "improved",
            ),
            ShapeCheck(
                f"overlap [{self.model_name}]: exposed communication "
                "shrinks with overlap",
                exposed_drops,
                f"{self.rows[0].exposed_comm_ms:.2f} -> "
                f"{self.rows[-1].exposed_comm_ms:.2f} ms",
                "shrinks",
            ),
        ]

    def render(self) -> str:
        """Ablation table, one row per communication schedule."""
        return render_table(
            ["Schedule", "Buckets", "Step (ms)", "Efficiency",
             "Exposed comm (ms)", "Fabric util"],
            [(r.label, r.num_buckets, r.step_time_ms,
              f"{r.efficiency:.1%}", r.exposed_comm_ms,
              f"{r.fabric_utilization:.1%}")
             for r in self.rows],
            title=f"A12 comm-overlap ablation, {self.model_name} on "
                  f"{self.num_cards} cards "
                  f"(single-card step {self.base_step_ms:.2f} ms)",
        )


def run_comm_overlap_ablation(
    model_name: str = "gpt",
    *,
    hls1: HLS1Config | None = None,
    num_cards: int = 8,
    bucket_sizes_mb: tuple[float, ...] = (100.0, 25.0, 4.0),
    jobs: int = 1,
) -> CommOverlapAblationResult:
    """Sweep the DDP communication schedule on a fixed population.

    Rows run overlap-off first (one all-reduce behind the final
    gradient — the analytic model's world), then bucketed overlap at
    each of ``bucket_sizes_mb``, coarsest to finest. Each setting is a
    distinct compile (the bucket structure lives in the schedule), each
    keyed separately in the recipe cache. ``jobs > 1`` runs the
    executions on a process pool after all settings compile serially.
    """
    hls1 = hls1 or HLS1Config()
    rec = record_training_step(model_name)
    base_options = dataclasses.replace(
        default_compiler_options(), inject_collectives=True
    )
    settings: list[tuple[str, bool, float]] = [
        ("no overlap", False, float("inf"))
    ]
    for mb in bucket_sizes_mb:
        settings.append((f"overlap {mb:g} MB", True, mb))

    schedules = []
    for label, overlap, mb in settings:
        options = dataclasses.replace(
            base_options,
            comm_overlap=overlap,
            bucket_mb=mb if overlap else base_options.bucket_mb,
        )
        schedules.append(
            GraphCompiler(hls1.card, options).compile(rec.graph)
        )

    # slot 0 is the single-card compute baseline; the rest are the
    # sweep's rows on the full population
    work = [(schedules[0], 1)]
    work.extend((s, num_cards) for s in schedules)
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            timings = list(pool.map(
                _exec_payload,
                [(schedule_to_json(s), hls1, p) for s, p in work],
            ))
    else:
        timings = [_exec_schedule(s, hls1, p) for s, p in work]

    base_us = timings[0][0]
    result = CommOverlapAblationResult(
        model_name=model_name,
        num_cards=num_cards,
        gradient_bytes=int(schedules[0].stats.get("gradient_bytes", 0)),
        base_step_ms=us_to_ms(base_us),
    )
    for (label, overlap, mb), schedule, timing in zip(
        settings, schedules, timings[1:]
    ):
        step_us, exposed_us, fabric_us = timing
        buckets = sum(
            1 for op in schedule.ops if op.src == "all_reduce"
        )
        result.rows.append(OverlapRow(
            label=label,
            comm_overlap=overlap,
            bucket_mb=mb,
            num_buckets=buckets,
            step_time_ms=us_to_ms(step_us),
            efficiency=base_us / step_us,
            exposed_comm_ms=us_to_ms(exposed_us),
            fabric_utilization=fabric_us / step_us if step_us > 0 else 0.0,
        ))
    return result
