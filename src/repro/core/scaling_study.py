"""Extensions A4 + A12: multi-card HLS-1 scaling of LLM training.

§2.1 advertises "exceptional scalability in both expanding and
multiplying setups" over the on-chip RoCE fabric; the paper itself
profiles a single card. Extension A4 weak-scales a data-parallel
training step across 1..8 Gaudis of an HLS-1 on the *event-driven*
multi-card runtime: one compiled recipe (card-count independent, so
the sweep keeps hitting the recipe cache) replayed per card with
bucketed gradient all-reduce draining through the shared fabric. The
closed-form :func:`~repro.hw.interconnect.data_parallel_step_time_us`
is retained as an analytic cross-check column — see its docstring for
why the two diverge.

Extension A12 holds the box at 8 cards and sweeps the communication
schedule itself: overlap off (one monolithic all-reduce behind the
last gradient) versus bucketed overlap at decreasing bucket sizes.
The headline is the exposed-communication time — NIC busy microseconds
not hidden under backward compute — collapsing as buckets shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import HLS1Config
from ..hw.interconnect import RingAllReduce, data_parallel_step_time_us
from ..util.tabulate import render_table
from ..util.units import us_to_ms
from .e2e_llm import E2E_SHAPES
from .reference import ShapeCheck, threshold_check
from .sweep import SweepPoint, SweepSpec, run_sweep

#: the DDP policy both sweeps share: gradient all-reduce injection on
_DDP: tuple[tuple[str, object], ...] = (("inject_collectives", True),)


@dataclass(frozen=True)
class ScalingRow:
    """One card count in the weak-scaling sweep."""

    num_cards: int
    step_time_ms: float
    allreduce_ms: float
    efficiency: float
    aggregate_samples_per_s: float
    #: NIC time not hidden under compute (card 0), from the trace
    exposed_comm_ms: float = 0.0
    #: the closed-form analytic reference for the same step
    analytic_step_ms: float = 0.0


@dataclass
class ScalingStudyResult:
    """Weak scaling of one model across an HLS-1."""

    model_name: str
    per_card_batch: int
    gradient_bytes: int
    rows: list[ScalingRow] = field(default_factory=list)

    def checks(self) -> list[ShapeCheck]:
        """Scaling sanity claims for the extension."""
        top = max(self.rows, key=lambda r: r.num_cards)
        thr = [r.aggregate_samples_per_s for r in self.rows]
        multi = [r for r in self.rows if r.num_cards > 1]
        # The bucketed-overlap simulation must never be slower than
        # serializing compute then the whole all-reduce (the analytic
        # worst case); small slack for per-bucket latency terms.
        bounded = all(
            r.step_time_ms
            <= 1.05 * (self.rows[0].step_time_ms + r.allreduce_ms)
            for r in multi
        )
        return [
            threshold_check(
                f"scaling [{self.model_name}]: {top.num_cards}-card "
                "weak-scaling efficiency",
                top.efficiency, 0.80,
            ),
            ShapeCheck(
                f"scaling [{self.model_name}]: throughput grows with cards",
                thr == sorted(thr),
                "monotone" if thr == sorted(thr) else "non-monotone",
                "monotone",
            ),
            ShapeCheck(
                f"scaling [{self.model_name}]: simulated step bounded by "
                "compute + serial all-reduce",
                bounded,
                "bounded" if bounded else "exceeds serial analytic",
                "bounded",
            ),
        ]

    def render(self) -> str:
        """Scaling table (simulated next to the analytic reference)."""
        return render_table(
            ["Cards", "Step (ms)", "Analytic (ms)", "All-reduce (ms)",
             "Exposed comm (ms)", "Efficiency", "Samples/s"],
            [(r.num_cards, r.step_time_ms, r.analytic_step_ms,
              r.allreduce_ms, r.exposed_comm_ms,
              f"{r.efficiency:.1%}", r.aggregate_samples_per_s)
             for r in self.rows],
            title=f"HLS-1 weak scaling, {self.model_name} "
                  f"(per-card batch {self.per_card_batch}, event-driven)",
        )


def run_scaling_study(
    model_name: str = "gpt",
    *,
    hls1: HLS1Config | None = None,
    card_counts: tuple[int, ...] = (1, 2, 4, 8),
    overlap_fraction: float = 0.5,
    jobs: int = 1,
) -> ScalingStudyResult:
    """Weak-scale a training step across the box, event-driven.

    The sweep is one :class:`~repro.core.sweep.SweepSpec` — the model
    crossed with the card counts under the DDP policy. The harness
    compiles the (card-count independent) recipe once and executes it
    on an :class:`~repro.synapse.runtime.HLS1Runtime` per card count;
    ``overlap_fraction`` only parameterizes the analytic reference
    column. ``jobs > 1`` fans the point executions out over a process
    pool fed from the shared warm disk-recipe cache; the simulation is
    deterministic, so the rows are identical either way.
    """
    hls1 = hls1 or HLS1Config()
    counts = tuple(dict.fromkeys((1, *card_counts)))
    spec = SweepSpec(
        name="a4-weak-scaling",
        models=(model_name,),
        cards=counts,
        policies=(("ddp", _DDP),),
    )
    sweep = run_sweep(spec, hls1=hls1, jobs=jobs)
    timings = {r.point.cards: r.metrics for r in sweep.results}
    grad_bytes = int(timings[counts[0]]["gradient_bytes"])

    batch = E2E_SHAPES["batch"]
    result = ScalingStudyResult(model_name, batch, grad_bytes)
    ar = RingAllReduce(hls1.interconnect)

    base_us = timings[1]["total_time_us"]
    for p in card_counts:
        step_us = timings[p]["total_time_us"]
        exposed_us = timings[p]["exposed_comm_us"]
        result.rows.append(ScalingRow(
            num_cards=p,
            step_time_ms=us_to_ms(step_us),
            allreduce_ms=us_to_ms(ar.cost(p, grad_bytes).time_us),
            efficiency=base_us / step_us,
            aggregate_samples_per_s=p * batch / (step_us / 1e6),
            exposed_comm_ms=us_to_ms(exposed_us),
            analytic_step_ms=us_to_ms(data_parallel_step_time_us(
                base_us, grad_bytes, p, hls1.interconnect,
                overlap_fraction=overlap_fraction,
            )),
        ))
    return result


# -- A12: communication-overlap ablation ------------------------------------


@dataclass(frozen=True)
class OverlapRow:
    """One communication schedule at a fixed card count."""

    label: str
    comm_overlap: bool
    bucket_mb: float
    num_buckets: int
    step_time_ms: float
    efficiency: float
    exposed_comm_ms: float
    fabric_utilization: float


@dataclass
class CommOverlapAblationResult:
    """A12: overlap on/off x bucket size on a fixed HLS-1 population."""

    model_name: str
    num_cards: int
    gradient_bytes: int
    base_step_ms: float
    rows: list[OverlapRow] = field(default_factory=list)

    def checks(self) -> list[ShapeCheck]:
        """Overlap claims: monotone improvement, shrinking exposure."""
        effs = [r.efficiency for r in self.rows]
        monotone = all(b >= a - 1e-9 for a, b in zip(effs, effs[1:]))
        improved = self.rows[-1].efficiency > self.rows[0].efficiency
        exposed_drops = (
            self.rows[-1].exposed_comm_ms < self.rows[0].exposed_comm_ms
        )
        return [
            ShapeCheck(
                f"overlap [{self.model_name}]: efficiency improves "
                "monotonically along the sweep",
                monotone,
                "monotone" if monotone else f"non-monotone {effs}",
                "monotone",
            ),
            ShapeCheck(
                f"overlap [{self.model_name}]: bucketed overlap beats "
                "the monolithic all-reduce",
                improved,
                f"{self.rows[0].efficiency:.1%} -> "
                f"{self.rows[-1].efficiency:.1%}",
                "improved",
            ),
            ShapeCheck(
                f"overlap [{self.model_name}]: exposed communication "
                "shrinks with overlap",
                exposed_drops,
                f"{self.rows[0].exposed_comm_ms:.2f} -> "
                f"{self.rows[-1].exposed_comm_ms:.2f} ms",
                "shrinks",
            ),
        ]

    def render(self) -> str:
        """Ablation table, one row per communication schedule."""
        return render_table(
            ["Schedule", "Buckets", "Step (ms)", "Efficiency",
             "Exposed comm (ms)", "Fabric util"],
            [(r.label, r.num_buckets, r.step_time_ms,
              f"{r.efficiency:.1%}", r.exposed_comm_ms,
              f"{r.fabric_utilization:.1%}")
             for r in self.rows],
            title=f"A12 comm-overlap ablation, {self.model_name} on "
                  f"{self.num_cards} cards "
                  f"(single-card step {self.base_step_ms:.2f} ms)",
        )


def run_comm_overlap_ablation(
    model_name: str = "gpt",
    *,
    hls1: HLS1Config | None = None,
    num_cards: int = 8,
    bucket_sizes_mb: tuple[float, ...] = (100.0, 25.0, 4.0),
    jobs: int = 1,
) -> CommOverlapAblationResult:
    """Sweep the DDP communication schedule on a fixed population.

    Rows run overlap-off first (one all-reduce behind the final
    gradient — the analytic model's world), then bucketed overlap at
    each of ``bucket_sizes_mb``, coarsest to finest. Each setting is a
    distinct compile (the bucket structure lives in the schedule),
    keyed separately in the shared recipe cache. The irregular shape —
    a single-card baseline point plus the full-population grid — is an
    explicit-points :class:`~repro.core.sweep.SweepSpec`; ``jobs > 1``
    fans the point executions over the harness's process pool.
    """
    hls1 = hls1 or HLS1Config()
    settings: list[tuple[str, bool, float]] = [
        ("no overlap", False, float("inf"))
    ]
    for mb in bucket_sizes_mb:
        settings.append((f"overlap {mb:g} MB", True, mb))

    def overrides(overlap: bool, mb: float):
        if not overlap:
            return _DDP + (("comm_overlap", False),)
        return _DDP + (("comm_overlap", True), ("bucket_mb", mb))

    # point 0 is the single-card compute baseline (same recipe as the
    # no-overlap row); the rest are the sweep's rows on the population
    points = [SweepPoint(
        model=model_name, cards=1, policy="no overlap",
        overrides=overrides(False, float("inf")),
    )]
    points.extend(
        SweepPoint(
            model=model_name, cards=num_cards, policy=label,
            overrides=overrides(overlap, mb),
        )
        for label, overlap, mb in settings
    )
    spec = SweepSpec(name="a12-comm-overlap", points=tuple(points))
    sweep = run_sweep(spec, hls1=hls1, jobs=jobs)

    base_us = sweep.results[0].metrics["total_time_us"]
    result = CommOverlapAblationResult(
        model_name=model_name,
        num_cards=num_cards,
        gradient_bytes=int(sweep.results[0].metrics["gradient_bytes"]),
        base_step_ms=us_to_ms(base_us),
    )
    for (label, overlap, mb), point in zip(settings, sweep.results[1:]):
        step_us = point.metrics["total_time_us"]
        exposed_us = point.metrics["exposed_comm_us"]
        fabric_us = point.metrics["fabric_busy_us"]
        result.rows.append(OverlapRow(
            label=label,
            comm_overlap=overlap,
            bucket_mb=mb,
            num_buckets=point.metrics["all_reduce_ops"],
            step_time_ms=us_to_ms(step_us),
            efficiency=base_us / step_us,
            exposed_comm_ms=us_to_ms(exposed_us),
            fabric_utilization=fabric_us / step_us if step_us > 0 else 0.0,
        ))
    return result
