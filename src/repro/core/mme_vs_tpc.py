"""Table 2 experiment: MME vs TPC batched matrix multiplication.

§3.2: ``torch.bmm`` (batch 64) on the MME versus a custom TPC kernel
from Habana_Custom_Kernel, across square sizes 128..2048, measured
with the SynapseAI profiler. Here the MME side is timed by the
calibrated :class:`~repro.hw.costmodel.MMEModel` plus the per-call
eager dispatch cost, and the TPC side by actually launching the
:class:`~repro.tpc.kernels.bmm.BatchMatmulKernel` on the
:class:`~repro.tpc.simulator.TPCSimulator`.

Note on the time columns: the paper ran a *different* (unreported)
iteration count per size, so only the TFLOPS and speedup columns are
comparable across implementations; we report single-call times and
check rates + speedups against the paper's bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import GaudiConfig
from ..hw.costmodel import (
    EAGER_DISPATCH_OVERHEAD_US,
    MatmulDims,
    MMEModel,
)
from ..hw.dtypes import DType
from ..tpc import REGISTRY, TPCSimulator
from ..util.tabulate import render_table
from ..util.units import tflops, us_to_ms
from .reference import TABLE2, ShapeCheck, ratio_check

BATCH = 64
SIZES = tuple(row.size for row in TABLE2)


@dataclass(frozen=True)
class MmeVsTpcRow:
    """One measured row (times are per single bmm call)."""

    size: int
    t_mme_ms: float
    f_mme_tflops: float
    t_tpc_ms: float
    f_tpc_tflops: float

    @property
    def speedup(self) -> float:
        """MME advantage: T_TPC / T_MME."""
        return self.t_tpc_ms / self.t_mme_ms


@dataclass
class MmeVsTpcResult:
    """The reproduced Table 2."""

    rows: list[MmeVsTpcRow]
    config: GaudiConfig = field(default_factory=GaudiConfig)

    def checks(self) -> list[ShapeCheck]:
        """Rate and speedup bands per size, plus ramp monotonicity."""
        out: list[ShapeCheck] = []
        by_size = {r.size: r for r in self.rows}
        for ref in TABLE2:
            row = by_size[ref.size]
            # small sizes sit on the steep host-dispatch ramp; wider band
            rate_band = 0.30 if ref.size <= 256 else 0.10
            out.append(ratio_check(
                f"table2: F_MME @ {ref.size}", row.f_mme_tflops,
                ref.f_mme_tflops, rate_band,
            ))
            out.append(ratio_check(
                f"table2: F_TPC @ {ref.size}", row.f_tpc_tflops,
                ref.f_tpc_tflops, 0.10,
            ))
            out.append(ratio_check(
                f"table2: speedup @ {ref.size}", row.speedup,
                ref.speedup, 0.35 if ref.size <= 256 else 0.15,
            ))
        mme_rates = [r.f_mme_tflops for r in self.rows]
        out.append(ShapeCheck(
            "table2: MME rate ramps monotonically",
            mme_rates == sorted(mme_rates),
            "monotone" if mme_rates == sorted(mme_rates) else "non-monotone",
            "monotone",
        ))
        return out

    def render(self) -> str:
        """Paper-style table with measured and reference columns."""
        ref_by_size = {r.size: r for r in TABLE2}
        rows = []
        for r in self.rows:
            ref = ref_by_size[r.size]
            rows.append((
                r.size, r.t_mme_ms, r.f_mme_tflops, r.t_tpc_ms,
                r.f_tpc_tflops, r.speedup,
                f"{ref.f_mme_tflops}/{ref.f_tpc_tflops}/{ref.speedup}",
            ))
        return render_table(
            ["Size", "T_MME(ms)", "F_MME", "T_TPC(ms)", "F_TPC", "Speedup",
             "paper F_MME/F_TPC/speedup"],
            rows,
            title="Table 2: MME vs TPC batched matmul (batch=64, reproduced)",
        )


def run_mme_vs_tpc(
    config: GaudiConfig | None = None,
    *,
    sizes: tuple[int, ...] = SIZES,
    batch: int = BATCH,
) -> MmeVsTpcResult:
    """Measure all sizes; returns the populated result."""
    config = config or GaudiConfig()
    mme = MMEModel(config.mme, config.hbm)
    sim = TPCSimulator(config.tpc, config.default_dtype)
    kernel = REGISTRY.create("bmm")
    rows = []
    for size in sizes:
        dims = MatmulDims(batch, size, size, size)
        t_mme_us = mme.matmul_time_us(dims) + EAGER_DISPATCH_OVERHEAD_US
        launch = sim.launch(
            kernel, shapes={"a": (batch, size, size), "b": (batch, size, size)}
        )
        rows.append(MmeVsTpcRow(
            size=size,
            t_mme_ms=us_to_ms(t_mme_us),
            f_mme_tflops=tflops(dims.flops, t_mme_us),
            t_tpc_ms=us_to_ms(launch.time_us),
            f_tpc_tflops=launch.achieved_tflops,
        ))
    return MmeVsTpcResult(rows, config)
