"""Long-sequence study: how the bottleneck scales with sequence length.

The paper's third challenge is "Unexplored Transformer performance in
long sequences": §3.3 argues the TPC-bound softmax is O(N^2) and that
"long sequences further exacerbate this problem especially when the
sequence length exceeds 1024". This study sweeps N for the softmax and
linear layers and checks the asymptotics directly:

* softmax layer time grows ~quadratically (doubling N ~quadruples it),
  linear attention grows ~linearly;
* softmax's share of TPC busy time *rises* with N;
* the linear-attention advantage widens monotonically and exceeds the
  paper's 6x beyond the paper's 2048 point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import GaudiConfig
from ..synapse import ProfileResult
from ..util.tabulate import render_table
from .attention_study import profile_layer
from .reference import ShapeCheck, threshold_check

DEFAULT_SEQ_LENS = (256, 512, 1024, 2048, 4096)
#: batch small enough that softmax@4096 fits the 32 GiB plan
SWEEP_BATCH = 32


@dataclass
class SeqSweepResult:
    """Per-length profiles for both attention variants."""

    seq_lens: list[int]
    softmax: list[ProfileResult] = field(default_factory=list)
    linear: list[ProfileResult] = field(default_factory=list)

    def softmax_ms(self) -> list[float]:
        """Softmax-layer makespans."""
        return [p.total_time_ms for p in self.softmax]

    def linear_ms(self) -> list[float]:
        """Linear-layer makespans."""
        return [p.total_time_ms for p in self.linear]

    def speedups(self) -> list[float]:
        """Linear-attention advantage per length."""
        return [s / l for s, l in zip(self.softmax_ms(), self.linear_ms())]

    def doubling_ratios(self, times: list[float]) -> list[float]:
        """t(2N)/t(N) for consecutive sweep points."""
        return [b / a for a, b in zip(times, times[1:])]

    def checks(self) -> list[ShapeCheck]:
        """The asymptotic claims of §3.3."""
        soft_ratios = self.doubling_ratios(self.softmax_ms())
        lin_ratios = self.doubling_ratios(self.linear_ms())
        speedups = self.speedups()
        shares = [p.softmax_tpc_share for p in self.softmax]
        long_idx = [i for i, n in enumerate(self.seq_lens) if n >= 1024]
        return [
            ShapeCheck(
                "seq-sweep: softmax layer scales ~quadratically at long N",
                soft_ratios[-1] > 3.0,
                f"t(2N)/t(N) = {soft_ratios[-1]:.2f} at N={self.seq_lens[-1]}",
                "> 3 (quadratic ~ 4)",
            ),
            ShapeCheck(
                "seq-sweep: linear layer scales ~linearly",
                lin_ratios[-1] < 2.6,
                f"t(2N)/t(N) = {lin_ratios[-1]:.2f}",
                "< 2.6 (linear ~ 2)",
            ),
            ShapeCheck(
                "seq-sweep: linear speedup widens with N",
                speedups == sorted(speedups),
                " -> ".join(f"{s:.1f}x" for s in speedups),
                "monotone growth",
            ),
            ShapeCheck(
                "seq-sweep: softmax share of TPC rises with N",
                all(a <= b + 1e-9 for a, b in zip(shares, shares[1:])),
                " -> ".join(f"{s:.0%}" for s in shares),
                "non-decreasing",
            ),
            threshold_check(
                "seq-sweep: problem 'exacerbated beyond 1024' — speedup "
                "at the longest N",
                # past the paper's 2048 point the advantage must exceed
                # its ~6x; shorter sweeps get a proportional bar
                speedups[-1], 6.0 if self.seq_lens[-1] >= 4096 else 4.0,
            ),
            ShapeCheck(
                "seq-sweep: MME idle grows with N for softmax attention",
                self.softmax[-1].mme_idle_fraction
                > self.softmax[0].mme_idle_fraction,
                f"{self.softmax[0].mme_idle_fraction:.0%} -> "
                f"{self.softmax[-1].mme_idle_fraction:.0%}",
                "growing",
            ),
        ]

    def render(self) -> str:
        """Sweep table."""
        rows = []
        for i, n in enumerate(self.seq_lens):
            rows.append((
                n,
                self.softmax_ms()[i],
                self.linear_ms()[i],
                f"{self.speedups()[i]:.1f}x",
                f"{self.softmax[i].softmax_tpc_share:.0%}",
                f"{self.softmax[i].mme_idle_fraction:.0%}",
            ))
        return render_table(
            ["seq len", "softmax (ms)", "linear (ms)", "linear speedup",
             "softmax TPC share", "MME idle (softmax)"],
            rows,
            title=f"Long-sequence sweep (batch {SWEEP_BATCH}, 6 heads x 64)",
        )


def run_seq_sweep(
    seq_lens: tuple[int, ...] = DEFAULT_SEQ_LENS,
    *,
    config: GaudiConfig | None = None,
    batch: int = SWEEP_BATCH,
) -> SeqSweepResult:
    """Profile both variants at every sweep length."""
    result = SeqSweepResult(list(seq_lens))
    for n in seq_lens:
        result.softmax.append(
            profile_layer("softmax", config=config, batch=batch, seq_len=n)
        )
        result.linear.append(
            profile_layer("linear", config=config, batch=batch, seq_len=n)
        )
    return result
