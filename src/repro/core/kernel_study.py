"""A17: the attention kernel pack — closing the Fig-4 bubble kernel-side.

PR-4's scheduler (A13) attacked the softmax bubble by reordering work
*around* the naive cone; the ``attention_lowering`` pass attacks it from
the kernel side, GFormer-style (arXiv 2412.19829): fuse the softmax and
offload its exponential to the MME (``fused``), band the score matrix
(``windowed``), or tile the whole cone into an online-softmax flash
kernel that never writes the O(seq²) score matrix to HBM (``flash``).

This ablation profiles the Fig-4 softmax layer at the paper's shapes
under every lowering, crossed with the two scheduling regimes:

* in-order (SynapseAI's discipline, the Fig. 4 baseline),
* the A13 machinery (lookahead scheduler + TPC op slicing).

and verifies the pack's claims:

* flash removes every O(seq²) value from the compiled graph, so its
  score-matrix HBM traffic is exactly zero and the PR-5 liveness
  planner's peak collapses;
* flash improves the kernel-side layer time >= 30% over naive at
  sequence 2048, and *stacked* with the A13 scheduler it still beats
  the scheduler-only number;
* the fused and flash lowerings are numerically exact against the
  naive cone on a concrete layer, and windowed matches its banded
  numpy oracle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from .. import ht
from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..synapse import (
    CompilerOptions,
    GraphCompiler,
    ProfileResult,
    default_compiler_options,
    execute_schedule,
    lint_graph,
)
from ..synapse.passes.attention import ATTENTION_LOWERINGS
from ..synapse.trace import _merge_intervals, _overlap_us
from ..util.tabulate import render_table
from ..util.units import fmt_bytes
from .reference import LAYER_STUDY_SHAPES, ShapeCheck, threshold_check

#: acceptance bar — flash layer time vs the naive in-order baseline at
#: the paper's shapes (ISSUE criterion: >= 30% improvement; measured
#: ~57%: 96.2 ms vs 224.9 ms)
FLASH_LAYER_TIME_RATIO_MAX = 0.70

#: the naive score-matrix HBM traffic must dwarf flash's *total*
#: attention traffic — the O(seq²) -> O(seq) claim. At seq 2048 /
#: head dim 64 the analytic ratio is ~seq/d = 32x; demand >= 8x.
SCORE_TRAFFIC_RATIO_MIN = 8.0

#: the two scheduling regimes each lowering is crossed with
SCHEDULES: tuple[tuple[str, dict], ...] = (
    ("in-order", dict(reorder=False)),
    ("scheduler",
     dict(reorder=True, scheduler="lookahead", tpc_slice_ops=True)),
)


def score_matrix_hbm_bytes(result: ProfileResult) -> int:
    """HBM bytes the schedule moves for (seq, seq)-shaped values.

    Every scheduled read or write of a value whose trailing two dims
    are both the sequence length counts its full payload — the traffic
    the flash lowering claims to eliminate (its compiled graph simply
    has no such value).
    """
    graph = result.schedule.graph
    seq = LAYER_STUDY_SHAPES["seq_len"]
    score_vids = {
        vid for vid, value in graph.values.items()
        if tuple(value.shape[-2:]) == (seq, seq)
    }
    if not score_vids:
        return 0
    total = 0
    for op in result.schedule.ops:
        for vid in list(op.reads) + list(op.writes):
            if vid in score_vids:
                total += graph.value(vid).nbytes
    return total


def attention_hbm_bytes(result: ProfileResult) -> int:
    """Total HBM bytes of the ops lowered from the softmax cone."""
    return sum(
        item.bytes_read + item.bytes_written
        for op in result.schedule.ops if op.src == "softmax"
        for item in op.items
    )


def exposed_softmax_tpc_us(result: ProfileResult) -> float:
    """TPC busy time of softmax-lowered ops not hidden under MME
    compute — the kernel-side analogue of A13's exposure metric, keyed
    by ``src`` so it follows the cone through every lowering."""
    events = result.timeline.events
    tpc = _merge_intervals([
        (e.start_us, e.end_us) for e in events
        if e.engine is EngineKind.TPC and e.src == "softmax"
    ])
    mme = _merge_intervals([
        (e.start_us, e.end_us) for e in events
        if e.engine is EngineKind.MME
    ])
    return sum(b - a for a, b in tpc) - _overlap_us(tpc, mme)


@dataclass
class KernelStudyResult:
    """A17's measurements: lowering x schedule grid on the Fig-4 layer."""

    #: lowering -> schedule label -> profile
    profiles: dict[str, dict[str, ProfileResult]] = field(
        default_factory=dict
    )
    #: concrete-layer numerics: lowering -> matches its reference
    numerics: dict[str, bool] = field(default_factory=dict)
    #: lint findings on the rewritten concrete graphs (fused cone +
    #: windowed mask rules)
    lint_findings: int = 0

    def profile(self, lowering: str, schedule: str = "in-order"):
        """The grid cell for one lowering under one schedule regime."""
        return self.profiles[lowering][schedule]

    @property
    def flash_layer_ratio(self) -> float:
        """Flash kernel-side layer time over the naive in-order
        baseline (the >= 30% improvement claim)."""
        return (
            self.profile("flash").total_time_us
            / self.profile("naive").total_time_us
        )

    @property
    def score_traffic_ratio(self) -> float:
        """Naive score-matrix HBM bytes over flash's *total* attention
        traffic — the O(seq²) -> O(seq) reduction."""
        flash = attention_hbm_bytes(self.profile("flash"))
        if flash <= 0:
            return float("inf")
        return score_matrix_hbm_bytes(self.profile("naive")) / flash

    def checks(self) -> list[ShapeCheck]:
        """A17's acceptance criteria."""
        flash_sched = self.profile("flash", "scheduler")
        naive_sched = self.profile("naive", "scheduler")
        return [
            ShapeCheck(
                "A17: flash score-matrix HBM traffic is zero",
                score_matrix_hbm_bytes(self.profile("flash")) == 0,
                fmt_bytes(score_matrix_hbm_bytes(self.profile("flash"))),
                "0 B",
            ),
            threshold_check(
                "A17: naive score traffic / flash attention traffic",
                self.score_traffic_ratio, SCORE_TRAFFIC_RATIO_MIN,
            ),
            threshold_check(
                "A17: flash layer time vs naive (kernel-side, in-order)",
                self.flash_layer_ratio, FLASH_LAYER_TIME_RATIO_MAX,
                upper=True,
            ),
            ShapeCheck(
                "A17: flash+scheduler beats scheduler-only (A13 stacked)",
                flash_sched.total_time_us < naive_sched.total_time_us,
                f"{flash_sched.total_time_ms:.1f} ms vs "
                f"{naive_sched.total_time_ms:.1f} ms",
                "flash+sched < naive+sched",
            ),
            ShapeCheck(
                "A17: flash collapses the liveness peak (PR-5 planner)",
                self.profile("flash").peak_hbm_bytes
                < self.profile("naive").peak_hbm_bytes,
                f"{fmt_bytes(self.profile('flash').peak_hbm_bytes)} vs "
                f"{fmt_bytes(self.profile('naive').peak_hbm_bytes)}",
                "flash < naive",
            ),
            ShapeCheck(
                "A17: fused closes the exposed softmax TPC time",
                exposed_softmax_tpc_us(self.profile("fused"))
                < 0.5 * exposed_softmax_tpc_us(self.profile("naive")),
                f"{exposed_softmax_tpc_us(self.profile('fused')) / 1e3:.1f}"
                f" ms vs "
                f"{exposed_softmax_tpc_us(self.profile('naive')) / 1e3:.1f}"
                " ms",
                "fused < 0.5x naive",
            ),
            ShapeCheck(
                "A17: non-naive lowerings numerically match references",
                all(self.numerics.get(m, False)
                    for m in ("fused", "windowed", "flash")),
                ", ".join(f"{m}={self.numerics.get(m)}"
                          for m in ("fused", "windowed", "flash")),
                "all True",
            ),
            ShapeCheck(
                "A17: kernel-pack lint clean on rewritten graphs",
                self.lint_findings == 0,
                f"{self.lint_findings} finding(s)", "0 findings",
            ),
        ]

    def render(self) -> str:
        """The lowering x schedule grid plus the headline ratios."""
        rows = []
        for lowering, by_label in self.profiles.items():
            for label, prof in by_label.items():
                rows.append((
                    lowering, label,
                    f"{prof.total_time_ms:.2f}",
                    f"{exposed_softmax_tpc_us(prof) / 1e3:.2f}",
                    fmt_bytes(score_matrix_hbm_bytes(prof)),
                    fmt_bytes(prof.peak_hbm_bytes),
                ))
        table = render_table(
            ["lowering", "schedule", "total (ms)",
             "exposed softmax TPC (ms)", "score HBM traffic", "peak HBM"],
            rows,
            title="A17: attention kernel pack (Fig. 4 softmax layer)",
        )
        lines = [
            table,
            f"flash vs naive layer time (in-order): "
            f"{1.0 - self.flash_layer_ratio:.1%} faster",
            f"naive score traffic over flash attention traffic: "
            f"{self.score_traffic_ratio:.1f}x",
        ]
        return "\n".join(lines)


def _check_kernel_numerics() -> tuple[dict[str, bool], int]:
    """Execute a small concrete attention block under every lowering.

    ``fused`` and ``flash`` graph lowerings must reproduce the naive
    compile bit for bit (their graph-level compute is exact softmax);
    ``windowed`` changes semantics, so it is checked against its banded
    numpy oracle built from the same keep mask the op declares. Also
    lints every rewritten graph (fused-cone + windowed-mask rules).
    """
    from ..ht import functional as F
    from ..synapse.ops import attention_keep_mask

    rng = np.random.default_rng(1717)
    batch, seq, dim, window = 4, 64, 16, 16
    q_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    k_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    v_np = rng.normal(size=(batch, seq, dim)).astype(np.float32)
    scale = dim ** -0.5

    with ht.record("a17-numerics", mode="concrete") as rec:
        q = ht.tensor(q_np, name="q")
        k = ht.tensor(k_np, name="k")
        v = ht.tensor(v_np, name="v")
        scores = F.mul_scalar(F.matmul(q, k, transpose_b=True), scale)
        probs = F.softmax(scores, axis=-1)
        F.matmul(probs, v)

    feeds = {"q": q_np, "k": k_np, "v": v_np}
    outputs: dict[str, np.ndarray] = {}
    findings = 0
    for mode in ATTENTION_LOWERINGS:
        options = CompilerOptions(
            attention_lowering=mode, attention_window=window
        )
        schedule = GraphCompiler(options=options).compile(rec.graph)
        env = execute_schedule(schedule, feeds)
        outputs[mode] = env[schedule.graph.nodes[-1].output]
        if mode != "naive":
            findings += len([
                w for w in lint_graph(schedule.graph)
                if w.rule in ("fused-softmax-cone", "windowed-mask")
            ])

    s = (q_np @ np.swapaxes(k_np, -1, -2)) * scale
    keep = attention_keep_mask(seq, seq, {"window": window, "causal": False})
    s = np.where(keep, s, -1.0e9)
    e = np.exp(s - s.max(-1, keepdims=True))
    oracle = (e / e.sum(-1, keepdims=True)) @ v_np

    numerics = {
        "naive": True,
        "fused": bool(np.array_equal(outputs["fused"], outputs["naive"])),
        "flash": bool(np.array_equal(outputs["flash"], outputs["naive"])),
        "windowed": bool(np.allclose(
            outputs["windowed"], oracle, rtol=1e-5, atol=1e-6
        )),
    }
    return numerics, findings


def run_kernel_pack_ablation(
    config: GaudiConfig | None = None,
) -> KernelStudyResult:
    """Profile the Fig-4 softmax layer under every attention lowering,
    in-order and stacked with the A13 scheduler."""
    from .attention_study import profile_layer

    base = default_compiler_options()
    result = KernelStudyResult()
    for lowering in ATTENTION_LOWERINGS:
        for label, kwargs in SCHEDULES:
            options = dataclasses.replace(
                base, attention_lowering=lowering, **kwargs
            )
            result.profiles.setdefault(lowering, {})[label] = profile_layer(
                "softmax", config=config, options=options
            )
    result.numerics, result.lint_findings = _check_kernel_numerics()
    return result
