"""Table 1 experiment: operation -> compute-engine mapping.

"We perform detailed profiling to obtain the operation-compute engine
mapping" (§3.2). The probe records each torch-level operation through
the frontend, compiles the one-op graph, and reads back which engine
the GraphCompiler scheduled it on. The finding to reproduce: only
matrix multiplication reaches the MME; even ``scalar * tensor`` runs
on the TPC.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import ht
from ..ht import functional as F
from ..hw.costmodel import EngineKind
from ..synapse import CompilerOptions, GraphCompiler
from ..util.tabulate import render_table
from .reference import TABLE1_ROWS, ShapeCheck


@dataclass(frozen=True)
class OpMappingRow:
    """One probed operation."""

    torch_name: str
    op: str
    engine: str
    expected: str

    @property
    def matches_paper(self) -> bool:
        """Whether the probe landed on the paper's engine."""
        return self.engine == self.expected


def _probe(op_name: str) -> str:
    """Record a single-op graph and return its scheduled engine."""
    shape = (64, 64)
    with ht.record(f"probe-{op_name}", mode="symbolic") as rec:
        x = ht.input_tensor(shape, name="x")
        y = ht.input_tensor(shape, name="y")
        if op_name == "matmul":
            F.matmul(x, y)
        elif op_name in ("add", "sub", "mul", "div", "maximum"):
            F.apply_op(op_name, [x, y])
        elif op_name == "smul":
            F.mul_scalar(x, 2.0)
        elif op_name == "sadd":
            F.add_scalar(x, 2.0)
        elif op_name == "spow":
            F.pow_scalar(x, 2.0)
        else:
            F.apply_op(op_name, [x])
    # compile without fusion so the single probed op stays identifiable
    schedule = GraphCompiler(
        options=CompilerOptions(fuse_elementwise=False, insert_dma=False)
    ).compile(rec.graph)
    compute_ops = [
        s for s in schedule.ops
        if s.engine in (EngineKind.MME, EngineKind.TPC)
    ]
    assert len(compute_ops) == 1, f"probe for {op_name} produced {schedule.ops}"
    return compute_ops[0].engine.value


@dataclass
class OpMappingResult:
    """The reproduced Table 1."""

    rows: list[OpMappingRow]

    def checks(self) -> list[ShapeCheck]:
        """One check per probed row."""
        return [
            ShapeCheck(
                f"table1: {row.torch_name} -> {row.expected}",
                row.matches_paper,
                row.engine,
                row.expected,
            )
            for row in self.rows
        ]

    def all_match(self) -> bool:
        """Whether every probe agrees with the paper."""
        return all(row.matches_paper for row in self.rows)

    def render(self) -> str:
        """Paper-style table text."""
        return render_table(
            ["Operation", "Explanation (ours)", "Mapping", "Paper"],
            [(r.torch_name, r.op, r.engine, r.expected) for r in self.rows],
            title="Table 1: Operation-Hardware Mapping via SynapseAI (reproduced)",
        )


def run_op_mapping() -> OpMappingResult:
    """Run the full Table 1 probe set."""
    rows = [
        OpMappingRow(torch_name, op_name, _probe(op_name), expected)
        for torch_name, op_name, expected in TABLE1_ROWS
    ]
    return OpMappingResult(rows)
