"""Ablations over the design choices DESIGN.md calls out.

* A1 — runtime reordering: what if the GraphCompiler "detect[ed] the
  independence" (§3.3) and issued any ready op? (Performer shapes.)
* A2 — elementwise fusion on/off (layer shapes).
* A3 — TPC core count sweep: how the softmax bottleneck scales with
  cluster width.
* A5 — the §5 future-work extension: chunked (local) attention vs the
  softmax baseline across sequence lengths.
* A10 — per-pass toggles: compile the same layer with each disableable
  GraphCompiler pass turned off in isolation and compare against the
  full pipeline (the inspectability the pass refactor exists for).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hw.config import GaudiConfig
from ..hw.costmodel import EngineKind
from ..synapse import CompilerOptions, ProfileResult
from ..util.tabulate import render_table
from .attention_study import profile_layer
from .reference import (
    FIG4_SOFTMAX_TPC_SHARE_MIN,
    ShapeCheck,
    threshold_check,
)


# -- A1: reorder -----------------------------------------------------------------


@dataclass
class ReorderAblationResult:
    """In-order vs reordered issue for a given attention kind."""

    kind: str
    in_order: ProfileResult
    reordered: ProfileResult

    @property
    def improvement(self) -> float:
        """Relative makespan reduction from reordering."""
        return 1.0 - self.reordered.total_time_us / self.in_order.total_time_us

    def checks(self) -> list[ShapeCheck]:
        """Reordering never hurts; gains are bounded by the TPC serial
        work (reordering cannot create MME work, see EXPERIMENTS.md)."""
        return [
            ShapeCheck(
                f"ablation-reorder [{self.kind}]: reordering never slower",
                self.reordered.total_time_us
                <= self.in_order.total_time_us * 1.001,
                f"{self.reordered.total_time_ms:.2f} ms vs "
                f"{self.in_order.total_time_ms:.2f} ms",
                "reordered <= in-order",
            ),
        ]

    def render(self) -> str:
        """Comparison summary."""
        return render_table(
            ["issue mode", "total (ms)", "MME idle"],
            [
                ("in-order", self.in_order.total_time_ms,
                 f"{self.in_order.mme_idle_fraction:.1%}"),
                ("reordered", self.reordered.total_time_ms,
                 f"{self.reordered.mme_idle_fraction:.1%}"),
            ],
            title=f"A1: issue-order ablation ({self.kind} attention)",
        )


def run_reorder_ablation(
    kind: str = "performer", *, config: GaudiConfig | None = None
) -> ReorderAblationResult:
    """Profile one layer under both issue disciplines."""
    return ReorderAblationResult(
        kind=kind,
        in_order=profile_layer(kind, config=config,
                               options=CompilerOptions(reorder=False)),
        reordered=profile_layer(kind, config=config,
                                options=CompilerOptions(reorder=True)),
    )


# -- A2: fusion ---------------------------------------------------------------------


@dataclass
class FusionAblationResult:
    """Elementwise fusion on vs off."""

    kind: str
    fused: ProfileResult
    unfused: ProfileResult

    @property
    def speedup(self) -> float:
        """unfused / fused makespan."""
        return self.unfused.total_time_us / self.fused.total_time_us

    def checks(self) -> list[ShapeCheck]:
        """Fusion must help (less HBM traffic) and shrink the schedule."""
        return [
            threshold_check(
                f"ablation-fusion [{self.kind}]: fusion speedup", self.speedup,
                1.0,
            ),
            ShapeCheck(
                f"ablation-fusion [{self.kind}]: fewer scheduled ops",
                len(self.fused.schedule) < len(self.unfused.schedule),
                f"{len(self.fused.schedule)} vs {len(self.unfused.schedule)}",
                "fused < unfused",
            ),
            ShapeCheck(
                f"ablation-fusion [{self.kind}]: smaller peak HBM",
                self.fused.peak_hbm_bytes <= self.unfused.peak_hbm_bytes,
                f"{self.fused.peak_hbm_bytes} vs {self.unfused.peak_hbm_bytes}",
                "fused <= unfused",
            ),
        ]

    def render(self) -> str:
        """Comparison summary."""
        return render_table(
            ["fusion", "total (ms)", "ops", "peak HBM (GiB)"],
            [
                ("on", self.fused.total_time_ms, len(self.fused.schedule),
                 self.fused.peak_hbm_bytes / (1 << 30)),
                ("off", self.unfused.total_time_ms, len(self.unfused.schedule),
                 self.unfused.peak_hbm_bytes / (1 << 30)),
            ],
            title=f"A2: elementwise-fusion ablation ({self.kind} attention)",
        )


def run_fusion_ablation(
    kind: str = "softmax", *, config: GaudiConfig | None = None
) -> FusionAblationResult:
    """Profile one layer with fusion on and off."""
    return FusionAblationResult(
        kind=kind,
        fused=profile_layer(kind, config=config,
                            options=CompilerOptions(fuse_elementwise=True)),
        unfused=profile_layer(kind, config=config,
                              options=CompilerOptions(fuse_elementwise=False)),
    )


# -- A3: TPC core sweep -------------------------------------------------------------


@dataclass
class TpcCoreSweepResult:
    """Softmax-attention layer time vs TPC core count."""

    core_counts: list[int]
    total_ms: list[float]
    softmax_share: list[float]

    def checks(self) -> list[ShapeCheck]:
        """More cores -> faster, with diminishing returns past the
        memory-bound regime."""
        mono = all(a >= b for a, b in zip(self.total_ms, self.total_ms[1:]))
        first_gain = self.total_ms[0] / self.total_ms[1]
        last_gain = self.total_ms[-2] / self.total_ms[-1]
        return [
            ShapeCheck(
                "ablation-tpc-cores: time non-increasing with cores",
                mono, "monotone" if mono else "non-monotone", "monotone",
            ),
            ShapeCheck(
                "ablation-tpc-cores: diminishing returns",
                first_gain >= last_gain,
                f"{first_gain:.2f}x then {last_gain:.2f}x",
                "early doubling helps more",
            ),
        ]

    def render(self) -> str:
        """Sweep table."""
        return render_table(
            ["TPC cores", "layer total (ms)", "softmax share of TPC"],
            [
                (c, t, f"{s:.1%}")
                for c, t, s in zip(self.core_counts, self.total_ms,
                                   self.softmax_share)
            ],
            title="A3: TPC core-count sweep (softmax attention layer)",
        )


def run_tpc_core_sweep(
    core_counts: tuple[int, ...] = (2, 4, 8, 16),
    *,
    config: GaudiConfig | None = None,
) -> TpcCoreSweepResult:
    """Profile the Fig 4 layer under different cluster widths."""
    base = config or GaudiConfig()
    result = TpcCoreSweepResult([], [], [])
    for cores in core_counts:
        res = profile_layer("softmax", config=base.with_tpc_cores(cores))
        result.core_counts.append(cores)
        result.total_ms.append(res.total_time_ms)
        result.softmax_share.append(res.softmax_tpc_share)
    return result


# -- A10: per-pass toggles -----------------------------------------------------


@dataclass
class PassToggleAblationResult:
    """One layer compiled with each pipeline pass disabled in turn."""

    kind: str
    feature_map: str
    baseline: ProfileResult
    #: pass name -> profile with (only) that pass disabled
    toggled: dict[str, ProfileResult] = field(default_factory=dict)

    def checks(self) -> list[ShapeCheck]:
        """Each toggle moves the schedule the way its pass promises."""
        base = self.baseline
        fusion_off = self.toggled["elementwise_fusion"]
        views_off = self.toggled["view_elision"]
        dma_off = self.toggled["dma_staging"]
        rec_off = self.toggled["recompile_injection"]
        return [
            ShapeCheck(
                "ablation-passes: fusion off is never faster",
                base.total_time_us <= fusion_off.total_time_us * 1.001,
                f"{base.total_time_ms:.2f} ms vs "
                f"{fusion_off.total_time_ms:.2f} ms",
                "baseline <= fusion-off",
            ),
            ShapeCheck(
                "ablation-passes: view elision off schedules more ops",
                len(views_off.schedule) > len(base.schedule),
                f"{len(views_off.schedule)} vs {len(base.schedule)}",
                "views-off > baseline",
            ),
            ShapeCheck(
                "ablation-passes: DMA staging off removes all transfers",
                dma_off.schedule.stats.get("dma_transfers") == 0
                and base.schedule.stats.get("dma_transfers", 0) > 0,
                f"{dma_off.schedule.stats.get('dma_transfers')} vs "
                f"{base.schedule.stats.get('dma_transfers')}",
                "0 after toggle, > 0 before",
            ),
            ShapeCheck(
                "ablation-passes: recompile injection off removes stalls",
                rec_off.schedule.stats.get("recompilations") == 0
                and base.schedule.stats.get("recompilations", 0) > 0,
                f"{rec_off.schedule.stats.get('recompilations')} vs "
                f"{base.schedule.stats.get('recompilations')}",
                "0 after toggle, > 0 before",
            ),
        ]

    def render(self) -> str:
        """Per-toggle comparison table."""
        rows = [(
            "(none)", self.baseline.total_time_ms,
            len(self.baseline.schedule),
            self.baseline.schedule.stats.get("dma_transfers", 0),
            self.baseline.schedule.stats.get("recompilations", 0),
        )]
        for name, res in sorted(self.toggled.items()):
            rows.append((
                name, res.total_time_ms, len(res.schedule),
                res.schedule.stats.get("dma_transfers", 0),
                res.schedule.stats.get("recompilations", 0),
            ))
        return render_table(
            ["disabled pass", "total (ms)", "ops", "DMA", "recompiles"],
            rows,
            title=f"A10: per-pass toggle ablation ({self.kind} attention, "
                  f"{self.feature_map} feature map)",
        )


def run_pass_toggle_ablation(
    kind: str = "linear",
    *,
    feature_map: str = "glu",
    config: GaudiConfig | None = None,
) -> PassToggleAblationResult:
    """Profile one layer with each disableable pass off in isolation.

    The default workload (linear attention with the GLU feature map) is
    the §3.3 worst case: it exercises fusion, view elision, DMA staging
    *and* the GLU recompilation stall, so every toggle has something to
    change. Lowering/validation/memory-planning toggles are structural
    (lowering off rejects composites outright) and are exercised by the
    pass-pipeline tests instead.
    """
    shapes = dict(batch=8, seq_len=256)
    result = PassToggleAblationResult(
        kind=kind,
        feature_map=feature_map,
        baseline=profile_layer(kind, feature_map=feature_map,
                               config=config, **shapes),
    )
    for name in ("elementwise_fusion", "view_elision", "dma_staging",
                 "recompile_injection"):
        result.toggled[name] = profile_layer(
            kind, feature_map=feature_map, config=config,
            disable_passes=(name,), **shapes,
        )
    return result


# -- A5: chunked attention extension ---------------------------------------------------


@dataclass
class ChunkedAttentionResult:
    """Softmax vs chunked attention across sequence lengths."""

    seq_lens: list[int]
    softmax_ms: list[float] = field(default_factory=list)
    chunked_ms: list[float] = field(default_factory=list)

    def speedups(self) -> list[float]:
        """Per-length chunked speedup."""
        return [s / c for s, c in zip(self.softmax_ms, self.chunked_ms)]

    def checks(self) -> list[ShapeCheck]:
        """The extension's claim: chunking helps more at longer N."""
        sp = self.speedups()
        return [
            threshold_check(
                "ext-chunked: speedup at the longest sequence", sp[-1], 1.5,
            ),
            ShapeCheck(
                "ext-chunked: speedup grows with sequence length",
                sp == sorted(sp),
                " -> ".join(f"{s:.1f}x" for s in sp),
                "monotone growth",
            ),
        ]

    def render(self) -> str:
        """Sweep table."""
        return render_table(
            ["seq len", "softmax (ms)", "chunked (ms)", "speedup"],
            [
                (n, s, c, f"{s / c:.2f}x")
                for n, s, c in zip(self.seq_lens, self.softmax_ms,
                                   self.chunked_ms)
            ],
            title="A5: chunked (local) attention vs softmax across "
                  "sequence lengths",
        )


# -- A6: pipelined exact attention -------------------------------------------


@dataclass
class PipelinedAttentionResult:
    """Monolithic vs software-pipelined exact softmax attention."""

    baseline: ProfileResult
    pipelined: ProfileResult
    chunk_size: int

    @property
    def speedup(self) -> float:
        """baseline / pipelined makespan."""
        return self.baseline.total_time_us / self.pipelined.total_time_us

    def checks(self) -> list[ShapeCheck]:
        """The extension's claims: same math, better overlap."""
        return [
            threshold_check(
                "ext-pipelined: exact attention speedup", self.speedup, 1.15,
            ),
            ShapeCheck(
                "ext-pipelined: MME idle fraction shrinks",
                self.pipelined.mme_idle_fraction
                < self.baseline.mme_idle_fraction - 0.05,
                f"{self.pipelined.mme_idle_fraction:.1%} vs "
                f"{self.baseline.mme_idle_fraction:.1%}",
                "pipelined < baseline - 5pp",
            ),
            ShapeCheck(
                "ext-pipelined: softmax still fully on the TPC",
                self.pipelined.softmax_tpc_share > 0.5,
                f"{self.pipelined.softmax_tpc_share:.1%}",
                "> 50% of TPC busy",
            ),
        ]

    def render(self) -> str:
        """Comparison summary."""
        return render_table(
            ["attention", "total (ms)", "MME idle", "softmax TPC share"],
            [
                ("softmax (monolithic)", self.baseline.total_time_ms,
                 f"{self.baseline.mme_idle_fraction:.1%}",
                 f"{self.baseline.softmax_tpc_share:.1%}"),
                (f"pipelined (chunk {self.chunk_size})",
                 self.pipelined.total_time_ms,
                 f"{self.pipelined.mme_idle_fraction:.1%}",
                 f"{self.pipelined.softmax_tpc_share:.1%}"),
            ],
            title="A6: software-pipelined exact softmax attention "
                  f"({self.speedup:.2f}x)",
        )


# -- A11: HBM bandwidth contention on/off -------------------------------------


@dataclass
class ContentionRow:
    """One workload timed under both memory models."""

    name: str
    contended: ProfileResult
    uncontended: ProfileResult

    @property
    def slowdown(self) -> float:
        """Contended / uncontended makespan (>= 1 by construction)."""
        return (
            self.contended.total_time_us / self.uncontended.total_time_us
        )


@dataclass
class HbmContentionAblationResult:
    """The shared-HBM model's effect across the paper's workloads.

    Re-times the Fig 4-9 workloads plus the overlap-heavy extensions
    (A1's reordered Performer, A6's pipelined attention) with HBM
    contention on and off. The compiled schedule is identical in both
    runs — only the runtime's memory model changes — so every delta is
    attributable to bandwidth sharing.
    """

    rows: list[ContentionRow] = field(default_factory=list)

    def row(self, name: str) -> ContentionRow:
        """Look up one workload's pair by name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no contention row named {name!r}")

    def checks(self) -> list[ShapeCheck]:
        """Contention can only stretch, must bite where phases overlap,
        and must not break the paper-shape claims."""
        worst = max(self.rows, key=lambda r: r.slowdown)
        overlap_heavy = [
            self.row(n) for n in ("pipelined attention (A6)",
                                  "performer + reorder (A1)",
                                  "GPT train step (fig8)")
        ]
        softmax = self.row("softmax layer (fig4)")
        return [
            ShapeCheck(
                "ablation-hbm: contention never speeds a workload up",
                all(r.slowdown >= 1.0 - 1e-9 for r in self.rows),
                f"min slowdown {min(r.slowdown for r in self.rows):.4f}x",
                ">= 1.0x on every workload",
            ),
            ShapeCheck(
                "ablation-hbm: overlap-heavy workloads stall on shared HBM",
                all(r.contended.contention_stall_us > 0
                    for r in overlap_heavy),
                ", ".join(
                    f"{r.name}: {r.contended.contention_stall_us:.0f} us"
                    for r in overlap_heavy
                ),
                "> 0 us stall each",
            ),
            ShapeCheck(
                "ablation-hbm: slowdown stays bounded",
                worst.slowdown <= 1.5,
                f"worst {worst.slowdown:.3f}x ({worst.name})",
                "<= 1.5x (sharing, not serialization)",
            ),
            threshold_check(
                "ablation-hbm: Fig 4 softmax TPC share survives contention",
                softmax.contended.softmax_tpc_share,
                FIG4_SOFTMAX_TPC_SHARE_MIN,
            ),
        ]

    def render(self) -> str:
        """Per-workload comparison table."""
        return render_table(
            ["workload", "no contention (ms)", "contended (ms)",
             "slowdown", "stall (us)", "ops stalled"],
            [
                (
                    r.name,
                    f"{r.uncontended.total_time_ms:.2f}",
                    f"{r.contended.total_time_ms:.2f}",
                    f"{r.slowdown:.3f}x",
                    f"{r.contended.contention_stall_us:.1f}",
                    r.contended.contended_op_count,
                )
                for r in self.rows
            ],
            title="A11: shared-HBM bandwidth contention on/off",
        )


def _contention_pair(
    graph, config: GaudiConfig, *, reorder: bool = False
) -> tuple[ProfileResult, ProfileResult]:
    """Compile once, execute under both memory models.

    ``hbm_contention`` is runtime-only, so the two runs share one
    compiled schedule (and one compile cost); each executes on a fresh
    device so the timelines are independent.
    """
    from ..hw.device import GaudiDevice
    from ..synapse import Runtime, SynapseProfiler

    schedule = SynapseProfiler(config).compile(graph)
    out = []
    for contention in (True, False):
        result = Runtime(GaudiDevice(config)).execute(
            schedule, reorder=reorder, hbm_contention=contention
        )
        timeline = result.timeline.shifted(-result.start_offset_us)
        out.append(ProfileResult(
            graph_name=graph.name,
            timeline=timeline,
            schedule=schedule,
            total_time_us=result.total_time_us,
        ))
    return out[0], out[1]


def _layer_graph(kind: str, *, feature_map: str = "elu1",
                 batch: int | None = None, seq_len: int | None = None):
    """Record one §3.3 Transformer-layer graph at the study shapes."""
    from .. import ht
    from ..models import TransformerLayer, paper_layer_config
    from .reference import LAYER_STUDY_SHAPES

    batch = batch or LAYER_STUDY_SHAPES["batch"]
    seq_len = seq_len or LAYER_STUDY_SHAPES["seq_len"]
    layer_cfg = paper_layer_config(kind, feature_map=feature_map)
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record(f"layer-{kind}-{feature_map}", mode="symbolic") as rec:
        layer(ht.input_tensor((batch, seq_len, layer_cfg.d_model), name="x"))
    return rec.graph


def run_hbm_contention_ablation(
    *, config: GaudiConfig | None = None
) -> HbmContentionAblationResult:
    """Re-run the Fig 4-9 + A1/A6 workloads with contention on/off."""
    from .e2e_llm import record_training_step

    config = config or GaudiConfig()
    result = HbmContentionAblationResult()

    workloads: list[tuple[str, object, bool]] = [
        ("softmax layer (fig4)", _layer_graph("softmax"), False),
        ("linear layer (fig5)", _layer_graph("linear"), False),
        ("performer layer (fig6)", _layer_graph("performer"), False),
        ("GLU activation layer (fig7)",
         _layer_graph("linear", feature_map="glu", batch=8, seq_len=256),
         False),
        ("GPT train step (fig8)",
         record_training_step("gpt").graph, False),
        ("BERT train step (fig9)",
         record_training_step("bert").graph, False),
        ("performer + reorder (A1)", _layer_graph("performer"), True),
        ("pipelined attention (A6)", _layer_graph("pipelined"), False),
    ]
    for name, graph, reorder in workloads:
        contended, uncontended = _contention_pair(
            graph, config, reorder=reorder
        )
        result.rows.append(ContentionRow(name, contended, uncontended))
    return result


def run_pipelined_attention_study(
    *, chunk_size: int = 256, config: GaudiConfig | None = None
) -> PipelinedAttentionResult:
    """Profile monolithic vs pipelined exact attention at Fig 4 shapes."""
    from .. import ht
    from ..models import TransformerLayer, paper_layer_config
    from ..synapse import SynapseProfiler

    baseline = profile_layer("softmax", config=config)
    layer_cfg = paper_layer_config("pipelined", chunk_size=chunk_size)
    layer = TransformerLayer(layer_cfg, materialize=False)
    with ht.record("pipelined", mode="symbolic") as rec:
        layer(ht.input_tensor((128, 2048, layer_cfg.d_model)))
    pipelined = SynapseProfiler(config or GaudiConfig()).profile(rec.graph)
    return PipelinedAttentionResult(baseline, pipelined, chunk_size)


def run_chunked_attention_study(
    seq_lens: tuple[int, ...] = (512, 1024, 2048, 4096),
    *,
    chunk_size: int = 256,
    config: GaudiConfig | None = None,
) -> ChunkedAttentionResult:
    """Sweep sequence lengths for both attention layouts."""
    from .. import ht
    from ..models import TransformerLayer, paper_layer_config
    from ..synapse import SynapseProfiler

    result = ChunkedAttentionResult(list(seq_lens))
    for n in seq_lens:
        for kind, sink in (("softmax", result.softmax_ms),
                           ("chunked", result.chunked_ms)):
            layer_cfg = paper_layer_config(kind, chunk_size=chunk_size)
            layer = TransformerLayer(layer_cfg, materialize=False)
            with ht.record(f"{kind}-{n}", mode="symbolic") as rec:
                layer(ht.input_tensor((32, n, layer_cfg.d_model)))
            res = SynapseProfiler(config or GaudiConfig()).profile(rec.graph)
            sink.append(res.total_time_ms)
    return result
