"""The paper's contribution: the benchmarking study itself.

One module per table/figure (see DESIGN.md's per-experiment index),
plus trace analytics (:mod:`repro.core.insights`), the paper's
reference numbers (:mod:`repro.core.reference`), ablations, the
scaling extension, and the :func:`run_full_study` orchestrator.
"""

from .ablations import (
    ChunkedAttentionResult,
    ContentionRow,
    HbmContentionAblationResult,
    PipelinedAttentionResult,
    FusionAblationResult,
    PassToggleAblationResult,
    ReorderAblationResult,
    TpcCoreSweepResult,
    run_chunked_attention_study,
    run_fusion_ablation,
    run_hbm_contention_ablation,
    run_pass_toggle_ablation,
    run_pipelined_attention_study,
    run_reorder_ablation,
    run_tpc_core_sweep,
)
from .activation_study import ActivationStudyResult, run_activation_study
from .artifacts import save_profile, save_study
from .decode_study import DecodeStudyResult, run_decode_study
from .energy_study import EnergyStudyResult, run_energy_study
from .generations import (
    GenerationComparisonResult,
    run_generation_comparison,
)
from .attention_study import (
    AttentionStudyResult,
    profile_layer,
    run_attention_study,
)
from .e2e_llm import (
    E2EProfileResult,
    max_batch_that_fits,
    record_forward_step,
    record_training_step,
    run_e2e,
)
from .insights import (
    BottleneckEntry,
    bottleneck_report,
    describe_insights,
    gap_overlap_fraction,
    imbalance_index,
    overlap_fraction,
)
from .memory_study import (
    MemoryRow,
    MemoryStudyResult,
    run_memory_ablation,
)
from .mme_vs_tpc import MmeVsTpcResult, MmeVsTpcRow, run_mme_vs_tpc
from .overlap_study import (
    OverlapStudyResult,
    run_overlap_scheduler_ablation,
)
from .opmapping import OpMappingResult, OpMappingRow, run_op_mapping
from .reference import (
    E2E_SHAPES,
    FIG7_ACTIVATION_MS,
    LAYER_STUDY_SHAPES,
    ShapeCheck,
    TABLE1_ROWS,
    TABLE2,
    ratio_check,
    threshold_check,
    within_band,
)
from .roofline import RooflinePoint, RooflineReport, roofline_of_schedule
from .scaling_study import (
    CommOverlapAblationResult,
    OverlapRow,
    ScalingRow,
    ScalingStudyResult,
    run_comm_overlap_ablation,
    run_scaling_study,
)
from .seq_sweep import SeqSweepResult, run_seq_sweep
from .serving import (
    DEFAULT_WORKLOAD,
    SERVING_POLICIES,
    Request,
    ServingAblationResult,
    ServingPoint,
    ServingPointResult,
    ServingResult,
    ServingSimulator,
    ServingWorkload,
    generate_requests,
    kv_bytes_per_token,
    render_serving_table,
    run_serving,
    run_serving_ablation,
    serving_weight_bytes,
)
from .study import StudyReport, run_full_study
from .sweep import (
    SWEEP_POLICIES,
    PointResult,
    SweepPoint,
    SweepResult,
    SweepSpec,
    run_sweep,
    sweep_spec_from_cli,
)

__all__ = [
    "ChunkedAttentionResult",
    "ContentionRow",
    "HbmContentionAblationResult",
    "PipelinedAttentionResult",
    "FusionAblationResult",
    "PassToggleAblationResult",
    "ReorderAblationResult",
    "TpcCoreSweepResult",
    "run_chunked_attention_study",
    "run_hbm_contention_ablation",
    "run_pipelined_attention_study",
    "run_fusion_ablation",
    "run_pass_toggle_ablation",
    "run_reorder_ablation",
    "run_tpc_core_sweep",
    "save_profile",
    "save_study",
    "DecodeStudyResult",
    "run_decode_study",
    "EnergyStudyResult",
    "run_energy_study",
    "GenerationComparisonResult",
    "run_generation_comparison",
    "ActivationStudyResult",
    "run_activation_study",
    "AttentionStudyResult",
    "profile_layer",
    "run_attention_study",
    "E2EProfileResult",
    "max_batch_that_fits",
    "record_forward_step",
    "record_training_step",
    "run_e2e",
    "BottleneckEntry",
    "bottleneck_report",
    "describe_insights",
    "gap_overlap_fraction",
    "imbalance_index",
    "overlap_fraction",
    "OverlapStudyResult",
    "run_overlap_scheduler_ablation",
    "MemoryRow",
    "MemoryStudyResult",
    "run_memory_ablation",
    "MmeVsTpcResult",
    "MmeVsTpcRow",
    "run_mme_vs_tpc",
    "OpMappingResult",
    "OpMappingRow",
    "run_op_mapping",
    "E2E_SHAPES",
    "FIG7_ACTIVATION_MS",
    "LAYER_STUDY_SHAPES",
    "ShapeCheck",
    "TABLE1_ROWS",
    "TABLE2",
    "ratio_check",
    "threshold_check",
    "within_band",
    "RooflinePoint",
    "RooflineReport",
    "roofline_of_schedule",
    "CommOverlapAblationResult",
    "OverlapRow",
    "ScalingRow",
    "ScalingStudyResult",
    "run_comm_overlap_ablation",
    "run_scaling_study",
    "SeqSweepResult",
    "run_seq_sweep",
    "DEFAULT_WORKLOAD",
    "SERVING_POLICIES",
    "Request",
    "ServingAblationResult",
    "ServingPoint",
    "ServingPointResult",
    "ServingResult",
    "ServingSimulator",
    "ServingWorkload",
    "generate_requests",
    "kv_bytes_per_token",
    "render_serving_table",
    "run_serving",
    "run_serving_ablation",
    "serving_weight_bytes",
    "StudyReport",
    "run_full_study",
    "SWEEP_POLICIES",
    "PointResult",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "sweep_spec_from_cli",
]
