"""The full benchmarking study: every table, figure and extension.

``run_full_study()`` reproduces the paper end to end and returns a
:class:`StudyReport` whose ``render()`` is the EXPERIMENTS.md payload:
per-experiment measurements, the paper's reference values, and the
pass/miss state of every qualitative shape check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import GaudiConfig
from .ablations import (
    run_chunked_attention_study,
    run_hbm_contention_ablation,
    run_pipelined_attention_study,
    run_fusion_ablation,
    run_reorder_ablation,
    run_tpc_core_sweep,
)
from .activation_study import run_activation_study
from .attention_study import run_attention_study
from .auto_layout import run_parallel_study
from .backend_study import run_backend_ablation
from .decode_study import run_decode_study
from .e2e_llm import run_e2e
from .energy_study import run_energy_study
from .generations import run_generation_comparison
from .kernel_study import run_kernel_pack_ablation
from .memory_study import run_memory_ablation
from .mme_vs_tpc import run_mme_vs_tpc
from .opmapping import run_op_mapping
from .overlap_study import run_overlap_scheduler_ablation
from .reference import ShapeCheck
from .scaling_study import run_comm_overlap_ablation, run_scaling_study
from .seq_sweep import run_seq_sweep
from .serving import run_serving_ablation


@dataclass
class StudyReport:
    """Everything the study produced."""

    sections: list[tuple[str, str]] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)

    def add(self, title: str, body: str, checks: list[ShapeCheck]) -> None:
        """Append one experiment's rendering + checks."""
        self.sections.append((title, body))
        self.checks.extend(checks)

    @property
    def num_passed(self) -> int:
        """Shape checks that hold."""
        return sum(1 for c in self.checks if c.passed)

    @property
    def all_passed(self) -> bool:
        """Whether every shape check holds."""
        return self.num_passed == len(self.checks)

    def failed_checks(self) -> list[ShapeCheck]:
        """Checks that missed the paper's band."""
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        """Full human-readable report."""
        parts = [
            "Reproduction study report",
            f"shape checks: {self.num_passed}/{len(self.checks)} passed",
            "",
        ]
        for title, body in self.sections:
            parts.append(f"{'=' * 8} {title} {'=' * 8}")
            parts.append(body)
            parts.append("")
        parts.append("=" * 8 + " shape-check summary " + "=" * 8)
        parts.extend(str(c) for c in self.checks)
        return "\n".join(parts)


def run_full_study(
    config: GaudiConfig | None = None,
    *,
    include_extensions: bool = True,
    jobs: int = 1,
) -> StudyReport:
    """Run every experiment in DESIGN.md's index.

    ``jobs > 1`` parallelizes the multi-card simulations (A4/A12)
    across a process pool; every measurement is identical to the
    serial run.
    """
    config = config or GaudiConfig()
    report = StudyReport()

    t1 = run_op_mapping()
    report.add("Table 1: operation-engine mapping", t1.render(), t1.checks())

    t2 = run_mme_vs_tpc(config)
    report.add("Table 2: MME vs TPC batched matmul", t2.render(), t2.checks())

    attn = run_attention_study(config)
    report.add("Figures 4-6: attention variants", attn.render(), attn.checks())

    act = run_activation_study(config)
    report.add("Figure 7: activation functions", act.render(), act.checks())

    sweep = run_seq_sweep(config=config)
    report.add("Long-sequence sweep (challenge #3)", sweep.render(),
               sweep.checks())

    for model in ("gpt", "bert"):
        e2e = run_e2e(model, config=config)
        fig = "Figure 8: GPT end-to-end" if model == "gpt" else \
            "Figure 9: BERT end-to-end"
        report.add(fig, e2e.render(), e2e.checks())

    if include_extensions:
        a1 = run_reorder_ablation("performer", config=config)
        report.add("A1: issue-order ablation", a1.render(), a1.checks())

        a2 = run_fusion_ablation("softmax", config=config)
        report.add("A2: fusion ablation", a2.render(), a2.checks())

        a3 = run_tpc_core_sweep(config=config)
        report.add("A3: TPC core sweep", a3.render(), a3.checks())

        a4 = run_scaling_study("gpt", hls1=None, jobs=jobs)
        report.add("A4: HLS-1 scaling extension", a4.render(), a4.checks())

        a5 = run_chunked_attention_study(config=config)
        report.add("A5: chunked attention extension", a5.render(), a5.checks())

        a6 = run_pipelined_attention_study(config=config)
        report.add("A6: pipelined exact attention extension", a6.render(),
                   a6.checks())

        a7 = run_generation_comparison()
        report.add("A7: Gaudi2 what-if extension", a7.render(), a7.checks())

        a8 = run_energy_study(config)
        report.add("A8: energy extension", a8.render(), a8.checks())

        a9 = run_decode_study(config=config)
        report.add("A9: KV-cached decode extension", a9.render(),
                   a9.checks())

        a11 = run_hbm_contention_ablation(config=config)
        report.add("A11: HBM contention ablation", a11.render(),
                   a11.checks())

        a12 = run_comm_overlap_ablation("gpt", jobs=jobs)
        report.add("A12: comm-overlap ablation", a12.render(),
                   a12.checks())

        a13 = run_overlap_scheduler_ablation(config=config)
        report.add("A13: overlap scheduler ablation", a13.render(),
                   a13.checks())

        a14 = run_memory_ablation(config=config)
        report.add("A14: memory planning ablation", a14.render(),
                   a14.checks())

        a15 = run_serving_ablation(config=config)
        report.add("A15: static vs continuous batching", a15.render(),
                   a15.checks())

        a16 = run_parallel_study()
        report.add("A16: multi-box parallel layouts", a16.render(),
                   a16.checks())

        a17 = run_kernel_pack_ablation(config=config)
        report.add("A17: attention kernel pack", a17.render(),
                   a17.checks())

        a18 = run_backend_ablation(config=config)
        report.add("A18: cross-backend comparison", a18.render(),
                   a18.checks())

    from ..synapse import recipe_cache_stats

    cache = recipe_cache_stats()
    report.sections.append((
        "recipe cache",
        f"hits: {cache['hits']}  misses: {cache['misses']}  "
        f"disk hits: {cache['disk_hits']}",
    ))

    return report
