"""Extension A16: auto-parallelism planning across multi-box fabrics.

The paper benchmarks one HLS-1; §2.1 advertises scaling "in both
expanding and multiplying setups" without saying how a workload should
be laid out once it spans boxes. This extension answers with a
planner: enumerate every feasible ``(tp, pp, dp, microbatches)``
placement of a training step over ``total_cards`` cards (``tp`` never
crosses a box — TP collectives are latency-critical and belong on the
all-to-all intra-box links), price each candidate through the real
compiler + two-tier event-driven runtime, and pick the highest
simulated throughput.

Pricing is exhaustive over the (small) grid, so the planner's pick is
by construction within any tolerance of the grid optimum; the value of
the exercise is the *curve* — how 8-card single-box efficiency decays
at 32/64 cards across Ethernet, and which layout family (pure DP,
TP-in-box + DP-across-box, pipeline over boxes) holds up best. Every
candidate reuses the shared recipe cache, and incremental
recompilation replays the structural passes so only the
parallelism-dependent stages re-run per layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hw.config import HLS1Config
from ..hw.device import HLS1Device
from ..synapse import GraphCompiler, default_compiler_options
from ..synapse.recipe import RecipeCache
from ..synapse.runtime import HLS1Runtime
from ..util.errors import CompileError, DeviceMemoryError
from ..util.tabulate import render_table
from ..util.units import us_to_ms
from .e2e_llm import record_training_step
from .reference import ShapeCheck, threshold_check


@dataclass(frozen=True)
class ParallelLayout:
    """One placement of a training step over the card pool."""

    tp: int = 1
    pp: int = 1
    dp: int = 1
    #: DDP gradient-bucket size (MB) the layout compiles with
    bucket_mb: float = 25.0
    #: microbatches per step; 1 unless ``pp > 1``
    microbatches: int = 1

    @property
    def total_cards(self) -> int:
        """Cards the layout occupies."""
        return self.tp * self.pp * self.dp

    def describe(self) -> str:
        """Compact ``tp4·pp2·dp8(m8)`` label."""
        label = f"tp{self.tp}·pp{self.pp}·dp{self.dp}"
        if self.pp > 1:
            label += f"(m{self.microbatches})"
        return label


@dataclass(frozen=True)
class LayoutPricing:
    """One priced candidate; ``step_time_us=None`` means infeasible."""

    layout: ParallelLayout
    step_time_us: float | None
    #: why an infeasible layout was rejected
    reason: str = ""

    @property
    def feasible(self) -> bool:
        """Whether the candidate compiled and executed."""
        return self.step_time_us is not None


def enumerate_layouts(
    total_cards: int,
    *,
    cards_per_box: int = 8,
    batch: int = 8,
    tp_grid: tuple[int, ...] = (1, 2, 4, 8),
    pp_grid: tuple[int, ...] = (1, 2, 4),
    microbatch_grid: tuple[int, ...] = (1, 2, 4, 8),
    bucket_mb: float = 25.0,
) -> list[ParallelLayout]:
    """Every grid point that tiles ``total_cards`` exactly.

    Constraints: ``tp * pp * dp == total_cards`` with ``dp >= 1``;
    ``tp`` fits inside one box *and* inside one pipeline stage's card
    slice; pipelines need ``microbatches >= pp`` dividing ``batch``
    (stages must fill, microbatch shapes must be uniform); ``pp == 1``
    pins ``microbatches = 1``.
    """
    layouts: list[ParallelLayout] = []
    for tp in tp_grid:
        for pp in pp_grid:
            if tp * pp > total_cards or total_cards % (tp * pp):
                continue
            dp = total_cards // (tp * pp)
            stage_cards = total_cards // pp
            if tp > min(cards_per_box, stage_cards):
                continue
            if pp == 1:
                layouts.append(
                    ParallelLayout(tp, pp, dp, bucket_mb, 1)
                )
                continue
            for m in microbatch_grid:
                if m < pp or batch % m:
                    continue
                layouts.append(
                    ParallelLayout(tp, pp, dp, bucket_mb, m)
                )
    return layouts


def _system_config(
    total_cards: int, cards_per_box: int, hls1: HLS1Config
) -> HLS1Config:
    """The (boxes, cards) split hosting ``total_cards``."""
    if total_cards >= cards_per_box:
        return replace(
            hls1,
            num_cards=cards_per_box,
            boxes=total_cards // cards_per_box,
        )
    return replace(hls1, num_cards=total_cards, boxes=1)


class LayoutPlanner:
    """Prices layouts for one model through compiler + runtime.

    Graph recordings (keyed by microbatch size) and compiled recipes
    (the shared :class:`~repro.synapse.recipe.RecipeCache`) persist
    across :meth:`price` calls, so a study sweeping several card
    counts re-records nothing and re-compiles only new
    ``(tp, pp, microbatches, bucket)`` combinations.
    """

    def __init__(
        self,
        model_name: str,
        *,
        batch: int = 8,
        seq_len: int = 256,
        hls1: HLS1Config | None = None,
        cards_per_box: int = 8,
    ):
        self.model_name = model_name
        self.batch = batch
        self.seq_len = seq_len
        self.hls1 = hls1 or HLS1Config()
        self.cards_per_box = cards_per_box
        self._graphs: dict[int, object] = {}
        self._cache = RecipeCache()

    def _graph(self, microbatch: int):
        graph = self._graphs.get(microbatch)
        if graph is None:
            graph = record_training_step(
                self.model_name, batch=microbatch, seq_len=self.seq_len
            ).graph
            self._graphs[microbatch] = graph
        return graph

    def price(self, layout: ParallelLayout) -> LayoutPricing:
        """Compile + execute one candidate; infeasibility is a result."""
        if layout.pp > 1 and self.batch % layout.microbatches:
            return LayoutPricing(
                layout, None, "microbatches do not divide the batch"
            )
        microbatch = (
            self.batch // layout.microbatches if layout.pp > 1
            else self.batch
        )
        options = replace(
            default_compiler_options(),
            inject_collectives=True,
            bucket_mb=layout.bucket_mb,
            tp=layout.tp,
            pp=layout.pp,
            microbatches=layout.microbatches,
        )
        compiler = GraphCompiler(options=options, cache=self._cache)
        try:
            schedule = compiler.compile(self._graph(microbatch))
        except DeviceMemoryError:
            return LayoutPricing(layout, None, "exceeds HBM capacity")
        except CompileError as exc:
            return LayoutPricing(layout, None, str(exc))
        system = HLS1Device(_system_config(
            layout.total_cards, self.cards_per_box, self.hls1
        ))
        result = HLS1Runtime(system).execute(schedule)
        return LayoutPricing(layout, result.total_time_us)

    def samples_per_s(self, pricing: LayoutPricing) -> float:
        """Aggregate training throughput of a priced layout."""
        if not pricing.feasible or pricing.step_time_us <= 0:
            return 0.0
        return (
            pricing.layout.dp * self.batch
            / (pricing.step_time_us / 1e6)
        )


@dataclass
class AutoLayoutResult:
    """The planner's verdict for one (model, card count)."""

    model_name: str
    total_cards: int
    priced: list[LayoutPricing]
    best: LayoutPricing
    best_samples_per_s: float

    def within(self, tolerance: float) -> bool:
        """Whether the pick is within ``tolerance`` of the grid optimum."""
        feasible = [p.step_time_us for p in self.priced if p.feasible]
        if not feasible or not self.best.feasible:
            return False
        return self.best.step_time_us <= (1.0 + tolerance) * min(feasible)


def auto_layout(
    model_name: str,
    total_cards: int,
    *,
    planner: LayoutPlanner | None = None,
    batch: int = 8,
    seq_len: int = 256,
    cards_per_box: int = 8,
    hls1: HLS1Config | None = None,
    tp_grid: tuple[int, ...] = (1, 2, 4, 8),
    pp_grid: tuple[int, ...] = (1, 2, 4),
    microbatch_grid: tuple[int, ...] = (1, 2, 4, 8),
) -> AutoLayoutResult:
    """Exhaustively price the grid and return the fastest layout.

    Feasible candidates are ranked by simulated aggregate throughput
    — step time alone cannot compare layouts, because candidates at
    the same ``total_cards`` process ``dp * batch`` samples per step
    and ``dp`` differs between them.
    """
    planner = planner or LayoutPlanner(
        model_name, batch=batch, seq_len=seq_len, hls1=hls1,
        cards_per_box=cards_per_box,
    )
    candidates = enumerate_layouts(
        total_cards,
        cards_per_box=planner.cards_per_box,
        batch=planner.batch,
        tp_grid=tp_grid,
        pp_grid=pp_grid,
        microbatch_grid=microbatch_grid,
    )
    if not candidates:
        raise CompileError(
            f"no feasible parallel layout tiles {total_cards} cards "
            f"from grids tp={tp_grid} pp={pp_grid}"
        )
    priced = [planner.price(layout) for layout in candidates]
    feasible = [p for p in priced if p.feasible]
    if not feasible:
        raise DeviceMemoryError(
            f"every candidate layout for {model_name} on "
            f"{total_cards} cards is infeasible: "
            + "; ".join(f"{p.layout.describe()}: {p.reason}" for p in priced)
        )
    best = max(feasible, key=planner.samples_per_s)
    return AutoLayoutResult(
        model_name=model_name,
        total_cards=total_cards,
        priced=priced,
        best=best,
        best_samples_per_s=planner.samples_per_s(best),
    )


# -- A16: the scaling study --------------------------------------------------


@dataclass(frozen=True)
class ParallelRow:
    """One priced layout at one card count."""

    model_name: str
    num_cards: int
    layout: str
    tp: int
    pp: int
    dp: int
    microbatches: int
    feasible: bool
    step_time_ms: float
    samples_per_s: float
    #: throughput relative to ``num_cards`` perfectly-scaled cards
    efficiency: float
    picked: bool


@dataclass
class ParallelStudyResult:
    """A16: layout grid x card counts, with the planner's picks."""

    batch: int
    seq_len: int
    cards_per_box: int
    rows: list[ParallelRow] = field(default_factory=list)
    #: (model, cards) -> the planner's layout label
    picks: dict = field(default_factory=dict)

    def _best(self, model: str, cards: int) -> ParallelRow:
        return next(
            r for r in self.rows
            if r.model_name == model and r.num_cards == cards and r.picked
        )

    def checks(self) -> list[ShapeCheck]:
        """A16 claims: planner optimal on-grid, sane scaling shape."""
        checks: list[ShapeCheck] = []
        models = sorted({r.model_name for r in self.rows})
        for model in models:
            counts = sorted({
                r.num_cards for r in self.rows if r.model_name == model
            })
            best = [self._best(model, c) for c in counts]
            thr = [r.samples_per_s for r in best]
            checks.append(ShapeCheck(
                f"parallel [{model}]: best-layout throughput grows "
                "with cards",
                thr == sorted(thr),
                "monotone" if thr == sorted(thr) else f"{thr}",
                "monotone",
            ))
            # the pick is within 5% of the exhaustive-search optimum
            for c in counts:
                rows = [
                    r for r in self.rows
                    if r.model_name == model and r.num_cards == c
                    and r.feasible
                ]
                top = max(r.samples_per_s for r in rows)
                picked = self._best(model, c)
                checks.append(threshold_check(
                    f"parallel [{model}]: planner within 5% of "
                    f"exhaustive optimum at {c} cards",
                    picked.samples_per_s / top if top > 0 else 0.0,
                    0.95,
                ))
            if len(counts) > 1:
                top = best[-1]
                checks.append(threshold_check(
                    f"parallel [{model}]: scaling efficiency at "
                    f"{top.num_cards} cards (multi-box)",
                    top.efficiency, 0.25,
                ))
        return checks

    def render(self) -> str:
        """One table per model: the full per-layout scaling curves."""
        parts = []
        models = sorted({r.model_name for r in self.rows})
        for model in models:
            rows = [r for r in self.rows if r.model_name == model]
            parts.append(render_table(
                ["Cards", "Layout", "Step (ms)", "Samples/s",
                 "Efficiency", "Planner pick"],
                [(r.num_cards, r.layout,
                  f"{r.step_time_ms:.3f}" if r.feasible else "OOM",
                  f"{r.samples_per_s:.1f}" if r.feasible else "-",
                  f"{r.efficiency:.1%}" if r.feasible else "-",
                  "<-- auto" if r.picked else "")
                 for r in rows],
                title=(
                    f"A16 parallel layouts, {model} "
                    f"(batch {self.batch}, seq {self.seq_len}, "
                    f"{self.cards_per_box}-card boxes)"
                ),
            ))
        return "\n\n".join(parts)


def run_parallel_study(
    models: tuple[str, ...] = ("gpt", "bert"),
    *,
    card_counts: tuple[int, ...] = (8, 32, 64),
    batch: int = 8,
    seq_len: int = 256,
    cards_per_box: int = 8,
    hls1: HLS1Config | None = None,
    tp_grid: tuple[int, ...] = (1, 4),
    pp_grid: tuple[int, ...] = (1, 4),
    microbatch_grid: tuple[int, ...] = (1, 8),
) -> ParallelStudyResult:
    """Price the layout grid for each model at each card count.

    Efficiency is against the same model's single-card step at the
    same per-rank batch: ``samples_per_s / (cards * single_card)``.
    The default grid keeps the study fast while spanning the three
    layout families (pure DP; TP-in-box; pipeline-across-boxes).
    """
    result = ParallelStudyResult(
        batch=batch, seq_len=seq_len, cards_per_box=cards_per_box
    )
    for model in models:
        planner = LayoutPlanner(
            model, batch=batch, seq_len=seq_len, hls1=hls1,
            cards_per_box=cards_per_box,
        )
        base = planner.price(ParallelLayout())
        base_thr = planner.samples_per_s(base)
        for cards in card_counts:
            verdict = auto_layout(
                model, cards, planner=planner,
                tp_grid=tp_grid, pp_grid=pp_grid,
                microbatch_grid=microbatch_grid,
            )
            result.picks[(model, cards)] = verdict.best.layout.describe()
            for pricing in verdict.priced:
                thr = planner.samples_per_s(pricing)
                result.rows.append(ParallelRow(
                    model_name=model,
                    num_cards=cards,
                    layout=pricing.layout.describe(),
                    tp=pricing.layout.tp,
                    pp=pricing.layout.pp,
                    dp=pricing.layout.dp,
                    microbatches=pricing.layout.microbatches,
                    feasible=pricing.feasible,
                    step_time_ms=us_to_ms(pricing.step_time_us or 0.0),
                    samples_per_s=thr,
                    efficiency=(
                        thr / (cards * base_thr) if base_thr > 0 else 0.0
                    ),
                    picked=pricing is verdict.best,
                ))
    return result
